#!/usr/bin/env python
"""Dynamic graphs on affinity alloc (paper §8, "Dynamic Data Structures").

Builds a mutable Linked-CSR graph, churns it with edge deletions and
insertions, shows how placement quality degrades, and then uses
``realloc_aff``-based rehoming to recover it — the paper's "the layout
could also be dynamically adjusted" direction.

Run:  python examples/dynamic_graph.py
"""

import numpy as np

from repro import AffineArray, AffinityAllocator, Machine
from repro.datastructs import DynamicGraph

V = 8192
E = 40_000


def main():
    rng = np.random.default_rng(0)
    machine = Machine()
    alloc = AffinityAllocator(machine)
    props = alloc.malloc_affine(AffineArray(8, V, partition=True),
                                name="vertex-props")
    g = DynamicGraph(machine, V, allocator=alloc, target=props)

    src = rng.integers(0, 256, E)        # skewed sources, like a web crawl
    dst = np.sort(rng.integers(0, V, E))  # clustered destinations
    g.insert_edges(src, dst)
    print(f"built: |V|={V} |E|={g.num_edges:,} in {g.node_count():,} nodes")
    print(f"  mean edge->destination distance: "
          f"{g.mean_indirect_hops():.2f} hops (fresh build)")

    # churn: delete half the edges, insert replacements with new targets
    half = E // 2
    g.remove_edges(src[:half], dst[:half])
    g.insert_edges(src[:half], rng.integers(0, V, half))
    degraded = g.mean_indirect_hops()
    print(f"  after churn of {half:,} edges: {degraded:.2f} hops "
          f"(placement went stale)")

    moved = g.rehome()
    recovered = g.mean_indirect_hops()
    print(f"  rehomed {moved:,} nodes via realloc_aff: "
          f"{recovered:.2f} hops")
    print(f"  allocator: {alloc.stats.reallocs} reallocs, "
          f"{alloc.stats.frees} frees")

    csr = g.to_csr()
    print(f"snapshot to CSR: |E|={csr.num_edges:,}, "
          f"avg degree {csr.avg_degree:.1f}")


if __name__ == "__main__":
    main()
