#!/usr/bin/env python
"""The near-stream-computing compiler pipeline (paper §2, Fig 2).

Describes the paper's Fig 2(a) vector add and Fig 2(c) push-BFS inner
loop as declarative kernels, compiles them to stream dependence graphs,
shows the offload decision, and runs the generated plans on the
simulator.

Run:  python examples/stream_compiler.py
"""

import numpy as np

from repro.nsc import EngineMode, KernelBuilder, compile_kernel
from repro.perf import PerfModel
from repro.workloads.base import make_context


def show(ck):
    print(f"kernel {ck.name!r}")
    print(f"  streams : " + ", ".join(
        f"{s.name}:{s.kind.value}" for s in ck.graph.streams))
    print(f"  deps    : " + ", ".join(
        f"{d.src}-[{d.kind.value}]->{d.dst}" for d in ck.graph.deps))
    print(f"  offload : {ck.decision.offload} ({ck.decision.reason})")
    print(f"  plan    : {ck.plan.describe()}")


def vecadd():
    print("=" * 64)
    print("Fig 2(a): C[0:N] = A[0:N] + B[0:N]")
    n = 1 << 18
    ctx = make_context(EngineMode.AFF_ALLOC)
    a = ctx.alloc(4, n, "A")
    b = ctx.alloc(4, n, "B", align_to=a)
    c = ctx.alloc(4, n, "C", align_to=a)
    k = KernelBuilder("vecadd", n)
    k.load("sa", a)
    k.load("sb", b)
    k.store("sc", c, inputs=["sa", "sb"], ops=1.0)
    ck = compile_kernel(k)
    show(ck)
    ck.run(ctx.executor, np.arange(n), ctx.cores_for(n))
    r = PerfModel(ctx.machine).evaluate(ctx.recorder, label="vecadd")
    print(f"  result  : {r.cycles:,.0f} cycles, "
          f"{r.total_flit_hops:,.0f} flit-hops "
          f"(data forwarding: {r.flit_hops_by_class['data']:,.0f})\n")


def bfs_inner():
    print("=" * 64)
    print("Fig 2(c): push-BFS inner loop — CAS into neighbors' parents")
    n = 1 << 16
    ctx = make_context(EngineMode.AFF_ALLOC)
    parents = ctx.alloc(8, n, "Parent", partition=True)
    edges = ctx.alloc(4, n, "Edges")
    rng = np.random.default_rng(0)
    dsts = rng.integers(0, n, n)
    k = KernelBuilder("bfs_inner", n)
    k.load("se", edges)
    k.atomic("sx", parents, address_from="se",
             target_indices=lambda it: dsts[it], ops=1.0)
    ck = compile_kernel(k)
    show(ck)
    ck.run(ctx.executor, np.arange(n), ctx.cores_for(n))
    r = PerfModel(ctx.machine).evaluate(ctx.recorder, label="bfs-inner")
    print(f"  result  : {r.counters['atomics']:,.0f} remote atomics, "
          f"{r.counters['remote_reqs']:,.0f} crossed the NoC "
          f"({1 - r.counters['remote_reqs'] / r.counters['atomics']:.0%} "
          f"were bank-local thanks to the layout)\n")


def main():
    vecadd()
    bfs_inner()


if __name__ == "__main__":
    main()
