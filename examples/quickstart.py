#!/usr/bin/env python
"""Quickstart: the affinity-alloc API in five minutes.

Reproduces the paper's running example (Figs 1/3/8): a vector addition
``C[i] = A[i] + B[i]`` offloaded to the L3 banks, first with oblivious
placement and then with affinity allocation — and shows the traffic
difference the paper's Fig 4 quantifies.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import AffineArray, AffinityAllocator, Machine
from repro.core.api import alloc_plain_array
from repro.nsc import EngineMode, StreamExecutor
from repro.perf import PerfModel, RunRecorder

N = 1 << 18


def run_vecadd(aligned: bool):
    """One simulated run; returns the perf-model result."""
    machine = Machine(heap_mode="random")  # realistic OS page placement
    if aligned:
        # The paper's Fig 8(b) allocation: B and C align elementwise to A.
        alloc = AffinityAllocator(machine)
        a = alloc.malloc_affine(AffineArray(4, N), name="A")
        b = alloc.malloc_affine(AffineArray(4, N, align_to=a), name="B")
        c = alloc.malloc_affine(AffineArray(4, N, align_to=a), name="C")
        mode = EngineMode.AFF_ALLOC
    else:
        # Plain malloc: banks fall where the page mapping says.
        a = alloc_plain_array(machine, 4, N, "A")
        b = alloc_plain_array(machine, 4, N, "B")
        c = alloc_plain_array(machine, 4, N, "C")
        mode = EngineMode.NEAR_L3

    recorder = RunRecorder(machine)
    executor = StreamExecutor(machine, recorder, mode)
    idx = np.arange(N)
    cores = (idx * machine.num_cores // N).astype(np.int64)
    executor.affine_kernel(cores, [(a, idx), (b, idx)], out=(c, idx),
                           ops_per_elem=1.0)
    return PerfModel(machine).evaluate(recorder, label=mode.value), (a, b, c)


def main():
    oblivious, _ = run_vecadd(aligned=False)
    affinity, handles = run_vecadd(aligned=True)
    a, b, c = handles

    print("Where did the allocator put things?")
    i = np.arange(4)
    print(f"  banks of A[0:4]: {a.banks(i)}")
    print(f"  banks of B[0:4]: {b.banks(i)}  (aligned to A)")
    print(f"  banks of C[0:4]: {c.banks(i)}  (aligned to A)")
    n = a.num_elem
    colocated = float((a.banks(np.arange(n)) == c.banks(np.arange(n))).mean())
    print(f"  fraction of elements colocated A~C: {colocated:.0%}\n")

    print("Near-data vector add, oblivious vs affinity-allocated:")
    for r in (oblivious, affinity):
        print(f"  {r.label:10s}  cycles={r.cycles:>12,.0f}  "
              f"NoC flit-hops={r.total_flit_hops:>12,.0f}  "
              f"energy={r.energy_pj:>14,.0f} pJ")
    print(f"\n  speedup        : {oblivious.cycles / affinity.cycles:.2f}x")
    print(f"  traffic        : {affinity.total_flit_hops / oblivious.total_flit_hops:.1%} of oblivious")
    print(f"  data forwarding: {affinity.flit_hops_by_class['data']:,.0f} flit-hops "
          f"(vs {oblivious.flit_hops_by_class['data']:,.0f} oblivious)")


if __name__ == "__main__":
    main()
