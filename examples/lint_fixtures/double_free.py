"""LIF001 + LIF004: freeing twice, and freeing a bogus address."""

from repro.core.api import AffineArray


def build(session):
    a = session.allocator.malloc_affine(AffineArray(4, 1024), name="A")
    session.allocator.free_aff(a)
    session.allocator.free_aff(a.vaddr)   # LIF001: already freed
    session.allocator.free_aff(0x1234)    # LIF004: never allocated
