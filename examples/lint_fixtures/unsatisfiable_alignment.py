"""AFF001: alignment constraints with no satisfying layout.

``bad_offset`` asks B[0] to align to A[1], but A[1] sits 4 bytes into a
64 B interleave slot — no start bank realizes that offset.  ``bad_ratio``
asks for a 2-byte element aligned with p/q = 2/3, and Eq. 3 yields a
fractional interleave that padding cannot repair either.
"""


def build(session):
    from repro.analysis.plan import LayoutPlan

    plan = LayoutPlan("unsatisfiable_alignment")
    plan.array("A", 4, 4096)
    # offset 1 element = 4 bytes, not a multiple of the 64 B slot
    plan.array("bad_offset", 4, 4096, align_to="A", align_x=1)
    # g_B = 2*3*64/(2*4) = 48 < 64; padded stride 64*2*4/(3*64) = 8/3
    plan.array("bad_ratio", 2, 4096, align_to="A", align_p=2, align_q=3)
    session.add_plan(plan)
