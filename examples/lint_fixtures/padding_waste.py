"""AFF005: legal but wasteful padding.

Aligning a 4-byte element at p/q = 4/1 to a 64 B-interleaved 4-byte
array forces a 16 B padded stride — 75% of the footprint is padding,
above the 50% warning threshold.
"""


def build(session):
    from repro.analysis.plan import LayoutPlan

    plan = LayoutPlan("padding_waste")
    plan.array("A", 4, 4096)
    plan.array("padded", 4, 4096, align_to="A", align_p=4)
    session.add_plan(plan)
