"""LIF002: allocations still live when the session ends."""

from repro.core.api import AffineArray


def build(session):
    session.allocator.malloc_affine(AffineArray(4, 1024), name="leaked_a")
    session.allocator.malloc_irregular(64)
