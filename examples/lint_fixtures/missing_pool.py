"""AFF004: required interleavings with no backing pool.

A 12-byte element aligned 1:1 with a 4-byte array needs a 192 B
interleave (Eq. 3) — not a pool granularity and not page-aligned.  The
irregular demand asks for 8 KiB objects, beyond the largest (4 KiB)
interleave pool.
"""


def build(session):
    from repro.analysis.plan import LayoutPlan

    plan = LayoutPlan("missing_pool")
    plan.array("A", 4, 4096)
    plan.array("wide", 12, 4096, align_to="A")
    plan.demand(8192, 64, label="jumbo-nodes")
    session.add_plan(plan)
