"""INT001: tenant plans claim more distinct interleaves than the IOT
holds bank-range entries.

The default Table 2 machine has 16 IOT entries and only 7 pool
interleavings, so capacity can never conflict; this fixture models a
cost-down part with a 2-entry IOT shared by three tenants whose plans
need three distinct interleavings.

Run: PYTHONPATH=src python -m repro lint --plans \
         examples/lint_fixtures/interference/conflicting_interleaves.py
"""

import dataclasses

from repro.analysis.interference import Tenant
from repro.analysis.plan import LayoutPlan
from repro.config import DEFAULT_CONFIG

EXPECT = ["INT001"]


def config():
    return dataclasses.replace(
        DEFAULT_CONFIG,
        cache=dataclasses.replace(DEFAULT_CONFIG.cache, iot_entries=2))


def tenants():
    lines = LayoutPlan("lines")
    lines.array("stream", 4, 1 << 14)           # 64B line pool

    mid = LayoutPlan("mid")
    mid.demand(2048, 100, label="records")      # 2 KiB pool

    big = LayoutPlan("big")
    big.demand(4096, 50, label="blobs")         # 4 KiB pool

    return [Tenant("lines", lines), Tenant("mid", mid), Tenant("big", big)]
