"""INT004: the victim's 1 KiB-stride array concentrates half its weight
on a couple of banks (stride-1024 elements over a 64B interleave visit
every 16th bank), and a co-tenant with the same stride pattern but 200x
the footprint dominates exactly those banks — the victim's streams are
pushed off-bank even though no global INT003 threshold may be involved
for it.

Run: PYTHONPATH=src python -m repro lint --plans \
         examples/lint_fixtures/interference/affinity_dilution.py
"""

from repro.analysis.interference import Tenant
from repro.analysis.plan import LayoutPlan

EXPECT = ["INT004"]


def tenants():
    victim = LayoutPlan("victim")
    victim.array("mine", 1024, 1024)
    hog = LayoutPlan("hog")
    hog.array("theirs", 1024, 200_000)
    return [Tenant("victim", victim), Tenant("hog", hog)]
