"""INT003: two tenants' small hot arrays both land on the first banks
(the solver starts line-interleaved arrays at bank 0), so the aggregate
predicted weight concentrates far beyond the mean — a hotspot no
single-plan lint can see, because each plan is unremarkable alone.

Run: PYTHONPATH=src python -m repro lint --plans \
         examples/lint_fixtures/interference/hot_bank.py
"""

from repro.analysis.interference import Tenant
from repro.analysis.plan import LayoutPlan

EXPECT = ["INT003"]


def tenants():
    # Each array spans only a handful of 64B slots, so its whole weight
    # sits on the first few banks; two tenants stack on the same ones.
    a = LayoutPlan("counter-svc")
    a.array("counters", 4, 128)
    b = LayoutPlan("flag-svc")
    b.array("flags", 4, 128)
    return [Tenant("counter-svc", a), Tenant("flag-svc", b)]
