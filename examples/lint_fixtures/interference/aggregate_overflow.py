"""INT002: each tenant's plan fits its pool alone, but the *aggregate*
demand across tenants overflows the 64B pool's virtual reservation —
and one tenant also busts its declared admission quota.

Run: PYTHONPATH=src python -m repro lint --plans \
         examples/lint_fixtures/interference/aggregate_overflow.py
"""

from repro.analysis.interference import Tenant
from repro.analysis.plan import LayoutPlan
from repro.vm.layout import VirtualLayout

EXPECT = ["INT002"]


def tenants():
    # Three tenants at 40% of the 64B pool reservation each: any one is
    # fine (no AFF006), together they need 120%.
    per_tenant = int(VirtualLayout.POOL_STRIDE * 0.4)
    out = []
    for name in ("svc-a", "svc-b", "svc-c"):
        plan = LayoutPlan(name)
        plan.array("buf", 4, per_tenant // 4)
        out.append(Tenant(name, plan))
    # ... and one small tenant whose quota is tighter than its demand.
    capped = LayoutPlan("capped")
    capped.array("slab", 4, 1 << 16)  # 256 KiB demand
    out.append(Tenant("capped", capped, quota_bytes=1 << 16))
    return out
