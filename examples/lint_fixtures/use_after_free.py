"""LIF003: referencing an array after it was freed."""

from repro.core.api import AffineArray


def build(session):
    a = session.allocator.malloc_affine(AffineArray(4, 1024), name="A")
    session.allocator.free_aff(a)
    session.use(a)  # dangling reference
