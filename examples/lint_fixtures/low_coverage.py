"""COV001: a layout whose forwards are mostly remote.

A, B and C are all pool-interleaved, but B and C start one and two slots
away from A — so the loads of A and B land on different banks than the
store to C, and only the store itself is bank-local (1/3 < 50%).
"""

from repro.core.api import AffineArray
from repro.nsc.compiler import KernelBuilder


def build(session):
    n = 1 << 14
    alloc = session.allocator
    a = alloc.malloc_affine(AffineArray(4, n), name="A")
    b = alloc.malloc_affine(AffineArray(4, n, align_to=a, align_x=32),
                            name="B")
    c = alloc.malloc_affine(AffineArray(4, n, align_to=a, align_x=16),
                            name="C")

    k = KernelBuilder("shifted_add", n)
    s_a = k.load("s_a", a)
    s_b = k.load("s_b", b)
    k.store("s_c", c, inputs=[s_a, s_b])
    session.add_kernel(k)
    session.expect_clean_exit = False
