"""GRD001 fixture: feature-state access without the is-None clean-path
guard.  Every shipped guard idiom is also present and must NOT be
flagged."""

EXPECT = ["GRD001"]


class Executor:
    def __init__(self, machine):
        self.machine = machine

    def record_bad(self, kind):
        # GRD001: machine.faults is None on the clean path.
        self.machine.faults.note(kind)

    def record_alias_bad(self, kind):
        st = self.machine.faults
        st.note(kind)                        # GRD001: alias never guarded

    def record_good(self, kind):
        st = self.machine.faults
        if st is not None:
            st.note(kind)                    # fine: alias-then-guard

    def record_direct_good(self, kind):
        if self.machine.tracer is not None:
            self.machine.tracer.instant(kind)   # fine: direct guard

    def mask_good(self):
        st = self.machine.faults
        return st.policy_mask() if st is not None else None   # fine

    def epoch_good(self):
        state = self.machine.relayout
        if state is None:
            return 0
        return state.epoch                   # fine: early return

    def assert_good(self):
        st = self.machine.faults
        assert st is not None
        return st.log                        # fine: assert dominates

    def chain_good(self):
        return (self.machine.tracer is not None
                and self.machine.tracer.enabled)   # fine: and-chain
