"""DET001 fixture: every flavor of unseeded randomness the sanitizer
must catch.  This module is *linted as source*, never imported by the
simulator."""

import random                        # DET001: stdlib random import

import numpy as np

EXPECT = ["DET001"]


def shuffle_tasks(tasks):
    random.shuffle(tasks)            # DET001: process-global stdlib RNG
    return tasks


def jitter():
    return np.random.rand()          # DET001: numpy legacy global RNG


def fresh_generator():
    return np.random.default_rng()   # DET001: unseeded -> OS entropy


def seeded_generator(seed):
    return np.random.default_rng(seed)   # fine: seed threaded through
