"""DET001 fixture: wall-clock reads that could leak into results.
Monotonic timers are deliberately present and must NOT be flagged."""

import time
from datetime import datetime

EXPECT = ["DET001"]


def stamp_result(result):
    result["generated_at"] = time.time()          # DET001: wall clock
    result["pretty"] = datetime.now().isoformat()  # DET001: wall clock
    return result


def measure(fn):
    t0 = time.perf_counter()                      # fine: monotonic
    fn()
    return time.perf_counter() - t0
