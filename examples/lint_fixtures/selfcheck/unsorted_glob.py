"""DET002 fixture: filesystem-order iteration merged into one artifact.
The sorted() variants are present and must NOT be flagged."""

import os
from pathlib import Path

EXPECT = ["DET002"]


def merge_shards(root: Path):
    rows = []
    for shard in root.glob("shard-*.json"):   # DET002: filesystem order
        rows.append(shard.read_text())
    return rows


def list_results(root):
    return list(os.listdir(root))             # DET002: filesystem order


def merge_shards_stable(root: Path):
    rows = []
    for shard in sorted(root.glob("shard-*.json")):   # fine: sorted
        rows.append(shard.read_text())
    return rows
