"""GRD002 fixture: a run function gained a behavior-changing parameter
(``relayout``) without extending its cache-key digest — two calls that
differ only in that parameter would collide on one cache entry.  A
complete sibling is present and must NOT be flagged."""

from repro.cache import cache_key

EXPECT = ["GRD002"]


def run_stale(fid, scale, seed, relayout, use_cache=True):
    # GRD002: `relayout` changes the result but never reaches the key.
    key_fields = dict(id=fid, scale=scale, seed=seed)
    return cache_key("experiment", **key_fields)


def run_fresh(fid, scale, seed, relayout, use_cache=True):
    key_fields = dict(id=fid, scale=scale, seed=seed)
    if relayout is not None:
        key_fields["relayout"] = relayout.digest()
    return cache_key("experiment", **key_fields)
