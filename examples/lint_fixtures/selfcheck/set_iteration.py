"""DET002 fixture: unordered set iteration feeding an ordered result.
Order-insensitive reductions over the same sets are present and must
NOT be flagged."""

EXPECT = ["DET002"]


def merge_logs(logs):
    seen = set()
    for log in logs:
        seen.update(log)
    merged = []
    for entry in seen:        # DET002: set order leaks into the merge
        merged.append(entry)
    return merged


def summarize(banks):
    hot = {b for b in banks if b > 8}
    return list(hot)          # DET002: materializes set order


def count_hot(banks):
    return sum(1 for b in set(banks) if b > 8)   # fine: order-free sum


def hottest(banks):
    return max(set(banks))                       # fine: order-free max
