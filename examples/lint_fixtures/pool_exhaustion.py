"""AFF006: predicted demand exceeds a pool's virtual reservation.

2^39 four-byte elements is a 2 TiB footprint in the default 64 B
interleave pool, which only reserves 1 TiB of virtual space.
"""


def build(session):
    from repro.analysis.plan import LayoutPlan

    plan = LayoutPlan("pool_exhaustion")
    plan.array("huge", 4, 1 << 39)
    session.add_plan(plan)
