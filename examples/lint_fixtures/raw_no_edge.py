"""RACE002 + RACE003: overlapping streams with no dependence edge.

``s_read`` reads the same array ``s_write`` stores to, with no
value/address/predicate edge ordering them (RACE002); ``s_w1``/``s_w2``
are two unordered plain stores to one array (RACE003).
"""

from repro.core.api import AffineArray
from repro.nsc.compiler import KernelBuilder


def build(session):
    n = 1 << 12
    a = session.allocator.malloc_affine(AffineArray(4, n), name="A")
    b = session.allocator.malloc_affine(AffineArray(4, n), name="B")

    k = KernelBuilder("raw_no_edge", n)
    k.load("s_read", a)
    k.store("s_write", a)      # RAW vs s_read, no edge
    k.store("s_w1", b)
    k.store("s_w2", b, offset=1)  # WAW, no edge
    session.add_kernel(k)
    session.expect_clean_exit = False
