"""AFF003: self-conflicting specs.

``part`` requests partitioning *and* inter-array alignment (mutually
exclusive — a partitioned array's chunk placement is fully determined),
and ``A`` is planned twice.
"""


def build(session):
    from repro.analysis.plan import LayoutPlan

    plan = LayoutPlan("partition_conflict")
    plan.array("A", 4, 4096)
    plan.array("part", 4, 4096, align_to="A", partition=True)
    plan.array("A", 8, 1024)  # duplicate name
    session.add_plan(plan)
