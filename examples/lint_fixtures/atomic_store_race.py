"""RACE001: remote atomics mixed with plain stores to the same array.

The init store and the atomic histogram update touch ``data`` with no
dependence path between them — the executor may interleave them freely.
"""

from repro.core.api import AffineArray
from repro.nsc.compiler import KernelBuilder


def build(session):
    n = 1 << 12
    idx = session.allocator.malloc_affine(AffineArray(4, n), name="idx")
    data = session.allocator.malloc_affine(AffineArray(4, n), name="data")

    k = KernelBuilder("histogram_init_race", n)
    s_idx = k.load("s_idx", idx)
    k.atomic("s_upd", data, address_from=s_idx,
             target_indices=lambda t: t % n)
    k.store("s_init", data)  # unordered vs the atomic stream
    session.add_kernel(k)
    session.expect_clean_exit = False
