#!/usr/bin/env python
"""Reproduce the paper's two motivation studies from the public API.

* Fig 4 — how sensitive near-data vector add is to the relative bank
  placement of its operands (the "not-so near-data" problem).
* Fig 6 — how much remapping CSR edge chunks near their destination
  vertices could help, at different chunk granularities.

Run:  python examples/layout_study.py
"""

from repro.harness import fig4_vecadd_delta, fig6_chunk_remap, render


def main():
    print(render(fig4_vecadd_delta(deltas=tuple(range(0, 68, 8)), n=1 << 18)))
    print()
    print(render(fig6_chunk_remap(workloads=("pr_push", "bfs_push"),
                                  scale=0.08)))
    print("\n(Speedups normalized to the row baseline; see the docstrings "
          "of repro.harness.experiments for the exact conventions.)")


if __name__ == "__main__":
    main()
