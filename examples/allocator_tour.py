#!/usr/bin/env python
"""A tour of every affinity-alloc capability (paper §4 and §5).

Walks through:
  1. inter-array affine affinity (Eq. 2/3) with mixed element sizes,
  2. intra-array affinity for a 2D stencil (Fig 8c),
  3. partitioned arrays + the spatially distributed queue (Fig 9),
  4. irregular allocation with affinity addresses (Fig 10) under each
     bank-select policy (Eq. 4), demonstrating the Min-Hop pathology,
  5. free/reuse and the interleave pools behind it all.

Run:  python examples/allocator_tour.py
"""

import numpy as np

from repro import (AffineArray, AffinityAllocator, Machine, HybridPolicy,
                   MinHopPolicy, RandomPolicy)
from repro.datastructs import BinaryTree, SpatialQueue


def banner(title):
    print(f"\n--- {title} " + "-" * max(0, 60 - len(title)))


def inter_array():
    banner("1. Inter-array affinity (Fig 8b)")
    m = Machine()
    alloc = AffinityAllocator(m)
    a = alloc.malloc_affine(AffineArray(4, 1 << 16), name="float A")
    b = alloc.malloc_affine(AffineArray(4, 1 << 16, align_to=a), name="float B")
    c = alloc.malloc_affine(AffineArray(8, 1 << 16, align_to=a), name="double C")
    for h in (a, b, c):
        print(f"  {h.name:9s}: interleave {h.layout.intrlv:>4}B "
              f"({h.layout.reason})")
    i = np.arange(1 << 16)
    print(f"  elementwise colocated: "
          f"A~B {(a.banks(i) == b.banks(i)).mean():.0%}, "
          f"A~C {(a.banks(i) == c.banks(i)).mean():.0%}")


def intra_array():
    banner("2. Intra-array affinity (Fig 8c)")
    m = Machine()
    alloc = AffinityAllocator(m)
    rows, cols = 512, 2048
    grid = alloc.malloc_affine(AffineArray(4, rows * cols, align_x=cols),
                               name="A[M,N]")
    print(f"  chose {grid.layout.reason}")
    i = np.arange(cols, rows * cols)
    up = i - cols
    d = m.mesh.hops(grid.banks(i), grid.banks(up))
    print(f"  distance between A[i,j] and A[i-1,j]: mean {d.mean():.2f} hops")


def partition_and_queue():
    banner("3. Partitioned vertices + spatial queue (Fig 9)")
    m = Machine()
    alloc = AffinityAllocator(m)
    n = 1 << 16
    v = alloc.malloc_affine(AffineArray(8, n, partition=True), name="V")
    q = SpatialQueue(m, alloc, v)
    vids = np.random.default_rng(0).integers(0, n, 1000)
    tails, slots, _ = q.push_trace(vids)
    local = (tails == v.banks(vids)).mean()
    print(f"  V spread over {len(set(v.all_banks().tolist()))} banks")
    print(f"  queue pushes that stay on the vertex's own bank: {local:.0%}")


def policies():
    banner("4. Irregular allocation policies (Eq. 4, Fig 13)")
    for policy in (RandomPolicy(), MinHopPolicy(), HybridPolicy(5.0)):
        m = Machine()
        alloc = AffinityAllocator(m, policy)
        tree = BinaryTree.build(m, 20000, allocator=alloc)
        hist = tree.bank_histogram()
        print(f"  {policy.name:9s}: busiest bank holds "
              f"{hist.max() / hist.sum():.1%} of the tree "
              f"({'PATHOLOGICAL' if hist.max() == hist.sum() else 'ok'})")


def pools_and_free():
    banner("5. Interleave pools, free and reuse (paper 4.1/5.1)")
    m = Machine()
    alloc = AffinityAllocator(m)
    a = alloc.malloc_affine(AffineArray(4, 4096), name="A")
    node = alloc.malloc_irregular(96, aff_addrs=[a.addr_of_one(0)])
    pool = m.pools.pool_containing(node)
    print(f"  96B object rounded into the {pool.intrlv}B pool "
          f"on bank {m.bank_of(node)} (A[0] is on bank {a.bank_of_one(0)})")
    print(f"  IOT entries installed: {len(m.iot)} "
          f"(one per touched pool, Table 1)")
    va = a.vaddr
    alloc.free_aff(a)
    b = alloc.malloc_affine(AffineArray(4, 4096), name="B")
    print(f"  freed A and reallocated B at the same address: {b.vaddr == va}")


def main():
    inter_array()
    intra_array()
    partition_and_queue()
    policies()
    pools_and_free()
    print()


if __name__ == "__main__":
    main()
