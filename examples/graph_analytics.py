#!/usr/bin/env python
"""Graph analytics with the co-designed Linked CSR (paper §5.3, Fig 11).

Builds the Table 3 Kronecker graph, runs push-based PageRank and BFS
under all three engine configurations, and shows why the Linked CSR +
spatially distributed queue wins: indirect updates land on the bank that
already holds the data.

Run:  python examples/graph_analytics.py [scale]
"""

import sys

import numpy as np

from repro import AffineArray, AffinityAllocator, Machine
from repro.datastructs import LinkedCSR
from repro.nsc import EngineMode
from repro.workloads import run_workload
from repro.workloads.graph_kernels import default_graph


def inspect_linked_csr(scale: float):
    """Show the placement the allocator chose for the edge nodes."""
    g = default_graph(scale, seed=0)
    machine = Machine()
    alloc = AffinityAllocator(machine)
    props = alloc.malloc_affine(AffineArray(8, g.num_vertices, partition=True),
                                name="vertex-props")
    lcsr = LinkedCSR.build(machine, g, allocator=alloc, target=props)

    edge_banks = lcsr.edge_view().all_banks()
    dst_banks = props.banks(g.edges.astype(np.int64))
    hops = machine.mesh.hops(edge_banks, dst_banks)
    print(f"graph: |V|={g.num_vertices:,} |E|={g.num_edges:,} "
          f"(avg degree {g.avg_degree:.1f})")
    print(f"linked CSR: {lcsr.num_nodes:,} nodes, "
          f"{lcsr.mean_edges_per_node():.1f} edges/node")
    print(f"edge -> updated-vertex distance: mean {hops.mean():.2f} hops, "
          f"{(hops == 0).mean():.0%} fully colocated")
    print(f"allocator stats: {alloc.stats}\n")
    return g


def compare_engines(g):
    print(f"{'workload':8s} {'config':10s} {'cycles':>14s} "
          f"{'NoC flit-hops':>14s} {'L3 miss':>8s}")
    for wl in ("pr_push", "bfs"):
        graph = g
        if wl == "bfs":
            from repro.graphs.csr import CSRGraph
            graph = CSRGraph.from_edge_list(g.num_vertices, g.sources(),
                                            g.edges, symmetrize=True)
        base = None
        for mode in EngineMode:
            r = run_workload(wl, mode, graph=graph)
            base = base or r
            print(f"{wl:8s} {mode.value:10s} {r.cycles:>14,.0f} "
                  f"{r.total_flit_hops:>14,.0f} {r.l3_miss_pct:>7.1f}%")
        print()


def main():
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.12
    g = inspect_linked_csr(scale)
    compare_engines(g)


if __name__ == "__main__":
    main()
