"""Per-(interleaving, bank) slot free lists for irregular allocation.

Paper §5.1: "The runtime also maintains a free list for every valid
interleaving size and every bank. ... the runtime allocates from the free
list of that bank, and may require the OS to expand the specific pool if
running out of space."  Because a pool's slot ``i`` sits on bank
``i mod num_banks``, one contiguous pool expansion of
``num_banks * k`` slots refills every bank's free list with ``k`` slots.

Unlike conventional allocators, no per-object metadata is kept: an
object's interleaving (= size class) is inferred from the pool its address
falls in (paper §5.1 "Free Data").
"""

from __future__ import annotations

from typing import List, Set

import numpy as np

from repro.vm.pools import PoolManager

__all__ = ["SlotPool"]


class SlotPool:
    """Slot allocator for one interleaving size."""

    def __init__(self, pools: PoolManager, intrlv: int,
                 slots_per_bank_per_expand: int = 64):
        if slots_per_bank_per_expand <= 0:
            raise ValueError("slots_per_bank_per_expand must be positive")
        self.pools = pools
        self.intrlv = intrlv
        self.pool = pools.pool(intrlv)
        self.num_banks = pools.num_banks
        self.slots_per_bank_per_expand = slots_per_bank_per_expand
        self._free: List[List[int]] = [[] for _ in range(self.num_banks)]
        self.live = 0
        # Lifetime tracking for the afflint lifetime checker: which slot
        # vaddrs are currently handed out, and which were handed out once
        # and returned (distinguishes double-free from bogus-address free).
        self._live: Set[int] = set()
        self._released: Set[int] = set()

    # ------------------------------------------------------------------
    def alloc_on_bank(self, bank: int) -> int:
        """Pop one slot that maps to ``bank``; expands the pool if dry."""
        if not (0 <= bank < self.num_banks):
            raise ValueError(f"bank {bank} out of range")
        if not self._free[bank]:
            self._expand()
        self.live += 1
        vaddr = self._free[bank].pop()
        self._live.add(vaddr)
        self._released.discard(vaddr)
        return vaddr

    def alloc_many_on_banks(self, banks: np.ndarray) -> np.ndarray:
        """Pop one slot per entry of ``banks`` (batched ``alloc_on_bank``).

        Returns the slot vaddrs in the same order as ``banks``.
        """
        banks = np.asarray(banks, dtype=np.int64)
        out = np.empty(banks.size, dtype=np.int64)
        need = np.bincount(banks, minlength=self.num_banks)
        while any(need[b] > len(self._free[b]) for b in range(self.num_banks)):
            self._expand()
        order = np.argsort(banks, kind="stable")
        sorted_banks = banks[order]
        # Hand out slots bank by bank, preserving request order.
        boundaries = np.searchsorted(sorted_banks, np.arange(self.num_banks + 1))
        for b in range(self.num_banks):
            lo, hi = int(boundaries[b]), int(boundaries[b + 1])
            count = hi - lo
            if count == 0:
                continue
            # Batched LIFO pop: slice the stack tail in pop() order
            # (last element first) instead of `count` .pop() calls.
            free = self._free[b]
            slots = free[-count:][::-1]
            del free[-count:]
            out[order[lo:hi]] = slots
            self._live.update(slots)
            self._released.difference_update(slots)
        self.live += int(banks.size)
        return out

    def free_slot(self, vaddr: int) -> None:
        """Return a slot to its bank's free list."""
        if not self.pool.contains(vaddr):
            raise ValueError(f"{vaddr:#x} is not in the {self.intrlv}B pool")
        if (vaddr - self.pool.vbase) % self.intrlv:
            raise ValueError(f"{vaddr:#x} is not slot-aligned in the {self.intrlv}B pool")
        bank = int(self.pool.bank_of(vaddr))
        self._free[bank].append(vaddr)
        self._live.discard(vaddr)
        self._released.add(vaddr)
        self.live -= 1

    def slot_state(self, vaddr: int) -> str:
        """Lifetime state of a slot vaddr: ``live``, ``freed``, or ``invalid``.

        ``freed`` means the slot was allocated at some point and has been
        returned; ``invalid`` means this pool never handed it out.
        """
        if vaddr in self._live:
            return "live"
        if vaddr in self._released:
            return "freed"
        return "invalid"

    def bank_of(self, vaddr: int) -> int:
        return int(self.pool.bank_of(vaddr))

    def _expand(self) -> None:
        nbytes = self.num_banks * self.intrlv * self.slots_per_bank_per_expand
        rng = self.pools.expand(self.intrlv, nbytes)
        nslots = rng.size // self.intrlv
        vaddrs = rng.start + np.arange(nslots, dtype=np.int64) * self.intrlv
        banks = self.pool.bank_of(vaddrs)
        # Group by bank with one stable sort; within a bank the slots
        # keep ascending-vaddr order, exactly like the old per-slot
        # append loop.
        order = np.argsort(banks, kind="stable")
        bounds = np.searchsorted(banks[order], np.arange(self.num_banks + 1))
        grouped = vaddrs[order].tolist()
        for b in range(self.num_banks):
            lo, hi = int(bounds[b]), int(bounds[b + 1])
            if hi > lo:
                self._free[b].extend(grouped[lo:hi])

    def free_count(self, bank: int) -> int:
        return len(self._free[bank])
