"""The affinity-alloc runtime facade (paper §3.3, §4.2, §5.1).

:class:`AffinityAllocator` is what an application links against.  It
exposes the two ``malloc_aff`` overloads of the paper:

* ``malloc_affine(AffineArray(...))`` — affine arrays with alignment
  constraints (Fig 8), returning an :class:`~repro.core.api.ArrayHandle`;
* ``malloc_irregular(size, aff_addrs)`` — irregular objects placed near a
  list of affinity addresses (Fig 10), returning a virtual address;

and a single ``free_aff`` that distinguishes affine arrays (recorded
metadata) from irregular objects (no metadata — interleaving inferred
from the owning pool, exactly as §5.1 describes).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.analysis.diagnostics import (
    AffinityCountError,
    AllocationSizeError,
    Diagnostic,
    DoubleFreeError,
    LayoutError,
    OversizeError,
    PoolExhaustedError,
    Severity,
    Site,
    UnknownAddressError,
)
from repro.faults.plan import FaultKind
from repro.analysis.lifetime import AllocEvent
from repro.core.affine import AffineLayout, LayoutKind, PoolSpace, solve_affine_layout
from repro.core.api import AffineArray, ArrayHandle, alloc_plain_array
from repro.core.irregular import SlotPool
from repro.core.load import LoadTracker
from repro.core.policy import BankSelectPolicy, HybridPolicy
from repro.machine import Machine
from repro.perf import kernels as _kernels

__all__ = ["AffinityAllocator", "AllocStats"]


def _affinity_hop_sums(alloc_ids: np.ndarray, banks: np.ndarray,
                       dist: np.ndarray, n: int) -> np.ndarray:
    """Summed hop distance from every candidate bank to each allocation's
    affinity banks: ``out[i, b] = sum(dist[b, banks[j]] for j where
    alloc_ids[j] == i)``.

    Distances and occurrence counts are exact small integers, so folding
    the per-entry row scatter (formerly an ``np.add.at``, the hottest
    call in Linked-CSR builds) into a bank-occurrence histogram times the
    distance matrix is bit-exact and orders of magnitude faster.
    """
    nb = dist.shape[0]
    # Weighted bincount emits float64 directly: each hit adds exactly
    # 1.0, so the histogram carries the same small integers the int64
    # variant would — minus the full-size astype copy before the matmul.
    occ = np.bincount(alloc_ids * nb + banks,
                      weights=np.ones(alloc_ids.size), minlength=n * nb)
    return occ.reshape(n, nb) @ dist.T.astype(np.float64)


@dataclass
class AllocStats:
    """Observability counters for the runtime."""

    affine_allocs: int = 0
    irregular_allocs: int = 0
    paged_allocs: int = 0
    fallbacks: int = 0
    degraded_allocs: int = 0       # served from a non-preferred pool
    injected_alloc_faults: int = 0  # ALLOC_FAIL events that fired
    padded: int = 0
    frees: int = 0
    heap_frees: int = 0
    reallocs: int = 0
    double_frees: int = 0
    unknown_frees: int = 0


@dataclass
class _AffineRecord:
    handle: ArrayHandle
    layout: AffineLayout
    start_slot: int = -1
    nslots: int = 0
    frames: List[int] = field(default_factory=list)  # pool slot vaddrs (paged)


class AffinityAllocator:
    """Affinity-aware allocation runtime for one machine/process."""

    def __init__(self, machine: Machine, policy: Optional[BankSelectPolicy] = None,
                 strict: bool = False, record_events: bool = False):
        """Args:
            machine: the simulated chip/process facade.
            policy: bank-selection policy for irregular allocations.
            strict: raise :class:`DoubleFreeError` /
                :class:`UnknownAddressError` on bad ``free_aff`` calls
                instead of only diagnosing them (warn is the default).
            record_events: keep an :class:`AllocEvent` trace in
                ``self.events`` for the afflint lifetime checker.
        """
        self.machine = machine
        self.pools = machine.pools
        self.mesh = machine.mesh
        self.policy = policy if policy is not None else HybridPolicy(5.0)
        self.load = LoadTracker(machine.num_banks)
        self.stats = AllocStats()
        self.strict = strict
        self.diagnostics: List[Diagnostic] = []
        self.events: Optional[List[AllocEvent]] = [] if record_events else None
        self._affine_spaces: Dict[int, PoolSpace] = {}
        self._slot_pools: Dict[int, SlotPool] = {}
        self._records: Dict[int, _AffineRecord] = {}
        self._freed_affine: set = set()

    # ------------------------------------------------------------------
    # Lifetime bookkeeping
    # ------------------------------------------------------------------
    def _note_event(self, op: str, vaddr: int, size: int = 0,
                    label: str = "") -> None:
        if self.events is not None:
            self.events.append(AllocEvent(op, vaddr, size, label))

    def record_use(self, vaddr: int, label: str = "") -> None:
        """Mark an address as referenced (for use-after-free checking)."""
        self._note_event("use", vaddr, label=label)

    def _trace_alloc(self, event: str, **args) -> None:
        """Emit one allocation instant to an attached tracer (no-op —
        one attribute load — on the untraced path)."""
        tracer = self.machine.tracer
        if tracer is not None:
            tracer.instant(event, "alloc", args)

    def _bad_free(self, code: str, vaddr: int, message: str, hint: str) -> None:
        severity = Severity.ERROR if self.strict else Severity.WARNING
        self.diagnostics.append(Diagnostic(
            code, severity, Site("alloc", f"{vaddr:#x}"), message,
            fix_hint=hint))
        if code == "LIF001":
            self.stats.double_frees += 1
            if self.strict:
                raise DoubleFreeError(message)
        else:
            self.stats.unknown_frees += 1
            if self.strict:
                raise UnknownAddressError(message)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _space(self, intrlv: int) -> PoolSpace:
        if intrlv not in self._affine_spaces:
            self._affine_spaces[intrlv] = PoolSpace(self.pools, intrlv)
        return self._affine_spaces[intrlv]

    def _slot_pool(self, intrlv: int) -> SlotPool:
        if intrlv not in self._slot_pools:
            self._slot_pools[intrlv] = SlotPool(self.pools, intrlv)
        return self._slot_pools[intrlv]

    # ------------------------------------------------------------------
    # Affine path
    # ------------------------------------------------------------------
    def malloc_affine(self, spec: AffineArray, name: str = "") -> ArrayHandle:
        """Allocate an affine array per its alignment constraints (Fig 8)."""
        st = self.machine.faults
        if st is not None:
            ordinal = st.take_alloc_fault()
            if ordinal is not None:
                return self._affine_alloc_fault(spec, name, ordinal)
        layout = solve_affine_layout(spec, self.pools, self.mesh,
                                     self.machine.config.cache.line_bytes,
                                     self.machine.config.page_size)
        if layout.stride != spec.elem_size:
            self.stats.padded += 1
        if layout.kind is LayoutKind.FALLBACK:
            self.stats.fallbacks += 1
            handle = alloc_plain_array(self.machine, spec.elem_size,
                                       spec.num_elem, name=name)
            handle.layout = layout
            self._records[handle.vaddr] = _AffineRecord(handle, layout)
        else:
            try:
                if layout.kind is LayoutKind.POOL:
                    handle = self._alloc_pool(spec, layout, name)
                else:
                    handle = self._alloc_paged(spec, layout, name)
            except PoolExhaustedError:
                handle = self._affine_degraded(spec, layout, name)
            self.stats.affine_allocs += 1
        self._freed_affine.discard(handle.vaddr)
        self._note_event("alloc", handle.vaddr, handle.size_bytes, name)
        self._trace_alloc("malloc_affine", name=name,
                          kind=handle.layout.kind.value if handle.layout else "",
                          bytes=int(handle.size_bytes))
        return handle

    def _affine_alloc_fault(self, spec: AffineArray, name: str,
                            ordinal: int) -> ArrayHandle:
        """An armed ALLOC_FAIL ordinal fired: degrade to the baseline
        heap, exactly what a failed ``malloc_aff`` falls back to."""
        layout = AffineLayout(LayoutKind.FALLBACK, 0, 0, spec.elem_size,
                              reason="injected allocation failure",
                              code="alloc-fault")
        self.stats.fallbacks += 1
        self.stats.injected_alloc_faults += 1
        handle = alloc_plain_array(self.machine, spec.elem_size,
                                   spec.num_elem, name=name)
        handle.layout = layout
        self._records[handle.vaddr] = _AffineRecord(handle, layout)
        st = self.machine.faults
        if st is not None:  # only armed sessions reach here, but guard
            st.note(
                FaultKind.ALLOC_FAIL, ordinal, "alloc-degraded",
                f"affine array {name or hex(handle.vaddr)} fell back to "
                f"the baseline heap")
        self._freed_affine.discard(handle.vaddr)
        self._note_event("alloc", handle.vaddr, handle.size_bytes, name)
        self._trace_alloc("malloc_affine", name=name, kind="fallback",
                          bytes=int(handle.size_bytes), injected_fault=True)
        return handle

    def _affine_degraded(self, spec: AffineArray, layout: AffineLayout,
                         name: str) -> ArrayHandle:
        """The chosen pool is exhausted: retry the array at every smaller
        interleave (largest first — closest to the solver's choice), then
        fall back to the baseline heap.  Smaller interleavings keep the
        array's alignment sets intact (any divisor of the solved
        interleave still satisfies Eq. 2's congruences), they just spread
        each alignment class over more banks."""
        st = self.machine.faults
        for intrlv in sorted((g for g in self.pools.interleaves
                              if g < layout.intrlv), reverse=True):
            degraded = AffineLayout(
                LayoutKind.POOL, intrlv, layout.start_bank, layout.stride,
                reason=f"degraded from {layout.intrlv}B after pool "
                       f"exhaustion", code="pool-degraded")
            try:
                handle = self._alloc_pool(spec, degraded, name)
            except PoolExhaustedError:
                continue
            self.stats.degraded_allocs += 1
            if st is not None:
                st.note(FaultKind.POOL_EXHAUST, layout.intrlv,
                        "pool-fallback",
                        f"affine array {name or '?'} re-laid at "
                        f"{intrlv}B interleave")
            return handle
        fallback = AffineLayout(LayoutKind.FALLBACK, 0, 0, spec.elem_size,
                                reason="every interleave pool exhausted",
                                code="pool-degraded")
        self.stats.fallbacks += 1
        handle = alloc_plain_array(self.machine, spec.elem_size,
                                   spec.num_elem, name=name)
        handle.layout = fallback
        self._records[handle.vaddr] = _AffineRecord(handle, fallback)
        if st is not None:
            st.note(FaultKind.POOL_EXHAUST, layout.intrlv, "heap-fallback",
                    f"affine array {name or '?'} fell back to the "
                    f"baseline heap")
        return handle

    def _alloc_pool(self, spec: AffineArray, layout: AffineLayout,
                    name: str) -> ArrayHandle:
        size = (spec.num_elem - 1) * layout.stride + spec.elem_size
        nslots = -(-size // layout.intrlv)
        space = self._space(layout.intrlv)
        start_slot = space.alloc(nslots, layout.start_bank)
        vaddr = space.slot_vaddr(start_slot)
        handle = ArrayHandle(self.machine, vaddr, spec.elem_size,
                             spec.num_elem, stride=layout.stride,
                             name=name, layout=layout)
        paddr = self.machine.space.translate_one(vaddr)
        self.machine.llc.register_range(paddr, size)
        self._records[vaddr] = _AffineRecord(handle, layout, start_slot, nslots)
        return handle

    def _alloc_paged(self, spec: AffineArray, layout: AffineLayout,
                     name: str) -> ArrayHandle:
        """Beyond-page interleavings: virtual pages mapped to 4 KiB-pool
        frames on the desired bank (paper §4.1 footnote 4)."""
        page = self.machine.config.page_size
        chunk = layout.intrlv
        assert chunk % page == 0
        size = (spec.num_elem - 1) * layout.stride + spec.elem_size
        nchunks = -(-size // chunk)
        vaddr = self.machine.paged_reserve(nchunks * chunk)
        frame_pool = self._slot_pool(page)
        frames: List[int] = []
        pages_per_chunk = chunk // page
        for j in range(nchunks):
            bank = (layout.start_bank + j) % self.machine.num_banks
            for k in range(pages_per_chunk):
                frame_va = frame_pool.alloc_on_bank(bank)
                frame_pa = self.machine.space.translate_one(frame_va)
                self.machine.paged_map(vaddr + (j * pages_per_chunk + k) * page,
                                       frame_pa)
                self.machine.llc.register_range(frame_pa, page)
                frames.append(frame_va)
        handle = ArrayHandle(self.machine, vaddr, spec.elem_size,
                             spec.num_elem, stride=layout.stride,
                             name=name, layout=layout)
        self._records[vaddr] = _AffineRecord(handle, layout, frames=frames)
        self.stats.paged_allocs += 1
        return handle

    def malloc_offset(self, ref: ArrayHandle, delta: int,
                      name: str = "") -> ArrayHandle:
        """Allocate an array shaped like ``ref`` whose element-0 bank is
        ``ref``'s start bank plus ``delta`` banks.

        The Fig 4 "Δ Bank" control, promoted to a first-class primitive:
        the relayout scenarios use it to construct *deliberately* drifted
        placements that the online engine must detect and repair.  The
        clone shares ``ref``'s pool interleave and stride, so a ``delta``
        of zero is exactly an ``align_to=ref`` allocation.
        """
        assert ref.layout is not None
        nb = self.machine.num_banks
        layout = ref.layout
        if layout.kind is not LayoutKind.POOL:
            raise LayoutError("malloc_offset needs a pool-backed reference")
        want = (layout.start_bank + delta) % nb
        space = self._space(layout.intrlv)
        size = (ref.num_elem - 1) * ref.stride + ref.elem_size
        nslots = -(-size // layout.intrlv)
        slot = space.alloc(nslots, want)
        vaddr = space.slot_vaddr(slot)
        new_layout = AffineLayout(LayoutKind.POOL, layout.intrlv, want,
                                  ref.stride, f"delta-bank {delta}")
        handle = ArrayHandle(self.machine, vaddr, ref.elem_size,
                             ref.num_elem, stride=ref.stride, name=name,
                             layout=new_layout)
        paddr = self.machine.space.translate_one(vaddr)
        self.machine.llc.register_range(paddr, size)
        self._records[vaddr] = _AffineRecord(handle, new_layout, slot, nslots)
        self._freed_affine.discard(vaddr)
        self._note_event("alloc", vaddr, handle.size_bytes, name)
        self._trace_alloc("malloc_offset", name=name, delta=int(delta),
                          bytes=int(handle.size_bytes))
        return handle

    # ------------------------------------------------------------------
    # Irregular path
    # ------------------------------------------------------------------
    MAX_AFF_ADDRS = 32  # paper §5.1

    def malloc_irregular(self, size: int,
                         aff_addrs: Sequence[int] = ()) -> int:
        """Allocate ``size`` bytes near the given affinity addresses (Fig 10).

        Returns the object's virtual address.  The size is rounded up to a
        valid interleaving; the bank is chosen by the configured policy.
        """
        if size <= 0:
            raise AllocationSizeError("size must be positive")
        if len(aff_addrs) > self.MAX_AFF_ADDRS:
            raise AffinityCountError(
                f"at most {self.MAX_AFF_ADDRS} affinity addresses; "
                "sample a subset (paper §5.1)")
        intrlv = self.pools.round_to_valid_interleave(size)
        if intrlv is None:
            raise OversizeError(
                f"irregular allocation of {size}B exceeds the largest "
                f"interleaving ({self.pools.interleaves[-1]}B); "
                "use an affine allocation instead")
        st = self.machine.faults
        if st is not None:
            ordinal = st.take_alloc_fault()
            if ordinal is not None:
                vaddr = self.machine.malloc(intrlv)
                self.stats.fallbacks += 1
                self.stats.injected_alloc_faults += 1
                st.note(FaultKind.ALLOC_FAIL, ordinal, "alloc-degraded",
                        "irregular allocation degraded to the baseline "
                        "heap")
                self._note_event("alloc", vaddr, intrlv, "irregular")
                return vaddr
        if aff_addrs:
            aff_banks = self.machine.banks_of(np.asarray(list(aff_addrs), dtype=np.int64))
        else:
            aff_banks = np.empty(0, dtype=np.int64)
        mask = st.policy_mask() if st is not None else None
        if mask is not None:
            bank = self.policy.select(aff_banks, self.load, self.mesh,
                                      mask=mask)
        else:
            bank = self.policy.select(aff_banks, self.load, self.mesh)
        try:
            vaddr = self._slot_pool(intrlv).alloc_on_bank(bank)
        except PoolExhaustedError:
            return self._irregular_degraded(intrlv, bank)
        self.load.record(bank)
        paddr = self.machine.space.translate_one(vaddr)
        self.machine.llc.register_range(paddr, intrlv)
        self.stats.irregular_allocs += 1
        self._note_event("alloc", vaddr, intrlv, "irregular")
        self._trace_alloc("malloc_irregular", bytes=int(intrlv),
                          bank=int(bank))
        return vaddr

    def _irregular_degraded(self, intrlv: int, bank: int) -> int:
        """The chosen pool is exhausted: irregular objects fit in any
        slot >= their size, so retry the same bank in every *larger*
        pool (wasting slack, never breaking Eq. 1), then degrade to the
        baseline heap."""
        st = self.machine.faults
        for g in (g for g in self.pools.interleaves if g > intrlv):
            try:
                vaddr = self._slot_pool(g).alloc_on_bank(bank)
            except PoolExhaustedError:
                continue
            self.load.record(bank)
            paddr = self.machine.space.translate_one(vaddr)
            self.machine.llc.register_range(paddr, g)
            self.stats.irregular_allocs += 1
            self.stats.degraded_allocs += 1
            if st is not None:
                st.note(FaultKind.POOL_EXHAUST, intrlv, "pool-fallback",
                        f"irregular slot served from the {g}B pool")
            self._note_event("alloc", vaddr, g, "irregular")
            return vaddr
        vaddr = self.machine.malloc(intrlv)
        self.stats.fallbacks += 1
        if st is not None:
            st.note(FaultKind.POOL_EXHAUST, intrlv, "heap-fallback",
                    "irregular allocation degraded to the baseline heap")
        self._note_event("alloc", vaddr, intrlv, "irregular")
        return vaddr

    def malloc_irregular_batch(self, size: int, aff_addrs: np.ndarray,
                               alloc_ids: np.ndarray, n: int) -> np.ndarray:
        """Batched :meth:`malloc_irregular` for data-structure builders.

        Semantically identical to ``n`` back-to-back calls (the policy
        sees each allocation's affinity and the evolving load), but
        vectorized so building a 300k-node Linked CSR stays fast.

        Args:
            size: allocation size (same for the whole batch).
            aff_addrs: flat array of affinity addresses for all
                allocations.
            alloc_ids: which allocation (``0..n-1``) each entry of
                ``aff_addrs`` belongs to.
            n: number of allocations.

        Returns the ``n`` virtual addresses in allocation order.
        """
        if size <= 0 or n <= 0:
            raise AllocationSizeError("size and n must be positive")
        intrlv = self.pools.round_to_valid_interleave(size)
        if intrlv is None:
            raise OversizeError(f"irregular allocation of {size}B exceeds "
                                "the largest interleaving")
        nb = self.machine.num_banks
        aff_addrs = np.asarray(aff_addrs, dtype=np.int64)
        alloc_ids = np.asarray(alloc_ids, dtype=np.int64)
        mean_hops = np.zeros((n, nb), dtype=np.float64)
        if aff_addrs.size:
            banks = self.machine.banks_of(aff_addrs)
            dist = self.mesh.hops_table()  # (bank, bank) hops, memoized
            mean_hops = _affinity_hop_sums(alloc_ids, banks, dist, n)
            counts = np.bincount(alloc_ids, minlength=n).astype(np.float64)
            counts[counts == 0] = 1.0
            mean_hops /= counts[:, None]
        mask = self._fault_mask()
        if mask is not None:
            chosen = self.policy.select_batch(mean_hops, self.load,
                                              self.mesh, mask=mask)
        else:
            chosen = self.policy.select_batch(mean_hops, self.load, self.mesh)
        try:
            vaddrs = self._slot_pool(intrlv).alloc_many_on_banks(chosen)
        except PoolExhaustedError:
            vaddrs = self._slots_degraded(intrlv, chosen)
        else:
            self.machine.llc.register_by_banks(chosen, float(intrlv))
        self.stats.irregular_allocs += n
        if self.events is not None:
            for va in vaddrs.tolist():
                self._note_event("alloc", va, intrlv, "irregular")
        self._trace_alloc("malloc_irregular_batch", n=int(n),
                          bytes=int(intrlv))
        return vaddrs

    def _fault_mask(self) -> Optional[np.ndarray]:
        st = self.machine.faults
        return st.policy_mask() if st is not None else None

    def _slots_degraded(self, intrlv: int, chosen: np.ndarray) -> np.ndarray:
        """Batch pool exhausted: serve each slot from the chosen bank in
        the exact pool, then every larger pool, then the baseline heap
        (mirrors :meth:`_irregular_degraded`, one object at a time)."""
        st = self.machine.faults
        pools_to_try = [g for g in self.pools.interleaves if g >= intrlv]
        out = np.empty(chosen.size, dtype=np.int64)
        pool_fb = heap_fb = 0
        for i, bank in enumerate(np.asarray(chosen, dtype=np.int64).tolist()):
            vaddr = None
            for g in pools_to_try:
                try:
                    vaddr = self._slot_pool(g).alloc_on_bank(bank)
                except PoolExhaustedError:
                    continue
                self.machine.llc.register_by_banks(
                    np.asarray([bank], dtype=np.int64), float(g))
                if g != intrlv:
                    pool_fb += 1
                break
            if vaddr is None:
                vaddr = self.machine.malloc(intrlv)
                self.load.remove(bank)  # select_batch charged this bank
                heap_fb += 1
            out[i] = vaddr
        if pool_fb:
            self.stats.degraded_allocs += pool_fb
            if st is not None:
                st.note(FaultKind.POOL_EXHAUST, intrlv, "pool-fallback",
                        f"{pool_fb} irregular slot(s) served from larger "
                        f"pools")
        if heap_fb:
            self.stats.fallbacks += heap_fb
            if st is not None:
                st.note(FaultKind.POOL_EXHAUST, intrlv, "heap-fallback",
                        f"{heap_fb} irregular slot(s) degraded to the "
                        f"baseline heap")
        return out

    def malloc_irregular_chained(self, size: int, prev_ids: np.ndarray,
                                 head_addrs: Optional[np.ndarray] = None) -> np.ndarray:
        """Batched irregular allocation where each object's affinity is a
        *previously allocated object of the same batch* (linked-list
        appends, tree inserts: ``malloc_aff(sizeof(Node), 1, &prev)``).

        Args:
            size: allocation size (uniform).
            prev_ids: for allocation ``i``, the batch index of its affinity
                predecessor (< i), or -1 for a chain head.
            head_addrs: optional per-allocation affinity address used when
                ``prev_ids[i] == -1`` (e.g. a hash-bucket head); entries
                for non-heads are ignored; pass -1 for "no affinity".

        Returns the virtual addresses in allocation order.
        """
        prev_ids = np.asarray(prev_ids, dtype=np.int64)
        n = prev_ids.size
        if n == 0:
            return np.empty(0, dtype=np.int64)
        if np.any(prev_ids >= np.arange(n)):
            raise ValueError("prev_ids must reference earlier allocations")
        intrlv = self.pools.round_to_valid_interleave(size)
        if intrlv is None:
            raise OversizeError(f"irregular allocation of {size}B exceeds "
                                "the largest interleaving")
        nb = self.machine.num_banks
        head_banks = np.full(n, -1, dtype=np.int64)
        if head_addrs is not None:
            head_addrs = np.asarray(head_addrs, dtype=np.int64)
            valid = (prev_ids == -1) & (head_addrs >= 0)
            if valid.any():
                head_banks[valid] = self.machine.banks_of(head_addrs[valid])

        mask = self._fault_mask()
        if isinstance(self.policy, HybridPolicy):
            chosen = self._chained_hybrid(prev_ids, head_banks, n, nb,
                                          mask=mask)
        elif mask is not None:
            chosen = self.policy.select_batch(np.zeros((n, nb)), self.load,
                                              self.mesh, mask=mask)
        else:
            # Affinity-oblivious policies ignore the chain structure.
            chosen = self.policy.select_batch(np.zeros((n, nb)), self.load,
                                              self.mesh)
        try:
            vaddrs = self._slot_pool(intrlv).alloc_many_on_banks(chosen)
        except PoolExhaustedError:
            vaddrs = self._slots_degraded(intrlv, chosen)
        else:
            self.machine.llc.register_by_banks(chosen, float(intrlv))
        self.stats.irregular_allocs += n
        if self.events is not None:
            for va in vaddrs.tolist():
                self._note_event("alloc", va, intrlv, "irregular")
        self._trace_alloc("malloc_irregular_chained", n=int(n),
                          bytes=int(intrlv))
        return vaddrs

    def _chained_hybrid(self, prev_ids: np.ndarray, head_banks: np.ndarray,
                        n: int, nb: int,
                        mask: Optional[np.ndarray] = None) -> np.ndarray:
        """Sequential Eq. 4 selection where affinity banks come from the
        batch's own earlier choices.

        The hop row for step ``i`` depends on in-batch choices, so this
        loop cannot be speculated like ``select_batch``; the active
        kernel backend runs the scalar body (numba-compiled when
        available) against the transposed, contiguous hop table.  The
        masked (degraded) variant folds the fault mask into an additive
        0/inf penalty row, leaving the healthy path untouched.
        """
        dist_t = self.mesh.hops_table().T.astype(np.float64)
        loads = self.load.loads  # working copy
        if mask is not None:
            BankSelectPolicy._healthy_indices(mask)  # raises if all failed
            penalty = np.where(np.asarray(mask, dtype=bool), 0.0, np.inf)
        else:
            penalty = None
        chosen = _kernels.get_backend().chained_hybrid(
            dist_t, prev_ids, head_banks, loads, self.policy.h, penalty)
        self.load.record_many(np.bincount(chosen, minlength=nb))
        return chosen

    # ------------------------------------------------------------------
    # Unified malloc_aff / free_aff (paper signatures)
    # ------------------------------------------------------------------
    def malloc_aff(self, spec_or_size: Union[AffineArray, int],
                   aff_addrs: Sequence[int] = (), name: str = ""):
        """The paper's overloaded entry point.

        * ``malloc_aff(AffineArray(...))`` -> :class:`ArrayHandle`
        * ``malloc_aff(size, aff_addrs)``  -> virtual address (int)
        """
        if isinstance(spec_or_size, AffineArray):
            if aff_addrs:
                raise LayoutError("affinity addresses apply to irregular "
                                  "allocations only")
            return self.malloc_affine(spec_or_size, name=name)
        return self.malloc_irregular(int(spec_or_size), aff_addrs)

    def free_aff(self, obj: Union[int, ArrayHandle]) -> None:
        """Free either an affine array (by handle or base address) or an
        irregular object (by address).

        The runtime distinguishes them by checking the recorded affine
        arrays first (paper §5.1 "Free Data"); irregular objects carry no
        metadata — their interleaving is inferred from the owning pool.

        A double free or a free of a never-allocated address is diagnosed
        (``LIF001`` / ``LIF004``), counted in :class:`AllocStats`, and —
        under ``strict=True`` — raised as :class:`DoubleFreeError` /
        :class:`UnknownAddressError`; it is *never* silently treated as a
        baseline-heap free.
        """
        vaddr = obj.vaddr if isinstance(obj, ArrayHandle) else int(obj)
        self._trace_alloc("free_aff", vaddr=vaddr)
        rec = self._records.pop(vaddr, None)
        if rec is not None:
            self.stats.frees += 1
            self._freed_affine.add(vaddr)
            self._free_affine(rec)
            self._note_event("free", vaddr, label=rec.handle.name)
            return
        if vaddr in self._freed_affine:
            self._note_event("free", vaddr)
            self._bad_free("LIF001", vaddr,
                           f"double free of affine array at {vaddr:#x}",
                           "drop the second free_aff")
            return
        pool = self.pools.pool_containing(vaddr)
        if pool is not None:
            sp = self._slot_pool(pool.intrlv)
            state = sp.slot_state(vaddr)
            if state == "live":
                bank = sp.bank_of(vaddr)
                sp.free_slot(vaddr)
                self.load.remove(bank)
                paddr = self.machine.space.translate_one(vaddr)
                self.machine.llc.unregister_range(paddr, pool.intrlv)
                self.stats.frees += 1
                self._note_event("free", vaddr, label="irregular")
                return
            self._note_event("free", vaddr, label="irregular")
            if state == "freed":
                self._bad_free("LIF001", vaddr,
                               f"double free of irregular object at {vaddr:#x}",
                               "drop the second free_aff")
            else:
                self._bad_free("LIF004", vaddr,
                               f"free_aff of {vaddr:#x}, which the "
                               f"{pool.intrlv}B pool never handed out",
                               "free only addresses returned by malloc_aff")
            return
        if self.machine.heap_contains(vaddr):
            # Baseline-heap object (plain malloc freed through free_aff):
            # the bump heap does not reclaim, and it tracks no lifetimes,
            # so no lifetime event is recorded either.
            self.stats.frees += 1
            self.stats.heap_frees += 1
            return
        self._note_event("free", vaddr)
        self._bad_free("LIF004", vaddr,
                       f"free_aff of {vaddr:#x}, which was never allocated",
                       "free only addresses returned by malloc_aff/malloc")

    def _free_affine(self, rec: _AffineRecord) -> None:
        layout, handle = rec.layout, rec.handle
        if layout.kind is LayoutKind.POOL:
            self._space(layout.intrlv).free(rec.start_slot, rec.nslots)
            paddr = self.machine.space.translate_one(handle.vaddr)
            self.machine.llc.unregister_range(paddr, handle.size_bytes)
        elif layout.kind is LayoutKind.PAGED:
            page = self.machine.config.page_size
            frame_pool = self._slot_pool(page)
            for frame_va in rec.frames:
                frame_pa = self.machine.space.translate_one(frame_va)
                self.machine.llc.unregister_range(frame_pa, page)
                frame_pool.free_slot(frame_va)
        # FALLBACK: bump heap, nothing to reclaim.

    def realloc_aff(self, vaddr: int, aff_addrs: Sequence[int] = ()) -> int:
        """Re-place an irregular object whose affinity changed (paper §8,
        "Dynamic Data Structures": if the runtime is aware of the data
        structure modification, the layout could be dynamically adjusted).

        Frees the object and allocates the same size class near the new
        affinity addresses; returns the new virtual address.  The caller
        owns updating its pointers (as with C ``realloc``).
        """
        pool = self.pools.pool_containing(vaddr)
        if pool is None:
            raise UnknownAddressError(f"{vaddr:#x} is not an irregular allocation")
        size = pool.intrlv
        self.free_aff(vaddr)
        new = self.malloc_irregular(size, aff_addrs)
        self.stats.reallocs += 1
        self._trace_alloc("realloc_aff", old=vaddr, new=int(new),
                          bytes=int(size))
        return new

    # ------------------------------------------------------------------
    def record_of(self, vaddr: int) -> Optional[_AffineRecord]:
        return self._records.get(vaddr)

    def live_irregular(self) -> float:
        return self.load.total
