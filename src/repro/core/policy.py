"""Bank-select policies for irregular allocation (paper §5.2, Fig 13).

The hybrid policy scores every candidate bank by Eq. 4::

    score = avg_hops + H * (load / avg_load - 1)

where ``avg_hops`` is the mean Manhattan distance from the candidate to
the banks of the provided affinity addresses, ``load`` is the bank's live
irregular-allocation count, and ``H`` weights load balance against
affinity.  The bank with the minimum score wins (lowest id on ties, so
behaviour is deterministic and testable).

* ``Rnd``     — uniform random bank (affinity-oblivious).
* ``Lnr``     — round-robin (affinity-oblivious).
* ``Min-Hop`` — Eq. 4 with H = 0 (affinity only; Fig 13 shows its
  pathological single-bank layouts).
* ``Hybrid-H``— Eq. 4 with the given H (Hybrid-5 is the paper's default).
"""

from __future__ import annotations

import abc
from typing import Optional, Sequence

import numpy as np

from repro.analysis.diagnostics import NoHealthyBankError
from repro.arch.mesh import Mesh
from repro.core.load import LoadTracker
from repro.perf import kernels as _kernels

__all__ = [
    "BankSelectPolicy",
    "RandomPolicy",
    "LinearPolicy",
    "MinHopPolicy",
    "HybridPolicy",
    "policy_by_name",
]


class BankSelectPolicy(abc.ABC):
    """Chooses the bank for one irregular allocation."""

    name: str = "abstract"

    @abc.abstractmethod
    def select(self, aff_banks: np.ndarray, load: LoadTracker, mesh: Mesh,
               mask: Optional[np.ndarray] = None) -> int:
        """Pick a bank.

        Args:
            aff_banks: banks of the caller-provided affinity addresses
                (possibly empty).
            load: current per-bank irregular allocation counts.
            mesh: topology, for hop distances.
            mask: optional boolean healthy-bank vector (chaos fault
                injection); ``False`` banks are failed and must never be
                chosen.  ``None`` (the healthy default) takes the exact
                original scoring path.  Raises
                :class:`NoHealthyBankError` when every bank is masked.
        """

    def reset(self) -> None:
        """Clear any per-run state (RNG position, round-robin counter)."""

    def select_batch(self, mean_hops: np.ndarray, load: LoadTracker,
                     mesh: Mesh, mask: Optional[np.ndarray] = None) -> np.ndarray:
        """Pick banks for ``n`` allocations issued back to back.

        Args:
            mean_hops: ``(n, num_banks)`` matrix — row ``i`` holds the mean
                hop distance from every candidate bank to allocation ``i``'s
                affinity addresses (zeros when it has none).
            load: the live tracker; implementations must update it as they
                assign, since each choice shifts the balance term for the
                next one.
            mask: optional boolean healthy-bank vector; see :meth:`select`.
        """
        raise NotImplementedError

    @staticmethod
    def _healthy_indices(mask: np.ndarray) -> np.ndarray:
        allowed = np.flatnonzero(mask)
        if allowed.size == 0:
            raise NoHealthyBankError("every candidate bank is failed/masked")
        return allowed


class RandomPolicy(BankSelectPolicy):
    name = "Rnd"

    def __init__(self, seed: int = 0):
        self._seed = seed
        self._rng = np.random.default_rng(seed)

    def select(self, aff_banks, load, mesh, mask=None) -> int:
        if mask is not None:
            allowed = self._healthy_indices(mask)
            return int(allowed[self._rng.integers(0, allowed.size)])
        return int(self._rng.integers(0, load.num_banks))

    def select_batch(self, mean_hops, load, mesh, mask=None) -> np.ndarray:
        if mask is not None:
            allowed = self._healthy_indices(mask)
            banks = allowed[self._rng.integers(0, allowed.size,
                                               size=mean_hops.shape[0])]
        else:
            banks = self._rng.integers(0, load.num_banks, size=mean_hops.shape[0])
        load.record_many(np.bincount(banks, minlength=load.num_banks))
        return banks.astype(np.int64)

    def reset(self) -> None:
        self._rng = np.random.default_rng(self._seed)


class LinearPolicy(BankSelectPolicy):
    name = "Lnr"

    def __init__(self):
        self._next = 0

    def select(self, aff_banks, load, mesh, mask=None) -> int:
        if mask is not None:
            allowed = self._healthy_indices(mask)
            bank = int(allowed[self._next % allowed.size])
            self._next = (self._next + 1) % load.num_banks
            return bank
        bank = self._next
        self._next = (self._next + 1) % load.num_banks
        return bank

    def select_batch(self, mean_hops, load, mesh, mask=None) -> np.ndarray:
        n = mean_hops.shape[0]
        if mask is not None:
            allowed = self._healthy_indices(mask)
            banks = allowed[(self._next + np.arange(n)) % allowed.size]
        else:
            banks = (self._next + np.arange(n)) % load.num_banks
        self._next = int((self._next + n) % load.num_banks)
        load.record_many(np.bincount(banks, minlength=load.num_banks))
        return banks.astype(np.int64)

    def reset(self) -> None:
        self._next = 0


class HybridPolicy(BankSelectPolicy):
    """Eq. 4 with load weight H."""

    def __init__(self, h: float):
        if h < 0:
            raise ValueError("H must be non-negative")
        self.h = float(h)
        self.name = f"Hybrid-{h:g}" if h > 0 else "Min-Hop"

    def select(self, aff_banks, load, mesh, mask=None) -> int:
        aff_banks = np.asarray(aff_banks, dtype=np.int64)
        nb = load.num_banks
        if aff_banks.size:
            avg_hops = mesh.hops_to_all(aff_banks).mean(axis=1)
        else:
            avg_hops = np.zeros(nb)
        score = avg_hops.astype(np.float64)
        if self.h > 0:
            avg_load = load.average
            if avg_load > 0:
                score = score + self.h * (load.loads / avg_load - 1.0)
        if mask is not None:
            self._healthy_indices(mask)
            score = np.where(mask, score, np.inf)
        return int(np.argmin(score))

    def select_batch(self, mean_hops, load, mesh, mask=None) -> np.ndarray:
        """Sequential Eq. 4 over a batch, with the load updating as it goes.

        Every choice shifts the load the next choice sees, so the loop
        is irreducible — but not unoptimizable: the active kernel
        backend (:mod:`repro.perf.kernels`) runs it either as chunked
        *speculative* evaluation (python backend — exact, see DESIGN
        §12) or as a compiled scalar loop (numba backend), both
        bit-identical to the naive expression.  The masked (degraded)
        variant folds the fault mask into an additive 0/inf penalty
        row, leaving the healthy path untouched.
        """
        loads = load.loads  # private working copy
        if mask is not None:
            self._healthy_indices(mask)
            penalty = np.where(np.asarray(mask, dtype=bool), 0.0, np.inf)
        else:
            penalty = None
        out = _kernels.get_backend().hybrid_select_batch(
            mean_hops, loads, self.h, penalty)
        load.record_many(np.bincount(out, minlength=load.num_banks))
        return out


class MinHopPolicy(HybridPolicy):
    """Affinity-only policy (H = 0)."""

    name = "Min-Hop"

    def __init__(self):
        super().__init__(0.0)


def policy_by_name(name: str, seed: int = 0) -> BankSelectPolicy:
    """Construct a policy from its Fig 13 label (e.g. ``"Hybrid-5"``)."""
    if name == "Rnd":
        return RandomPolicy(seed)
    if name == "Lnr":
        return LinearPolicy()
    if name in ("Min-Hop", "Min-Hops"):
        return MinHopPolicy()
    if name.startswith("Hybrid-"):
        return HybridPolicy(float(name.split("-", 1)[1]))
    raise ValueError(f"unknown policy {name!r}")
