"""Public allocation interface (paper Fig 8(a) / Fig 10).

``AffineArray`` is the affine specification struct::

    struct AffineArray {
      int   elem_size;  // Element size (byte).
      uint  num_elem;   // Number of elements.
      void* align_to;   // Pointer to the aligned affine array.
      int   align_p, align_q, align_x;  // Alignment parameters.
      bool  partition;  // Partition the array across banks.
    };

with the affinity relationship (Eq. 2)::

    B[i]  aligns to  A[(align_p / align_q) * i + align_x]

``ArrayHandle`` is what an allocation returns: it knows the array's base
virtual address and element *stride* (>= elem_size when the runtime pads
elements to reach a legal interleaving, paper §4.2 "mitigated by padding
the array"), and answers address/bank queries for element indices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

import numpy as np

from repro.analysis.diagnostics import LayoutError
from repro.machine import Machine

__all__ = ["AffineArray", "ArrayHandle", "AddressView", "alloc_plain_array"]


@dataclass(frozen=True)
class AffineArray:
    """Affine allocation spec (paper Fig 8(a)).

    Args:
        elem_size: bytes per element.
        num_elem: number of elements.
        align_to: handle of the already-allocated array to align with, or
            ``None``.
        align_p, align_q: rational index ratio — element ``i`` of this
            array aligns to element ``(p/q) * i + x`` of ``align_to``.
        align_x: index offset; with ``align_to is None`` a nonzero
            ``align_x`` requests *intra-array* affinity between elements
            ``i`` and ``i + align_x`` (paper Fig 8(c), e.g. rows of a 2D
            array).
        partition: force an interleaving that spreads the array evenly
            across all banks (paper Fig 9).
    """

    elem_size: int
    num_elem: int
    align_to: Optional["ArrayHandle"] = None
    align_p: int = 1
    align_q: int = 1
    align_x: int = 0
    partition: bool = False

    def __post_init__(self):
        if self.elem_size <= 0:
            raise LayoutError(f"elem_size must be positive, got {self.elem_size}")
        if self.num_elem <= 0:
            raise LayoutError(f"num_elem must be positive, got {self.num_elem}")
        if self.align_p < 1 or self.align_q < 1:
            raise LayoutError("align_p and align_q must be >= 1")
        if self.align_x < 0:
            raise LayoutError("align_x must be non-negative")
        if self.align_to is not None and self.partition:
            raise LayoutError("partition and align_to are mutually exclusive; "
                              "align to the partitioned array instead")
        if self.align_to is None and self.align_x and (self.align_p != 1 or self.align_q != 1):
            # Paper footnote 5: for intra-array affinity p = q = 1,
            # otherwise the alignment is no longer affine.
            raise LayoutError("intra-array affinity requires align_p == align_q == 1")

    @property
    def total_bytes(self) -> int:
        return self.elem_size * self.num_elem


@dataclass
class ArrayHandle:
    """Addressing view of one allocated array.

    Data values are *not* stored here (workloads keep them in numpy
    arrays); the handle answers "where does element i live?" which is all
    the simulator needs.
    """

    machine: Machine
    vaddr: int
    elem_size: int
    num_elem: int
    stride: int
    name: str = ""
    layout: object = None  # AffineLayout when affinity-allocated

    def __post_init__(self):
        if self.stride < self.elem_size:
            raise ValueError("stride must be >= elem_size")

    # ------------------------------------------------------------------
    @property
    def size_bytes(self) -> int:
        """Bytes of address space the array occupies (incl. padding)."""
        return (self.num_elem - 1) * self.stride + self.elem_size

    @property
    def end_vaddr(self) -> int:
        return self.vaddr + self.size_bytes

    @property
    def is_padded(self) -> bool:
        return self.stride != self.elem_size

    # ------------------------------------------------------------------
    def addr_of(self, idx) -> np.ndarray:
        """Virtual address(es) of element index(es)."""
        idx = np.asarray(idx, dtype=np.int64)
        if idx.size and (idx.min() < 0 or idx.max() >= self.num_elem):
            raise IndexError(f"index out of range for {self.name or 'array'}"
                             f" of {self.num_elem} elements")
        return self.vaddr + idx * self.stride

    def addr_of_one(self, idx: int) -> int:
        return int(self.addr_of(np.asarray([idx]))[0])

    def banks(self, idx) -> np.ndarray:
        """Owning L3 bank of element index(es) — full HW mapping path."""
        return self.machine.banks_of(self.addr_of(idx))

    def bank_of_one(self, idx: int) -> int:
        return int(self.banks(np.asarray([idx]))[0])

    def all_banks(self) -> np.ndarray:
        return self.banks(np.arange(self.num_elem))

    def lines_of(self, idx) -> np.ndarray:
        """Cache-line ids (virtual) of element index(es)."""
        line = self.machine.config.cache.line_bytes
        return self.addr_of(idx) // line

    def __repr__(self) -> str:
        return (f"ArrayHandle({self.name or '?'}, n={self.num_elem}, "
                f"elem={self.elem_size}, stride={self.stride}, "
                f"vaddr={self.vaddr:#x})")


class AddressView:
    """Handle-like view over explicit per-element addresses.

    Used where elements do not live at a fixed stride — e.g. the edges of
    a Linked CSR graph, whose per-edge address is "its node's slot plus an
    offset".  Quacks like :class:`ArrayHandle` for the executor
    (``addr_of`` / ``banks`` / ``elem_size``).
    """

    def __init__(self, machine: Machine, addrs: np.ndarray, elem_size: int,
                 name: str = ""):
        self.machine = machine
        self._addrs = np.asarray(addrs, dtype=np.int64)
        self.elem_size = elem_size
        self.name = name

    @property
    def num_elem(self) -> int:
        return self._addrs.size

    def addr_of(self, idx) -> np.ndarray:
        return self._addrs[np.asarray(idx, dtype=np.int64)]

    def banks(self, idx) -> np.ndarray:
        return self.machine.banks_of(self.addr_of(idx))

    def all_banks(self) -> np.ndarray:
        return self.machine.banks_of(self._addrs)

    def __repr__(self) -> str:
        return f"AddressView({self.name or '?'}, n={self.num_elem})"


def alloc_plain_array(machine: Machine, elem_size: int, num_elem: int,
                      name: str = "", align: int = 64) -> ArrayHandle:
    """Baseline ``malloc`` of a dense array (no affinity information).

    This is what In-Core and Near-L3 configurations use: the array lands
    on the conventional heap and inherits whatever banks the default
    static-NUCA hash gives it.
    """
    vaddr = machine.malloc(elem_size * num_elem, align=align)
    return ArrayHandle(machine, vaddr, elem_size, num_elem, stride=elem_size,
                       name=name)
