"""Per-bank load tracking for the bank-select policy (paper §5.2).

"Load" is the number of live irregular allocations on each bank — the
quantity Eq. 4's balance term normalizes by.
"""

from __future__ import annotations

import numpy as np

__all__ = ["LoadTracker"]


class LoadTracker:
    def __init__(self, num_banks: int):
        if num_banks <= 0:
            raise ValueError("num_banks must be positive")
        self._loads = np.zeros(num_banks, dtype=np.float64)

    @property
    def num_banks(self) -> int:
        return self._loads.size

    @property
    def loads(self) -> np.ndarray:
        return self._loads.copy()

    @property
    def total(self) -> float:
        return float(self._loads.sum())

    @property
    def average(self) -> float:
        return self.total / self._loads.size

    def record(self, bank: int, weight: float = 1.0) -> None:
        self._loads[bank] += weight

    def record_many(self, counts: np.ndarray) -> None:
        """Bulk :meth:`record`: add a per-bank count vector in one op.

        Bit-identical to recording each bank's count separately — the
        per-bank adds are independent — and what the bank-select batch
        paths use to commit a whole batch's ``np.bincount`` at once.
        """
        counts = np.asarray(counts, dtype=np.float64)
        if counts.shape != self._loads.shape:
            raise ValueError(
                f"counts must have one entry per bank: got {counts.shape}, "
                f"expected {self._loads.shape}")
        self._loads += counts

    def remove(self, bank: int, weight: float = 1.0) -> None:
        self._loads[bank] -= weight
        if self._loads[bank] < -1e-9:
            raise ValueError(f"bank {bank} load went negative")
        self._loads[bank] = max(self._loads[bank], 0.0)

    def imbalance(self) -> float:
        """Max relative deviation from the mean load (0 = perfectly even)."""
        avg = self.average
        if avg <= 0:
            return 0.0
        return float(np.abs(self._loads - avg).max() / avg)
