"""Affinity alloc: the paper's contribution.

* :mod:`repro.core.api` — the declarative allocation interface
  (``AffineArray`` spec, array handles).
* :mod:`repro.core.affine` — affine layout solving (Eq. 2/3), pool-slot
  and paged-chunk placement.
* :mod:`repro.core.irregular` — per-(interleave, bank) free lists for
  irregular allocations.
* :mod:`repro.core.policy` — bank-select policies (Rnd / Lnr / Min-Hop /
  Hybrid-H, Eq. 4).
* :mod:`repro.core.runtime` — the :class:`AffinityAllocator` facade that
  applications call (``malloc_aff`` / ``free_aff``).
"""

from repro.core.api import AffineArray, ArrayHandle, alloc_plain_array
from repro.core.affine import AffineLayout, LayoutKind, solve_affine_layout
from repro.core.irregular import SlotPool
from repro.core.load import LoadTracker
from repro.core.policy import (
    BankSelectPolicy,
    HybridPolicy,
    LinearPolicy,
    MinHopPolicy,
    RandomPolicy,
    policy_by_name,
)
from repro.core.runtime import AffinityAllocator

__all__ = [
    "AffineArray",
    "ArrayHandle",
    "alloc_plain_array",
    "AffineLayout",
    "LayoutKind",
    "solve_affine_layout",
    "SlotPool",
    "LoadTracker",
    "BankSelectPolicy",
    "RandomPolicy",
    "LinearPolicy",
    "MinHopPolicy",
    "HybridPolicy",
    "policy_by_name",
    "AffinityAllocator",
]
