"""Affine layout solving and pool-slot placement (paper §4.2).

``solve_affine_layout`` is a pure function from an :class:`AffineArray`
spec (plus the machine's pool/topology facts) to a concrete layout
decision:

* which interleaving (Eq. 3 for inter-array affinity, a Manhattan-distance
  search for intra-array affinity, an even spread for ``partition``),
* which bank the array must start on (from ``align_x``),
* whether elements need padding to reach a legal interleaving, and
* whether the runtime must fall back to the baseline allocator (paper:
  "in these cases, the runtime can simply fall back to the baseline
  allocator without hurting the performance").

``PoolSpace`` then places arrays inside an interleave pool: it hands out
*contiguous slot ranges* whose starting slot lands on the requested bank,
maintaining a coalescing free list so freed arrays are reused.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from fractions import Fraction
from typing import List, Optional, Tuple

import numpy as np

from repro.analysis.diagnostics import DoubleFreeError
from repro.arch.address import align_up, is_power_of_two
from repro.arch.mesh import Mesh
from repro.core.api import AffineArray
from repro.vm.pools import PoolManager

__all__ = ["LayoutKind", "AffineLayout", "solve_affine_layout", "PoolSpace"]


class LayoutKind(enum.Enum):
    POOL = "pool"          # contiguous slots in an interleave pool
    PAGED = "paged"        # beyond-page interleave via page-granular mapping
    FALLBACK = "fallback"  # baseline heap allocation


@dataclass(frozen=True)
class AffineLayout:
    """Resolved layout decision for one affine allocation.

    Attributes:
        kind: placement mechanism.
        intrlv: effective interleaving in bytes.  For ``POOL`` this is the
            pool's interleave; for ``PAGED`` it is the per-bank chunk size
            (a page multiple); meaningless for ``FALLBACK``.
        start_bank: bank that element 0 must land on.
        stride: element stride in bytes (> elem_size when padded).
        reason: human-readable note (why fallback / why padded).
        code: machine-readable decision tag for the static analyzer
            (``afflint``), so diagnostics never parse ``reason`` strings.
            Fallback codes: ``align-offset``, ``bad-ratio``,
            ``unsupported-interleave``, ``no-line-pool``, ``no-target``.
    """

    kind: LayoutKind
    intrlv: int
    start_bank: int
    stride: int
    reason: str = ""
    code: str = ""


def _bank_delta_distance(mesh: Mesh, slot_delta: int) -> float:
    """Mean Manhattan distance between bank ``b`` and ``(b + k) mod B``."""
    nb = mesh.num_tiles
    k = slot_delta % nb
    if k == 0:
        return 0.0
    banks = np.arange(nb)
    return float(mesh.hops(banks, (banks + k) % nb).mean())


def _expected_row_distance(mesh: Mesh, intrlv: int, row_bytes: int) -> float:
    """Expected Manhattan distance between addresses ``a`` and ``a + row_bytes``
    under interleaving ``intrlv`` (averaged over the phase of ``a``)."""
    k1, rem = divmod(row_bytes, intrlv)
    frac_next = rem / intrlv
    d = (1.0 - frac_next) * _bank_delta_distance(mesh, k1)
    if frac_next > 0:
        d += frac_next * _bank_delta_distance(mesh, k1 + 1)
    return d


def solve_affine_layout(spec: AffineArray, pools: PoolManager, mesh: Mesh,
                        line_bytes: int = 64, page_size: int = 4096) -> AffineLayout:
    """Lower an affine spec to a layout decision (pure; no allocation)."""
    if spec.partition:
        return _solve_partition(spec, pools, page_size)
    if spec.align_to is not None:
        return _solve_inter_array(spec, pools, page_size)
    if spec.align_x:
        return _solve_intra_array(spec, pools, mesh)
    # Default: cache-line interleaving (paper Fig 8(b), first array), or
    # the finest granularity the OS offers if lines are unavailable.
    default = pools.round_to_valid_interleave(line_bytes)
    if default is None:
        return AffineLayout(LayoutKind.FALLBACK, 0, 0, spec.elem_size,
                            "no interleave pool can hold a cache line",
                            code="no-line-pool")
    return AffineLayout(LayoutKind.POOL, default, 0, spec.elem_size,
                        "default cache-line interleave"
                        if default == line_bytes
                        else f"coarsest-available default {default}B",
                        code="default")


def _solve_partition(spec: AffineArray, pools: PoolManager, page_size: int) -> AffineLayout:
    nb = pools.num_banks
    chunk = -(-spec.total_bytes // nb)  # ceil
    pool_intrlv = pools.round_to_valid_interleave(chunk)
    if pool_intrlv is not None:
        return AffineLayout(LayoutKind.POOL, pool_intrlv, 0, spec.elem_size,
                            f"partition: {chunk}B/bank rounded to {pool_intrlv}B pool",
                            code="partition-pool")
    paged_chunk = align_up(chunk, page_size)
    return AffineLayout(LayoutKind.PAGED, paged_chunk, 0, spec.elem_size,
                        f"partition: {paged_chunk}B/bank via page mapping",
                        code="partition-paged")


def _solve_intra_array(spec: AffineArray, pools: PoolManager, mesh: Mesh) -> AffineLayout:
    row_bytes = spec.align_x * spec.elem_size
    best: Optional[Tuple[float, int]] = None
    for g in pools.interleaves:
        d = _expected_row_distance(mesh, g, row_bytes)
        # Tie-break toward larger interleavings: fewer slot crossings, so
        # fewer stream migrations for the same distance.
        if best is None or d < best[0] - 1e-12 or (abs(d - best[0]) <= 1e-12 and g > best[1]):
            best = (d, g)
    assert best is not None
    return AffineLayout(LayoutKind.POOL, best[1], 0, spec.elem_size,
                        f"intra-array: E[dist]={best[0]:.3f} at {best[1]}B",
                        code="intra")


def _solve_inter_array(spec: AffineArray, pools: PoolManager, page_size: int) -> AffineLayout:
    target = spec.align_to
    layout = getattr(target, "layout", None)
    if layout is None or layout.kind is LayoutKind.FALLBACK:
        return AffineLayout(LayoutKind.FALLBACK, 0, 0, spec.elem_size,
                            "align target has no affinity layout",
                            code="no-target")
    g_a = layout.intrlv
    stride_a = target.stride

    # Start-bank from align_x: B[0] aligns to A[align_x] (Eq. 2); perfect
    # alignment needs A[x] to sit on a slot boundary (paper §4.2).
    off_bytes = spec.align_x * stride_a
    if off_bytes % g_a:
        return AffineLayout(LayoutKind.FALLBACK, 0, 0, spec.elem_size,
                            f"align_x offset {off_bytes}B not a multiple of {g_a}B",
                            code="align-offset")
    start_bank = (layout.start_bank + off_bytes // g_a) % pools.num_banks

    # Eq. 3: intrlv_B = (elem_B / elem_A) * (q / p) * intrlv_A, with the
    # aligned-to array's *stride* standing in for its element size when it
    # was padded.
    g_b = Fraction(spec.elem_size * spec.align_q * g_a, spec.align_p * stride_a)

    if g_b.denominator == 1 and g_b >= 64:
        g = int(g_b)
        if pools.has_pool(g):
            return AffineLayout(LayoutKind.POOL, g, start_bank, spec.elem_size,
                                f"Eq.3 interleave {g}B", code="eq3")
        if g % page_size == 0:
            return AffineLayout(LayoutKind.PAGED, g, start_bank, spec.elem_size,
                                f"Eq.3 interleave {g}B via page mapping",
                                code="eq3")
        return AffineLayout(LayoutKind.FALLBACK, 0, 0, spec.elem_size,
                            f"Eq.3 interleave {g}B unsupported",
                            code="unsupported-interleave")

    # Sub-line interleave: pad elements so a 64 B interleave keeps the
    # same slot-advance rate (paper: "mitigated by padding the array").
    # stride_B / 64 = (p/q) * stride_A / g_A.
    stride_b = Fraction(64 * spec.align_p * stride_a, spec.align_q * g_a)
    if stride_b.denominator == 1 and int(stride_b) >= spec.elem_size:
        return AffineLayout(LayoutKind.POOL, 64, start_bank, int(stride_b),
                            f"padded stride {int(stride_b)}B at 64B interleave",
                            code="padded")
    return AffineLayout(LayoutKind.FALLBACK, 0, 0, spec.elem_size,
                        f"no legal interleave for ratio {g_b}",
                        code="bad-ratio")


class PoolSpace:
    """Contiguous-slot allocator for affine arrays within one pool.

    Keeps a sorted, coalescing free list of slot ranges.  Allocation finds
    the first free range that can host ``nslots`` starting on a slot whose
    index is congruent to the requested bank; when nothing fits, the pool
    is expanded (leading alignment pad slots stay on the free list and are
    reused by later allocations with different bank targets).
    """

    def __init__(self, pools: PoolManager, intrlv: int):
        self.pools = pools
        self.intrlv = intrlv
        self.pool = pools.pool(intrlv)
        self.num_banks = pools.num_banks
        self._free: List[Tuple[int, int]] = []  # (start_slot, nslots), sorted

    # ------------------------------------------------------------------
    def _first_aligned(self, start_slot: int, bank: int) -> int:
        """First slot >= start_slot with slot % num_banks == bank."""
        rem = (bank - start_slot) % self.num_banks
        return start_slot + rem

    def alloc(self, nslots: int, start_bank: int) -> int:
        """Allocate ``nslots`` contiguous slots starting on ``start_bank``.

        Returns the starting slot index.
        """
        if nslots <= 0:
            raise ValueError("nslots must be positive")
        if not (0 <= start_bank < self.num_banks):
            raise ValueError(f"start_bank {start_bank} out of range")
        placed = self._try_place(nslots, start_bank)
        if placed is None:
            # Expand enough for the allocation plus worst-case alignment pad.
            need = (nslots + self.num_banks) * self.intrlv
            rng = self.pools.expand(self.intrlv, need)
            first = self.pool.slot_of(np.asarray([rng.start]))[0]
            count = rng.size // self.intrlv
            self._insert_free(int(first), int(count))
            placed = self._try_place(nslots, start_bank)
            assert placed is not None, "expansion must satisfy the request"
        return placed

    def _try_place(self, nslots: int, start_bank: int) -> Optional[int]:
        for i, (s, n) in enumerate(self._free):
            t = self._first_aligned(s, start_bank)
            if t + nslots <= s + n:
                del self._free[i]
                if t > s:
                    self._insert_free(s, t - s)
                tail = (s + n) - (t + nslots)
                if tail > 0:
                    self._insert_free(t + nslots, tail)
                return t
        return None

    def free(self, start_slot: int, nslots: int) -> None:
        self._insert_free(start_slot, nslots)

    def _insert_free(self, start: int, count: int) -> None:
        if count <= 0:
            return
        self._free.append((start, count))
        self._free.sort()
        merged: List[Tuple[int, int]] = []
        for s, n in self._free:
            if merged and merged[-1][0] + merged[-1][1] >= s:
                ps, pn = merged[-1]
                if ps + pn > s:
                    raise DoubleFreeError("double free detected in PoolSpace")
                merged[-1] = (ps, pn + n)
            else:
                merged.append((s, n))
        self._free = merged

    @property
    def free_slots(self) -> int:
        return sum(n for _, n in self._free)

    def slot_vaddr(self, slot: int) -> int:
        return self.pool.slot_vaddr(slot)
