"""Microarchitecture substrate: mesh NoC, NUCA LLC, IOT, DRAM, energy.

These modules model the hardware of the paper's Table 2 platform at the
message level: they answer "which bank does this address map to", "how many
hops / which links does this message take", "how loaded is each bank", and
"what does each event cost in energy".
"""

from repro.arch.mesh import Mesh
from repro.arch.iot import InterleaveOverrideTable, IotEntry
from repro.arch.llc import LlcModel
from repro.arch.noc import MessageClass, TrafficAccountant
from repro.arch.dram import DramModel
from repro.arch.energy import EnergyModel, EnergyBreakdown

__all__ = [
    "Mesh",
    "InterleaveOverrideTable",
    "IotEntry",
    "LlcModel",
    "MessageClass",
    "TrafficAccountant",
    "DramModel",
    "EnergyModel",
    "EnergyBreakdown",
]
