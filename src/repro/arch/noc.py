"""NoC traffic accounting.

The trace executor does not simulate individual packets; it records
*message batches* — vectors of (src tile, dst tile, payload bytes, class).
The accountant collapses every batch onto the (src, dst) pair space, so
memory stays O(num_tiles^2) per message class no matter how long the trace
is, while still preserving enough structure to compute:

* total flit-hops per message class (the paper's "NoC Hops" metric,
  Figs 4/6/12/13/20),
* per-link flit loads under X-Y routing (bisection pathologies, Fig 3b),
* average NoC utilization (Fig 12's "NoC Util." markers).

Message classes follow the paper's figure legends:

* ``DATA``    — operand forwarding, line fills, write-backs, indirect
  responses: payload-carrying messages.
* ``CONTROL`` — requests, indirect requests, credits, coherence control:
  header-only messages.
* ``OFFLOAD`` — stream configuration and stream migration messages.
"""

from __future__ import annotations

import enum
import math
from typing import Dict, Optional, Tuple

import numpy as np

from repro.arch.mesh import Mesh
from repro.config import NocConfig

__all__ = ["MessageClass", "TrafficAccountant", "pair_channel_loads"]


class MessageClass(enum.Enum):
    DATA = "data"
    CONTROL = "control"
    OFFLOAD = "offload"


#: Hop distance per (src, dst) pair, shared across every accountant of
#: the same topology (one sweep builds hundreds of accountants).  Keyed
#: by the full topology key — geometry plus dead-link set — so degraded
#: meshes never serve pristine distances (or vice versa).
_HOPS_CACHE: Dict[tuple, np.ndarray] = {}


def _hops_table(mesh: Mesh) -> np.ndarray:
    key = mesh.topology_key
    hops = _HOPS_CACHE.get(key)
    if hops is None:
        n = mesh.num_tiles
        idx = np.arange(n * n)
        hops = mesh.hops(idx // n, idx % n).astype(np.float64)
        hops.setflags(write=False)
        _HOPS_CACHE[key] = hops
    return hops


def pair_channel_loads(mesh: Mesh, pair_flits: np.ndarray) -> np.ndarray:
    """Expand (src, dst)-pair flit counts onto NoC channels.

    Channels = directed router-to-router links (X-Y routes) plus each
    tile's injection and ejection ports (1 flit/cycle each).  The ports
    matter: every message destined for one bank funnels through that
    bank's single ejection channel, so a hot bank (a high-degree vertex's
    atomics, a global queue's tail) is a bandwidth bottleneck even when
    no single mesh link saturates — and colocating the producers with the
    bank (affinity alloc) removes those messages entirely.

    Layout of the returned vector: ``[links..., inject per tile...,
    eject per tile...]``.

    Implementation: one weighted scatter-add over the mesh's precomputed
    pair->link incidence (:meth:`repro.arch.mesh.Mesh.routing_incidence`)
    plus two ``bincount`` reductions for the ports.  ``bincount``
    accumulates weights in input order, pair-major ascending — the exact
    addition order of the per-pair loop this replaced — so results are
    byte-identical, not merely close.
    """
    n = mesh.num_tiles
    pair_flits = np.asarray(pair_flits, dtype=np.float64)
    if pair_flits.shape != (n * n,):
        raise ValueError(f"pair_flits must have shape ({n * n},), "
                         f"got {pair_flits.shape}")
    inc = mesh.routing_incidence()
    loads = np.empty(mesh.num_links + 2 * n, dtype=np.float64)
    loads[:mesh.num_links] = np.bincount(
        inc.link_ids, weights=np.repeat(pair_flits, inc.route_counts),
        minlength=mesh.num_links)
    ported = pair_flits.copy()
    ported[inc.diagonal] = 0.0  # self-pairs never touch the NoC
    inj = mesh.num_links
    loads[inj:inj + n] = np.bincount(inc.pair_src, weights=ported, minlength=n)
    loads[inj + n:] = np.bincount(inc.pair_dst, weights=ported, minlength=n)
    return loads


class TrafficAccountant:
    """Accumulates message batches into per-(pair, class) flit counts."""

    def __init__(self, mesh: Mesh, noc: NocConfig):
        self.mesh = mesh
        self.noc = noc
        npairs = mesh.num_tiles ** 2
        self._pair_flits: Dict[MessageClass, np.ndarray] = {
            cls: np.zeros(npairs, dtype=np.float64) for cls in MessageClass
        }
        self._messages: Dict[MessageClass, float] = {cls: 0.0 for cls in MessageClass}
        # Hop distance for every (src, dst) pair, built lazily (shared
        # process-wide across accountants of the same topology).
        self._pair_hops: Optional[np.ndarray] = None
        self._hops_epoch = mesh.topology_epoch
        # Channel-load cache: expanding the pair matrix onto channels is
        # the accountant's one non-trivial computation, and the metric
        # getters (max/mean/utilization) all need it.  ``record`` bumps
        # the dirty flag; the expansion runs once per dirty epoch, and a
        # mesh topology-epoch bump (chaos link failure) also invalidates.
        self._channel_cache: Optional[np.ndarray] = None
        self._cache_epoch = mesh.topology_epoch
        self._dirty = True

    # ------------------------------------------------------------------
    def _flits_for(self, payload_bytes) -> np.ndarray:
        """Flits for message(s) with the given payload size.

        Every message carries one header; payload is packed into
        ``link_bytes_per_cycle``-byte flits.
        """
        total = np.asarray(payload_bytes, dtype=np.float64) + self.noc.header_bytes
        return np.ceil(total / self.noc.link_bytes_per_cycle)

    def record(self, src, dst, payload_bytes, cls: MessageClass, count=1) -> None:
        """Record message batch(es).

        Args:
            src, dst: tile ids (scalars or equal-length arrays).
            payload_bytes: payload per message (scalar or array).
            cls: message class.
            count: multiplicity per entry (scalar or array) — e.g. a batch
                entry may represent ``count`` identical messages.
        """
        src = np.atleast_1d(np.asarray(src, dtype=np.int64))
        dst = np.atleast_1d(np.asarray(dst, dtype=np.int64))
        if src.shape != dst.shape:
            src, dst = np.broadcast_arrays(src, dst)
        n = self.mesh.num_tiles
        if src.size == 0:
            return
        cnt = np.asarray(count, dtype=np.float64)
        flits = self._flits_for(payload_bytes) * cnt
        flits = np.broadcast_to(flits, src.shape)
        pair = src * n + dst
        # With dst validated, a bad src surfaces from the histogram
        # itself (negative pair raises inside bincount, over-range pair
        # yields a histogram longer than the pair matrix) — replacing
        # src's two min/max validation passes on this very hot path.
        self.mesh.validate_tiles(dst)
        try:
            binned = np.bincount(pair, weights=flits, minlength=n * n)
        except ValueError:
            raise ValueError("tile id out of range") from None
        if binned.size > n * n:
            raise ValueError("tile id out of range")
        self._pair_flits[cls] += binned
        if cnt.ndim == 0:
            self._messages[cls] += float(cnt) * src.size
        else:
            self._messages[cls] += float(np.sum(np.broadcast_to(cnt, src.shape)))
        self._dirty = True

    # ------------------------------------------------------------------
    def _hops_per_pair(self) -> np.ndarray:
        if self._pair_hops is None or self._hops_epoch != self.mesh.topology_epoch:
            self._pair_hops = _hops_table(self.mesh)
            self._hops_epoch = self.mesh.topology_epoch
        return self._pair_hops

    def flit_hops(self, cls: Optional[MessageClass] = None) -> float:
        """Total flits x hops — the paper's NoC traffic metric."""
        hops = self._hops_per_pair()
        if cls is not None:
            return float(np.dot(self._pair_flits[cls], hops))
        return float(sum(np.dot(v, hops) for v in self._pair_flits.values()))

    def flit_hops_by_class(self) -> Dict[MessageClass, float]:
        hops = self._hops_per_pair()
        return {cls: float(np.dot(v, hops)) for cls, v in self._pair_flits.items()}

    def total_flits(self, cls: Optional[MessageClass] = None) -> float:
        if cls is not None:
            return float(self._pair_flits[cls].sum())
        return float(sum(v.sum() for v in self._pair_flits.values()))

    def message_count(self, cls: Optional[MessageClass] = None) -> float:
        if cls is not None:
            return self._messages[cls]
        return sum(self._messages.values())

    # ------------------------------------------------------------------
    def _channel_loads(self) -> np.ndarray:
        """Per-channel loads, recomputed at most once per dirty epoch.

        Internal callers treat the returned array as read-only; the
        public :meth:`link_loads` hands out a copy.
        """
        if (self._dirty or self._channel_cache is None
                or self._cache_epoch != self.mesh.topology_epoch):
            total_pairs = sum(self._pair_flits.values())
            self._channel_cache = pair_channel_loads(self.mesh, total_pairs)
            self._dirty = False
            self._cache_epoch = self.mesh.topology_epoch
        return self._channel_cache

    def link_loads(self) -> np.ndarray:
        """Per-channel flit load (links + inject/eject ports, all classes)."""
        return self._channel_loads().copy()

    def eject_loads(self) -> np.ndarray:
        """Per-tile ejection-port flit load (all classes).

        Slot ``b`` is the flits funneling into tile/bank ``b``'s single
        ejection channel — the per-bank bandwidth figure the interference
        analysis compares against injected host traffic.
        """
        n = self.mesh.num_tiles
        return self._channel_loads()[self.mesh.num_links + n:].copy()

    def max_link_load(self) -> float:
        """Flits on the most-loaded directed link (the NoC bottleneck)."""
        loads = self._channel_loads()
        return float(loads.max()) if loads.size else 0.0

    def mean_link_load(self) -> float:
        loads = self._channel_loads()
        # Interior links only in spirit; edge link slots stay zero, so
        # normalize by the count of links that could carry traffic.
        usable = self._usable_link_count()
        return float(loads.sum() / usable) if usable else 0.0

    def _usable_link_count(self) -> int:
        w, h = self.mesh.width, self.mesh.height
        # mesh links (both directions) plus inject/eject ports per tile,
        # minus any links killed by fault injection (dead links are
        # always chosen among the physical interior links)
        return (2 * ((w - 1) * h + (h - 1) * w) + 2 * w * h
                - len(self.mesh.dead_links))

    def utilization(self, cycles: float) -> float:
        """Average fraction of link-cycles carrying flits over ``cycles``."""
        if cycles <= 0:
            return 0.0
        return min(1.0, self._channel_loads().sum()
                   / (self._usable_link_count() * cycles))

    def reset(self) -> None:
        """Zero every counter and invalidate the channel-load cache.

        Epoch-based consumers (the relayout telemetry aggregator) reset
        between epochs; the dirty flag guarantees the next metric query
        recomputes channel loads instead of serving the pre-reset cache,
        even when no ``record`` call lands in between.
        """
        for cls in MessageClass:
            self._pair_flits[cls][:] = 0.0
            self._messages[cls] = 0.0
        self._dirty = True

    def merged_with(self, other: "TrafficAccountant") -> "TrafficAccountant":
        """Return a new accountant with both traffic sets combined."""
        out = TrafficAccountant(self.mesh, self.noc)
        for cls in MessageClass:
            out._pair_flits[cls] = self._pair_flits[cls] + other._pair_flits[cls]
            out._messages[cls] = self._messages[cls] + other._messages[cls]
        return out
