"""Address arithmetic helpers shared by the VM and cache layers.

All addresses in the simulator are plain Python ints (byte addresses in a
48-bit space, as in the paper's Table 1 IOT fields).  These helpers keep
line/page rounding logic in one place.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "align_down",
    "align_up",
    "is_power_of_two",
    "line_index",
    "lines_spanned",
    "AddressRange",
]


def is_power_of_two(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


def align_down(addr: int, granule: int) -> int:
    if granule <= 0:
        raise ValueError("granule must be positive")
    return addr - (addr % granule)


def align_up(addr: int, granule: int) -> int:
    if granule <= 0:
        raise ValueError("granule must be positive")
    return -(-addr // granule) * granule


def line_index(addr, line_bytes: int = 64):
    """Cache-line index of byte address(es); vectorized."""
    return np.asarray(addr) // line_bytes


def lines_spanned(addr: int, size: int, line_bytes: int = 64) -> int:
    """Number of cache lines touched by ``[addr, addr + size)``."""
    if size <= 0:
        return 0
    first = addr // line_bytes
    last = (addr + size - 1) // line_bytes
    return int(last - first + 1)


@dataclass(frozen=True)
class AddressRange:
    """Half-open byte range ``[start, end)``."""

    start: int
    end: int

    def __post_init__(self):
        if self.end < self.start:
            raise ValueError(f"invalid range [{self.start:#x}, {self.end:#x})")

    @property
    def size(self) -> int:
        return self.end - self.start

    def contains(self, addr: int) -> bool:
        return self.start <= addr < self.end

    def contains_range(self, other: "AddressRange") -> bool:
        return self.start <= other.start and other.end <= self.end

    def overlaps(self, other: "AddressRange") -> bool:
        return self.start < other.end and other.start < self.end
