"""Event-count energy model (substitute for McPAT, see DESIGN.md §2).

Energy = sum over event types of (count x per-event constant).  The
constants live in :class:`repro.config.PerfParams`; this module only does
the bookkeeping and exposes a breakdown so experiments can report where
energy goes (NoC vs cache vs DRAM vs compute), mirroring the structure of
the paper's Fig 12 energy-efficiency bars.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.config import PerfParams

__all__ = ["EnergyBreakdown", "EnergyModel"]


@dataclass
class EnergyBreakdown:
    """Picojoules by subsystem."""

    noc: float = 0.0
    l3: float = 0.0
    private_cache: float = 0.0
    dram: float = 0.0
    core_compute: float = 0.0
    near_compute: float = 0.0

    @property
    def total(self) -> float:
        return (self.noc + self.l3 + self.private_cache + self.dram
                + self.core_compute + self.near_compute)

    def as_dict(self) -> Dict[str, float]:
        return {
            "noc": self.noc,
            "l3": self.l3,
            "private_cache": self.private_cache,
            "dram": self.dram,
            "core_compute": self.core_compute,
            "near_compute": self.near_compute,
        }


class EnergyModel:
    def __init__(self, perf: PerfParams):
        self.perf = perf

    def compute(self, *, flit_hops: float, l3_accesses: float,
                private_accesses: float, dram_accesses: float,
                core_ops: float, near_ops: float) -> EnergyBreakdown:
        p = self.perf
        return EnergyBreakdown(
            noc=flit_hops * p.pj_per_hop_flit,
            l3=l3_accesses * p.pj_l3_access,
            private_cache=private_accesses * p.pj_l1_access,
            dram=dram_accesses * p.pj_dram_access,
            core_compute=core_ops * p.pj_core_op,
            near_compute=near_ops * p.pj_near_op,
        )
