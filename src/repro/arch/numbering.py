"""Bank-numbering schemes (paper §4.1, "Other Interleave Patterns").

Eq. 1 produces a *logical* bank number (slot mod B); how logical numbers
map onto physical mesh tiles is a hardware choice.  The paper notes that
"more sophisticated interleave patterns can be supported by either
changing how L3 banks are numbered or enhancing Eq 1 ... however, we find
that a simple 1D linear pattern is expressive enough to achieve optimal
spatial affinity for the affine workloads we studied."

This module implements candidate numberings from the family the paper
mentions — row-major linear, quadrant (Morton/Z-order) filling,
serpentine (boustrophedon) wrapping, and column-major — plus the distance
analysis that backs the paper's conclusion.  The study lives in
``benchmarks/test_ablation_numbering.py``.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.arch.mesh import Mesh

__all__ = ["linear_numbering", "morton_numbering", "serpentine_numbering",
           "column_numbering",
           "NUMBERINGS", "expected_delta_distance", "numbering_distance_table"]


def linear_numbering(mesh: Mesh) -> np.ndarray:
    """Row-major: logical bank k sits on tile k (the default)."""
    return np.arange(mesh.num_tiles, dtype=np.int64)


def morton_numbering(mesh: Mesh) -> np.ndarray:
    """Quadrant filling: logical banks follow the Z-order curve, so
    consecutive numbers stay within quadrants (paper: "a 2D pattern that
    fills L3 banks in the order of quadrant")."""
    if mesh.width != mesh.height or mesh.width & (mesh.width - 1):
        raise ValueError("Morton numbering needs a square power-of-two mesh")
    n = mesh.num_tiles
    tiles = np.empty(n, dtype=np.int64)
    for k in range(n):
        x = y = 0
        for bit in range(mesh.width.bit_length() - 1):
            x |= ((k >> (2 * bit)) & 1) << bit
            y |= ((k >> (2 * bit + 1)) & 1) << bit
        tiles[k] = mesh.tile_at(x, y)
    return tiles


def serpentine_numbering(mesh: Mesh) -> np.ndarray:
    """Boustrophedon: odd rows run right-to-left, so consecutive logical
    banks are always physically adjacent (the strongest possible
    small-delta locality a numbering can offer — paper: "a two-level
    wrapping around" family)."""
    w, h = mesh.width, mesh.height
    out = np.empty(mesh.num_tiles, dtype=np.int64)
    for k in range(mesh.num_tiles):
        row, pos = divmod(k, w)
        col = pos if row % 2 == 0 else w - 1 - pos
        out[k] = mesh.tile_at(col, row)
    return out


def column_numbering(mesh: Mesh) -> np.ndarray:
    """Column-major: consecutive logical banks stack vertically —
    shortens +1 deltas into vertical hops, lengthens +H ones."""
    w, h = mesh.width, mesh.height
    out = np.empty(mesh.num_tiles, dtype=np.int64)
    for k in range(mesh.num_tiles):
        col, row = divmod(k, h)
        out[k] = mesh.tile_at(col, row)
    return out


NUMBERINGS: Dict[str, Callable[[Mesh], np.ndarray]] = {
    "linear": linear_numbering,
    "quadrant": morton_numbering,
    "serpentine": serpentine_numbering,
    "column": column_numbering,
}


def expected_delta_distance(mesh: Mesh, numbering: np.ndarray,
                            delta: int) -> float:
    """Mean physical distance between logical banks ``k`` and ``k+delta``.

    This is the quantity the intra-array layout solver minimizes; a
    numbering is better for a workload whose dominant slot delta it
    shortens.
    """
    n = mesh.num_tiles
    k = np.arange(n)
    return float(mesh.hops(numbering[k], numbering[(k + delta) % n]).mean())


def numbering_distance_table(mesh: Mesh, deltas=(1, 2, 4, 8, 16, 32)):
    """Distance of each candidate numbering at each slot delta.

    Returns ``{numbering: {delta: mean hops}}`` — the data behind the
    paper's "1D linear is expressive enough" claim: for every delta some
    pool interleave makes linear's distance ~minimal, so fancier
    numberings don't unlock extra affinity for affine workloads.
    """
    out = {}
    for name, fn in NUMBERINGS.items():
        perm = fn(mesh)
        out[name] = {d: expected_delta_distance(mesh, perm, d)
                     for d in deltas}
    return out
