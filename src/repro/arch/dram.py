"""DRAM channel model: four channels at the mesh corners (Table 2).

An L3 miss travels from the bank to its assigned memory controller tile
(address-interleaved across channels), occupies channel bandwidth for one
line transfer, and returns.  We expose per-channel byte loads so the perf
model can find the DRAM bottleneck, plus the extra NoC traffic the misses
generate.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.arch.mesh import Mesh
from repro.config import DramConfig

__all__ = ["DramModel"]


class DramModel:
    def __init__(self, mesh: Mesh, dram: DramConfig):
        self.mesh = mesh
        self.dram = dram
        self.controller_tiles = self._corner_tiles(mesh, dram.channels)
        self._channel_bytes = np.zeros(len(self.controller_tiles), dtype=np.float64)

    @staticmethod
    def _corner_tiles(mesh: Mesh, channels: int) -> List[int]:
        corners = [
            mesh.tile_at(0, 0),
            mesh.tile_at(mesh.width - 1, 0),
            mesh.tile_at(0, mesh.height - 1),
            mesh.tile_at(mesh.width - 1, mesh.height - 1),
        ]
        if channels <= 4:
            return corners[:channels]
        # More than four channels: spread extras along the top/bottom edges.
        extra = []
        for i in range(channels - 4):
            x = (i + 1) * mesh.width // (channels - 3)
            y = 0 if i % 2 == 0 else mesh.height - 1
            extra.append(mesh.tile_at(min(x, mesh.width - 1), y))
        return corners + extra

    def channel_for(self, banks: np.ndarray) -> np.ndarray:
        """Channel id for misses from each bank (address-interleaved).

        We approximate address interleaving by hashing the bank id; the
        per-channel load spread is what matters for the bottleneck model.
        """
        banks = np.asarray(banks, dtype=np.int64)
        return banks % len(self.controller_tiles)

    def controller_tile_for(self, banks: np.ndarray) -> np.ndarray:
        channels = self.channel_for(banks)
        tiles = np.asarray(self.controller_tiles, dtype=np.int64)
        return tiles[channels]

    def record_miss_traffic(self, banks: np.ndarray, bytes_each: float, counts: np.ndarray) -> None:
        """Charge channel bandwidth for ``counts[i]`` line misses from bank i."""
        banks = np.asarray(banks, dtype=np.int64)
        counts = np.asarray(counts, dtype=np.float64)
        channels = self.channel_for(banks)
        self._channel_bytes += np.bincount(
            channels, weights=counts * bytes_each, minlength=len(self.controller_tiles)
        )

    @property
    def channel_bytes(self) -> np.ndarray:
        return self._channel_bytes.copy()

    def bottleneck_cycles(self) -> float:
        """Cycles needed by the most-loaded channel to move its bytes."""
        if self._channel_bytes.size == 0:
            return 0.0
        return float(self._channel_bytes.max() / self.dram.bytes_per_cycle_per_channel)

    def reset(self) -> None:
        self._channel_bytes[:] = 0.0
