"""Interleave Override Table (paper Table 1, Eq. 1).

Each L2/L3 cache controller holds a small table whose entries override the
default physical-address-to-bank hash for one physical range::

    bank(addr) = floor((addr - start) / intrlv)  mod  num_banks      (Eq. 1)

One entry covers one interleave pool, because the OS backs every pool with
contiguous physical pages (paper 4.1), so 7 pools need only 7 of the 16
entries.  Lookups are vectorized: the executor maps millions of addresses
per call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.arch.address import is_power_of_two

__all__ = ["IotEntry", "InterleaveOverrideTable"]


@dataclass(frozen=True)
class IotEntry:
    """One override region: physical ``[start, end)`` with ``intrlv`` bytes.

    Mirrors Table 1 of the paper: 48-bit start/end, 16-bit interleave.
    """

    start: int
    end: int
    intrlv: int

    def __post_init__(self):
        if not (0 <= self.start < self.end < (1 << 48)):
            raise ValueError(f"IOT range must be within 48-bit space: [{self.start:#x}, {self.end:#x})")
        if not (0 < self.intrlv < (1 << 16) + 1):
            raise ValueError(f"IOT interleave must fit 16 bits, got {self.intrlv}")
        if not is_power_of_two(self.intrlv):
            # The hardware divides with a right shift (paper 4.1);
            # non-power-of-two interleavings are explicitly future work.
            raise ValueError(f"IOT interleave must be a power of two, got {self.intrlv}")

    def covers(self, addr: int) -> bool:
        return self.start <= addr < self.end


class InterleaveOverrideTable:
    """Fixed-capacity override table queried on every L2 miss / L3 access."""

    def __init__(self, num_banks: int, capacity: int = 16):
        if num_banks <= 0:
            raise ValueError("num_banks must be positive")
        self.num_banks = num_banks
        self.capacity = capacity
        self._entries: List[IotEntry] = []
        # Parallel numpy views for vectorized lookup, rebuilt on mutation.
        self._starts = np.empty(0, dtype=np.int64)
        self._ends = np.empty(0, dtype=np.int64)
        self._shifts = np.empty(0, dtype=np.int64)

    # ------------------------------------------------------------------
    @property
    def entries(self) -> List[IotEntry]:
        return list(self._entries)

    def install(self, entry: IotEntry) -> None:
        """Install an entry; ranges must not overlap existing ones."""
        if len(self._entries) >= self.capacity:
            raise RuntimeError(f"IOT full ({self.capacity} entries)")
        for existing in self._entries:
            if entry.start < existing.end and existing.start < entry.end:
                raise ValueError(
                    f"IOT entry [{entry.start:#x},{entry.end:#x}) overlaps "
                    f"[{existing.start:#x},{existing.end:#x})"
                )
        self._entries.append(entry)
        self._rebuild()

    def update_end(self, start: int, new_end: int) -> None:
        """Grow the region beginning at ``start`` (pool expansion)."""
        for i, e in enumerate(self._entries):
            if e.start == start:
                if new_end < e.end:
                    raise ValueError("IOT regions only grow")
                self._entries[i] = IotEntry(e.start, new_end, e.intrlv)
                self._rebuild()
                return
        raise KeyError(f"no IOT entry starting at {start:#x}")

    def _rebuild(self) -> None:
        self._starts = np.array([e.start for e in self._entries], dtype=np.int64)
        self._ends = np.array([e.end for e in self._entries], dtype=np.int64)
        self._shifts = np.array(
            [int(e.intrlv).bit_length() - 1 for e in self._entries], dtype=np.int64
        )

    # ------------------------------------------------------------------
    def lookup(self, addr: int) -> Optional[IotEntry]:
        """Return the entry covering ``addr``, if any."""
        for e in self._entries:
            if e.covers(addr):
                return e
        return None

    def banks(self, addrs: np.ndarray, default_shift: int) -> np.ndarray:
        """Map physical addresses to bank ids (Eq. 1), vectorized.

        Addresses outside every override region use the default static-NUCA
        interleave ``1 << default_shift`` starting at physical 0 — the
        baseline Table 2 mapping.
        """
        addrs = np.asarray(addrs, dtype=np.int64)
        banks = (addrs >> default_shift) % self.num_banks
        for start, end, shift in zip(self._starts, self._ends, self._shifts):
            mask = (addrs >= start) & (addrs < end)
            if mask.any():
                banks[mask] = ((addrs[mask] - start) >> shift) % self.num_banks
        return banks

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return f"InterleaveOverrideTable({len(self._entries)}/{self.capacity} entries)"
