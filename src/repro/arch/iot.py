"""Interleave Override Table (paper Table 1, Eq. 1).

Each L2/L3 cache controller holds a small table whose entries override the
default physical-address-to-bank hash for one physical range::

    bank(addr) = floor((addr - start) / intrlv)  mod  num_banks      (Eq. 1)

One entry covers one interleave pool, because the OS backs every pool with
contiguous physical pages (paper 4.1), so 7 pools need only 7 of the 16
entries.  Lookups are vectorized: the executor maps millions of addresses
per call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.arch.address import is_power_of_two

__all__ = ["IotEntry", "MigrationEntry", "InterleaveOverrideTable"]


@dataclass(frozen=True)
class IotEntry:
    """One override region: physical ``[start, end)`` with ``intrlv`` bytes.

    Mirrors Table 1 of the paper: 48-bit start/end, 16-bit interleave.
    """

    start: int
    end: int
    intrlv: int

    def __post_init__(self):
        if not (0 <= self.start < self.end < (1 << 48)):
            raise ValueError(f"IOT range must be within 48-bit space: [{self.start:#x}, {self.end:#x})")
        if not (0 < self.intrlv < (1 << 16) + 1):
            raise ValueError(f"IOT interleave must fit 16 bits, got {self.intrlv}")
        if not is_power_of_two(self.intrlv):
            # The hardware divides with a right shift (paper 4.1);
            # non-power-of-two interleavings are explicitly future work.
            raise ValueError(f"IOT interleave must be a power of two, got {self.intrlv}")

    def covers(self, addr: int) -> bool:
        return self.start <= addr < self.end


@dataclass(frozen=True)
class MigrationEntry:
    """One migration override: rotate banks of physical ``[start, end)``.

    ``bank(addr) = ((addr - start) >> shift) + offset  mod  num_banks``
    — the same Eq. 1 hash as a pool entry, plus a constant bank offset.
    Installing one over a pool-backed array *rotates* the array's round-
    robin bank assignment by ``offset - original_offset`` banks, which is
    exactly the re-homing primitive online re-layout needs: no data
    format change, just a different owner per slot.
    """

    start: int
    end: int
    shift: int
    offset: int

    def __post_init__(self):
        if not (0 <= self.start < self.end < (1 << 48)):
            raise ValueError(
                f"migration range must be within 48-bit space: "
                f"[{self.start:#x}, {self.end:#x})")
        if self.shift < 0:
            raise ValueError("migration shift must be non-negative")
        if self.offset < 0:
            raise ValueError("migration offset must be non-negative")


class InterleaveOverrideTable:
    """Fixed-capacity override table queried on every L2 miss / L3 access."""

    def __init__(self, num_banks: int, capacity: int = 16):
        if num_banks <= 0:
            raise ValueError("num_banks must be positive")
        self.num_banks = num_banks
        # Power-of-two bank counts (every paper config) take the mod as a
        # bit mask; `&` equals `%` bit for bit on int64 for a positive
        # power-of-two modulus, and skips the integer-division microcode.
        self._bank_mask = num_banks - 1 if is_power_of_two(num_banks) else None
        self.capacity = capacity
        self._entries: List[IotEntry] = []
        # Parallel numpy views for vectorized lookup, rebuilt on mutation.
        # Sorted by start address (entries never overlap, so start order is
        # total): one searchsorted per lookup batch replaces the old
        # per-entry mask sweep.
        self._starts = np.empty(0, dtype=np.int64)
        self._ends = np.empty(0, dtype=np.int64)
        self._shifts = np.empty(0, dtype=np.int64)
        self._sorted_entries: List[IotEntry] = []
        # Migration-override entries (online re-layout): each rotates the
        # bank assignment of one physical range by a fixed offset without
        # touching the pool entries above.  Kept as a separate small table
        # (the hardware analogue: a handful of shadow IOT entries staged
        # by the migration engine) and applied after the pool hash but
        # before any fault remap, so re-layout composes with re-homing.
        self._mig: List["MigrationEntry"] = []
        self.migration_capacity = 8
        # Bank-remap vector (chaos fault injection): when a bank fails,
        # the runtime "re-homes" its traffic by retiring the bank here —
        # every lookup's final bank id passes through the vector.  None
        # on the (overwhelmingly common) healthy path, which therefore
        # executes the exact original instruction sequence.
        self._remap: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    @property
    def entries(self) -> List[IotEntry]:
        return list(self._entries)

    def install(self, entry: IotEntry) -> None:
        """Install an entry; ranges must not overlap existing ones."""
        if len(self._entries) >= self.capacity:
            raise RuntimeError(f"IOT full ({self.capacity} entries)")
        for existing in self._entries:
            if entry.start < existing.end and existing.start < entry.end:
                raise ValueError(
                    f"IOT entry [{entry.start:#x},{entry.end:#x}) overlaps "
                    f"[{existing.start:#x},{existing.end:#x})"
                )
        self._entries.append(entry)
        self._rebuild()

    def update_end(self, start: int, new_end: int) -> None:
        """Grow the region beginning at ``start`` (pool expansion)."""
        for i, e in enumerate(self._entries):
            if e.start == start:
                if new_end < e.end:
                    raise ValueError("IOT regions only grow")
                self._entries[i] = IotEntry(e.start, new_end, e.intrlv)
                self._rebuild()
                return
        raise KeyError(f"no IOT entry starting at {start:#x}")

    def _rebuild(self) -> None:
        self._sorted_entries = sorted(self._entries, key=lambda e: e.start)
        self._starts = np.array([e.start for e in self._sorted_entries], dtype=np.int64)
        self._ends = np.array([e.end for e in self._sorted_entries], dtype=np.int64)
        self._shifts = np.array(
            [int(e.intrlv).bit_length() - 1 for e in self._sorted_entries],
            dtype=np.int64
        )

    # ------------------------------------------------------------------
    def lookup(self, addr: int) -> Optional[IotEntry]:
        """Return the entry covering ``addr``, if any."""
        i = int(np.searchsorted(self._starts, addr, side="right")) - 1
        if i >= 0 and addr < self._ends[i]:
            return self._sorted_entries[i]
        return None

    def retire_bank(self, bank: int, replacement: int) -> None:
        """Re-home ``bank`` onto ``replacement`` for every future lookup.

        Installs (or updates) the bank-remap vector.  Existing chains are
        rewritten — if ``replacement`` itself later fails, banks that were
        re-homed onto it follow it to its new home — so the vector never
        maps onto a retired bank.
        """
        if not (0 <= bank < self.num_banks and 0 <= replacement < self.num_banks):
            raise ValueError("bank ids out of range")
        if bank == replacement:
            raise ValueError("cannot re-home a bank onto itself")
        if self._remap is None:
            self._remap = np.arange(self.num_banks, dtype=np.int64)
        self._remap[self._remap == bank] = replacement

    @property
    def bank_remap(self) -> Optional[np.ndarray]:
        """The active remap vector (read-only view), or None when healthy."""
        return None if self._remap is None else self._remap.copy()

    def remap_banks(self, banks: np.ndarray) -> np.ndarray:
        """Apply the active bank remap to explicit bank ids.

        Identity when healthy.  The host-interference engine routes its
        plan's bank targets through this so injected host traffic follows
        chaos re-homes exactly like NDC traffic does (addresses take the
        same remap inside :meth:`banks`).
        """
        banks = np.asarray(banks, dtype=np.int64)
        if banks.size and (banks.min() < 0 or banks.max() >= self.num_banks):
            raise ValueError("bank ids out of range")
        if self._remap is None:
            return banks
        return self._remap[banks]

    # ------------------------------------------------------------------
    # Migration overrides (online re-layout)
    # ------------------------------------------------------------------
    @property
    def migration_entries(self) -> List[MigrationEntry]:
        return list(self._mig)

    def install_migration(self, entry: MigrationEntry) -> None:
        """Install (or replace) a migration override.

        An entry with the same ``start`` replaces the previous one — the
        engine re-rotating an already-migrated array updates in place, so
        repeated migrations of one array never exhaust the table.  New
        ranges must not overlap other migration entries.
        """
        for i, existing in enumerate(self._mig):
            if existing.start == entry.start:
                self._mig[i] = entry
                return
            if entry.start < existing.end and existing.start < entry.end:
                raise ValueError(
                    f"migration entry [{entry.start:#x},{entry.end:#x}) "
                    f"overlaps [{existing.start:#x},{existing.end:#x})")
        if len(self._mig) >= self.migration_capacity:
            raise RuntimeError(
                f"migration table full ({self.migration_capacity} entries)")
        self._mig.append(entry)

    def clear_migrations(self) -> None:
        self._mig.clear()

    def swap_banks(self, a: int, b: int) -> None:
        """Swap every future lookup of banks ``a`` and ``b``.

        Composes a transposition onto the remap vector's *outputs*: data
        currently homed on the hot bank moves to the cold one and vice
        versa.  Unlike :meth:`retire_bank` this is load-neutral in count —
        it trades two banks' positions, it does not merge them.
        """
        if not (0 <= a < self.num_banks and 0 <= b < self.num_banks):
            raise ValueError("bank ids out of range")
        if a == b:
            raise ValueError("cannot swap a bank with itself")
        if self._remap is None:
            self._remap = np.arange(self.num_banks, dtype=np.int64)
        t = np.arange(self.num_banks, dtype=np.int64)
        t[a], t[b] = b, a
        self._remap = t[self._remap]

    def _apply_migrations(self, addrs: np.ndarray,
                          banks: np.ndarray) -> np.ndarray:
        mask = self._bank_mask
        for e in self._mig:
            m = (addrs >= e.start) & (addrs < e.end)
            if m.any():
                override = ((addrs[m] - e.start) >> e.shift) + e.offset
                banks[m] = (override & mask if mask is not None
                            else override % self.num_banks)
        return banks

    def banks(self, addrs: np.ndarray, default_shift: int,
              apply_remap: bool = True) -> np.ndarray:
        """Map physical addresses to bank ids (Eq. 1), vectorized.

        Addresses outside every override region use the default static-NUCA
        interleave ``1 << default_shift`` starting at physical 0 — the
        baseline Table 2 mapping.

        One ``searchsorted`` over the sorted range table finds every
        address's candidate entry; ranges never overlap, so "start is the
        nearest at-or-below AND addr < end" is exact membership.

        ``apply_remap=False`` returns the *raw* (pre-fault) mapping; the
        executor's fault guard uses it to detect touches of failed banks.
        """
        addrs = np.asarray(addrs, dtype=np.int64)
        banks = self._banks_raw(addrs, default_shift)
        if self._mig:
            banks = self._apply_migrations(addrs, banks)
        if apply_remap and self._remap is not None:
            return self._remap[banks]
        return banks

    def _banks_raw(self, addrs: np.ndarray, default_shift: int) -> np.ndarray:
        addrs = np.asarray(addrs, dtype=np.int64)
        mask = self._bank_mask
        lo = hi = None
        if self._starts.size and addrs.size:
            # Fast path: a batch wholly inside one entry (the usual case —
            # a trace walks one pool-backed array) skips the default-hash
            # pass and the membership masking below.
            lo = int(addrs.min())
            hi = int(addrs.max())
            i = int(np.searchsorted(self._starts, lo, side="right")) - 1
            if i >= 0 and hi < self._ends[i]:
                override = (addrs - self._starts[i]) >> self._shifts[i]
                return (override & mask if mask is not None
                        else override % self.num_banks)
        if mask is not None:
            banks = (addrs >> default_shift) & mask
        else:
            banks = (addrs >> default_shift) % self.num_banks
        if 0 < self._starts.size <= 8:
            # Few entries (every paper config: 7 pools): E linear range
            # masks beat one binary search per address — measured ~1.4x
            # on mixed 500k batches.  Ranges are disjoint, so per-entry
            # scatter order can't matter.  The batch's [lo, hi] span
            # (already reduced above) skips entries it cannot touch
            # with two scalar compares instead of a full mask pass.
            for start, end, shift in zip(self._starts, self._ends,
                                         self._shifts):
                if lo is not None and (end <= lo or start > hi):
                    continue
                m = (addrs >= start) & (addrs < end)
                if m.any():
                    override = (addrs[m] - start) >> shift
                    banks[m] = (override & mask if mask is not None
                                else override % self.num_banks)
        elif self._starts.size:
            idx = np.searchsorted(self._starts, addrs, side="right") - 1
            cand = np.maximum(idx, 0)
            inside = (idx >= 0) & (addrs < self._ends[cand])
            if inside.any():
                a = addrs[inside]
                c = cand[inside]
                override = (a - self._starts[c]) >> self._shifts[c]
                banks[inside] = (override & mask if mask is not None
                                 else override % self.num_banks)
        return banks

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return f"InterleaveOverrideTable({len(self._entries)}/{self.capacity} entries)"
