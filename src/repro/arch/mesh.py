"""Mesh topology and X-Y (dimension-ordered) routing.

Tiles are numbered row-major: tile ``t`` sits at column ``t % width`` and
row ``t // width``.  Each tile hosts one core and one L3 bank, so "bank id"
and "tile id" share the same coordinate space (paper Fig 1(d)).

All hop computations are vectorized over numpy arrays because the trace
executor feeds millions of (src, dst) pairs through them.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

import numpy as np

__all__ = ["Mesh"]


class Mesh:
    """An ``width x height`` 2D mesh with X-Y routing.

    X-Y routing moves a message fully along the X dimension first, then
    along Y.  It is deterministic, which lets us attribute every message to
    an exact set of directed links and expose bisection bottlenecks
    (paper Fig 3(b)).
    """

    def __init__(self, width: int, height: int):
        if width <= 0 or height <= 0:
            raise ValueError(f"mesh dimensions must be positive, got {width}x{height}")
        self.width = width
        self.height = height
        self.num_tiles = width * height
        # Directed links: (x-links) + (y-links). A link id encodes
        # (from_tile, direction); see _link_id below.
        self.num_links = self.num_tiles * 4  # E, W, N, S per tile (edge links unused)

    # ------------------------------------------------------------------
    # Coordinates
    # ------------------------------------------------------------------
    def coords(self, tile: "np.ndarray | int"):
        """Return (x, y) coordinates for tile id(s)."""
        tile = np.asarray(tile)
        return tile % self.width, tile // self.width

    def tile_at(self, x: int, y: int) -> int:
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise ValueError(f"coordinate ({x},{y}) outside {self.width}x{self.height} mesh")
        return y * self.width + x

    def validate_tiles(self, tiles: np.ndarray) -> None:
        tiles = np.asarray(tiles)
        if tiles.size and (tiles.min() < 0 or tiles.max() >= self.num_tiles):
            raise ValueError("tile id out of range")

    # ------------------------------------------------------------------
    # Distances
    # ------------------------------------------------------------------
    def hops(self, src, dst) -> np.ndarray:
        """Manhattan distance between tiles (vectorized).

        With X-Y routing the route length equals the Manhattan distance,
        so this is both "distance" and "number of link traversals".
        """
        sx, sy = self.coords(np.asarray(src))
        dx, dy = self.coords(np.asarray(dst))
        return np.abs(sx - dx) + np.abs(sy - dy)

    def mean_hops_to(self, dst: int, sources: Iterable[int]) -> float:
        """Average hop count from each source tile to ``dst``."""
        src = np.asarray(list(sources))
        if src.size == 0:
            return 0.0
        return float(self.hops(src, dst).mean())

    def hops_to_all(self, targets: np.ndarray) -> np.ndarray:
        """Matrix ``M[b, i]`` = hops from every tile ``b`` to ``targets[i]``.

        Used by the bank-select policy to score all candidate banks against
        a small set of affinity addresses in one shot.
        """
        targets = np.asarray(targets)
        all_tiles = np.arange(self.num_tiles)
        bx, by = self.coords(all_tiles)
        tx, ty = self.coords(targets)
        return np.abs(bx[:, None] - tx[None, :]) + np.abs(by[:, None] - ty[None, :])

    # ------------------------------------------------------------------
    # Link-level routing
    # ------------------------------------------------------------------
    # Directions for link ids.
    _EAST, _WEST, _NORTH, _SOUTH = 0, 1, 2, 3

    def _link_id(self, tile: int, direction: int) -> int:
        return tile * 4 + direction

    def route_links(self, src: int, dst: int) -> List[int]:
        """Directed link ids on the X-Y route from ``src`` to ``dst``."""
        links: List[int] = []
        sx, sy = src % self.width, src // self.width
        dx, dy = dst % self.width, dst // self.width
        x, y = sx, sy
        while x != dx:
            step = 1 if dx > x else -1
            direction = self._EAST if step > 0 else self._WEST
            links.append(self._link_id(self.tile_at(x, y), direction))
            x += step
        while y != dy:
            step = 1 if dy > y else -1
            direction = self._SOUTH if step > 0 else self._NORTH
            links.append(self._link_id(self.tile_at(x, y), direction))
            y += step
        return links

    def link_loads(self, src: np.ndarray, dst: np.ndarray, weight: np.ndarray) -> np.ndarray:
        """Accumulate per-link load for weighted (src, dst) message batches.

        ``weight`` is typically flits (or bytes).  Because the number of
        distinct (src, dst) pairs is bounded by ``num_tiles**2`` (4096 on
        the 8x8 mesh), we first collapse the batch onto pair ids with
        ``bincount`` and only then walk routes — keeping this fast even for
        multi-million-element traces.

        Returns an array of length ``num_links`` with accumulated weight.
        """
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        weight = np.broadcast_to(np.asarray(weight, dtype=np.float64), src.shape)
        pair = src * self.num_tiles + dst
        pair_weight = np.bincount(pair, weights=weight, minlength=self.num_tiles ** 2)
        loads = np.zeros(self.num_links, dtype=np.float64)
        nonzero = np.nonzero(pair_weight)[0]
        for p in nonzero:
            s, d = divmod(int(p), self.num_tiles)
            if s == d:
                continue
            for link in self.route_links(s, d):
                loads[link] += pair_weight[p]
        return loads

    def bisection_links(self) -> Tuple[List[int], List[int]]:
        """Link ids crossing the vertical mid-cut (both directions).

        Returns (eastward, westward) link lists across the cut between
        column ``width//2 - 1`` and ``width//2``.
        """
        cut = self.width // 2 - 1
        east, west = [], []
        for y in range(self.height):
            east.append(self._link_id(self.tile_at(cut, y), self._EAST))
            west.append(self._link_id(self.tile_at(cut + 1, y), self._WEST))
        return east, west

    def __repr__(self) -> str:
        return f"Mesh({self.width}x{self.height})"
