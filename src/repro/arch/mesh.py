"""Mesh topology and X-Y (dimension-ordered) routing.

Tiles are numbered row-major: tile ``t`` sits at column ``t % width`` and
row ``t // width``.  Each tile hosts one core and one L3 bank, so "bank id"
and "tile id" share the same coordinate space (paper Fig 1(d)).

All hop computations are vectorized over numpy arrays because the trace
executor feeds millions of (src, dst) pairs through them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

import numpy as np

__all__ = ["Mesh", "RoutingIncidence"]


@dataclass(frozen=True)
class RoutingIncidence:
    """Sparse pair->channel incidence of one mesh geometry (CSR-style).

    X-Y routing is deterministic, so the set of directed links a
    (src, dst) pair traverses is a pure function of the geometry.  This
    structure precomputes it for *all* ``num_tiles**2`` pairs once, so
    expanding per-pair flit counts onto channels becomes a single
    weighted scatter-add (see :func:`repro.arch.noc.pair_channel_loads`)
    instead of a per-pair Python loop.

    Arrays (all int64, pair ids ascending = ``src * n + dst``):

    * ``link_ids`` — concatenated route links of every pair, pair-major;
      ``route_counts`` plays the role of CSR row lengths (diagonal pairs
      contribute zero entries).
    * ``route_counts`` — hops per pair (length ``n**2``); doubles as the
      repeat count that expands a pair-weight vector onto ``link_ids``.
    * ``pair_src`` / ``pair_dst`` — src and dst tile per pair id, for
      injection/ejection port accounting.
    * ``diagonal`` — pair ids with ``src == dst`` (no NoC traversal).
    """

    link_ids: np.ndarray
    route_counts: np.ndarray
    pair_src: np.ndarray
    pair_dst: np.ndarray
    diagonal: np.ndarray


#: Process-wide incidence memo, keyed by (width, height).  Meshes are
#: immutable value objects, so every Mesh/TrafficAccountant of the same
#: geometry (including the per-phase loads of every run in a sweep)
#: shares one structure.
_INCIDENCE_CACHE: Dict[Tuple[int, int], RoutingIncidence] = {}


class Mesh:
    """An ``width x height`` 2D mesh with X-Y routing.

    X-Y routing moves a message fully along the X dimension first, then
    along Y.  It is deterministic, which lets us attribute every message to
    an exact set of directed links and expose bisection bottlenecks
    (paper Fig 3(b)).
    """

    def __init__(self, width: int, height: int):
        if width <= 0 or height <= 0:
            raise ValueError(f"mesh dimensions must be positive, got {width}x{height}")
        self.width = width
        self.height = height
        self.num_tiles = width * height
        # Directed links: (x-links) + (y-links). A link id encodes
        # (from_tile, direction); see _link_id below.
        self.num_links = self.num_tiles * 4  # E, W, N, S per tile (edge links unused)

    # ------------------------------------------------------------------
    # Coordinates
    # ------------------------------------------------------------------
    def coords(self, tile: "np.ndarray | int"):
        """Return (x, y) coordinates for tile id(s)."""
        tile = np.asarray(tile)
        return tile % self.width, tile // self.width

    def tile_at(self, x: int, y: int) -> int:
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise ValueError(f"coordinate ({x},{y}) outside {self.width}x{self.height} mesh")
        return y * self.width + x

    def validate_tiles(self, tiles: np.ndarray) -> None:
        tiles = np.asarray(tiles)
        if tiles.size and (tiles.min() < 0 or tiles.max() >= self.num_tiles):
            raise ValueError("tile id out of range")

    # ------------------------------------------------------------------
    # Distances
    # ------------------------------------------------------------------
    def hops(self, src, dst) -> np.ndarray:
        """Manhattan distance between tiles (vectorized).

        With X-Y routing the route length equals the Manhattan distance,
        so this is both "distance" and "number of link traversals".
        """
        sx, sy = self.coords(np.asarray(src))
        dx, dy = self.coords(np.asarray(dst))
        return np.abs(sx - dx) + np.abs(sy - dy)

    def mean_hops_to(self, dst: int, sources: Iterable[int]) -> float:
        """Average hop count from each source tile to ``dst``."""
        src = np.asarray(list(sources))
        if src.size == 0:
            return 0.0
        return float(self.hops(src, dst).mean())

    def hops_to_all(self, targets: np.ndarray) -> np.ndarray:
        """Matrix ``M[b, i]`` = hops from every tile ``b`` to ``targets[i]``.

        Used by the bank-select policy to score all candidate banks against
        a small set of affinity addresses in one shot.
        """
        targets = np.asarray(targets)
        all_tiles = np.arange(self.num_tiles)
        bx, by = self.coords(all_tiles)
        tx, ty = self.coords(targets)
        return np.abs(bx[:, None] - tx[None, :]) + np.abs(by[:, None] - ty[None, :])

    # ------------------------------------------------------------------
    # Link-level routing
    # ------------------------------------------------------------------
    # Directions for link ids.
    _EAST, _WEST, _NORTH, _SOUTH = 0, 1, 2, 3

    def _link_id(self, tile: int, direction: int) -> int:
        return tile * 4 + direction

    def route_links(self, src: int, dst: int) -> List[int]:
        """Directed link ids on the X-Y route from ``src`` to ``dst``."""
        links: List[int] = []
        sx, sy = src % self.width, src // self.width
        dx, dy = dst % self.width, dst // self.width
        x, y = sx, sy
        while x != dx:
            step = 1 if dx > x else -1
            direction = self._EAST if step > 0 else self._WEST
            links.append(self._link_id(self.tile_at(x, y), direction))
            x += step
        while y != dy:
            step = 1 if dy > y else -1
            direction = self._SOUTH if step > 0 else self._NORTH
            links.append(self._link_id(self.tile_at(x, y), direction))
            y += step
        return links

    def routing_incidence(self) -> RoutingIncidence:
        """The pair->channel incidence for this geometry (memoized).

        Built once per (width, height) by walking :meth:`route_links` for
        every ordered pair, then shared process-wide; consumers expand
        pair-weight vectors onto channels with ``np.repeat`` +
        ``np.bincount`` (see :func:`repro.arch.noc.pair_channel_loads`,
        the single consumer of the link-route part).
        """
        key = (self.width, self.height)
        inc = _INCIDENCE_CACHE.get(key)
        if inc is None:
            inc = self._build_incidence()
            _INCIDENCE_CACHE[key] = inc
        return inc

    def _build_incidence(self) -> RoutingIncidence:
        n = self.num_tiles
        counts = np.zeros(n * n, dtype=np.int64)
        links: List[int] = []
        for s in range(n):
            for d in range(n):
                if s == d:
                    continue
                route = self.route_links(s, d)
                counts[s * n + d] = len(route)
                links.extend(route)
        pair_ids = np.arange(n * n, dtype=np.int64)
        arrays = (
            np.asarray(links, dtype=np.int64),
            counts,
            pair_ids // n,
            pair_ids % n,
            np.arange(n, dtype=np.int64) * (n + 1),
        )
        for a in arrays:
            a.setflags(write=False)  # shared process-wide
        return RoutingIncidence(*arrays)

    def link_loads(self, src: np.ndarray, dst: np.ndarray, weight: np.ndarray) -> np.ndarray:
        """Accumulate per-link load for weighted (src, dst) message batches.

        ``weight`` is typically flits (or bytes).  Because the number of
        distinct (src, dst) pairs is bounded by ``num_tiles**2`` (4096 on
        the 8x8 mesh), we first collapse the batch onto pair ids with
        ``bincount``; the pair->link expansion is the shared scatter-add
        in :func:`repro.arch.noc.pair_channel_loads` (this method keeps
        only the router-to-router slice, not the inject/eject ports).

        Returns an array of length ``num_links`` with accumulated weight.
        """
        from repro.arch.noc import pair_channel_loads  # local: avoid cycle

        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        weight = np.broadcast_to(np.asarray(weight, dtype=np.float64), src.shape)
        pair = src * self.num_tiles + dst
        pair_weight = np.bincount(pair, weights=weight, minlength=self.num_tiles ** 2)
        return pair_channel_loads(self, pair_weight)[:self.num_links]

    def bisection_links(self) -> Tuple[List[int], List[int]]:
        """Link ids crossing the vertical mid-cut (both directions).

        Returns (eastward, westward) link lists across the cut between
        column ``width//2 - 1`` and ``width//2``.
        """
        cut = self.width // 2 - 1
        east, west = [], []
        for y in range(self.height):
            east.append(self._link_id(self.tile_at(cut, y), self._EAST))
            west.append(self._link_id(self.tile_at(cut + 1, y), self._WEST))
        return east, west

    def __repr__(self) -> str:
        return f"Mesh({self.width}x{self.height})"
