"""Mesh topology and X-Y (dimension-ordered) routing.

Tiles are numbered row-major: tile ``t`` sits at column ``t % width`` and
row ``t // width``.  Each tile hosts one core and one L3 bank, so "bank id"
and "tile id" share the same coordinate space (paper Fig 1(d)).

All hop computations are vectorized over numpy arrays because the trace
executor feeds millions of (src, dst) pairs through them.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

import numpy as np

from repro.analysis.diagnostics import TopologyError

__all__ = ["Mesh", "RoutingIncidence"]


@dataclass(frozen=True)
class RoutingIncidence:
    """Sparse pair->channel incidence of one mesh geometry (CSR-style).

    X-Y routing is deterministic, so the set of directed links a
    (src, dst) pair traverses is a pure function of the geometry.  This
    structure precomputes it for *all* ``num_tiles**2`` pairs once, so
    expanding per-pair flit counts onto channels becomes a single
    weighted scatter-add (see :func:`repro.arch.noc.pair_channel_loads`)
    instead of a per-pair Python loop.

    Arrays (all int64, pair ids ascending = ``src * n + dst``):

    * ``link_ids`` — concatenated route links of every pair, pair-major;
      ``route_counts`` plays the role of CSR row lengths (diagonal pairs
      contribute zero entries).
    * ``route_counts`` — hops per pair (length ``n**2``); doubles as the
      repeat count that expands a pair-weight vector onto ``link_ids``.
    * ``pair_src`` / ``pair_dst`` — src and dst tile per pair id, for
      injection/ejection port accounting.
    * ``diagonal`` — pair ids with ``src == dst`` (no NoC traversal).
    """

    link_ids: np.ndarray
    route_counts: np.ndarray
    pair_src: np.ndarray
    pair_dst: np.ndarray
    diagonal: np.ndarray


#: Process-wide incidence memo, keyed by the full topology — geometry
#: plus the (usually empty) set of dead links.  Pristine meshes are
#: immutable value objects, so every Mesh/TrafficAccountant of the same
#: geometry (including the per-phase loads of every run in a sweep)
#: shares one structure; a degraded mesh keys a separate entry, so link
#: removal can never serve stale routes (the PR 3 memo had no
#: invalidation hook at all).
_INCIDENCE_CACHE: Dict[Tuple[int, int, FrozenSet[int]], RoutingIncidence] = {}


class Mesh:
    """An ``width x height`` 2D mesh with X-Y routing.

    X-Y routing moves a message fully along the X dimension first, then
    along Y.  It is deterministic, which lets us attribute every message to
    an exact set of directed links and expose bisection bottlenecks
    (paper Fig 3(b)).
    """

    def __init__(self, width: int, height: int):
        if width <= 0 or height <= 0:
            raise ValueError(f"mesh dimensions must be positive, got {width}x{height}")
        self.width = width
        self.height = height
        self.num_tiles = width * height
        # Directed links: (x-links) + (y-links). A link id encodes
        # (from_tile, direction); see _link_id below.
        self.num_links = self.num_tiles * 4  # E, W, N, S per tile (edge links unused)
        # Degraded-topology state (chaos fault injection).  A pristine
        # mesh has an empty dead set and epoch 0 and takes exactly the
        # original Manhattan / X-Y code paths, bit for bit.
        self._dead_links: FrozenSet[int] = frozenset()
        self.topology_epoch = 0
        self._dist_table: Optional[np.ndarray] = None
        self._route_memo: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        # Full all-pairs hop table, memoized per topology epoch (the
        # bank-select hot paths slice it instead of re-broadcasting
        # Manhattan distances on every allocation batch).
        self._hops_table: Optional[np.ndarray] = None
        self._hops_table_epoch: int = -1

    # ------------------------------------------------------------------
    # Topology (degraded routing around dead links)
    # ------------------------------------------------------------------
    @property
    def dead_links(self) -> FrozenSet[int]:
        return self._dead_links

    @property
    def topology_key(self) -> Tuple[int, int, FrozenSet[int]]:
        """Hashable key identifying this exact topology (geometry + dead
        links) — the cache key for every process-wide routing memo."""
        return (self.width, self.height, self._dead_links)

    def _neighbor(self, tile: int, direction: int) -> int:
        """Neighbor tile in ``direction``, or -1 at the mesh edge."""
        x, y = tile % self.width, tile // self.width
        if direction == self._EAST:
            return tile + 1 if x + 1 < self.width else -1
        if direction == self._WEST:
            return tile - 1 if x > 0 else -1
        if direction == self._NORTH:
            return tile - self.width if y > 0 else -1
        return tile + self.width if y + 1 < self.height else -1

    def undirected_interior_links(self) -> List[Tuple[int, int]]:
        """Every physical (bidirectional) link as an ``(a, b)`` tile pair
        with ``a < b``, in deterministic ascending order.  This is the
        sample space for link-failure fault generation."""
        pairs: List[Tuple[int, int]] = []
        for t in range(self.num_tiles):
            e = self._neighbor(t, self._EAST)
            if e >= 0:
                pairs.append((t, e))
            s = self._neighbor(t, self._SOUTH)
            if s >= 0:
                pairs.append((t, s))
        pairs.sort()
        return pairs

    def _directed_pair_links(self, a: int, b: int) -> Tuple[int, int]:
        """The two directed link ids joining adjacent tiles ``a`` and ``b``."""
        for direction in (self._EAST, self._WEST, self._NORTH, self._SOUTH):
            if self._neighbor(a, direction) == b:
                back = {self._EAST: self._WEST, self._WEST: self._EAST,
                        self._NORTH: self._SOUTH, self._SOUTH: self._NORTH}[direction]
                return self._link_id(a, direction), self._link_id(b, back)
        raise TopologyError(f"tiles {a} and {b} are not mesh neighbors")

    def remove_link_between(self, a: int, b: int) -> None:
        """Kill the bidirectional link between adjacent tiles ``a``, ``b``.

        Bumps :attr:`topology_epoch` so every memoized routing structure
        (incidence, hop tables, accountant channel caches) is rebuilt.
        Refuses removals that would disconnect the mesh — the degraded
        machine must still be able to route every pair.
        """
        fwd, rev = self._directed_pair_links(a, b)
        if fwd in self._dead_links:
            return  # already dead; idempotent
        candidate = self._dead_links | {fwd, rev}
        if not self._connected(candidate):
            raise TopologyError(
                f"removing link {a}<->{b} would disconnect the mesh")
        self._dead_links = candidate
        self.topology_epoch += 1
        self._dist_table = None
        self._route_memo.clear()

    def _connected(self, dead: FrozenSet[int]) -> bool:
        """True if every tile is reachable from tile 0 over live links.

        Links die in bidirectional pairs, so the live graph is symmetric
        and plain reachability equals strong connectivity.
        """
        seen = np.zeros(self.num_tiles, dtype=bool)
        seen[0] = True
        queue = deque([0])
        while queue:
            t = queue.popleft()
            for direction in (self._EAST, self._WEST, self._NORTH, self._SOUTH):
                nb = self._neighbor(t, direction)
                if nb < 0 or seen[nb] or self._link_id(t, direction) in dead:
                    continue
                seen[nb] = True
                queue.append(nb)
        return bool(seen.all())

    def _bfs_from(self, src: int) -> Tuple[np.ndarray, np.ndarray]:
        """BFS shortest-path tree from ``src`` over live links.

        Returns ``(dist, parent_link)`` arrays; ``parent_link[t]`` is the
        directed link taken *into* ``t`` on the tree path (-1 at src).
        Neighbor expansion order is fixed (E, W, N, S), so ties break the
        same way in every process — degraded routes are deterministic.
        """
        memo = self._route_memo.get(src)
        if memo is not None:
            return memo
        dist = np.full(self.num_tiles, -1, dtype=np.int64)
        parent_link = np.full(self.num_tiles, -1, dtype=np.int64)
        parent_tile = np.full(self.num_tiles, -1, dtype=np.int64)
        dist[src] = 0
        queue = deque([src])
        while queue:
            t = queue.popleft()
            for direction in (self._EAST, self._WEST, self._NORTH, self._SOUTH):
                nb = self._neighbor(t, direction)
                link = self._link_id(t, direction)
                if nb < 0 or dist[nb] >= 0 or link in self._dead_links:
                    continue
                dist[nb] = dist[t] + 1
                parent_link[nb] = link
                parent_tile[nb] = t
                queue.append(nb)
        self._route_memo[src] = (dist, np.stack([parent_link, parent_tile]))
        return self._route_memo[src]

    def _distance_table(self) -> np.ndarray:
        """All-pairs hop distances over live links (degraded mode only)."""
        if self._dist_table is None:
            n = self.num_tiles
            table = np.empty((n, n), dtype=np.int64)
            for s in range(n):
                dist, _ = self._bfs_from(s)
                table[s] = dist
            table.setflags(write=False)
            self._dist_table = table
        return self._dist_table

    # ------------------------------------------------------------------
    # Coordinates
    # ------------------------------------------------------------------
    def coords(self, tile: "np.ndarray | int"):
        """Return (x, y) coordinates for tile id(s)."""
        tile = np.asarray(tile)
        return tile % self.width, tile // self.width

    def tile_at(self, x: int, y: int) -> int:
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise ValueError(f"coordinate ({x},{y}) outside {self.width}x{self.height} mesh")
        return y * self.width + x

    def validate_tiles(self, tiles: np.ndarray) -> None:
        tiles = np.asarray(tiles)
        if tiles.size and (tiles.min() < 0 or tiles.max() >= self.num_tiles):
            raise ValueError("tile id out of range")

    # ------------------------------------------------------------------
    # Distances
    # ------------------------------------------------------------------
    def hops(self, src, dst) -> np.ndarray:
        """Distance between tiles in link traversals (vectorized).

        Pristine mesh: Manhattan distance (route length equals Manhattan
        distance under X-Y routing).  With dead links, distances come
        from the memoized BFS all-pairs table over live links.
        """
        # One gather from the memoized all-pairs table beats the seven
        # elementwise passes of the coordinate arithmetic; the pristine
        # table holds the identical Manhattan integers.
        return self.hops_table()[np.asarray(src), np.asarray(dst)]

    def mean_hops_to(self, dst: int, sources: Iterable[int]) -> float:
        """Average hop count from each source tile to ``dst``."""
        src = np.asarray(list(sources))
        if src.size == 0:
            return 0.0
        return float(self.hops(src, dst).mean())

    def hops_table(self) -> np.ndarray:
        """Full ``(num_tiles, num_tiles)`` hop table, **read-only** and
        memoized per :attr:`topology_epoch`.

        ``table[b, d]`` = hops from ``b`` to ``d``.  The bank-select hot
        paths (``malloc_irregular_batch``, ``_chained_hybrid``) consume
        the whole table every batch; building the Manhattan broadcast
        (or BFS table) once per topology and slicing is bit-identical
        and removes an O(num_tiles²) rebuild per allocation batch.
        """
        if (self._hops_table is None
                or self._hops_table_epoch != self.topology_epoch):
            if self._dead_links:
                table = self._distance_table()
            else:
                all_tiles = np.arange(self.num_tiles)
                bx, by = self.coords(all_tiles)
                table = (np.abs(bx[:, None] - bx[None, :])
                         + np.abs(by[:, None] - by[None, :]))
                table.setflags(write=False)
            self._hops_table = table
            self._hops_table_epoch = self.topology_epoch
        return self._hops_table

    def hops_to_all(self, targets: np.ndarray) -> np.ndarray:
        """Matrix ``M[b, i]`` = hops from every tile ``b`` to ``targets[i]``.

        Used by the bank-select policy to score all candidate banks against
        a small set of affinity addresses in one shot.  Slices the
        memoized :meth:`hops_table` — same integers as the original
        per-call Manhattan broadcast, without the rebuild.
        """
        targets = np.asarray(targets)
        if self._dead_links:
            return self._distance_table()[:, targets]
        return self.hops_table()[:, targets]

    # ------------------------------------------------------------------
    # Link-level routing
    # ------------------------------------------------------------------
    # Directions for link ids.
    _EAST, _WEST, _NORTH, _SOUTH = 0, 1, 2, 3

    def _link_id(self, tile: int, direction: int) -> int:
        return tile * 4 + direction

    def route_links(self, src: int, dst: int) -> List[int]:
        """Directed link ids on the route from ``src`` to ``dst``.

        Pristine mesh: the X-Y route.  With dead links: the BFS
        shortest path over live links (deterministic tie-breaking).
        """
        if self._dead_links:
            return self._route_links_degraded(src, dst)
        links: List[int] = []
        sx, sy = src % self.width, src // self.width
        dx, dy = dst % self.width, dst // self.width
        x, y = sx, sy
        while x != dx:
            step = 1 if dx > x else -1
            direction = self._EAST if step > 0 else self._WEST
            links.append(self._link_id(self.tile_at(x, y), direction))
            x += step
        while y != dy:
            step = 1 if dy > y else -1
            direction = self._SOUTH if step > 0 else self._NORTH
            links.append(self._link_id(self.tile_at(x, y), direction))
            y += step
        return links

    def _route_links_degraded(self, src: int, dst: int) -> List[int]:
        dist, parents = self._bfs_from(src)
        if dist[dst] < 0:
            raise TopologyError(f"no route from {src} to {dst}")
        parent_link, parent_tile = parents
        links: List[int] = []
        t = dst
        while t != src:
            links.append(int(parent_link[t]))
            t = int(parent_tile[t])
        links.reverse()
        return links

    def routing_incidence(self) -> RoutingIncidence:
        """The pair->channel incidence for this geometry (memoized).

        Built once per (width, height) by walking :meth:`route_links` for
        every ordered pair, then shared process-wide; consumers expand
        pair-weight vectors onto channels with ``np.repeat`` +
        ``np.bincount`` (see :func:`repro.arch.noc.pair_channel_loads`,
        the single consumer of the link-route part).
        """
        key = self.topology_key
        inc = _INCIDENCE_CACHE.get(key)
        if inc is None:
            inc = self._build_incidence()
            _INCIDENCE_CACHE[key] = inc
        return inc

    def _build_incidence(self) -> RoutingIncidence:
        n = self.num_tiles
        counts = np.zeros(n * n, dtype=np.int64)
        links: List[int] = []
        for s in range(n):
            for d in range(n):
                if s == d:
                    continue
                route = self.route_links(s, d)
                counts[s * n + d] = len(route)
                links.extend(route)
        pair_ids = np.arange(n * n, dtype=np.int64)
        arrays = (
            np.asarray(links, dtype=np.int64),
            counts,
            pair_ids // n,
            pair_ids % n,
            np.arange(n, dtype=np.int64) * (n + 1),
        )
        for a in arrays:
            a.setflags(write=False)  # shared process-wide
        return RoutingIncidence(*arrays)

    def link_loads(self, src: np.ndarray, dst: np.ndarray, weight: np.ndarray) -> np.ndarray:
        """Accumulate per-link load for weighted (src, dst) message batches.

        ``weight`` is typically flits (or bytes).  Because the number of
        distinct (src, dst) pairs is bounded by ``num_tiles**2`` (4096 on
        the 8x8 mesh), we first collapse the batch onto pair ids with
        ``bincount``; the pair->link expansion is the shared scatter-add
        in :func:`repro.arch.noc.pair_channel_loads` (this method keeps
        only the router-to-router slice, not the inject/eject ports).

        Returns an array of length ``num_links`` with accumulated weight.
        """
        from repro.arch.noc import pair_channel_loads  # local: avoid cycle

        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        weight = np.broadcast_to(np.asarray(weight, dtype=np.float64), src.shape)
        pair = src * self.num_tiles + dst
        pair_weight = np.bincount(pair, weights=weight, minlength=self.num_tiles ** 2)
        return pair_channel_loads(self, pair_weight)[:self.num_links]

    def bisection_links(self) -> Tuple[List[int], List[int]]:
        """Link ids crossing the vertical mid-cut (both directions).

        Returns (eastward, westward) link lists across the cut between
        column ``width//2 - 1`` and ``width//2``.
        """
        cut = self.width // 2 - 1
        east, west = [], []
        for y in range(self.height):
            east.append(self._link_id(self.tile_at(cut, y), self._EAST))
            west.append(self._link_id(self.tile_at(cut + 1, y), self._WEST))
        return east, west

    def __repr__(self) -> str:
        return f"Mesh({self.width}x{self.height})"
