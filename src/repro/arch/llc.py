"""Shared L3 (NUCA LLC) model: bank mapping, footprints, and misses.

Mapping is the composition the paper describes: the IOT overrides the
default static-NUCA hash (1 KiB physical interleave) for physical ranges
that belong to interleave pools.  This module consumes *physical*
addresses; the VM layer translates virtual to physical first.

Capacity modelling is deliberately coarse (see DESIGN.md §5): each bank
tracks the resident footprint of distinct lines mapped to it; a workload's
miss ratio on a bank follows from footprint vs. capacity and the
workload's reuse pattern.  This reproduces the two capacity effects the
paper reports: the input-size scaling cliffs (Figs 15/16) and the Min-Hop
single-bank pathology on bin_tree (Fig 13).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.arch.iot import InterleaveOverrideTable
from repro.config import CacheConfig

__all__ = ["LlcModel", "RangeMove"]


@dataclass(frozen=True)
class RangeMove:
    """Result of :meth:`LlcModel.rehome_range`: which lines moved where."""

    old_banks: np.ndarray
    new_banks: np.ndarray
    moved_lines: int
    moved_bytes: float


class LlcModel:
    """Bank mapping plus per-bank footprint/miss accounting."""

    def __init__(self, num_banks: int, cache: CacheConfig,
                 iot: Optional[InterleaveOverrideTable] = None):
        self.num_banks = num_banks
        self.cache = cache
        self.iot = iot if iot is not None else InterleaveOverrideTable(num_banks, cache.iot_entries)
        self._default_shift = int(cache.default_interleave).bit_length() - 1
        if (1 << self._default_shift) != cache.default_interleave:
            raise ValueError("default_interleave must be a power of two")
        # Distinct resident lines per bank, tracked as sets of line ids in
        # chunked form: we only need footprint *bytes*, so a per-bank count
        # of distinct lines observed is enough.  Distinctness is
        # approximated by the caller registering data ranges once.
        self._footprint_bytes = np.zeros(num_banks, dtype=np.float64)

    # ------------------------------------------------------------------
    # Mapping
    # ------------------------------------------------------------------
    def bank_of(self, paddr: int) -> int:
        return int(self.banks_of(np.asarray([paddr]))[0])

    def banks_of(self, paddrs: np.ndarray, raw: bool = False) -> np.ndarray:
        """Physical address(es) -> owning L3 bank id (vectorized).

        ``raw=True`` bypasses any fault-injection bank remap and returns
        the pre-fault mapping (used by the executor's fault guard to
        detect touches of failed banks).
        """
        return self.iot.banks(np.asarray(paddrs, dtype=np.int64),
                              self._default_shift, apply_remap=not raw)

    def rehome_bank(self, bank: int, replacement: int) -> float:
        """Retire ``bank`` onto ``replacement`` (chaos bank failure).

        Installs the IOT remap and migrates the failed bank's resident
        footprint onto the replacement, so capacity pressure (and hence
        miss fractions) degrade measurably.  Returns the bytes moved.
        """
        self.iot.retire_bank(bank, replacement)
        moved = float(self._footprint_bytes[bank])
        self._footprint_bytes[replacement] += moved
        self._footprint_bytes[bank] = 0.0
        return moved

    def rehome_range(self, paddr: int, size: int, shift: int,
                     offset: int) -> "RangeMove":
        """Re-home one physical range via an IOT migration override.

        The online re-layout primitive: unregister the range's footprint
        under the *current* mapping, install (or replace) a migration
        entry rotating its bank assignment, and re-register under the new
        mapping.  Returns the per-line old/new banks so the caller can
        charge migration traffic for exactly the lines that moved.
        """
        from repro.arch.iot import MigrationEntry
        line = self.cache.line_bytes
        start = paddr - (paddr % line)
        end = paddr + size
        nlines = (end - start + line - 1) // line
        line_addrs = start + np.arange(nlines, dtype=np.int64) * line
        old_banks = self.banks_of(line_addrs)
        self.unregister_range(paddr, size)
        self.iot.install_migration(
            MigrationEntry(start=paddr, end=paddr + size,
                           shift=shift, offset=offset))
        new_banks = self.banks_of(line_addrs)
        self.register_range(paddr, size)
        moved = old_banks != new_banks
        return RangeMove(old_banks=old_banks, new_banks=new_banks,
                         moved_lines=int(moved.sum()),
                         moved_bytes=float(moved.sum()) * float(line))

    def swap_banks(self, a: int, b: int) -> float:
        """Swap two banks' future mappings and their resident footprints.

        Returns the bytes moved (both directions) — the migration cost the
        relayout engine charges.
        """
        self.iot.swap_banks(a, b)
        fa = float(self._footprint_bytes[a])
        fb = float(self._footprint_bytes[b])
        self._footprint_bytes[a] = fb
        self._footprint_bytes[b] = fa
        return fa + fb

    # ------------------------------------------------------------------
    # Footprint / capacity
    # ------------------------------------------------------------------
    def register_range(self, paddr: int, size: int) -> None:
        """Account a physical range as resident data.

        Called once per allocated object/array; splits the range across
        banks according to the current mapping.  (Re-registering the same
        range would double-count — allocator owns that discipline.)
        """
        if size <= 0:
            return
        line = self.cache.line_bytes
        start = paddr - (paddr % line)
        end = paddr + size
        nlines = (end - start + line - 1) // line
        line_addrs = start + np.arange(nlines, dtype=np.int64) * line
        banks = self.banks_of(line_addrs)
        self._footprint_bytes += np.bincount(banks, minlength=self.num_banks) * float(line)

    def register_spans(self, paddrs: np.ndarray, sizes: np.ndarray) -> None:
        """Batched :meth:`register_range` for many physical spans at once.

        Expands every span to its line addresses, maps all of them in one
        IOT lookup, and folds the whole batch into the footprint with a
        single ``bincount``.  Line counts are exact integers, so the one
        combined float add equals the per-span adds bit for bit.
        """
        paddrs = np.asarray(paddrs, dtype=np.int64)
        sizes = np.asarray(sizes, dtype=np.int64)
        keep = sizes > 0
        if not keep.all():
            paddrs, sizes = paddrs[keep], sizes[keep]
        if paddrs.size == 0:
            return
        line = self.cache.line_bytes
        if line & (line - 1) == 0:
            # Power-of-two lines: mask and shift equal mod and floor
            # division bit for bit on int64.
            starts = paddrs - (paddrs & (line - 1))
            nlines = (paddrs + sizes - starts + line - 1) >> (line.bit_length() - 1)
        else:
            starts = paddrs - (paddrs % line)
            nlines = (paddrs + sizes - starts + line - 1) // line
        # Per-span aranges, flattened: offset within span i is
        # (global position) - (start position of span i).
        span_base = np.cumsum(nlines) - nlines
        within = np.arange(int(nlines.sum()), dtype=np.int64) \
            - np.repeat(span_base, nlines)
        line_addrs = np.repeat(starts, nlines) + within * line
        banks = self.banks_of(line_addrs)
        self._footprint_bytes += np.bincount(banks, minlength=self.num_banks) * float(line)

    def register_by_banks(self, banks: np.ndarray, bytes_each: float,
                          counts=1.0) -> None:
        """Batch footprint registration for objects wholly within one bank
        each (e.g. pool slots): ``counts[i]`` objects of ``bytes_each`` on
        ``banks[i]``."""
        banks = np.asarray(banks, dtype=np.int64)
        counts = np.broadcast_to(np.asarray(counts, dtype=np.float64), banks.shape)
        self._footprint_bytes += (
            np.bincount(banks, weights=counts, minlength=self.num_banks) * bytes_each)

    def unregister_range(self, paddr: int, size: int) -> None:
        if size <= 0:
            return
        line = self.cache.line_bytes
        start = paddr - (paddr % line)
        end = paddr + size
        nlines = (end - start + line - 1) // line
        line_addrs = start + np.arange(nlines, dtype=np.int64) * line
        banks = self.banks_of(line_addrs)
        self._footprint_bytes -= np.bincount(banks, minlength=self.num_banks) * float(line)
        np.clip(self._footprint_bytes, 0.0, None, out=self._footprint_bytes)

    @property
    def footprint_bytes(self) -> np.ndarray:
        return self._footprint_bytes.copy()

    def bank_miss_fraction(self) -> np.ndarray:
        """Fraction of accesses to each bank that miss due to capacity.

        A bank whose resident footprint fits in capacity has ~0 capacity
        misses; beyond that, accesses distributed over the footprint hit
        with probability capacity/footprint (random-replacement streaming
        approximation), so miss fraction = max(0, 1 - cap/footprint).
        """
        cap = float(self.cache.bank_capacity_bytes)
        fp = np.maximum(self._footprint_bytes, 1e-9)
        return np.clip(1.0 - cap / fp, 0.0, 1.0)

    def miss_fraction_for_banks(self, bank_access_counts: np.ndarray,
                                reuse_fraction: float = 1.0) -> float:
        """Aggregate L3 miss ratio for a run.

        Args:
            bank_access_counts: accesses issued to each bank.
            reuse_fraction: fraction of accesses that are re-references and
                thus *can* miss on capacity (cold first-touches always miss
                in reality, but the paper's miss% plots are about capacity
                behaviour, so cold misses are folded into the model
                constant by the perf layer).
        """
        counts = np.asarray(bank_access_counts, dtype=np.float64)
        total = counts.sum()
        if total <= 0:
            return 0.0
        per_bank = self.bank_miss_fraction()
        return float(np.dot(counts, per_bank) / total) * reuse_fraction

    def reset_footprint(self) -> None:
        self._footprint_bytes[:] = 0.0
