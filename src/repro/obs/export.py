"""Exporters: Chrome trace-event JSON, flat metrics dumps, trace diffs.

The Chrome trace-event format is the least-common-denominator the
Perfetto UI (https://ui.perfetto.dev) and ``chrome://tracing`` both
load: a JSON object with a ``traceEvents`` list of ``ph``-typed events.
We emit complete spans (``X``), instants (``i``), counter samples
(``C``), and process-name metadata (``M``); timestamps are simulated
cycles presented as microseconds (the format has no unit field).
"""

from __future__ import annotations

import collections
import json
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = ["channel_labels", "chrome_trace", "diff_traces",
           "metrics_csv_lines", "top_entries", "validate_chrome_trace"]

_ALLOWED_PH = frozenset({"X", "i", "C", "M", "B", "E"})
_DIRECTIONS = ("E", "W", "N", "S")


# ----------------------------------------------------------------------
# Chrome trace-event emission
# ----------------------------------------------------------------------
def chrome_trace(runs: Iterable[Dict[str, Any]],
                 other_data: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Assemble one Chrome trace from resolved per-run event lists.

    Each entry of *runs* is ``{"pid": int, "label": str,
    "events": [resolved events from TraceState.resolved_events()]}``.
    One simulated machine maps to one trace "process".
    """
    trace_events: List[Dict[str, Any]] = []
    for run in runs:
        pid = int(run["pid"])
        trace_events.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "ts": 0, "args": {"name": str(run["label"])}})
        for ev in run["events"]:
            base: Dict[str, Any] = {"name": ev["name"], "pid": pid,
                                    "tid": 0, "ts": ev["ts"]}
            if ev["type"] == "span":
                base.update(ph="X", cat=ev["cat"], dur=ev["dur"],
                            args=ev.get("args", {}))
            elif ev["type"] == "instant":
                base.update(ph="i", cat=ev["cat"], s="t",
                            args=ev.get("args", {}))
            elif ev["type"] == "counter":
                base.update(ph="C", args={"value": ev["value"]})
            else:  # pragma: no cover - resolved_events emits only these
                continue
            trace_events.append(base)
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": dict(other_data or {}),
    }


def validate_chrome_trace(obj: Any) -> List[str]:
    """Structural validation against the trace-event schema.

    Returns a list of problems (empty = valid).  Checks the invariants
    Perfetto's importer relies on: typed ``ph``, per-event pid/tid/ts,
    non-negative durations on complete events, categories on spans and
    instants.
    """
    problems: List[str] = []
    if not isinstance(obj, dict):
        return ["top level is not a JSON object"]
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        return ["missing traceEvents list"]
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in _ALLOWED_PH:
            problems.append(f"{where}: bad ph {ph!r}")
            continue
        if not isinstance(ev.get("name"), str):
            problems.append(f"{where}: missing name")
        for field in ("pid", "tid"):
            if not isinstance(ev.get(field), int):
                problems.append(f"{where}: missing {field}")
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: bad ts {ts!r}")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: complete event with bad dur {dur!r}")
        if ph in ("X", "i") and not isinstance(ev.get("cat"), str):
            problems.append(f"{where}: {ph} event without cat")
        if ph == "C":
            args = ev.get("args")
            if not isinstance(args, dict) or not args:
                problems.append(f"{where}: counter event without args")
    return problems


def diff_traces(a: Dict[str, Any], b: Dict[str, Any],
                max_report: int = 20) -> List[str]:
    """Structural diff of two Chrome traces; empty list = identical.

    Determinism is the whole point of the virtual-time tracer, so the
    comparison is exact: same events, same order, same timestamps.
    """
    ea = a.get("traceEvents", []) if isinstance(a, dict) else []
    eb = b.get("traceEvents", []) if isinstance(b, dict) else []
    problems: List[str] = []
    if len(ea) != len(eb):
        problems.append(f"event count differs: {len(ea)} vs {len(eb)}")

    def signature(events: List[Any]) -> "collections.Counter[Tuple[Any, Any]]":
        return collections.Counter(
            (ev.get("ph"), ev.get("name")) for ev in events
            if isinstance(ev, dict))

    ca, cb = signature(ea), signature(eb)
    for key in sorted(set(ca) | set(cb), key=str):
        if ca[key] != cb[key]:
            ph, name = key
            problems.append(
                f"{ph}:{name}: {ca[key]} vs {cb[key]} events")
    if not problems:
        for i, (x, y) in enumerate(zip(ea, eb)):
            if x != y:
                problems.append(
                    f"traceEvents[{i}] differs: "
                    f"{json.dumps(x, sort_keys=True)[:100]} vs "
                    f"{json.dumps(y, sort_keys=True)[:100]}")
                if len(problems) >= max_report:
                    break
    return problems


# ----------------------------------------------------------------------
# Flat metrics + hot-spot helpers
# ----------------------------------------------------------------------
def metrics_csv_lines(data: Dict[str, Dict[str, float]]) -> List[str]:
    """Flatten ``{run_label: {metric_key: value}}`` to CSV lines."""
    lines = ["run,metric,value"]
    for run_label in sorted(data):
        for key in sorted(data[run_label]):
            lines.append(f"{run_label},{key},{data[run_label][key]!r}")
    return lines


def channel_labels(mesh: Any) -> List[str]:
    """Human labels matching :func:`pair_channel_loads` channel order:
    directed links (tile x 4 directions), then inject, then eject ports."""
    n = mesh.num_tiles
    labels = [f"link:{t}{_DIRECTIONS[d]}" for t in range(n) for d in range(4)]
    labels += [f"inject:{t}" for t in range(n)]
    labels += [f"eject:{t}" for t in range(n)]
    return labels


def top_entries(values: List[float], labels: List[str],
                n: int) -> List[Tuple[str, float]]:
    """Top-``n`` (label, value) pairs, ties broken by original order."""
    order = sorted(range(len(values)), key=lambda i: (-values[i], i))
    return [(labels[i], values[i]) for i in order[:n] if values[i] > 0.0]
