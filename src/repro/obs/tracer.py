"""Span-based tracer over *virtual time* (DESIGN.md §10).

The simulator has no global clock — phase durations come out of the
analytic :class:`~repro.perf.model.PerfModel` only when a run finishes.
The tracer therefore records events *positionally* during the run (which
phase they fell in, in what order) and resolves them onto the cycle axis
at run end, when the per-phase cycle counts exist:

* the run is one root span ``[0, sum(phase_cycles))``,
* each recorded phase is a child span at its cumulative offset,
* instants (allocations, offloaded streams, migrations, faults,
  retries) are placed inside their phase, evenly spaced in record
  order — deterministic, and faithful to ordering if not to exact
  sub-phase timing (which the model does not define).

Sessions mirror :func:`~repro.relayout.engine.relayout_session`:
``trace_session(cfg)`` installs a module-global session which
``make_context`` attaches to each new machine (``machine.tracer``);
``cfg=None`` is an explicit *off* session.  Every hook in the simulator
is gated on ``machine.tracer is None``, so untraced runs execute the
exact original instruction stream and stay byte-identical.
"""

from __future__ import annotations

import hashlib
import json
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.obs.metrics import (MetricsRegistry, publish_alloc_stats,
                               publish_fault_state, publish_relayout_state,
                               publish_run)

__all__ = ["SPAN_CATEGORIES", "TraceConfig", "TraceEvent", "TraceSession",
           "TraceState", "active_trace_session", "trace_session"]

#: The span/instant taxonomy (DESIGN.md §10).
SPAN_CATEGORIES: Tuple[str, ...] = (
    "run", "phase", "alloc", "stream", "migration", "fault", "retry")


@dataclass(frozen=True)
class TraceConfig:
    """Tracing knobs; frozen so it can key the artifact cache."""

    #: Attach instant arguments (bank ids, sizes, ...) to events.
    include_args: bool = True
    #: Hard cap on buffered instants per machine; overflow is counted,
    #: never raised (tracing must not perturb the run).
    max_events: int = 200_000

    def digest(self) -> str:
        """Short stable digest for cache keys (mirror of RelayoutConfig)."""
        blob = json.dumps(asdict(self), sort_keys=True)
        return hashlib.sha256(blob.encode()).hexdigest()[:12]


@dataclass
class TraceEvent:
    """One buffered instant, positioned by (phase_index, seq)."""

    name: str
    cat: str
    phase_index: int
    seq: int
    args: Dict[str, Any] = field(default_factory=dict)


class TraceState:
    """Per-machine tracing state; reachable as ``machine.tracer``.

    Created by :meth:`TraceSession.attach`.  Buffers instants during the
    run, snapshots per-phase counter totals at each ``end_phase``, and
    resolves everything onto the virtual-time axis at run end.
    """

    def __init__(self, machine: Any, cfg: TraceConfig, task: str = ""):
        self.machine = machine
        self.cfg = cfg
        self.task = task
        self.events: List[TraceEvent] = []
        self.dropped = 0
        #: Per-phase metadata captured at ``end_phase`` time:
        #: ``{"label": ..., "counters": {...}}`` in phase order.
        self.phase_meta: List[Dict[str, Any]] = []
        #: Run summaries captured at ``PerfModel.evaluate`` time.
        self.runs: List[Dict[str, Any]] = []
        #: Registry mirroring the legacy counters; rebuilt at each
        #: ``on_run_end`` so publication is idempotent.
        self.registry = MetricsRegistry()
        self._alloc_stats: Optional[Any] = None
        #: Channel-load / bank-heat snapshots for ``repro trace --top``.
        self.channel_loads: List[float] = []
        self.bank_busy: List[float] = []
        self._seq = 0

    # ------------------------------------------------------------------
    # Hot-path hook (every call site is gated on ``tracer is None``)
    # ------------------------------------------------------------------
    def instant(self, name: str, cat: str,
                args: Optional[Dict[str, Any]] = None) -> None:
        """Buffer one instant event in the currently open phase."""
        if len(self.events) >= self.cfg.max_events:
            self.dropped += 1
            return
        ev_args = dict(args) if (args and self.cfg.include_args) else {}
        self.events.append(TraceEvent(name, cat, len(self.phase_meta),
                                      self._seq, ev_args))
        self._seq += 1

    # ------------------------------------------------------------------
    # Lifecycle hooks
    # ------------------------------------------------------------------
    def on_phase_end(self, phase: Any) -> None:
        """Called by :meth:`RunRecorder.end_phase` with the sealed phase."""
        counters = {
            "flits": float(phase.total_flits()),
            "bank_line_accesses": float(phase.bank_line_accesses.sum()),
            "bank_atomics": float(phase.bank_atomics.sum()),
            "bank_near_ops": float(phase.bank_near_ops.sum()),
            "core_ops": float(phase.core_ops.sum()),
        }
        self.phase_meta.append({"label": phase.label, "counters": counters})

    def on_run_end(self, result: Any, recorder: Any) -> None:
        """Called at the end of :meth:`PerfModel.evaluate`."""
        self.runs.append({
            "label": result.label,
            "cycles": float(result.cycles),
            "phase_cycles": [(str(lbl), float(c))
                             for lbl, c in result.phase_cycles],
            "phase_resources": [
                (str(lbl), {k: float(v) for k, v in res.items()})
                for lbl, res in result.phase_resources],
        })
        self.registry = MetricsRegistry()
        publish_run(self.registry, result, recorder)
        faults = getattr(self.machine, "faults", None)
        if faults is not None:
            publish_fault_state(self.registry, faults)
        relayout = getattr(self.machine, "relayout", None)
        if relayout is not None:
            publish_relayout_state(self.registry, relayout)
        if self._alloc_stats is not None:
            publish_alloc_stats(self.registry, self._alloc_stats)
        if self.dropped:
            self.registry.counter(
                "trace_dropped_events",
                "instants past TraceConfig.max_events").set_total(
                float(self.dropped))
        # --top snapshots: full channel loads + per-bank busy cycles.
        self.channel_loads = [float(x) for x in recorder.traffic.link_loads()]
        perf = self.machine.config.perf
        busy = (recorder.bank_line_accesses * perf.bank_access_cycles
                + recorder.bank_atomics * perf.atomic_access_cycles
                + recorder.bank_remote_reqs * perf.remote_req_cycles
                + recorder.bank_near_ops / perf.bank_ops_per_cycle)
        self.bank_busy = [float(x) for x in busy]

    def on_alloc_stats(self, stats: Any) -> None:
        """Called by :meth:`RunContext.finish` after evaluate."""
        self._alloc_stats = stats
        publish_alloc_stats(self.registry, stats)

    # ------------------------------------------------------------------
    # Virtual-time resolution
    # ------------------------------------------------------------------
    def resolved_events(self) -> List[Dict[str, Any]]:
        """Resolve spans + instants onto the cycle axis (deterministic).

        Returns plain dicts: ``{"type": "span"|"instant"|"counter",
        "name", "cat", "ts", ...}`` with ``ts``/``dur`` in cycles.
        Phases with no model timing (run never finished) get unit width.
        """
        durations: Dict[int, float] = {}
        if self.runs:
            for i, (_lbl, c) in enumerate(self.runs[-1]["phase_cycles"]):
                durations[i] = float(c)
        starts: List[float] = []
        t = 0.0
        for i in range(len(self.phase_meta)):
            starts.append(t)
            t += durations.get(i, 1.0)
        total = t

        out: List[Dict[str, Any]] = []
        run_label = (self.runs[-1]["label"] if self.runs
                     else (self.task or "run"))
        out.append({"type": "span", "name": run_label, "cat": "run",
                    "ts": 0.0, "dur": total, "args": {"task": self.task}})
        for i, meta in enumerate(self.phase_meta):
            dur = durations.get(i, 1.0)
            out.append({"type": "span", "name": str(meta["label"]),
                        "cat": "phase", "ts": starts[i], "dur": dur,
                        "args": {}})
            for cname in sorted(meta["counters"]):
                out.append({"type": "counter", "name": cname,
                            "ts": starts[i] + dur,
                            "value": float(meta["counters"][cname])})

        per_phase: Dict[int, List[TraceEvent]] = {}
        for ev in self.events:
            per_phase.setdefault(ev.phase_index, []).append(ev)
        for pidx in sorted(per_phase):
            evs = per_phase[pidx]
            if pidx < len(self.phase_meta):
                base, dur = starts[pidx], durations.get(pidx, 1.0)
            else:  # recorded after the final seal: park past the end
                base, dur = total, 1.0
            width = max(dur, 1.0)
            m = len(evs)
            for j, ev in enumerate(evs):
                out.append({"type": "instant", "name": ev.name,
                            "cat": ev.cat,
                            "ts": base + width * (j + 1) / (m + 1),
                            "args": dict(ev.args)})
        return out


class TraceSession:
    """One traced scope: config + every machine state it attached.

    ``cfg=None`` builds an explicitly *inactive* session (attach no-ops),
    mirroring :class:`~repro.relayout.engine.RelayoutSession`.
    """

    def __init__(self, cfg: Optional[TraceConfig], task: str = ""):
        self.cfg = cfg
        self.task = task
        self.states: List[TraceState] = []

    @property
    def active(self) -> bool:
        return self.cfg is not None

    def attach(self, machine: Any) -> Optional[TraceState]:
        if self.cfg is None:
            return None
        state = TraceState(machine, self.cfg, task=self.task)
        machine.tracer = state
        self.states.append(state)
        return state


_ACTIVE: Optional[TraceSession] = None


def active_trace_session() -> Optional[TraceSession]:
    return _ACTIVE


@contextmanager
def trace_session(cfg: Optional[TraceConfig],
                  task: str = "") -> Iterator[TraceSession]:
    """Scope a tracing session (mirror of ``relayout_session``).

    Every machine built by ``make_context`` inside the scope gets a
    :class:`TraceState` attached; pass ``cfg=None`` to force-disable
    tracing inside an outer active session.
    """
    global _ACTIVE
    prev = _ACTIVE
    session = TraceSession(cfg, task=task)
    _ACTIVE = session
    try:
        yield session
    finally:
        _ACTIVE = prev
