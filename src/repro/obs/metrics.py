"""Typed metrics registry: counters, gauges, histograms with label sets.

The registry is the *single sink* the legacy per-subsystem counters
(:class:`~repro.arch.noc.TrafficAccountant`,
:class:`~repro.core.runtime.AllocStats`, the executor's stream-locality
counters, :class:`~repro.relayout.engine.RelayoutState`,
:class:`~repro.faults.injector.FaultState`) publish into.

Exactness contract (DESIGN.md §10): publication *copies* the
authoritative legacy value — ``set_total`` overwrites rather than
increments — so every registry value equals the legacy counter it
mirrors, bit for bit, and re-publication is idempotent.  The legacy
counters stay the source of truth; the registry is a read-side view.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterator, List, Optional, Tuple, Union

__all__ = ["Counter", "Gauge", "Histogram", "Metric", "MetricsRegistry",
           "DEFAULT_BUCKETS", "publish_alloc_stats", "publish_fault_state",
           "publish_relayout_state", "publish_run"]

LabelSet = Tuple[Tuple[str, str], ...]

#: Default histogram bucket upper bounds (simulated cycles).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8)


def _labelset(labels: Dict[str, object]) -> LabelSet:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _render_key(name: str, labels: LabelSet) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Metric:
    """Base: a named, labeled time series (one sample in this simulator)."""

    kind = "metric"

    def __init__(self, name: str, labels: LabelSet, help: str = ""):
        self.name = name
        self.labels = labels
        self.help = help

    @property
    def key(self) -> str:
        return _render_key(self.name, self.labels)

    def flat_items(self) -> Iterator[Tuple[str, float]]:
        raise NotImplementedError


class Counter(Metric):
    """Monotonic count.  ``inc`` for organic use; ``set_total`` for
    mirror publication of an authoritative legacy counter."""

    kind = "counter"

    def __init__(self, name: str, labels: LabelSet, help: str = ""):
        super().__init__(name, labels, help)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.key} cannot decrease")
        self.value += amount

    def set_total(self, value: float) -> None:
        """Overwrite with the legacy counter's exact current value."""
        self.value = float(value)

    def flat_items(self) -> Iterator[Tuple[str, float]]:
        yield self.key, self.value


class Gauge(Metric):
    """Point-in-time value (may go up or down)."""

    kind = "gauge"

    def __init__(self, name: str, labels: LabelSet, help: str = ""):
        super().__init__(name, labels, help)
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def flat_items(self) -> Iterator[Tuple[str, float]]:
        yield self.key, self.value


class Histogram(Metric):
    """Cumulative-bucket histogram (Prometheus-style ``le`` buckets)."""

    kind = "histogram"

    def __init__(self, name: str, labels: LabelSet, help: str = "",
                 buckets: Tuple[float, ...] = DEFAULT_BUCKETS):
        super().__init__(name, labels, help)
        self.buckets = tuple(sorted(buckets))
        self.bucket_counts = [0] * (len(self.buckets) + 1)  # +inf last
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[i] += 1
        self.bucket_counts[-1] += 1

    def flat_items(self) -> Iterator[Tuple[str, float]]:
        yield _render_key(self.name + "_count", self.labels), float(self.count)
        yield _render_key(self.name + "_sum", self.labels), self.sum
        for bound, n in zip(self.buckets, self.bucket_counts):
            labels = self.labels + (("le", f"{bound:g}"),)
            yield _render_key(self.name + "_bucket", labels), float(n)
        labels = self.labels + (("le", "+Inf"),)
        yield _render_key(self.name + "_bucket", labels), float(self.bucket_counts[-1])


class MetricsRegistry:
    """Get-or-create store of typed metrics, keyed by (name, labels)."""

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, LabelSet], Metric] = {}

    # -- get-or-create -------------------------------------------------
    def _get(self, cls: type, name: str, help: str,
             labels: Dict[str, object], **extra: object) -> Metric:
        key = (name, _labelset(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, key[1], help=help, **extra)
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"requested as {cls.__name__.lower()}")
        return metric

    def counter(self, name: str, help: str = "", **labels: object) -> Counter:
        metric = self._get(Counter, name, help, labels)
        assert isinstance(metric, Counter)
        return metric

    def gauge(self, name: str, help: str = "", **labels: object) -> Gauge:
        metric = self._get(Gauge, name, help, labels)
        assert isinstance(metric, Gauge)
        return metric

    def histogram(self, name: str, help: str = "",
                  buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
                  **labels: object) -> Histogram:
        metric = self._get(Histogram, name, help, labels, buckets=buckets)
        assert isinstance(metric, Histogram)
        return metric

    # -- reads ---------------------------------------------------------
    def get(self, name: str, **labels: object) -> Optional[Metric]:
        return self._metrics.get((name, _labelset(labels)))

    def value(self, name: str, **labels: object) -> float:
        """Scalar value of a counter/gauge; 0.0 if never published."""
        metric = self.get(name, **labels)
        if metric is None:
            return 0.0
        if isinstance(metric, (Counter, Gauge)):
            return metric.value
        raise TypeError(f"metric {name!r} is a {metric.kind}, not scalar")

    def metrics(self) -> List[Metric]:
        return [self._metrics[k] for k in sorted(self._metrics)]

    def as_dict(self) -> Dict[str, float]:
        """Flat ``{rendered_key: value}`` dump, deterministically ordered."""
        out: Dict[str, float] = {}
        for metric in self.metrics():
            for key, value in metric.flat_items():
                out[key] = value
        return out


# ----------------------------------------------------------------------
# Publication: copy the legacy counters into a registry.
#
# Every value below is read straight off the authoritative object — no
# recomputation — so registry == legacy holds exactly (and is pinned by
# tests/test_obs_metrics.py).
# ----------------------------------------------------------------------
def publish_run(reg: MetricsRegistry, result: object,
                recorder: object) -> None:
    """Mirror one finished run (its RunResult + RunRecorder) into *reg*."""
    from repro.arch.noc import MessageClass

    cycles = getattr(result, "cycles", 0.0)
    reg.gauge("run_cycles", "modeled run time (cycles)").set(cycles)
    reg.gauge("run_energy_pj", "modeled energy").set(
        getattr(result, "energy_pj", 0.0))
    reg.gauge("l3_miss_pct").set(getattr(result, "l3_miss_pct", 0.0))
    reg.gauge("noc_utilization").set(getattr(result, "noc_utilization", 0.0))

    counters: Dict[str, float] = dict(getattr(result, "counters", {}))
    for key in sorted(counters):
        reg.counter(key, "mirror of RunResult.counters").set_total(counters[key])

    hops: Dict[str, float] = dict(getattr(result, "flit_hops_by_class", {}))
    for cls in sorted(hops):
        reg.counter("flit_hops", cls=cls).set_total(hops[cls])

    traffic = getattr(recorder, "traffic", None)
    if traffic is not None:
        for mcls in MessageClass:
            reg.counter("noc_messages", cls=mcls.value).set_total(
                traffic.message_count(mcls))
            reg.counter("noc_flits", cls=mcls.value).set_total(
                traffic.total_flits(mcls))
        reg.gauge("noc_max_link_load").set(traffic.max_link_load())
        reg.gauge("noc_mean_link_load").set(traffic.mean_link_load())

    for attr, name in (("bank_line_accesses", "bank_line_accesses"),
                       ("bank_atomics", "bank_atomics"),
                       ("bank_remote_reqs", "bank_remote_reqs"),
                       ("bank_near_ops", "bank_near_ops")):
        arr = getattr(recorder, attr, None)
        if arr is None:
            continue
        for i in range(len(arr)):
            if arr[i] != 0.0:
                reg.counter(name, bank=i).set_total(float(arr[i]))
    for attr, name in (("core_ops", "core_ops_per_core"),
                       ("core_serial_cycles", "core_serial_cycles")):
        arr = getattr(recorder, attr, None)
        if arr is None:
            continue
        for i in range(len(arr)):
            if arr[i] != 0.0:
                reg.counter(name, core=i).set_total(float(arr[i]))
    reg.counter("private_line_accesses").set_total(
        getattr(recorder, "private_line_accesses", 0.0))

    hist = reg.histogram("phase_cycles", "per-phase modeled cycles")
    for _label, c in getattr(result, "phase_cycles", []):
        hist.observe(c)
    reg.gauge("phases").set(float(len(getattr(result, "phase_cycles", []))))


def publish_alloc_stats(reg: MetricsRegistry, stats: object) -> None:
    """Mirror every AllocStats field as ``alloc_<field>``."""
    for f in dataclasses.fields(stats):  # type: ignore[arg-type]
        reg.counter(f"alloc_{f.name}", "mirror of AllocStats").set_total(
            float(getattr(stats, f.name)))


def publish_fault_state(reg: MetricsRegistry, faults: object) -> None:
    """Mirror a FaultState's degradation counters."""
    healthy = getattr(faults, "healthy", None)
    if healthy is not None:
        reg.gauge("fault_failed_banks").set(
            float(sum(1 for h in healthy if not h)))
    reg.counter("fault_retries").set_total(
        float(getattr(faults, "retries", 0)))
    reg.counter("fault_host_fallbacks").set_total(
        float(getattr(faults, "host_fallbacks", 0)))
    reg.counter("fault_armed_alloc_ordinals").set_total(
        float(len(getattr(faults, "alloc_fail_ordinals", ()))))


def publish_relayout_state(reg: MetricsRegistry, state: object) -> None:
    """Mirror a RelayoutState's migration record."""
    groups: Dict[Tuple[str, bool], Tuple[float, float]] = {}
    for mig in getattr(state, "records", []):
        key = (mig.kind.value, bool(mig.applied))
        n, moved = groups.get(key, (0.0, 0.0))
        groups[key] = (n + 1.0, moved + float(mig.moved_bytes))
    for (kind, applied) in sorted(groups):
        n, moved = groups[(kind, applied)]
        reg.counter("relayout_migrations", kind=kind,
                    applied=str(applied).lower()).set_total(n)
        if applied:
            reg.counter("relayout_moved_bytes", kind=kind).set_total(moved)
    reg.gauge("relayout_epochs").set(
        float(getattr(state, "epoch_index", 0)))
    reg.counter("relayout_applied_total").set_total(
        float(getattr(state, "total_applied", 0)))
