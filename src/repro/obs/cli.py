"""``python -m repro trace`` — trace any workload or experiment.

Runs the requested targets inside a :func:`~repro.obs.tracer.trace_session`
(always executing them — the figure cache is bypassed on purpose, since a
cache hit would produce no events), then exports:

* a Chrome trace-event JSON (``--out``) loadable in the Perfetto UI,
* a flat metrics dump (``--metrics``, ``.json`` or ``.csv``),
* a per-run cycle-attribution table plus the hottest banks and NoC
  channels (``--top N``) on stdout.

Determinism contract: the same ``(targets, mode, scale, seed)`` produce
byte-identical trace and metrics files for ``--jobs 1`` and ``--jobs N``
alike — per-target results are collected in the workers as plain dicts
and merged in task order, never completion order, with process ids
assigned during the merge.  ``--diff A B`` checks two trace files for
exact equality (exit 1 on mismatch); ``--validate FILE`` checks one
against the trace-event schema.
"""

from __future__ import annotations

import argparse
import json
import types
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import asdict
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.harness.cliutil import EXIT_FAILURE, EXIT_OK, add_seed_argument
from repro.obs.export import (channel_labels, chrome_trace, diff_traces,
                              metrics_csv_lines, top_entries,
                              validate_chrome_trace)
from repro.obs.tracer import TraceConfig, trace_session

__all__ = ["DEFAULT_TARGETS", "run_trace", "cli"]

#: Default target: the paper's smallest canonical affine kernel.
DEFAULT_TARGETS = ("vecadd",)


# ----------------------------------------------------------------------
# Worker
# ----------------------------------------------------------------------
def _trace_task(target: str, mode_name: str, scale: float, seed: int,
                cfg: TraceConfig) -> Dict[str, Any]:
    """Trace one workload or experiment (in this or a worker process).

    Returns plain data only, so results pickle and merge identically
    whatever the process layout.
    """
    from repro.harness import runner
    from repro.nsc.engine import EngineMode
    from repro.workloads import WORKLOADS
    from repro.workloads.base import run_workload

    with trace_session(cfg, task=target) as session:
        if target in WORKLOADS:
            run_workload(target, EngineMode[mode_name], scale=scale,
                         seed=seed)
        else:
            runner.EXPERIMENTS[target](scale, seed)

    states: List[Dict[str, Any]] = []
    for st in session.states:
        label = str(st.runs[-1]["label"]) if st.runs else (st.task or target)
        states.append({
            "label": label,
            "events": st.resolved_events(),
            "runs": list(st.runs),
            "registry": st.registry.as_dict(),
            "channel_loads": list(st.channel_loads),
            "channel_labels": channel_labels(st.machine.mesh),
            "bank_busy": list(st.bank_busy),
        })
    return {"target": target, "states": states}


# ----------------------------------------------------------------------
# Runner
# ----------------------------------------------------------------------
def run_trace(targets: Sequence[str], mode: str = "AFF_ALLOC",
              scale: float = 0.05, seed: int = 0, jobs: int = 1,
              cfg: Optional[TraceConfig] = None,
              progress: Optional[Callable[[str], None]] = None
              ) -> Dict[str, Any]:
    """Trace every target; return the merged, deterministic payload.

    The result carries ``trace`` (Chrome trace-event object), ``metrics``
    (``{pid/label: {metric: value}}``), and ``states`` (the per-machine
    data the stdout report is rendered from).
    """
    notify = progress if progress is not None else (lambda line: None)
    cfg = cfg if cfg is not None else TraceConfig()
    jobs = max(1, int(jobs))

    results: Dict[str, Dict[str, Any]] = {}
    if jobs == 1 or len(targets) <= 1:
        for name in targets:
            results[name] = _trace_task(name, mode, scale, seed, cfg)
            notify(f"[done] {name}")
    else:
        with ProcessPoolExecutor(max_workers=min(jobs, len(targets))) as pool:
            futs = {pool.submit(_trace_task, name, mode, scale, seed, cfg):
                    name for name in targets}
            for fut in as_completed(futs):
                name = futs[fut]
                results[name] = fut.result()
                notify(f"[done] {name}")

    # Merge in task order (never completion order) so jobs=1 and jobs=N
    # produce byte-identical trace and metrics files; pids are assigned
    # here, sequentially in merge order.
    runs: List[Dict[str, Any]] = []
    metrics: Dict[str, Dict[str, float]] = {}
    states: List[Dict[str, Any]] = []
    pid = 0
    for name in targets:
        for st in results[name]["states"]:
            st = dict(st)
            st["pid"] = pid
            runs.append({"pid": pid, "label": st["label"],
                         "events": st["events"]})
            metrics[f"{pid:03d}/{st['label']}"] = dict(st["registry"])
            states.append(st)
            pid += 1
    trace = chrome_trace(runs, other_data={
        "targets": list(targets), "mode": mode, "scale": scale,
        "seed": seed, "trace_config": asdict(cfg)})
    return {"trace": trace, "metrics": metrics, "states": states}


# ----------------------------------------------------------------------
# Report
# ----------------------------------------------------------------------
def render_report(payload: Dict[str, Any], top: int = 0) -> str:
    """Human report: per-run attribution plus hottest banks/channels."""
    from repro.harness.report import (ascii_table, attribution_table,
                                      section)
    blocks: List[str] = []
    for st in payload["states"]:
        for run in st["runs"]:
            shim = types.SimpleNamespace(
                phase_cycles=run["phase_cycles"],
                phase_resources=run["phase_resources"])
            blocks.append(section(
                f"{run['label']} — {run['cycles']:.0f} cycles",
                attribution_table(shim)))
        if top > 0:
            bank_labels = [f"bank:{i}" for i in range(len(st["bank_busy"]))]
            hot_banks = top_entries(st["bank_busy"], bank_labels, top)
            hot_links = top_entries(st["channel_loads"],
                                    st["channel_labels"], top)
            rows = [[lbl, f"{val:.1f}"] for lbl, val in hot_banks]
            rows += [[lbl, f"{val:.1f}"] for lbl, val in hot_links]
            if rows:
                blocks.append(section(
                    f"top-{top} hot banks (busy cycles) / "
                    f"channels (flits) — {st['label']}",
                    ascii_table(["resource", "load"], rows)))
    n_events = len(payload["trace"]["traceEvents"])
    blocks.append(f"{len(payload['states'])} machine(s), "
                  f"{n_events} trace event(s)")
    return "\n\n".join(blocks)


def _dump_json(obj: Any, path: Path) -> None:
    path.write_text(json.dumps(obj, sort_keys=True, indent=1) + "\n",
                    encoding="utf-8")


def _load_json(path: Path) -> Any:
    return json.loads(path.read_text(encoding="utf-8"))


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def cli(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro trace",
        description="Deterministic tracing: run workloads/experiments with "
                    "the span tracer on and export Chrome trace-event "
                    "JSON, metrics, and cycle attribution.")
    parser.add_argument("targets", nargs="*", default=[],
                        help=f"workload names or experiment ids (default: "
                             f"{', '.join(DEFAULT_TARGETS)})")
    parser.add_argument("--mode", default="AFF_ALLOC",
                        choices=["IN_CORE", "NEAR_L3", "AFF_ALLOC"],
                        help="engine mode for plain workload targets "
                             "(default AFF_ALLOC)")
    parser.add_argument("--scale", type=float, default=0.05,
                        help="workload scale (default 0.05)")
    add_seed_argument(parser)
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (default 1)")
    parser.add_argument("--out", type=Path, default=None,
                        help="write the Chrome trace-event JSON here "
                             "(load it at https://ui.perfetto.dev)")
    parser.add_argument("--metrics", type=Path, default=None,
                        help="write the flat metrics dump here "
                             "(.csv for CSV, anything else for JSON)")
    parser.add_argument("--top", type=int, default=0,
                        help="also report the N hottest banks and NoC "
                             "channels per machine")
    parser.add_argument("--no-args", action="store_true",
                        help="drop instant arguments from the trace")
    parser.add_argument("--max-events", type=int, default=None,
                        help="cap on buffered instants per machine")
    parser.add_argument("--diff", nargs=2, type=Path, metavar=("A", "B"),
                        default=None,
                        help="compare two trace files for exact equality "
                             "and exit (1 on mismatch)")
    parser.add_argument("--validate", type=Path, default=None,
                        help="validate one trace file against the "
                             "trace-event schema and exit (1 on problems)")
    args = parser.parse_args(argv)

    if args.diff is not None:
        problems = diff_traces(_load_json(args.diff[0]),
                               _load_json(args.diff[1]))
        for p in problems:
            print(p)
        if problems:
            print(f"ERROR: traces differ ({len(problems)} problem(s))")
            return EXIT_FAILURE
        print("traces are identical")
        return EXIT_OK

    if args.validate is not None:
        problems = validate_chrome_trace(_load_json(args.validate))
        for p in problems:
            print(p)
        if problems:
            print(f"ERROR: invalid trace ({len(problems)} problem(s))")
            return EXIT_FAILURE
        print("trace is schema-valid")
        return EXIT_OK

    targets = list(args.targets) or list(DEFAULT_TARGETS)
    from repro.harness import runner
    from repro.workloads import WORKLOADS
    bad = [t for t in targets
           if t not in WORKLOADS and t not in runner.EXPERIMENTS]
    if bad:
        parser.error(f"unknown target(s): {', '.join(bad)}; "
                     f"try 'python -m repro list'")

    kwargs: Dict[str, Any] = {}
    if args.no_args:
        kwargs["include_args"] = False
    if args.max_events is not None:
        kwargs["max_events"] = args.max_events
    cfg = TraceConfig(**kwargs)

    payload = run_trace(targets, mode=args.mode, scale=args.scale,
                        seed=args.seed, jobs=args.jobs, cfg=cfg,
                        progress=print)
    print(render_report(payload, top=args.top))
    if args.out is not None:
        _dump_json(payload["trace"], args.out)
        print(f"chrome trace -> {args.out}")
    if args.metrics is not None:
        if args.metrics.suffix == ".csv":
            args.metrics.write_text(
                "\n".join(metrics_csv_lines(payload["metrics"])) + "\n",
                encoding="utf-8")
        else:
            _dump_json(payload["metrics"], args.metrics)
        print(f"metrics -> {args.metrics}")
    return EXIT_OK
