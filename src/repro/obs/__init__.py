"""Unified observability layer (DESIGN.md §10).

One instrumentation spine for the whole simulator:

* :mod:`repro.obs.tracer` — span-based tracing over *virtual time*
  (simulated cycles), attached per-machine behind the same
  clean-path-identical ``is-None`` guards as faults/relayout,
* :mod:`repro.obs.metrics` — a typed metrics registry (counters,
  gauges, histograms with label sets) that mirrors the legacy
  per-subsystem counters exactly,
* :mod:`repro.obs.export` — Chrome trace-event JSON (Perfetto),
  flat metrics JSON/CSV, trace validation and diffing,
* :mod:`repro.obs.cli` — the ``python -m repro trace`` subcommand.
"""

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import (SPAN_CATEGORIES, TraceConfig, TraceSession,
                              TraceState, active_trace_session,
                              trace_session)

__all__ = ["MetricsRegistry", "SPAN_CATEGORIES", "TraceConfig",
           "TraceSession", "TraceState", "active_trace_session",
           "trace_session"]
