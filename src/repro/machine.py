"""Machine facade: one simulated process on one simulated chip.

A :class:`Machine` owns the pieces every layer of the paper's stack talks
to — the mesh, the IOT, the LLC mapping, the virtual address space with
its heap and interleave pools, and the DRAM model — and exposes the two
questions everything else asks:

* ``malloc`` / heap growth (the *baseline* allocator the paper compares
  against), and
* "which L3 bank owns this virtual address?" (vectorized).

The affinity allocator (:mod:`repro.core`) layers on top of the pool
manager; workloads and the stream executor only ever see the facade.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.arch.dram import DramModel
from repro.arch.energy import EnergyModel
from repro.arch.iot import InterleaveOverrideTable
from repro.arch.llc import LlcModel
from repro.arch.mesh import Mesh
from repro.arch.noc import TrafficAccountant
from repro.arch.address import align_up
from repro.config import DEFAULT_CONFIG, SystemConfig
from repro.vm.layout import AddressSpace, LinearRegion, PagedRegion, VirtualLayout
from repro.vm.pools import PoolManager

__all__ = ["Machine"]

_RANDOM_HEAP_PBASE = 0x6000_0000_0000
_RANDOM_HEAP_FRAMES = 1 << 26  # 256 GiB of frames to draw from


class Machine:
    """Simulated chip + process address space.

    Args:
        config: hardware description (defaults to the paper's Table 2).
        heap_mode: how the conventional heap is backed —
            ``"linear"`` (contiguous physical, so the default 1 KiB NUCA
            interleave applies directly) or ``"random"`` (each virtual page
            mapped to a random physical page; the "Random" layout of
            Fig 4).
        seed: RNG seed for random page mapping.
    """

    def __init__(self, config: SystemConfig = DEFAULT_CONFIG,
                 heap_mode: str = "linear", seed: int = 0):
        self.config = config
        self.mesh = Mesh(config.noc.width, config.noc.height)
        self.iot = InterleaveOverrideTable(self.num_banks, config.cache.iot_entries)
        self.llc = LlcModel(self.num_banks, config.cache, self.iot)
        self.dram = DramModel(self.mesh, config.dram)
        self.energy_model = EnergyModel(config.perf)
        self.space = AddressSpace()
        self.rng = np.random.default_rng(seed)

        if heap_mode not in ("linear", "random"):
            raise ValueError(f"unknown heap_mode {heap_mode!r}")
        self.heap_mode = heap_mode
        if heap_mode == "linear":
            self._heap = LinearRegion("heap", VirtualLayout.HEAP_VBASE,
                                      VirtualLayout.HEAP_PBASE,
                                      VirtualLayout.HEAP_SIZE)
        else:
            self._heap = PagedRegion("heap", VirtualLayout.HEAP_VBASE,
                                     VirtualLayout.HEAP_SIZE, config.page_size)
            self._used_frames = set()
        self.space.add(self._heap)
        self._heap_brk = 0  # bytes used from heap base
        self._heap_mapped_pages = 0

        # Page-granularity segment for beyond-page interleavings
        # (paper §4.1 footnote 4); pages are mapped on demand by the
        # affinity runtime's partitioned allocations.
        self.paged = PagedRegion("paged", VirtualLayout.PAGED_VBASE,
                                 VirtualLayout.PAGED_SIZE, config.page_size)
        self.space.add(self.paged)
        self._paged_brk = 0

        self.pools = PoolManager(self.space, self.iot, self.num_banks,
                                 config.page_size,
                                 interleaves=config.pool_interleaves)

        # Chaos fault injection: populated by FaultSession.attach (see
        # repro.faults.injector); None on the healthy path, and every
        # layer's fault hook is gated on that None so clean runs execute
        # the exact original instruction stream.
        self.faults = None

        # Online re-layout: populated by RelayoutSession.attach (see
        # repro.relayout.engine); None when no autoplace session is
        # active, and every hook is gated on that None so static runs
        # execute the exact original instruction stream.
        self.relayout = None

        # Observability: populated by TraceSession.attach (see
        # repro.obs.tracer); None when no trace session is active, and
        # every hook is gated on that None so untraced runs execute the
        # exact original instruction stream.
        self.tracer = None

        # Concurrent-host interference: populated by
        # InterferenceSession.attach (see repro.interfere.engine); None
        # on the uncontended path — including under an *empty* plan,
        # which attaches nothing — and every hook is gated on that None
        # so clean runs execute the exact original instruction stream.
        self.interference = None

    # ------------------------------------------------------------------
    @property
    def num_banks(self) -> int:
        return self.config.num_banks

    @property
    def num_cores(self) -> int:
        return self.config.num_cores

    def core_tile(self, core_id: int) -> int:
        """Tile hosting a core; cores and tiles share ids."""
        if not (0 <= core_id < self.num_cores):
            raise ValueError(f"core {core_id} out of range")
        return core_id

    def new_traffic(self) -> TrafficAccountant:
        return TrafficAccountant(self.mesh, self.config.noc)

    # ------------------------------------------------------------------
    # Baseline heap
    # ------------------------------------------------------------------
    def malloc(self, size: int, align: int = 64) -> int:
        """Baseline bump allocator (stands in for plain ``malloc``).

        Registers the range with the LLC footprint model; under
        ``heap_mode="random"`` newly touched pages get random frames.
        """
        if size <= 0:
            raise ValueError("malloc size must be positive")
        start = align_up(self._heap_brk, align)
        self._heap_brk = start + size
        if self._heap_brk > VirtualLayout.HEAP_SIZE:
            raise MemoryError("simulated heap exhausted")
        vaddr = VirtualLayout.HEAP_VBASE + start
        if self.heap_mode == "random":
            self._map_random_pages()
        self._register_heap_footprint(vaddr, size)
        return vaddr

    def _map_random_pages(self) -> None:
        page = self.config.page_size
        needed = -(-self._heap_brk // page)
        while self._heap_mapped_pages < needed:
            while True:
                frame_idx = int(self.rng.integers(0, _RANDOM_HEAP_FRAMES))
                if frame_idx not in self._used_frames:
                    self._used_frames.add(frame_idx)
                    break
            self._heap.map_page(self._heap_mapped_pages,
                                _RANDOM_HEAP_PBASE + frame_idx * page)
            self._heap_mapped_pages += 1

    def heap_contains(self, vaddr: int) -> bool:
        """True if ``vaddr`` falls inside the heap's *allocated* extent."""
        return (VirtualLayout.HEAP_VBASE <= vaddr
                < VirtualLayout.HEAP_VBASE + self._heap_brk)

    def _register_heap_footprint(self, vaddr: int, size: int) -> None:
        """Register an allocation with the LLC footprint model.

        Split page-wise (under ``heap_mode="random"`` every page has its
        own frame), but translated and folded into the footprint as one
        batch — the old per-page translate/register loop dominated large
        mallocs.
        """
        if size <= 0:
            return
        page = self.config.page_size
        end = vaddr + size
        inner = np.arange(align_up(vaddr + 1, page), end, page, dtype=np.int64)
        starts = np.concatenate(([vaddr], inner))
        ends = np.concatenate((inner, [end]))
        self.llc.register_spans(self.space.translate(starts), ends - starts)

    # ------------------------------------------------------------------
    # Paged segment (for partitioned / beyond-page interleavings)
    # ------------------------------------------------------------------
    def paged_reserve(self, size: int) -> int:
        """Reserve a virtual range in the paged segment; pages unmapped."""
        size = align_up(size, self.config.page_size)
        start = self._paged_brk
        self._paged_brk = start + size
        if self._paged_brk > VirtualLayout.PAGED_SIZE:
            raise MemoryError("paged segment exhausted")
        return VirtualLayout.PAGED_VBASE + start

    def paged_map(self, vaddr: int, frame_paddr: int) -> None:
        page = self.config.page_size
        if vaddr % page:
            raise ValueError("paged_map needs a page-aligned vaddr")
        self.paged.map_page((vaddr - VirtualLayout.PAGED_VBASE) // page, frame_paddr)

    # ------------------------------------------------------------------
    # Address queries
    # ------------------------------------------------------------------
    def translate(self, vaddrs) -> np.ndarray:
        return self.space.translate(vaddrs)

    def banks_of(self, vaddrs) -> np.ndarray:
        """Virtual address(es) -> owning L3 bank id (the full HW path:
        page translation, then IOT-aware bank hash)."""
        return self.llc.banks_of(self.space.translate(vaddrs))

    def bank_of(self, vaddr: int) -> int:
        return int(self.banks_of(np.asarray([vaddr]))[0])
