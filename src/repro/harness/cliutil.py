"""Shared CLI conventions for the ``python -m repro`` subcommands.

Every subcommand follows the same contract (documented in README):

* exit ``0`` on success,
* exit ``1`` when the requested check failed (regression over threshold,
  unhandled fault, trace mismatch, lint finding, ...),
* exit ``2`` for usage errors (argparse's own convention),
* accept ``--seed`` so invocations stay uniform across subcommands,
  even where the underlying computation is seed-independent.
"""

from __future__ import annotations

import argparse

__all__ = ["EXIT_OK", "EXIT_FAILURE", "EXIT_USAGE", "add_seed_argument"]

#: Success.
EXIT_OK = 0
#: The command ran but its check failed (regression, mismatch, finding).
EXIT_FAILURE = 1
#: Usage error — argparse exits with this on bad arguments.
EXIT_USAGE = 2


def add_seed_argument(parser: argparse.ArgumentParser,
                      default: int = 0,
                      help_suffix: str = "") -> None:
    """Attach the uniform ``--seed`` option to *parser*."""
    text = f"base RNG seed (default {default})"
    if help_suffix:
        text += f"; {help_suffix}"
    parser.add_argument("--seed", type=int, default=default, help=text)
