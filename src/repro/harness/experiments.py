"""Reproduction experiments — one function per paper figure.

All functions take a ``scale`` knob (1.0 = the paper's Table 3 sizes) so
tests and pytest-benchmark targets can run them in seconds; shapes are
stable across scales.  Every result object renders via
:func:`repro.harness.report.render`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.config import DEFAULT_CONFIG, SystemConfig
from repro.core.policy import policy_by_name
from repro.graphs.datasets import REAL_WORLD_GRAPHS, load_real_world
from repro.graphs.generators import powerlaw
from repro.nsc.engine import EngineMode
from repro.perf.compare import energy_efficiency, geomean, speedup, traffic_ratio
from repro.perf.model import RunResult
from repro.workloads import run_workload
from repro.workloads.graph_kernels import bfs_iteration_stats, default_graph
from repro.workloads.vecadd import run_vecadd_delta

__all__ = [
    "fig4_vecadd_delta",
    "fig6_chunk_remap",
    "fig12_overall",
    "fig13_policies",
    "fig14_atomic_timeline",
    "fig15_affine_scaling",
    "fig16_graph_scaling",
    "fig17_bfs_iterations",
    "fig18_push_pull_timeline",
    "fig19_degree_sweep",
    "fig20_real_world",
    "ablation_node_size",
    "ablation_pool_granularity",
    "ablation_codesign",
    "fig_relayout",
    "fig_interfere",
]

FIG12_WORKLOADS = ("pathfinder", "hotspot", "srad", "hotspot3D", "pr_push",
                   "bfs", "sssp", "link_list", "hash_join", "bin_tree")
FIG13_WORKLOADS = ("pr_push", "pr_pull", "bfs", "sssp", "link_list",
                   "hash_join", "bin_tree")
FIG13_POLICIES = ("Rnd", "Lnr", "Min-Hop", "Hybrid-1", "Hybrid-3", "Hybrid-5",
                  "Hybrid-7")


@dataclass
class SweepResult:
    """Generic labeled-rows result."""

    title: str
    headers: Sequence[str]
    data: List[Sequence] = field(default_factory=list)
    raw: Dict = field(default_factory=dict)

    def rows(self) -> List[Sequence]:
        return self.data


# ----------------------------------------------------------------------
# Fig 4 — affine layout sensitivity of vector add
# ----------------------------------------------------------------------
def fig4_vecadd_delta(deltas: Sequence[int] = tuple(range(0, 68, 4)),
                      n: int = 1 << 20,
                      config: SystemConfig = DEFAULT_CONFIG,
                      seed: int = 0) -> SweepResult:
    """Speedup and NoC hops of vec-add vs forwarding distance (Fig 4).

    Rows: In-Core, Δ Bank 0..64, Random; speedup and hops normalized to
    In-Core, exactly as the figure.
    """
    base = run_vecadd_delta(0, EngineMode.IN_CORE, config, n=n, seed=seed)
    res = SweepResult(
        "Fig 4: Impact of Affine Data Layout on Vec Add",
        ["layout", "speedup", "noc_hops_norm"],
        raw={"in_core": base, "deltas": {}},
    )
    res.data.append(["In-Core", 1.0, 1.0])
    for d in deltas:
        r = run_vecadd_delta(d, EngineMode.AFF_ALLOC, config, n=n, seed=seed)
        res.raw["deltas"][d] = r
        res.data.append([f"Δ Bank {d}", speedup(base, r), traffic_ratio(base, r)])
    rnd = run_vecadd_delta(None, EngineMode.NEAR_L3, config, n=n, seed=seed)
    res.raw["random"] = rnd
    res.data.append(["Random", speedup(base, rnd), traffic_ratio(base, rnd)])
    return res


# ----------------------------------------------------------------------
# Fig 6 — irregular layout limit study (chunk remap)
# ----------------------------------------------------------------------
def fig6_chunk_remap(workloads: Sequence[str] = ("pr_push", "bfs_push", "sssp",
                                                 "pr_pull", "bfs_pull"),
                     scale: float = 0.25,
                     config: SystemConfig = DEFAULT_CONFIG,
                     seed: int = 0) -> SweepResult:
    """Speedup & traffic of chunk-remapped edge arrays (Fig 6).

    Configs: Base (CSR), Ind-4kB/1kB/256B/64B (remap with <=2% imbalance),
    Ind-Ideal; all under Near-L3, normalized to Base.
    """
    layouts = [("Base", None), ("Ind-4kB", ("chunk", 4096)),
               ("Ind-1kB", ("chunk", 1024)), ("Ind-256B", ("chunk", 256)),
               ("Ind-64B", ("chunk", 64)), ("Ind-Ideal", ("ideal",))]
    res = SweepResult(
        "Fig 6: Impact of Irregular Data Layout",
        ["workload"] + [name for name, _ in layouts]
        + [f"hops:{name}" for name, _ in layouts],
        raw={},
    )
    per_layout_speedups: Dict[str, List[float]] = {name: [] for name, _ in layouts}
    for wl in workloads:
        base: Optional[RunResult] = None
        runs = {}
        for name, lay in layouts:
            r = run_workload(wl, EngineMode.NEAR_L3, config, scale=scale,
                             seed=seed, edge_layout=lay)
            runs[name] = r
            if name == "Base":
                base = r
        res.raw[wl] = runs
        sp = [speedup(base, runs[name]) for name, _ in layouts]
        tr = [traffic_ratio(base, runs[name]) for name, _ in layouts]
        for (name, _), s in zip(layouts, sp):
            per_layout_speedups[name].append(s)
        res.data.append([wl] + sp + tr)
    res.data.append(["geomean"]
                    + [geomean(per_layout_speedups[name]) for name, _ in layouts]
                    + [""] * len(layouts))
    return res


# ----------------------------------------------------------------------
# Fig 12 — overall performance / energy / traffic
# ----------------------------------------------------------------------
def fig12_overall(workloads: Sequence[str] = FIG12_WORKLOADS,
                  scale: float = 0.25,
                  config: SystemConfig = DEFAULT_CONFIG,
                  seed: int = 0) -> SweepResult:
    """The headline comparison: In-Core vs Near-L3 vs Aff-Alloc.

    Speedup and energy efficiency are normalized to Near-L3; NoC traffic
    to In-Core (the paper's conventions).
    """
    res = SweepResult(
        "Fig 12: Overall Performance and Traffic Reduction",
        ["workload", "speedup:In-Core", "speedup:Aff-Alloc",
         "energy_eff:In-Core", "energy_eff:Aff-Alloc",
         "traffic:Near-L3", "traffic:Aff-Alloc", "noc_util:Aff-Alloc"],
        raw={},
    )
    sp_ic, sp_af, ee_ic, ee_af, tr_nl, tr_af = [], [], [], [], [], []
    for wl in workloads:
        runs = {m: run_workload(wl, m, config, scale=scale, seed=seed)
                for m in EngineMode}
        res.raw[wl] = runs
        ic, nl, af = (runs[EngineMode.IN_CORE], runs[EngineMode.NEAR_L3],
                      runs[EngineMode.AFF_ALLOC])
        row = [wl, speedup(nl, ic), speedup(nl, af),
               energy_efficiency(nl, ic), energy_efficiency(nl, af),
               traffic_ratio(ic, nl), traffic_ratio(ic, af),
               af.noc_utilization]
        res.data.append(row)
        sp_ic.append(row[1]); sp_af.append(row[2])
        ee_ic.append(row[3]); ee_af.append(row[4])
        tr_nl.append(row[5]); tr_af.append(row[6])
    res.data.append(["geomean", geomean(sp_ic), geomean(sp_af),
                     geomean(ee_ic), geomean(ee_af),
                     float(np.mean(tr_nl)), float(np.mean(tr_af)), ""])
    return res


# ----------------------------------------------------------------------
# Fig 13 — bank-select policy sensitivity
# ----------------------------------------------------------------------
def fig13_policies(workloads: Sequence[str] = FIG13_WORKLOADS,
                   policies: Sequence[str] = FIG13_POLICIES,
                   scale: float = 0.25,
                   config: SystemConfig = DEFAULT_CONFIG,
                   seed: int = 0) -> SweepResult:
    """Irregular-layout policies under Aff-Alloc, normalized to Rnd."""
    res = SweepResult(
        "Fig 13: Sensitivity on Irregular Layout Policies",
        ["workload"] + list(policies),
        raw={},
    )
    per_policy: Dict[str, List[float]] = {p: [] for p in policies}
    for wl in workloads:
        runs = {p: run_workload(wl, EngineMode.AFF_ALLOC, config, scale=scale,
                                seed=seed, policy=policy_by_name(p))
                for p in policies}
        res.raw[wl] = runs
        base = runs["Rnd"]
        sp = [speedup(base, runs[p]) for p in policies]
        for p, s in zip(policies, sp):
            per_policy[p].append(s)
        res.data.append([wl] + sp)
    res.data.append(["geomean"] + [geomean(per_policy[p]) for p in policies])
    return res


# ----------------------------------------------------------------------
# Fig 14 — atomic-stream occupancy timeline in bfs_push
# ----------------------------------------------------------------------
def fig14_atomic_timeline(policies: Sequence[str] = ("Rnd", "Min-Hop",
                                                     "Hybrid-5"),
                          scale: float = 0.25,
                          config: SystemConfig = DEFAULT_CONFIG,
                          seed: int = 0) -> SweepResult:
    """Distribution of concurrent atomic streams per bank over the run.

    For each BFS iteration (a recorded phase) the mean number of in-flight
    atomic streams at bank ``b`` is ``atomics[b] * stream_latency /
    phase_cycles`` (Little's law), where the stream latency includes the
    request's travel distance — which is why the affinity-oblivious Rnd
    policy keeps more streams in flight (paper: "it takes much longer for
    each stream to finish the indirect atomic access").  The figure plots
    min/25%/avg/75%/max across banks over normalized time.
    """
    res = SweepResult(
        "Fig 14: Distribution of Atomic Streams in BFS-Push",
        ["policy", "t_norm", "min", "p25", "avg", "p75", "max"],
        raw={},
    )
    from repro.arch.noc import MessageClass
    lat = float(config.cache.access_latency)
    hop_lat = float(config.noc.hop_latency)
    for pol in policies:
        r = run_workload("bfs_push", EngineMode.AFF_ALLOC, config, scale=scale,
                         seed=seed, policy=policy_by_name(pol))
        res.raw[pol] = r
        total = sum(c for _, c in r.phase_cycles) or 1.0
        t = 0.0
        for phase, (_, cyc) in zip(r.phases, r.phase_cycles):
            if cyc <= 0:
                continue
            # mean request distance this phase (control messages)
            w = config.noc.width
            n = config.noc.num_tiles
            pidx = np.arange(n * n)
            src, dst = pidx // n, pidx % n
            hops = np.abs(src % w - dst % w) + np.abs(src // w - dst // w)
            ctl = phase.pair_flits[MessageClass.CONTROL]
            mean_hops = float(np.dot(ctl, hops) / ctl.sum()) if ctl.sum() else 0.0
            occ = phase.bank_atomics * (lat + mean_hops * hop_lat) / cyc
            res.data.append([
                pol, t / total, float(occ.min()),
                float(np.percentile(occ, 25)), float(occ.mean()),
                float(np.percentile(occ, 75)), float(occ.max()),
            ])
            t += cyc
    return res


# ----------------------------------------------------------------------
# Fig 15 / Fig 16 — input-size scaling
# ----------------------------------------------------------------------
def fig15_affine_scaling(workloads: Sequence[str] = ("pathfinder", "hotspot",
                                                     "srad", "hotspot3D"),
                         multipliers: Sequence[int] = (1, 2, 4, 8),
                         scale: float = 0.5,
                         config: SystemConfig = DEFAULT_CONFIG,
                         seed: int = 0) -> SweepResult:
    """Affine workloads at growing input sizes: speedup + L3 miss %."""
    res = SweepResult(
        "Fig 15: Speedup of Affine Layout on Large Inputs",
        ["workload", "mult", "speedup_vs_nearL3", "miss_pct_aff",
         "miss_pct_near"],
        raw={},
    )
    gm: Dict[int, List[float]] = {m: [] for m in multipliers}
    for wl in workloads:
        for m in multipliers:
            nl = run_workload(wl, EngineMode.NEAR_L3, config, scale=scale * m,
                              seed=seed)
            af = run_workload(wl, EngineMode.AFF_ALLOC, config,
                              scale=scale * m, seed=seed)
            res.raw[(wl, m)] = (nl, af)
            s = speedup(nl, af)
            gm[m].append(s)
            res.data.append([wl, f"{m}x", s, af.l3_miss_pct, nl.l3_miss_pct])
    for m in multipliers:
        res.data.append(["geomean", f"{m}x", geomean(gm[m]), "", ""])
    return res


def fig16_graph_scaling(workloads: Sequence[str] = ("pr_push", "bfs", "sssp"),
                        log_sizes: Sequence[int] = (14, 15, 16, 17),
                        config: SystemConfig = DEFAULT_CONFIG,
                        seed: int = 0) -> SweepResult:
    """Graph workloads at growing |V| (paper: 2^17..2^20): speedup of
    Hybrid-5 and Min-Hops over Near-L3 plus L3 miss %."""
    res = SweepResult(
        "Fig 16: Speedup of Linked CSR on Large Graphs",
        ["workload", "log2|V|", "Hybrid-5", "Min-Hops", "miss_pct"],
        raw={},
    )
    base_scale = 17
    for wl in workloads:
        for ls in log_sizes:
            sc = 2.0 ** (ls - base_scale)
            nl = run_workload(wl, EngineMode.NEAR_L3, config, scale=sc,
                              seed=seed)
            h5 = run_workload(wl, EngineMode.AFF_ALLOC, config, scale=sc,
                              seed=seed, policy=policy_by_name("Hybrid-5"))
            mh = run_workload(wl, EngineMode.AFF_ALLOC, config, scale=sc,
                              seed=seed, policy=policy_by_name("Min-Hop"))
            res.raw[(wl, ls)] = (nl, h5, mh)
            res.data.append([wl, ls, speedup(nl, h5), speedup(nl, mh),
                             h5.l3_miss_pct])
    return res


# ----------------------------------------------------------------------
# Fig 17 / Fig 18 — BFS characteristics and push-pull timelines
# ----------------------------------------------------------------------
def fig17_bfs_iterations(scale: float = 0.25, seed: int = 0) -> SweepResult:
    """Per-iteration visited/active/scout-edge ratios of BFS."""
    g = default_graph(scale, seed, symmetrize=True)
    stats = bfs_iteration_stats(g)
    res = SweepResult(
        "Fig 17: BFS Iteration Characteristic",
        ["iteration", "visited", "active", "scout_edges"],
        raw={"stats": stats, "graph": g},
    )
    for i, st in enumerate(stats):
        res.data.append([i, st["visited"], st["active"], st["scout_edges"]])
    return res


def fig18_push_pull_timeline(scale: float = 0.25,
                             config: SystemConfig = DEFAULT_CONFIG,
                             seed: int = 0) -> SweepResult:
    """Per-iteration runtime share of push/pull/switch BFS per engine."""
    res = SweepResult(
        "Fig 18: BFS Push vs Pull Timeline",
        ["engine", "variant", "total_cycles", "per-iter (dir:share)"],
        raw={},
    )
    for mode in EngineMode:
        for variant in ("bfs_pull", "bfs_push", "bfs"):
            r = run_workload(variant, mode, config, scale=scale, seed=seed)
            res.raw[(mode.value, variant)] = r
            total = sum(c for _, c in r.phase_cycles) or 1.0
            timeline = " ".join(
                f"{label.split(':')[-1][:4]}:{cyc / total:.2f}"
                for label, cyc in r.phase_cycles if cyc > 0)
            res.data.append([mode.value, variant, r.cycles, timeline])
    return res


# ----------------------------------------------------------------------
# Fig 19 / Fig 20 — degree sweep and real-world graphs
# ----------------------------------------------------------------------
def fig19_degree_sweep(workloads: Sequence[str] = ("pr_push", "bfs", "sssp"),
                       degrees: Sequence[int] = (4, 8, 16, 32, 64, 128),
                       total_edges: int = 1 << 20, seed: int = 0,
                       config: SystemConfig = DEFAULT_CONFIG) -> SweepResult:
    """Speedup vs average degree at fixed |E|, normalized to Rnd."""
    res = SweepResult(
        "Fig 19: Speedup vs Avg. Node Degree",
        ["workload", "D", "Hybrid-5", "Min-Hops", "Near-L3"],
        raw={},
    )
    gm: Dict[int, List[float]] = {d: [] for d in degrees}
    for wl in workloads:
        weighted = wl == "sssp"
        symmetrize = wl.startswith("bfs") or wl == "bfs"
        for d in degrees:
            nv = max(total_edges // d, 256)
            g = powerlaw(nv, d, seed=seed,
                         weights_range=(1, 255) if weighted else None)
            if symmetrize:
                from repro.graphs.csr import CSRGraph
                g = CSRGraph.from_edge_list(g.num_vertices, g.sources(),
                                            g.edges, g.weights,
                                            symmetrize=True)
            rnd = run_workload(wl, EngineMode.AFF_ALLOC, config, graph=g,
                               seed=seed, policy=policy_by_name("Rnd"))
            h5 = run_workload(wl, EngineMode.AFF_ALLOC, config, graph=g,
                              seed=seed, policy=policy_by_name("Hybrid-5"))
            mh = run_workload(wl, EngineMode.AFF_ALLOC, config, graph=g,
                              seed=seed, policy=policy_by_name("Min-Hop"))
            nl = run_workload(wl, EngineMode.NEAR_L3, config, graph=g,
                              seed=seed)
            res.raw[(wl, d)] = (rnd, h5, mh, nl)
            s5 = speedup(rnd, h5)
            gm[d].append(s5)
            res.data.append([wl, d, s5, speedup(rnd, mh), speedup(rnd, nl)])
    for d in degrees:
        res.data.append(["geomean", d, geomean(gm[d]), "", ""])
    return res


def fig20_real_world(workloads: Sequence[str] = ("pr_push", "bfs", "sssp"),
                     graphs: Sequence[str] = tuple(REAL_WORLD_GRAPHS),
                     scale: float = 0.25, seed: int = 7,
                     config: SystemConfig = DEFAULT_CONFIG) -> SweepResult:
    """Real-world (Table 4 stand-in) graphs: Min-Hops / Hybrid-5 vs Near-L3."""
    res = SweepResult(
        "Fig 20: Performance on Real World Graphs",
        ["graph", "workload", "Min-Hops", "Hybrid-5", "traffic:Hybrid-5"],
        raw={},
    )
    gm: List[float] = []
    for gname in graphs:
        for wl in workloads:
            weighted = wl == "sssp"
            g = load_real_world(gname, scale=scale, seed=seed,
                                weights_range=(1, 255) if weighted else None)
            if wl == "bfs":
                from repro.graphs.csr import CSRGraph
                g = CSRGraph.from_edge_list(g.num_vertices, g.sources(),
                                            g.edges, g.weights,
                                            symmetrize=True)
            nl = run_workload(wl, EngineMode.NEAR_L3, config, graph=g,
                              seed=seed)
            mh = run_workload(wl, EngineMode.AFF_ALLOC, config, graph=g,
                              seed=seed, policy=policy_by_name("Min-Hop"))
            h5 = run_workload(wl, EngineMode.AFF_ALLOC, config, graph=g,
                              seed=seed, policy=policy_by_name("Hybrid-5"))
            res.raw[(gname, wl)] = (nl, mh, h5)
            s5 = speedup(nl, h5)
            gm.append(s5)
            res.data.append([gname, wl, speedup(nl, mh), s5,
                             traffic_ratio(nl, h5)])
    res.data.append(["geomean", "", "", geomean(gm), ""])
    return res


# ----------------------------------------------------------------------
# Ablations (DESIGN.md's design-choice studies, runnable as experiments)
# ----------------------------------------------------------------------
def ablation_node_size(node_sizes: Sequence[int] = (64, 128, 256),
                       scale: float = 0.12,
                       config: SystemConfig = DEFAULT_CONFIG,
                       seed: int = 0) -> SweepResult:
    """Linked CSR node size: placement granularity vs pointer chasing."""
    res = SweepResult(
        "Ablation: Linked CSR Node Size (pr_push, Aff-Alloc)",
        ["node_bytes", "cycles", "flit_hops"],
        raw={},
    )
    for nb in node_sizes:
        r = run_workload("pr_push", EngineMode.AFF_ALLOC, config, scale=scale,
                         seed=seed, node_bytes=nb)
        res.raw[nb] = r
        res.data.append([nb, r.cycles, r.total_flit_hops])
    return res


def ablation_pool_granularity(scale: float = 0.12,
                              config: SystemConfig = DEFAULT_CONFIG,
                              seed: int = 0) -> SweepResult:
    """Page-only pools (4 KiB D-NUCA placement) vs the full pool set."""
    fine = run_workload("pr_push", EngineMode.AFF_ALLOC, config, scale=scale,
                        seed=seed)
    coarse_cfg = config.scaled(pool_interleaves=(4096,))
    coarse = run_workload("pr_push", EngineMode.AFF_ALLOC, coarse_cfg,
                          scale=scale, seed=seed)
    near = run_workload("pr_push", EngineMode.NEAR_L3, config, scale=scale,
                        seed=seed)
    res = SweepResult(
        "Ablation: Interleave Pool Granularity (pr_push)",
        ["config", "speedup_vs_nearL3", "flit_hops"],
        raw={"fine": fine, "coarse": coarse, "near": near},
    )
    res.data.append(["pools 64B..4KiB", speedup(near, fine),
                     fine.total_flit_hops])
    res.data.append(["pools 4KiB only", speedup(near, coarse),
                     coarse.total_flit_hops])
    return res


def ablation_codesign(scale: float = 0.12,
                      config: SystemConfig = DEFAULT_CONFIG,
                      seed: int = 0) -> SweepResult:
    """Affinity alloc without the co-designed structures (paper: "it is
    critical to codesign the data structure")."""
    res = SweepResult(
        "Ablation: Data Structure Co-Design",
        ["variant", "cycles", "flit_hops"],
        raw={},
    )
    for label, wl, overrides in (
            ("pr_push + Linked CSR", "pr_push", {}),
            ("pr_push, plain CSR", "pr_push", {"use_linked": False}),
            ("bfs_push + spatial queue", "bfs_push", {}),
            ("bfs_push, global queue", "bfs_push", {"spatial_queue": False})):
        r = run_workload(wl, EngineMode.AFF_ALLOC, config, scale=scale,
                         seed=seed, **overrides)
        res.raw[label] = r
        res.data.append([label, r.cycles, r.total_flit_hops])
    return res


# ----------------------------------------------------------------------
# Relayout — static placement vs telemetry-driven online re-layout
# ----------------------------------------------------------------------
def fig_relayout(scenarios: Optional[Sequence[str]] = None,
                 scale: float = 1.0,
                 seed: int = 0) -> SweepResult:
    """Static allocation vs epoch-based online re-layout (autoplace).

    Each row is one phase-changing scenario: the static arm keeps the
    allocator's one-shot placement for the whole run; the online arm
    runs the same workload inside a relayout session, which migrates
    drifted arrays back onto their consumers' banks at epoch
    boundaries.  ``recovered_speedup`` is static cycles / online cycles
    (cost of migration already charged to the online arm).
    """
    from repro.relayout.autoplace import DEFAULT_SCENARIOS, run_autoplace
    from repro.relayout.policy import RelayoutConfig
    report = run_autoplace(tuple(scenarios or DEFAULT_SCENARIOS),
                           RelayoutConfig(seed=seed), scale=scale,
                           seed=seed, jobs=1)
    res = SweepResult(
        "Relayout: Online Re-Layout vs Static Placement",
        ["scenario", "static_cycles", "online_cycles", "recovered_speedup",
         "migrations", "moved_kib", "locality_static", "locality_final"],
        raw={"report": report},
    )
    for row in report.rows:
        post = row.get("post_locality")
        res.data.append([
            row["scenario"], row["static"]["cycles"],
            row["online"]["cycles"], report.recovered(row),
            row["migrations"], row["moved_bytes"] / 1024.0,
            row["static"]["locality"],
            post if post is not None else row["online"]["locality"]])
    return res


# ----------------------------------------------------------------------
# Interfere — concurrent-host contention sweep
# ----------------------------------------------------------------------
def fig_interfere(workloads: Optional[Sequence[str]] = None,
                  factors: Optional[Sequence[float]] = None,
                  scale: float = 0.05,
                  seed: int = 0) -> SweepResult:
    """Clean vs host-contended runs across an intensity sweep.

    Each row is one (workload, intensity factor) arm: the clean cycles,
    the contended cycles under :func:`HostTrafficPlan.generate(seed)
    <repro.interfere.plan.HostTrafficPlan.generate>` scaled by the
    factor, the resulting slowdown, the injected host message count,
    and the INT006 injection-model verification verdict.  Under
    ``AFF_ALLOC`` the per-workload recovery arm (contention composed
    with online re-layout at the top factor) appends one extra row.
    """
    from repro.interfere.cli import DEFAULT_FACTORS, run_interfere
    from repro.interfere.plan import HostTrafficPlan
    plan = HostTrafficPlan.generate(seed)
    names = tuple(workloads or ("vecadd", "hash_join_skew", "spmv_gather"))
    report = run_interfere(names, plan, mode="AFF_ALLOC", scale=scale,
                           seed=seed, factors=tuple(factors or
                                                    DEFAULT_FACTORS),
                           jobs=1)
    res = SweepResult(
        "Interfere: Slowdown Under Concurrent-Host Traffic",
        ["workload", "arm", "clean_cycles", "contended_cycles", "slowdown",
         "host_messages", "int006_ok"],
        raw={"report": report},
    )
    for row in report.rows:
        for arm in row["arms"]:
            res.data.append([
                row["workload"], f"x{arm['factor']:g}",
                row["clean"]["cycles"], arm["metrics"]["cycles"],
                arm["slowdown"], arm["host"].get("messages", 0.0),
                not arm["int006_findings"]])
        rec = row["recovery"]
        if rec is not None:
            res.data.append([
                row["workload"], f"x{rec['factor']:g}+relayout",
                row["clean"]["cycles"], rec["metrics"]["cycles"],
                rec["recovered"], float(rec["migrations"]), True])
    return res
