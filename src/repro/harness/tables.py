"""The paper's tables, rendered from the implementation itself.

These are *live* tables: every row is read out of the corresponding
module (config defaults, IOT entry fields, workload registry, dataset
specs), so drift between code and documentation is impossible.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence

from repro.arch.iot import IotEntry
from repro.config import DEFAULT_CONFIG, SystemConfig
from repro.graphs.datasets import REAL_WORLD_GRAPHS
from repro.harness.experiments import SweepResult
from repro.workloads import WORKLOADS

__all__ = ["table1_iot_format", "table2_system_parameters",
           "table3_workloads", "table4_real_world_graphs"]


def table1_iot_format() -> SweepResult:
    """Table 1: the Interleave Override Table entry format."""
    res = SweepResult("Table 1: Interleave Override Table (IOT)",
                      ["field", "bits", "description"])
    res.data = [
        ["start", 48, "physical range start (inclusive)"],
        ["end", 48, "physical range end (exclusive)"],
        ["intrlv", 16, "interleaving in bytes (power of two)"],
    ]
    # prove the implementation enforces exactly these widths
    IotEntry(0, (1 << 48) - 1, 1 << 15)  # max legal values construct fine
    res.raw["entry_type"] = IotEntry
    return res


def table2_system_parameters(config: SystemConfig = DEFAULT_CONFIG) -> SweepResult:
    """Table 2: system and microarchitecture parameters (live values)."""
    res = SweepResult("Table 2: System and uArch Parameters",
                      ["parameter", "value"])
    c = config
    res.data = [
        ["mesh", f"{c.noc.width}x{c.noc.height} tiles"],
        ["NoC link", f"{c.noc.link_bytes_per_cycle}B/cycle, "
                     f"{c.noc.hop_latency}-cycle hops, X-Y routing"],
        ["L3 banks", f"{c.num_banks} x "
                     f"{c.cache.bank_capacity_bytes >> 20} MiB "
                     f"(total {c.total_l3_bytes >> 20} MiB)"],
        ["L3 default interleave", f"{c.cache.default_interleave}B static NUCA"],
        ["L3 latency", f"{c.cache.access_latency} cycles"],
        ["IOT", f"{c.cache.iot_entries} entries"],
        ["private cache", f"{c.cache.private_cache_bytes >> 10} KiB/core"],
        ["DRAM", f"{c.dram.channels} channels at mesh corners, "
                 f"{c.dram.bytes_per_cycle_per_channel}B/cycle each"],
        ["interleave pools", ", ".join(f"{g}B" for g in c.pool_interleaves)],
        ["page size", f"{c.page_size}B"],
    ]
    res.raw["config"] = config
    return res


def table3_workloads() -> SweepResult:
    """Table 3: workloads and their parameters (from the registry)."""
    res = SweepResult("Table 3: Workload Parameters",
                      ["benchmark", "layout", "parameters"])
    order = ["pathfinder", "srad", "hotspot", "hotspot3D", "bfs", "pr_push",
             "sssp", "pr_pull", "link_list", "hash_join", "bin_tree"]
    for name in order:
        wl = WORKLOADS[name]
        params = ", ".join(f"{k}={v}" for k, v in wl.default_params().items()
                           if v is not None)
        res.data.append([name, wl.layout_kind, params])
    return res


def table4_real_world_graphs() -> SweepResult:
    """Table 4: real-world graph statistics (stand-in specs)."""
    res = SweepResult("Table 4: Real World Graphs",
                      ["input", "type", "|Vertex|", "|Edge|", "avg. degree"])
    for spec in REAL_WORLD_GRAPHS.values():
        res.data.append([spec.name, spec.kind, spec.num_vertices,
                         spec.num_edges, spec.avg_degree])
    return res
