"""ASCII rendering of experiment results (the paper's rows/series).

Besides the table renderer this module hosts the small formatting
helpers shared by the chaos/autoplace/trace reports so every CLI
derives metrics the same way: :func:`run_metrics` (the per-run metric
dict), :func:`ratio` (guarded division), :func:`section` (titled
blocks) and :func:`attribution_table` (the per-phase "where did the
cycles go" breakdown built from ``RunResult.phase_resources``).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

__all__ = ["ascii_table", "render", "run_metrics", "ratio", "section",
           "attribution_table"]


def ascii_table(headers: Sequence[str], rows: Iterable[Sequence],
                float_fmt: str = "{:.3f}") -> str:
    """Render rows as a fixed-width table; floats formatted uniformly."""
    def fmt(cell):
        if isinstance(cell, float):
            return float_fmt.format(cell)
        return str(cell)

    srows = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in srows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    out = [" | ".join(h.ljust(w) for h, w in zip(headers, widths)), sep]
    for row in srows:
        out.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(out)


def render(result) -> str:
    """Render any harness result object carrying ``title``, ``headers``
    and ``rows()``."""
    body = ascii_table(result.headers, result.rows())
    return f"== {result.title} ==\n{body}"


def ratio(numer: float, denom: float, default: float = 1.0) -> float:
    """``numer / denom`` with a deterministic fallback for zero/absent
    denominators (slowdowns, recovery factors, locality fractions)."""
    return numer / denom if denom else default


def run_metrics(result) -> Dict[str, float]:
    """The metric dict every degradation/recovery report is built from.

    One definition, shared by chaos, autoplace and trace, so "locality"
    or "flit_hops" can never drift apart between reports.
    """
    elems = result.counters.get("stream_elem_accesses", 0.0)
    remote = result.counters.get("stream_remote_accesses", 0.0)
    return {"cycles": result.cycles,
            "flit_hops": result.total_flit_hops,
            "l3_miss_pct": result.l3_miss_pct,
            "locality": (1.0 - remote / elems) if elems > 0 else 1.0}


def section(title: str, body: str) -> str:
    """A titled report block, in the house ``== title ==`` style."""
    return f"== {title} ==\n{body}"


def attribution_table(result) -> str:
    """Per-phase cycle attribution: which resource bounded each phase.

    Uses ``RunResult.phase_resources`` (label -> per-resource cycle
    costs; a phase's duration is the max of its resource costs).  For
    results recorded before that field existed the table degrades to
    the plain per-phase cycle list.
    """
    resources = list(getattr(result, "phase_resources", ()) or ())
    total = sum(c for _, c in result.phase_cycles) or 1.0
    if not resources:
        rows: List[Sequence] = [
            [label, f"{cycles:.1f}", f"{100.0 * cycles / total:.1f}%"]
            for label, cycles in result.phase_cycles]
        return ascii_table(["phase", "cycles", "% run"], rows)
    rows = []
    for label, res in resources:
        cycles = max(res.values()) if res else 0.0
        bottleneck = max(res, key=lambda k: res[k]) if res else "-"
        rows.append([label, f"{cycles:.1f}", f"{100.0 * cycles / total:.1f}%",
                     bottleneck]
                    + [f"{res.get(k, 0.0):.1f}"
                       for k in ("core", "bank", "link", "serial")])
    return ascii_table(
        ["phase", "cycles", "% run", "bottleneck",
         "core", "bank", "link", "serial"], rows)
