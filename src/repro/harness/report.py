"""ASCII rendering of experiment results (the paper's rows/series)."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

__all__ = ["ascii_table", "render"]


def ascii_table(headers: Sequence[str], rows: Iterable[Sequence],
                float_fmt: str = "{:.3f}") -> str:
    """Render rows as a fixed-width table; floats formatted uniformly."""
    def fmt(cell):
        if isinstance(cell, float):
            return float_fmt.format(cell)
        return str(cell)

    srows = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in srows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    out = [" | ".join(h.ljust(w) for h, w in zip(headers, widths)), sep]
    for row in srows:
        out.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(out)


def render(result) -> str:
    """Render any harness result object carrying ``title``, ``headers``
    and ``rows()``."""
    body = ascii_table(result.headers, result.rows())
    return f"== {result.title} ==\n{body}"
