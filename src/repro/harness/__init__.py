"""Experiment harness: one function per paper figure/table.

Each ``figNN_*`` function runs the corresponding experiment and returns a
plain-data result object; :mod:`repro.harness.report` renders the same
rows/series the paper plots, as ASCII tables.
"""

from repro.harness.experiments import (
    fig4_vecadd_delta,
    fig6_chunk_remap,
    fig12_overall,
    fig13_policies,
    fig14_atomic_timeline,
    fig15_affine_scaling,
    fig16_graph_scaling,
    fig17_bfs_iterations,
    fig18_push_pull_timeline,
    fig19_degree_sweep,
    fig20_real_world,
)
from repro.harness.report import ascii_table, render
from repro.harness.tables import (
    table1_iot_format,
    table2_system_parameters,
    table3_workloads,
    table4_real_world_graphs,
)

__all__ = [
    "fig4_vecadd_delta",
    "fig6_chunk_remap",
    "fig12_overall",
    "fig13_policies",
    "fig14_atomic_timeline",
    "fig15_affine_scaling",
    "fig16_graph_scaling",
    "fig17_bfs_iterations",
    "fig18_push_pull_timeline",
    "fig19_degree_sweep",
    "fig20_real_world",
    "ascii_table",
    "render",
    "table1_iot_format",
    "table2_system_parameters",
    "table3_workloads",
    "table4_real_world_graphs",
]
