"""Parallel experiment runner with per-figure artifact caching.

The paper's evaluation is embarrassingly parallel at figure granularity:
each figure is an independent pipeline of deterministic workload runs.
:func:`run_figures` fans the figure experiments (plus the DESIGN.md
ablations and the Table renders) across a process pool, streams
per-figure progress and wall-clock back to the parent, and aggregates
everything into one report plus a machine-readable metrics JSON
(``results/run-<hash>.json``).

Two invariants the golden-metrics suite (``tests/test_golden_metrics.py``)
locks down:

* **jobs-independence** — the metrics JSON is byte-identical for
  ``--jobs 8`` and ``--jobs 1``: results are keyed and ordered by figure
  id, every experiment seeds its own RNGs, and wall-clock never enters
  the metrics payload.
* **cache-transparency** — a warm-cache rerun returns exactly the rows
  the cold run produced (figure results are cached post-sanitization, so
  the cached and fresh paths serialize identically).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.cache import GENERATOR_VERSION, cache_key, configure, get_cache
from repro.config import DEFAULT_CONFIG
from repro.harness import experiments as exp
from repro.harness import tables
from repro.harness.report import ascii_table

__all__ = ["EXPERIMENTS", "FIGURE_IDS", "ABLATION_IDS", "TABLE_IDS",
           "ALL_IDS", "FigureRun", "RunReport", "run_figures"]


# ----------------------------------------------------------------------
# Registry — every runnable experiment, keyed by CLI id.  Each entry maps
# (scale, seed) to a result object carrying title/headers/rows(); the
# lambdas encode the same Table 3 size conventions the paper uses.
# ----------------------------------------------------------------------
EXPERIMENTS: Dict[str, Callable[[float, int], object]] = {
    "fig4": lambda scale, seed: exp.fig4_vecadd_delta(
        n=max(int((1 << 20) * scale * 4), 1 << 16), seed=seed),
    "fig6": lambda scale, seed: exp.fig6_chunk_remap(scale=scale, seed=seed),
    "fig12": lambda scale, seed: exp.fig12_overall(scale=scale, seed=seed),
    "fig13": lambda scale, seed: exp.fig13_policies(scale=scale, seed=seed),
    "fig14": lambda scale, seed: exp.fig14_atomic_timeline(scale=scale,
                                                           seed=seed),
    "fig15": lambda scale, seed: exp.fig15_affine_scaling(scale=scale,
                                                          seed=seed),
    "fig16": lambda scale, seed: exp.fig16_graph_scaling(
        log_sizes=(12, 13, 14, 15), seed=seed),
    "fig17": lambda scale, seed: exp.fig17_bfs_iterations(scale=scale,
                                                          seed=seed),
    "fig18": lambda scale, seed: exp.fig18_push_pull_timeline(scale=scale,
                                                              seed=seed),
    "fig19": lambda scale, seed: exp.fig19_degree_sweep(
        total_edges=max(int((1 << 22) * scale), 1 << 16), seed=seed),
    "fig20": lambda scale, seed: exp.fig20_real_world(scale=scale / 4,
                                                      seed=seed),
    "abl_nodesize": lambda scale, seed: exp.ablation_node_size(scale=scale,
                                                               seed=seed),
    "abl_pools": lambda scale, seed: exp.ablation_pool_granularity(
        scale=scale, seed=seed),
    "abl_codesign": lambda scale, seed: exp.ablation_codesign(scale=scale,
                                                              seed=seed),
    "relayout": lambda scale, seed: exp.fig_relayout(scale=scale, seed=seed),
    "interfere": lambda scale, seed: exp.fig_interfere(scale=scale / 2,
                                                       seed=seed),
    "table1": lambda scale, seed: tables.table1_iot_format(),
    "table2": lambda scale, seed: tables.table2_system_parameters(),
    "table3": lambda scale, seed: tables.table3_workloads(),
    "table4": lambda scale, seed: tables.table4_real_world_graphs(),
}

FIGURE_IDS = ("fig4", "fig6", "fig12", "fig13", "fig14", "fig15", "fig16",
              "fig17", "fig18", "fig19", "fig20")
ABLATION_IDS = ("abl_nodesize", "abl_pools", "abl_codesign")
TABLE_IDS = ("table1", "table2", "table3", "table4")
ALL_IDS = FIGURE_IDS + ABLATION_IDS + TABLE_IDS


def _plain(obj):
    """Strip numpy/tuple types so rows serialize (and compare) as JSON."""
    if isinstance(obj, (list, tuple)):
        return [_plain(v) for v in obj]
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.bool_):
        return bool(obj)
    return obj


def _config_fingerprint() -> str:
    """Digest of the default SystemConfig — experiment cache entries are
    invalidated whenever the Table 2 parameters change."""
    blob = json.dumps(dataclasses.asdict(DEFAULT_CONFIG), sort_keys=True,
                      default=str)
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


# ----------------------------------------------------------------------
# Worker
# ----------------------------------------------------------------------
def _run_one(fid: str, scale: float, seed: int, use_cache: bool,
             cache_dir: Optional[str], crash: bool = False,
             relayout=None, trace=None, interfere=None) -> Dict:
    """Run one experiment (in this or a worker process) → plain dict.

    Figure-level results are cached post-sanitization under a key derived
    from (id, scale, seed, config fingerprint, generator version); a hit
    skips the whole experiment.  ``use_cache=False`` bypasses both the
    figure cache and the graph cache underneath.

    ``crash=True`` injects a WORKER_CRASH fault: the worker dies here,
    before computing or touching the cache, and the parent's restart
    logic is exercised exactly as if the process had been OOM-killed.

    ``relayout`` (a :class:`repro.relayout.policy.RelayoutConfig`) runs
    the experiment inside a relayout session, so epoch-aware workloads
    migrate drifted arrays online.  The config digest joins the cache
    key; ``None`` leaves the key — and every code path — byte-identical
    to a plain run.

    ``trace`` (a :class:`repro.obs.tracer.TraceConfig`) runs the
    experiment inside a trace session, with the same digest-extends-key
    / None-is-byte-identical contract as ``relayout``.  (Cache hits skip
    execution, so a hit produces no trace events — ``python -m repro
    trace`` runs workloads directly when events are the point.)

    ``interfere`` (a :class:`repro.interfere.plan.HostTrafficPlan`) runs
    the experiment inside an interference session, so a simulated host
    contends for the same banks and links.  The plan digest joins the
    cache key only for *non-empty* plans; an empty plan attaches nothing,
    shares the clean cache entry, and leaves every byte identical to a
    plain run — the property ``tests/test_interfere_properties.py`` pins.
    """
    if crash:
        from repro.analysis.diagnostics import WorkerCrashError
        raise WorkerCrashError(fid)
    t0 = time.perf_counter()
    cache = get_cache()
    if cache_dir is not None and Path(cache_dir) != cache.root:
        cache = configure(root=cache_dir)
    key_fields = dict(id=fid, scale=scale, seed=seed,
                      config=_config_fingerprint())
    if relayout is not None:
        key_fields["relayout"] = relayout.digest()
    if trace is not None:
        key_fields["trace"] = trace.digest()
    if interfere is not None and not interfere.is_empty:
        key_fields["interfere"] = interfere.digest()
    key = cache_key("experiment", **key_fields)
    payload = cache.get_json(key) if use_cache else None
    from_cache = payload is not None
    if payload is None:
        from contextlib import ExitStack
        fn = EXPERIMENTS[fid]
        with ExitStack() as stack:
            if relayout is not None:
                from repro.relayout.engine import relayout_session
                stack.enter_context(relayout_session(relayout, task=fid))
            if trace is not None:
                from repro.obs.tracer import trace_session
                stack.enter_context(trace_session(trace, task=fid))
            if interfere is not None and not interfere.is_empty:
                from repro.interfere.engine import interfere_session
                stack.enter_context(interfere_session(interfere, task=fid))
            if use_cache:
                result = fn(scale, seed)
            else:
                with cache.disabled():
                    result = fn(scale, seed)
        payload = {"title": result.title,
                   "headers": _plain(list(result.headers)),
                   "rows": _plain(list(result.rows()))}
        # Round-trip through JSON so fresh results are exactly what a
        # later cache hit would return (e.g. tuples already lists).
        payload = json.loads(json.dumps(payload))
        if use_cache:
            cache.put_json(key, payload)
    return {"id": fid, "title": payload["title"],
            "headers": payload["headers"], "rows": payload["rows"],
            "wall_s": time.perf_counter() - t0, "from_cache": from_cache}


# ----------------------------------------------------------------------
# Aggregation
# ----------------------------------------------------------------------
@dataclass
class FigureRun:
    """One completed experiment, fully materialized as plain data."""

    id: str
    title: str
    headers: List[str]
    rows: List[List]
    wall_s: float
    from_cache: bool = False

    def render(self) -> str:
        return f"== {self.title} ==\n{ascii_table(self.headers, self.rows)}"


@dataclass
class RunReport:
    """Aggregate of one :func:`run_figures` invocation."""

    figures: List[FigureRun]
    metrics: Dict
    run_hash: str
    jobs: int
    wall_s: float
    path: Optional[Path] = None

    def by_id(self) -> Dict[str, FigureRun]:
        return {f.id: f for f in self.figures}

    def summary_table(self) -> str:
        rows = [[f.id, f.title[:48], len(f.rows),
                 "hit" if f.from_cache else "run", f.wall_s]
                for f in self.figures]
        rows.append(["total", f"(jobs={self.jobs})", "", "",
                     sum(f.wall_s for f in self.figures)])
        return ascii_table(
            ["experiment", "title", "rows", "cache", "wall_s"], rows,
            float_fmt="{:.2f}")

    def metrics_json(self) -> str:
        return json.dumps(self.metrics, sort_keys=True, indent=1) + "\n"


def metrics_from_runs(runs: Sequence[FigureRun], scale: float,
                      seed: int) -> Dict:
    """Machine-readable summary — deliberately excludes wall-clock and
    cache provenance so the payload is identical across jobs/cache
    settings."""
    return {
        "run": {
            "ids": [f.id for f in runs],
            "scale": scale,
            "seed": seed,
            "generator_version": GENERATOR_VERSION,
            "config": _config_fingerprint(),
        },
        "figures": {
            f.id: {"title": f.title, "headers": f.headers, "rows": f.rows}
            for f in runs
        },
    }


def _run_name(ids: Sequence[str], scale: float, seed: int) -> str:
    blob = json.dumps({"ids": list(ids), "scale": scale, "seed": seed,
                       "version": GENERATOR_VERSION,
                       "config": _config_fingerprint()}, sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()[:12]


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def _preflight_lint(scale: float, notify: Callable[[str], None]) -> None:
    """afflint the workloads' declared layouts before any run starts.

    Cheap (pure plan analysis, no execution): catches layout mistakes —
    conflicting alignments, missing pools, predicted exhaustion — before
    a process pool spends minutes tracing them.
    """
    from repro.analysis.diagnostics import LintFailure
    from repro.analysis.lint import lint_workload_plans

    result, _per_workload = lint_workload_plans(scale=scale)
    notify(f"[preflight] afflint: {result.report.summary()}")
    if result.report.has_errors:
        raise LintFailure(result.report)


#: Restarts granted per experiment before an injected worker crash is
#: allowed to propagate (a crash budget beyond this is a plan bug, not a
#: degradation scenario).
_MAX_WORKER_RESTARTS = 3


def run_figures(ids: Sequence[str], jobs: int = 1, scale: float = 0.12,
                seed: int = 0, use_cache: bool = True,
                results_dir: Optional[os.PathLike] = None,
                preflight: bool = True,
                progress: Optional[Callable[[str], None]] = None,
                fault_plan=None, relayout=None, trace=None,
                interfere=None) -> RunReport:
    """Run experiments by id, optionally fanned across a process pool.

    Args:
        ids: experiment ids from :data:`EXPERIMENTS` (e.g. ``FIGURE_IDS``).
        jobs: worker processes; ``1`` runs inline in this process.
        scale: fraction of the paper's Table 3 input sizes.
        seed: base RNG seed threaded through every experiment.
        use_cache: serve/populate figure + graph caches (``--no-cache``
            passes False).
        results_dir: if given, write ``run-<hash>.json`` there (the hash
            covers ids/scale/seed/version — never jobs — so reruns of the
            same configuration overwrite the same file with the same
            bytes).
        preflight: afflint every workload's layout plan before fanning
            out; errors abort the run with
            :class:`repro.analysis.diagnostics.LintFailure`.
        progress: callback for human-readable per-figure progress lines.
        fault_plan: optional :class:`repro.faults.plan.FaultPlan`.  The
            harness consumes only its WORKER_CRASH events (machine-level
            faults belong to ``python -m repro chaos``, which controls
            the per-run fault session — consuming them here would poison
            the shared figure cache): each budgeted crash kills the
            worker before it computes, and the parent restarts it, up to
            ``_MAX_WORKER_RESTARTS`` per experiment.  An empty/None plan
            leaves every code path and the metrics JSON byte-identical
            to a plain run.
        relayout: optional :class:`repro.relayout.policy.RelayoutConfig`.
            Every experiment runs inside a relayout session with this
            config, so epoch-aware workloads migrate drifted arrays
            online.  The config digest joins each figure's cache key
            (plain and relayout runs never share cache entries); the
            results filename is unchanged, so a run whose telemetry
            triggers zero migrations reproduces the plain run's
            ``run-<hash>.json`` byte for byte.
        trace: optional :class:`repro.obs.tracer.TraceConfig`.  Every
            experiment runs inside a trace session; the config digest
            joins each figure's cache key (traced and plain runs never
            share entries) while the results filename — and, with
            ``trace=None``, every byte of the run — is unchanged.
        interfere: optional :class:`repro.interfere.plan.HostTrafficPlan`.
            Every experiment runs against this simulated concurrent host;
            non-empty plan digests join each figure's cache key.  An
            empty (or None) plan attaches nothing and leaves every byte
            of the run — metrics JSON, results filename, cache entries —
            identical to a plain run.

    Returns:
        A :class:`RunReport`; ``report.figures`` preserves ``ids`` order
        regardless of completion order.
    """
    unknown = [fid for fid in ids if fid not in EXPERIMENTS]
    if unknown:
        raise KeyError(f"unknown experiment ids {unknown}; "
                       f"available: {sorted(EXPERIMENTS)}")
    notify = progress or (lambda line: None)
    if preflight:
        _preflight_lint(scale, notify)
    jobs = max(1, int(jobs))
    cache_dir = str(get_cache().root)
    t_start = time.perf_counter()

    crashes: Dict[str, int] = {}
    if fault_plan is not None and fault_plan.events:
        crashes = fault_plan.crash_budget(list(ids))
    from repro.analysis.diagnostics import WorkerCrashError

    def _note_restart(fid: str, attempt: int) -> None:
        notify(f"[restart] {fid} worker crashed (injected); "
               f"restart {attempt}/{_MAX_WORKER_RESTARTS}")

    done: Dict[str, Dict] = {}
    total = len(ids)
    if jobs == 1 or total <= 1:
        for i, fid in enumerate(ids):
            remaining = crashes.get(fid, 0)
            attempt = 0
            while True:
                try:
                    r = _run_one(fid, scale, seed, use_cache, None,
                                 crash=remaining > 0, relayout=relayout,
                                 trace=trace, interfere=interfere)
                except WorkerCrashError:
                    remaining -= 1
                    attempt += 1
                    if attempt > _MAX_WORKER_RESTARTS:
                        raise
                    _note_restart(fid, attempt)
                    continue
                break
            done[fid] = r
            notify(f"[{i + 1}/{total}] {fid:<12} "
                   f"{'cache hit' if r['from_cache'] else 'computed'} "
                   f"in {r['wall_s']:.1f}s")
    else:
        with ProcessPoolExecutor(max_workers=min(jobs, total)) as pool:
            remaining = dict(crashes)
            attempts: Dict[str, int] = {}
            futs = {pool.submit(_run_one, fid, scale, seed, use_cache,
                                cache_dir, remaining.get(fid, 0) > 0,
                                relayout, trace, interfere): fid
                    for fid in ids}
            completed = 0
            while futs:
                fut = next(as_completed(futs))
                fid = futs.pop(fut)
                try:
                    r = fut.result()
                except WorkerCrashError:
                    remaining[fid] = remaining.get(fid, 0) - 1
                    attempts[fid] = attempts.get(fid, 0) + 1
                    if attempts[fid] > _MAX_WORKER_RESTARTS:
                        raise
                    _note_restart(fid, attempts[fid])
                    futs[pool.submit(_run_one, fid, scale, seed, use_cache,
                                     cache_dir,
                                     remaining.get(fid, 0) > 0,
                                     relayout, trace, interfere)] = fid
                    continue
                done[r["id"]] = r
                completed += 1
                notify(f"[{completed}/{total}] {r['id']:<12} "
                       f"{'cache hit' if r['from_cache'] else 'computed'} "
                       f"in {r['wall_s']:.1f}s")

    runs = [FigureRun(**done[fid]) for fid in ids]  # restore request order
    metrics = metrics_from_runs(runs, scale, seed)
    run_hash = _run_name(ids, scale, seed)
    report = RunReport(figures=runs, metrics=metrics, run_hash=run_hash,
                       jobs=jobs, wall_s=time.perf_counter() - t_start)

    if results_dir is not None:
        out_dir = Path(results_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        out = out_dir / f"run-{run_hash}.json"
        tmp = out.with_suffix(".json.tmp")
        tmp.write_text(report.metrics_json(), encoding="utf-8")
        os.replace(tmp, out)
        report.path = out
    return report
