"""``python -m repro info`` — environment, defaults, and registries.

One screen answering "what will run, from where, with what": package and
interpreter versions, the default seed/scale/jobs, the artifact cache
location and occupancy, and the registered workloads, experiments and
subcommands.  ``--json`` emits the same data machine-readably (used by
bug reports and CI logs).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from typing import Any, Dict, List, Optional

from repro.harness.cliutil import EXIT_OK

__all__ = ["collect_info", "cli"]

#: The ``python -m repro`` subcommand surface (kept in sync with
#: ``repro.__main__``; 'run'/'all'/'list' ride the default parser).
SUBCOMMANDS = ("list", "run", "all", "lint", "bench", "chaos", "autoplace",
               "trace", "info")


def collect_info() -> Dict[str, Any]:
    """Gather the info payload (plain JSON-serializable data)."""
    import numpy as np

    import repro
    from repro.cache import get_cache
    from repro.harness import runner
    from repro.workloads import WORKLOADS

    cache = get_cache()
    entries = cache._entries()
    return {
        "version": repro.__version__,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "defaults": {"seed": 0, "scale": 0.12, "jobs": 1},
        "cache": {
            "dir": str(cache.root),
            "enabled": bool(cache.enabled),
            "entries": len(entries),
            "size_bytes": int(cache.size_bytes()),
            "max_bytes": int(cache.max_bytes),
        },
        "workloads": sorted(WORKLOADS),
        "experiments": sorted(runner.EXPERIMENTS),
        "subcommands": list(SUBCOMMANDS),
    }


def _render(info: Dict[str, Any]) -> str:
    cache = info["cache"]
    lines = [
        f"repro {info['version']}  "
        f"(python {info['python']}, numpy {info['numpy']})",
        f"platform   : {info['platform']}",
        f"defaults   : seed={info['defaults']['seed']} "
        f"scale={info['defaults']['scale']} jobs={info['defaults']['jobs']}",
        f"cache      : {cache['dir']} "
        f"({'enabled' if cache['enabled'] else 'disabled'}, "
        f"{cache['entries']} entries, "
        f"{cache['size_bytes'] / (1 << 20):.1f} MiB of "
        f"{cache['max_bytes'] / (1 << 20):.0f} MiB)",
        f"subcommands: {' '.join(info['subcommands'])}",
        f"experiments: {' '.join(info['experiments'])}",
        f"workloads  : {' '.join(info['workloads'])}",
    ]
    return "\n".join(lines)


def cli(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro info",
        description="Show environment, defaults, cache state and the "
                    "registered workloads/experiments.")
    parser.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON instead of text")
    args = parser.parse_args(argv)

    info = collect_info()
    if args.json:
        json.dump(info, sys.stdout, sort_keys=True, indent=1)
        sys.stdout.write("\n")
    else:
        print(_render(info))
    return EXIT_OK
