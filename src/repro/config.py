"""System configuration for the simulated multicore (paper Table 2).

The paper evaluates an 8x8-tile mesh chip: each tile has a core, private
L1/L2, and one shared L3 (LLC) bank.  Four DRAM channels sit at the mesh
corners.  The defaults below mirror Table 2 of the paper; everything is a
frozen dataclass so a configuration can be hashed, compared, and safely
shared between runs.

The timing/energy constants in :class:`PerfParams` are *model* parameters
for the coarse message-level simulator (see ``DESIGN.md`` section 5); they
are chosen to sit in the published relative ranges (link hop vs. cache
access vs. DRAM access) rather than to replicate gem5 cycle counts.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional

__all__ = [
    "NocConfig",
    "CacheConfig",
    "DramConfig",
    "PerfParams",
    "SystemConfig",
    "DEFAULT_CONFIG",
    "config_for_mesh",
]

CACHE_LINE = 64
PAGE_SIZE = 4096


@dataclass(frozen=True)
class NocConfig:
    """Mesh network-on-chip parameters (Table 2: "NoC").

    Attributes:
        width: Number of tile columns.
        height: Number of tile rows.
        link_bytes_per_cycle: Payload bytes one link moves per cycle
            (Table 2: 32B 1-cycle bidirectional links).
        hop_latency: Cycles for one router+link traversal (5-stage router
            pipelined; effective per-hop latency for a flit).
        header_bytes: Bytes of header per message (request/control
            messages are a single header flit).
    """

    width: int = 8
    height: int = 8
    link_bytes_per_cycle: int = 32
    hop_latency: int = 3
    header_bytes: int = 8

    @property
    def num_tiles(self) -> int:
        return self.width * self.height


@dataclass(frozen=True)
class CacheConfig:
    """Shared L3 (LLC) parameters (Table 2: "Shared L3 $")."""

    line_bytes: int = CACHE_LINE
    bank_capacity_bytes: int = 1 << 20  # 1 MiB per bank
    default_interleave: int = 1024  # Static NUCA, 1kB interleave
    access_latency: int = 20
    iot_entries: int = 16
    private_cache_bytes: int = 256 << 10  # per-core L2 (reuse filtering)


@dataclass(frozen=True)
class DramConfig:
    """Memory system parameters (Table 2: "DRAM")."""

    channels: int = 4
    bytes_per_cycle_per_channel: float = 12.8  # 25.6 GB/s at 2 GHz
    access_latency: int = 100


@dataclass(frozen=True)
class PerfParams:
    """Constants for the analytic timing and energy models.

    Timing:
        core_ops_per_cycle: Peak scalar-equivalent ops a core retires per
            cycle (8-issue OOO with AVX-512 on streaming kernels).
        bank_ops_per_cycle: Near-data ops one L3 stream engine (SEL3 plus
            its SMT compute thread) retires per cycle.
        bank_access_cycles: Service occupancy of one line access at a bank.
        atomic_access_cycles: Service occupancy of one atomic op at the bank.
        remote_req_cycles: Extra receive-side occupancy for handling one
            *remote* fine-grained request (decode, schedule, reply) — the
            per-message overhead that colocation eliminates.
        credit_iters: Iterations covered by one SEcore<->SEL3 flow-control
            credit message (coarse-grained synchronization, paper 2.2 —
            sized so credits cover the SEL3's 64 KB stream buffer).

    Energy (picojoules per event; relative magnitudes follow McPAT/CACTI
    style models at 22nm):
        pj_per_hop_flit: Moving one flit across one router+link.
        pj_l3_access: One L3 bank line access.
        pj_l2_access / pj_l1_access: Private cache line accesses.
        pj_dram_access: One DRAM line access.
        pj_core_op: One committed core ALU op (including pipeline overhead
            of a wide OOO core).
        pj_near_op: One near-data ALU op at the stream engine (skips
            front-end/LSQ, paper 2.2).
    """

    core_ops_per_cycle: float = 8.0
    bank_ops_per_cycle: float = 16.0
    bank_access_cycles: float = 1.0
    atomic_access_cycles: float = 1.0
    remote_req_cycles: float = 1.5
    credit_iters: int = 1024

    pj_per_hop_flit: float = 12.0
    pj_l3_access: float = 40.0
    pj_l2_access: float = 25.0
    pj_l1_access: float = 10.0
    pj_dram_access: float = 640.0
    pj_core_op: float = 60.0
    pj_near_op: float = 4.0


@dataclass(frozen=True)
class SystemConfig:
    """Complete machine description (paper Table 2).

    The default constructed value is the evaluation platform of the paper:
    64 tiles on an 8x8 mesh, 64 x 1 MiB L3 banks, 4 corner DRAM channels.
    """

    noc: NocConfig = dataclasses.field(default_factory=NocConfig)
    cache: CacheConfig = dataclasses.field(default_factory=CacheConfig)
    dram: DramConfig = dataclasses.field(default_factory=DramConfig)
    perf: PerfParams = dataclasses.field(default_factory=PerfParams)
    page_size: int = PAGE_SIZE
    # Interleave-pool granularities the OS offers (paper: 64B..4KiB).
    # Restricting this to (4096,) emulates page-granularity D-NUCA
    # placement — the ablation behind the paper's Fig 6 argument.
    pool_interleaves: tuple = (64, 128, 256, 512, 1024, 2048, 4096)

    @property
    def num_banks(self) -> int:
        """One shared L3 bank per tile."""
        return self.noc.num_tiles

    @property
    def num_cores(self) -> int:
        return self.noc.num_tiles

    @property
    def total_l3_bytes(self) -> int:
        return self.num_banks * self.cache.bank_capacity_bytes

    def scaled(self, **kwargs) -> "SystemConfig":
        """Return a copy with top-level fields replaced.

        Convenience for experiments that vary one subsystem, e.g.
        ``cfg.scaled(cache=dataclasses.replace(cfg.cache, ...))``.
        """
        return dataclasses.replace(self, **kwargs)


def config_for_mesh(width: int, height: int,
                    base: Optional[SystemConfig] = None) -> SystemConfig:
    """The paper's platform rescaled to a ``width x height`` mesh.

    Keeps every per-tile and per-bank constant of ``base`` (default
    :data:`DEFAULT_CONFIG`) and grows only what the paper's Table 2
    scales with tile count: one L3 bank and core per tile, and one DRAM
    channel per 16 tiles (the 8x8 platform's corner-channel ratio,
    rounded up and kept even so channels still pair across the mesh
    edges).  ``config_for_mesh(8, 8)`` is exactly the default config.

    This is the entry point the scale benchmarks (``alloc``,
    ``fig12_full``) and the 16x16 / 32x32 dataset generators build on.
    """
    if width < 1 or height < 1:
        raise ValueError("mesh dimensions must be positive")
    cfg = base if base is not None else DEFAULT_CONFIG
    tiles = width * height
    channels = max(2, 2 * ((tiles + 31) // 32))
    return cfg.scaled(
        noc=dataclasses.replace(cfg.noc, width=width, height=height),
        dram=dataclasses.replace(cfg.dram, channels=channels))


DEFAULT_CONFIG = SystemConfig()
