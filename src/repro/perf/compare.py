"""Normalization and comparison helpers for reported numbers.

The paper normalizes speedup and energy efficiency to the *Near-L3*
baseline (Fig 12 top two panels) and NoC traffic to *In-Core* (Fig 12
bottom panel); sweep figures normalize to whichever configuration the
caption names.  These helpers keep the direction of every ratio in one
place so experiment code cannot get them backwards.

:func:`compare_bench` — the regression gate ``python -m repro bench
--compare`` (and CI) judges BENCH_*.json payloads with — lives here too,
next to the other comparison logic; :mod:`repro.perf.bench` re-exports
it for backwards compatibility.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence

from repro.perf.model import RunResult

__all__ = ["speedup", "energy_efficiency", "traffic_ratio", "geomean",
           "mean", "compare_bench"]


def speedup(baseline: RunResult, candidate: RunResult) -> float:
    """How much faster ``candidate`` is than ``baseline`` (>1 is faster)."""
    if candidate.cycles <= 0:
        raise ValueError("candidate has non-positive cycles")
    return baseline.cycles / candidate.cycles


def energy_efficiency(baseline: RunResult, candidate: RunResult) -> float:
    """Energy-efficiency gain of ``candidate`` over ``baseline`` (>1 uses less)."""
    if candidate.energy_pj <= 0:
        raise ValueError("candidate has non-positive energy")
    return baseline.energy_pj / candidate.energy_pj


def traffic_ratio(baseline: RunResult, candidate: RunResult) -> float:
    """Candidate NoC flit-hops as a fraction of baseline (<1 is a reduction)."""
    if baseline.total_flit_hops <= 0:
        return 0.0
    return candidate.total_flit_hops / baseline.total_flit_hops


def geomean(values: Iterable[float]) -> float:
    vals = [v for v in values]
    if not vals:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in vals):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def compare_bench(old: Dict, new: Dict, threshold: float = 2.0,
                  metric: str = "both") -> List[str]:
    """Regression messages for one bench (empty list = no regression).

    A metric regresses when ``seconds`` grows beyond ``threshold`` times
    the baseline, or its measured ``speedup`` over the reference drops
    below ``1/threshold`` of the baseline's.  ``metric`` restricts which
    check runs (``"seconds"``, ``"speedup"``, or ``"both"`` — CI uses
    ``"speedup"``, which is stable across machines of different speeds).
    Only metrics whose ``params`` match exactly are compared; a baseline
    recorded at one problem size is never judged against another, and
    metrics new in ``new`` (or missing from it) are skipped.
    """
    problems = []
    for name, n in new.get("metrics", {}).items():
        o = old.get("metrics", {}).get(name)
        if o is None or o.get("params") != n.get("params"):
            continue
        if metric in ("seconds", "both") and o.get("seconds"):
            if n["seconds"] > o["seconds"] * threshold:
                problems.append(
                    f"{new.get('bench', '?')}/{name}: {n['seconds']:.6f}s vs "
                    f"baseline {o['seconds']:.6f}s "
                    f"(> {threshold:g}x slowdown)")
        if metric in ("speedup", "both") and o.get("speedup") \
                and n.get("speedup"):
            if n["speedup"] < o["speedup"] / threshold:
                problems.append(
                    f"{new.get('bench', '?')}/{name}: speedup "
                    f"{n['speedup']:.1f}x vs baseline {o['speedup']:.1f}x "
                    f"(> {threshold:g}x regression)")
    return problems
