"""Normalization helpers matching the paper's reporting conventions.

The paper normalizes speedup and energy efficiency to the *Near-L3*
baseline (Fig 12 top two panels) and NoC traffic to *In-Core* (Fig 12
bottom panel); sweep figures normalize to whichever configuration the
caption names.  These helpers keep the direction of every ratio in one
place so experiment code cannot get them backwards.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.perf.model import RunResult

__all__ = ["speedup", "energy_efficiency", "traffic_ratio", "geomean", "mean"]


def speedup(baseline: RunResult, candidate: RunResult) -> float:
    """How much faster ``candidate`` is than ``baseline`` (>1 is faster)."""
    if candidate.cycles <= 0:
        raise ValueError("candidate has non-positive cycles")
    return baseline.cycles / candidate.cycles


def energy_efficiency(baseline: RunResult, candidate: RunResult) -> float:
    """Energy-efficiency gain of ``candidate`` over ``baseline`` (>1 uses less)."""
    if candidate.energy_pj <= 0:
        raise ValueError("candidate has non-positive energy")
    return baseline.energy_pj / candidate.energy_pj


def traffic_ratio(baseline: RunResult, candidate: RunResult) -> float:
    """Candidate NoC flit-hops as a fraction of baseline (<1 is a reduction)."""
    if baseline.total_flit_hops <= 0:
        return 0.0
    return candidate.total_flit_hops / baseline.total_flit_hops


def geomean(values: Iterable[float]) -> float:
    vals = [v for v in values]
    if not vals:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in vals):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)
