"""Analytic bottleneck timing model (DESIGN.md §5).

Each recorded phase is timed at the slowest of its resources:

* cores   — committed ops vs. issue width,
* banks   — L3 service occupancy (line accesses, atomics, near-ops),
* links   — most-loaded directed NoC link (1 flit/cycle/link),
* chains  — serialized dependence chains (pointer chasing),

and the run is the sum of its phases, floored by whole-run DRAM bandwidth
(misses overlap with everything, so DRAM is a global bound, not a
per-phase one).  This deliberately ignores cycle-level queueing — the
reproduced claims are ratios between configurations that shift *where*
messages go, which this model captures exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.arch.energy import EnergyBreakdown
from repro.arch.mesh import Mesh
from repro.arch.noc import MessageClass, pair_channel_loads
from repro.machine import Machine
from repro.perf import kernels as _kernels
from repro.perf.stats import PhaseStats, RunRecorder

__all__ = ["PerfModel", "RunResult", "pair_link_loads"]


def pair_link_loads(mesh: Mesh, pair_flits: np.ndarray) -> np.ndarray:
    """Per-channel loads (links + inject/eject ports); see
    :func:`repro.arch.noc.pair_channel_loads`."""
    return pair_channel_loads(mesh, pair_flits)


@dataclass
class RunResult:
    """Everything an experiment needs from one run."""

    label: str
    cycles: float
    phase_cycles: List[Tuple[str, float]]
    energy: EnergyBreakdown
    flit_hops_by_class: Dict[str, float]
    total_flit_hops: float
    l3_miss_pct: float
    noc_utilization: float
    counters: Dict[str, float] = field(default_factory=dict)
    phases: List[PhaseStats] = field(default_factory=list)
    value: object = None  # functional result of the kernel, for checking
    #: Per-phase resource times (core/bank/link/serial), aligned with
    #: ``phase_cycles``; each phase's cycles is the max of its entries.
    phase_resources: List[Tuple[str, Dict[str, float]]] = field(default_factory=list)
    #: Execution-environment attribution (kernel backend, numba/cc
    #: versions).  Metadata only: deliberately excluded from figure rows
    #: and the harness' ``run-<hash>.json`` so results stay byte-identical
    #: across backends — that byte-identity is what the equivalence suite
    #: asserts.
    env: Dict[str, object] = field(default_factory=dict)

    @property
    def energy_pj(self) -> float:
        return self.energy.total


class PerfModel:
    """Turns a finished :class:`RunRecorder` into a :class:`RunResult`."""

    def __init__(self, machine: Machine):
        self.machine = machine
        self.perf = machine.config.perf

    # ------------------------------------------------------------------
    def _phase_resources(self, phase: PhaseStats) -> Dict[str, float]:
        """Time each resource would take alone; the phase runs at the max.

        Insertion order (core, bank, link, serial) is load-bearing: the
        attribution table and ``max()`` both iterate it.
        """
        p = self.perf
        t_core = float(phase.core_ops.max()) / p.core_ops_per_cycle if phase.core_ops.size else 0.0
        bank_busy = (phase.bank_line_accesses * p.bank_access_cycles
                     + phase.bank_atomics * p.atomic_access_cycles
                     + phase.bank_remote_reqs * p.remote_req_cycles
                     + phase.bank_near_ops / p.bank_ops_per_cycle)
        t_bank = float(bank_busy.max()) if bank_busy.size else 0.0
        total_pair = sum(phase.pair_flits.values())
        t_link = float(pair_link_loads(self.machine.mesh, total_pair).max())
        t_serial = float(phase.core_serial_cycles.max()) if phase.core_serial_cycles.size else 0.0
        return {"core": t_core, "bank": t_bank,
                "link": t_link, "serial": t_serial}

    def _phase_cycles(self, phase: PhaseStats) -> float:
        return max(self._phase_resources(phase).values())

    # ------------------------------------------------------------------
    def evaluate(self, recorder: RunRecorder, *, label: str = "run",
                 reuse_fraction: float = 1.0, value=None) -> RunResult:
        """Close the recorder, fold in capacity misses, and time the run.

        Args:
            recorder: the event sink of a completed trace execution.
            reuse_fraction: fraction of L3 accesses eligible to capacity-
                miss (see :meth:`repro.arch.llc.LlcModel.miss_fraction_for_banks`).
            value: functional kernel result to carry along.
        """
        recorder.close()
        machine = self.machine
        p = self.perf
        noc = machine.config.noc
        line = machine.config.cache.line_bytes

        # ---------------- capacity misses -> DRAM traffic -------------
        miss_frac = machine.llc.bank_miss_fraction()
        accesses = recorder.bank_line_accesses + recorder.bank_atomics
        miss_counts = accesses * miss_frac * reuse_fraction
        total_accesses = float(accesses.sum())
        miss_pct = 100.0 * float(miss_counts.sum()) / total_accesses if total_accesses else 0.0

        banks_idx = np.arange(machine.num_banks)
        have_misses = miss_counts > 0
        dram_accesses = float(miss_counts.sum())
        from repro.arch.dram import DramModel
        dram = DramModel(machine.mesh, machine.config.dram)
        if have_misses.any():
            b = banks_idx[have_misses]
            c = miss_counts[have_misses]
            ctrl_tiles = dram.controller_tile_for(b)
            # request to the memory controller, line response back
            recorder.traffic.record(b, ctrl_tiles, 0, MessageClass.CONTROL, count=c)
            recorder.traffic.record(ctrl_tiles, b, line, MessageClass.DATA, count=c)
            dram.record_miss_traffic(b, float(line), c)
            # The DRAM round-trips above were recorded after the last
            # phase mark; wrap them so they are timed too.
            recorder.end_phase("memory")
        t_dram = dram.bottleneck_cycles()

        # ---------------- per-phase timing ----------------------------
        phase_resources = [(ph.label, self._phase_resources(ph))
                           for ph in recorder.phases]
        phase_cycles = [(lbl, max(res.values())) for lbl, res in phase_resources]
        cycles = sum(c for _, c in phase_cycles)
        cycles = max(cycles, t_dram, 1.0)

        # ---------------- energy --------------------------------------
        flit_hops = recorder.traffic.flit_hops_by_class()
        total_hops = sum(flit_hops.values())
        l3_accesses = float(accesses.sum())
        core_ops = float(recorder.core_ops.sum())
        near_ops = float(recorder.bank_near_ops.sum())
        energy = machine.energy_model.compute(
            flit_hops=total_hops,
            l3_accesses=l3_accesses,
            private_accesses=recorder.private_line_accesses,
            dram_accesses=dram_accesses,
            core_ops=core_ops,
            near_ops=near_ops,
        )

        result = RunResult(
            label=label,
            cycles=cycles,
            phase_cycles=phase_cycles,
            energy=energy,
            flit_hops_by_class={cls.value: v for cls, v in flit_hops.items()},
            total_flit_hops=total_hops,
            l3_miss_pct=miss_pct,
            noc_utilization=recorder.traffic.utilization(cycles),
            counters={
                "l3_accesses": l3_accesses,
                "atomics": float(recorder.bank_atomics.sum()),
                "remote_reqs": float(recorder.bank_remote_reqs.sum()),
                "core_ops": core_ops,
                "near_ops": near_ops,
                "dram_accesses": dram_accesses,
                "messages": recorder.traffic.message_count(),
                "total_flits": recorder.traffic.total_flits(),
                "stream_elem_accesses": recorder.stream_elem_accesses,
                "stream_remote_accesses": recorder.stream_remote_accesses,
            },
            phases=list(recorder.phases),
            value=value,
            phase_resources=phase_resources,
            env=dict(_kernels.backend_info()),
        )
        interference = machine.interference
        if interference is not None:
            # Surface the injected host load so reports/goldens can pin
            # it; absent on clean runs, keeping their counters dict (and
            # serialized results) byte-identical.
            result.counters["host_injected_messages"] = float(
                interference.injected_messages)
            result.counters["host_epochs"] = float(interference.epoch_index)
        tracer = machine.tracer
        if tracer is not None:
            tracer.on_run_end(result, recorder)
        return result
