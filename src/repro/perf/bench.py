"""Tracked performance benchmarks (``python -m repro bench``).

Runs microbenchmarks of the simulator hot paths (NoC channel loads,
address translation, IOT bank lookup) and an end-to-end figure
benchmark, and writes one ``BENCH_<name>.json`` per bench with
environment metadata.  Each hot-path metric is timed twice — through the
shipped vectorized code and through the pre-vectorization originals kept
in :mod:`repro.perf.reference` — so every JSON carries a *measured*
before/after speedup instead of a hand-recorded number.

The JSONs are committed at the repo root as the performance trajectory;
``--compare`` re-runs the suite and exits non-zero when a metric
regresses beyond the threshold against a baseline JSON (CI runs the
reduced ``--smoke`` variant against ``benchmarks/smoke/``).

Schema (``"schema": 1``)::

    {
      "bench": "noc",
      "schema": 1,
      "smoke": false,
      "env": {"python": ..., "numpy": ..., "platform": ...,
              "cpu_count": ..., "timestamp": ...},
      "metrics": {
        "<metric>": {"seconds": ..., "calls": ...,
                     "reference_seconds": ...,   # null if no reference
                     "speedup": ...,             # null if no reference
                     "params": {...}}            # compare key
      }
    }

Comparisons only pair metrics whose ``params`` match exactly, so a
baseline recorded at one problem size is never judged against another.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.perf.compare import compare_bench  # noqa: F401  (re-export)

__all__ = ["run_benches", "write_bench_json", "compare_bench",
           "BENCH_NAMES", "cli"]

SCHEMA_VERSION = 1
BENCH_NAMES = ("noc", "translate", "iot", "fig12", "relayout", "alloc",
               "interfere", "fig12_full")

# Full-mode / smoke-mode problem sizes.
_FULL = {
    "pairs_reps": 30, "micro_reps": 5, "micro_n": 500_000,
    "record_batches": 200, "fig12_scale": 0.06, "fig12_seed": 0,
    "relayout_scale": 1.0, "decide_arrays": 512,
    "alloc_n": 20_000, "alloc_meshes": ((8, 8), (16, 16), (32, 32)),
    "interfere_scale": 0.1,
    "fig12_full_scale": 1.0,
}
_SMOKE = {
    "pairs_reps": 5, "micro_reps": 2, "micro_n": 50_000,
    "record_batches": 50, "fig12_scale": 0.015, "fig12_seed": 0,
    "relayout_scale": 0.25, "decide_arrays": 128,
    "alloc_n": 2_000, "alloc_meshes": ((8, 8), (16, 16)),
    "interfere_scale": 0.05,
    "fig12_full_scale": 0.25,
}


def _time_call(fn: Callable[[], object], reps: int) -> float:
    """Best-of-``reps`` wall seconds for one call (min damps scheduler
    noise without hiding real slowdowns across reps)."""
    best = float("inf")
    for _ in range(max(1, reps)):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _metric(seconds: float, calls: int, params: dict,
            reference_seconds: Optional[float] = None) -> dict:
    speedup = (reference_seconds / seconds
               if reference_seconds is not None and seconds > 0 else None)
    return {
        "seconds": seconds,
        "calls": calls,
        "reference_seconds": reference_seconds,
        "speedup": speedup,
        "params": params,
    }


# ----------------------------------------------------------------------
# Individual benches
# ----------------------------------------------------------------------
def _bench_noc(sizes: dict) -> Dict[str, dict]:
    from repro.arch.mesh import Mesh
    from repro.arch.noc import MessageClass, TrafficAccountant, \
        pair_channel_loads
    from repro.config import DEFAULT_CONFIG
    from repro.perf.reference import pair_channel_loads_reference

    mesh = Mesh(8, 8)
    n = mesh.num_tiles
    rng = np.random.default_rng(0)
    pair_flits = rng.integers(0, 1000, size=n * n).astype(np.float64)
    reps = sizes["pairs_reps"]

    metrics = {}
    params = {"mesh": [8, 8], "nonzero_pairs": int((pair_flits > 0).sum())}
    sec = _time_call(lambda: pair_channel_loads(mesh, pair_flits), reps * 10)
    ref = _time_call(lambda: pair_channel_loads_reference(mesh, pair_flits),
                     max(2, reps // 2))
    metrics["pair_channel_loads"] = _metric(sec, reps * 10, params, ref)

    # Accountant metric queries on a warm dirty epoch vs. re-expanding the
    # pair matrix per query (the pre-PR behaviour).
    acc = TrafficAccountant(mesh, DEFAULT_CONFIG.noc)
    batches = sizes["record_batches"]
    src = rng.integers(0, n, size=(batches, 1000))
    dst = rng.integers(0, n, size=(batches, 1000))
    for i in range(batches):
        acc.record(src[i], dst[i], 64, MessageClass.DATA)

    def _queries():
        return (acc.max_link_load(), acc.mean_link_load(),
                acc.utilization(1e6))

    _queries()  # prime the epoch cache
    sec = _time_call(_queries, reps * 10)

    def _queries_uncached():
        acc._channel_cache = None
        acc._dirty = True
        return _queries()

    ref = _time_call(_queries_uncached, max(2, reps // 2))
    metrics["accountant_queries"] = _metric(
        sec, reps * 10, {"mesh": [8, 8], "record_batches": batches}, ref)
    return metrics


def _bench_translate(sizes: dict) -> Dict[str, dict]:
    from repro.machine import Machine
    from repro.perf.reference import translate_reference

    machine = Machine()
    rng = np.random.default_rng(0)
    n = sizes["micro_n"]
    reps = sizes["micro_reps"]
    heap_base = machine.malloc(8 << 20)

    # Single-region batch: the executor's common case (a trace walks one
    # array).
    single = heap_base + rng.integers(0, 8 << 20, size=n)
    # Mixed batch: addresses spread across the heap and two pools.
    intrlvs = machine.pools.interleaves[:2]
    for iv in intrlvs:
        machine.pools.expand(iv, 4 << 20)
    mixed = np.concatenate(
        [heap_base + rng.integers(0, 8 << 20, size=n // 2)]
        + [machine.pools.pool(iv).vbase
           + rng.integers(0, 4 << 20, size=n // 4) for iv in intrlvs])
    rng.shuffle(mixed)

    metrics = {}
    for label, addrs in (("translate_single_region", single),
                         ("translate_mixed_regions", mixed)):
        params = {"n": int(addrs.size)}
        sec = _time_call(lambda a=addrs: machine.space.translate(a), reps * 4)
        ref = _time_call(
            lambda a=addrs: translate_reference(machine.space, a), reps)
        metrics[label] = _metric(sec, reps * 4, params, ref)
    return metrics


def _bench_iot(sizes: dict) -> Dict[str, dict]:
    from repro.machine import Machine
    from repro.perf.reference import iot_banks_reference

    machine = Machine()
    rng = np.random.default_rng(0)
    n = sizes["micro_n"]
    reps = sizes["micro_reps"]
    intrlvs = machine.pools.interleaves
    for iv in intrlvs:
        machine.pools.expand(iv, 4 << 20)  # installs the IOT entries

    shift = machine.llc._default_shift
    in_pool = machine.pools.pool(intrlvs[0]).pbase \
        + rng.integers(0, 4 << 20, size=n)
    mixed = np.concatenate([
        rng.integers(0, 1 << 30, size=n // 2),  # default-hash region
        machine.pools.pool(intrlvs[3]).pbase
        + rng.integers(0, 4 << 20, size=n // 2),
    ])
    rng.shuffle(mixed)

    metrics = {}
    for label, addrs in (("iot_banks_single_entry", in_pool),
                         ("iot_banks_mixed", mixed)):
        params = {"n": int(addrs.size), "entries": len(machine.iot)}
        sec = _time_call(lambda a=addrs: machine.iot.banks(a, shift), reps * 4)
        ref = _time_call(
            lambda a=addrs: iot_banks_reference(machine.iot, a, shift), reps)
        metrics[label] = _metric(sec, reps * 4, params, ref)
    return metrics


def _bench_fig12(sizes: dict) -> Dict[str, dict]:
    import tempfile

    from repro import cache
    from repro.harness import experiments as exp
    from repro.harness import runner
    from repro.perf.reference import reference_impls

    scale, seed = sizes["fig12_scale"], sizes["fig12_seed"]
    params = {"scale": scale, "seed": seed}

    # Warmup: the first figure run in a process pays one-off costs that
    # are nobody's throughput — imports, the C kernel dlopen, numpy
    # ufunc setup, the workload cache's first deserialize.  Pay them
    # once untimed so both timed legs measure steady state.
    exp.fig12_overall(scale=scale, seed=seed)

    # Best-of-3 per leg: a single end-to-end rep on a busy (or
    # single-core) machine is too noisy to track a speedup ratio.
    t0 = time.perf_counter()
    result = exp.fig12_overall(scale=scale, seed=seed)
    rows = list(result.rows())
    sec = time.perf_counter() - t0
    for _ in range(2):
        sec = min(sec, _time_call(
            lambda: exp.fig12_overall(scale=scale, seed=seed), 1))

    with reference_impls():
        t0 = time.perf_counter()
        ref_result = exp.fig12_overall(scale=scale, seed=seed)
        ref_rows = list(ref_result.rows())
        ref = time.perf_counter() - t0
        for _ in range(2):
            ref = min(ref, _time_call(
                lambda: exp.fig12_overall(scale=scale, seed=seed), 1))
    if rows != ref_rows:
        raise RuntimeError("fig12 reference and vectorized rows diverged — "
                           "bench aborted (fix the equivalence bug first)")

    metrics = {"fig12_end_to_end": _metric(sec, 1, params, ref)}

    # Artifact-cache behaviour: cold compute-and-store vs warm reload.
    old_root = cache.get_cache().root
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as tmp:
        try:
            t0 = time.perf_counter()
            runner._run_one("fig12", scale, seed, True, tmp)
            cold = time.perf_counter() - t0
            t0 = time.perf_counter()
            runner._run_one("fig12", scale, seed, True, tmp)
            warm = time.perf_counter() - t0
        finally:
            cache.configure(root=old_root)
    metrics["fig12_cache_cold"] = _metric(cold, 1, params)
    metrics["fig12_cache_warm"] = _metric(warm, 1, params)
    return metrics


def _bench_fig12_full(sizes: dict) -> Dict[str, dict]:
    """fig12 at (or near) paper scale, shipped code only.

    The reference leg at scale=1.0 runs for minutes, so unlike
    :func:`_bench_fig12` this bench tracks absolute shipped wall time —
    the number Table 4-sized runs actually cost — rather than a
    speedup pair."""
    from repro.harness import experiments as exp

    scale, seed = sizes["fig12_full_scale"], sizes["fig12_seed"]
    params = {"scale": scale, "seed": seed}
    exp.fig12_overall(scale=scale, seed=seed)  # warmup (see _bench_fig12)
    t0 = time.perf_counter()
    result = exp.fig12_overall(scale=scale, seed=seed)
    nrows = len(list(result.rows()))
    sec = time.perf_counter() - t0
    if nrows == 0:
        raise RuntimeError("fig12_full produced no rows")
    return {"fig12_full_end_to_end": _metric(sec, 1, params)}


def _bench_alloc(sizes: dict) -> Dict[str, dict]:
    """Raw allocation throughput: policies x mesh sizes x backends.

    Feeds each policy one ``select_batch`` of ``alloc_n`` irregular
    allocations whose affinity rows are sampled from the mesh's hop
    table — the allocator inner loop with no workload around it.  The
    metric's ``seconds`` covers the whole batch; allocations/sec is
    ``calls / seconds``.

    Ratios (the machine-stable numbers CI gates on): the python
    backend's Hybrid rows carry the pre-PR scalar loop as reference,
    and every compiled backend's rows carry the python backend as
    reference — so ``speedup`` is always a same-machine alloc ratio.
    """
    from repro.arch.mesh import Mesh
    from repro.core.load import LoadTracker
    from repro.core.policy import HybridPolicy, LinearPolicy, RandomPolicy
    from repro.perf import kernels
    from repro.perf.reference import hybrid_select_batch_reference

    n = sizes["alloc_n"]
    metrics = {}
    before = kernels.get_backend().NAME
    try:
        for w, hgt in sizes["alloc_meshes"]:
            mesh = Mesh(w, hgt)
            nb = mesh.num_tiles
            rng = np.random.default_rng(0)
            # Affinity rows: mean hop distance to a small random group,
            # the shape malloc_irregular_batch hands the policy.
            group = rng.integers(0, nb, size=(n, 4))
            mean_hops = (mesh.hops_table()[group.ravel()]
                         .reshape(n, 4, nb).mean(axis=1))
            # available_backends() lists python first, so the python
            # seconds exist by the time a compiled backend needs them.
            py_secs: Dict[str, float] = {}
            for backend in kernels.available_backends():
                kernels.set_backend(backend)
                for policy in (RandomPolicy(seed=0), LinearPolicy(),
                               HybridPolicy(h=5.0)):
                    label = (f"alloc_{policy.name.lower()}"
                             f"_{w}x{hgt}_{backend}")
                    def _run(p=policy, mh=mean_hops, banks=nb):
                        p.select_batch(mh, LoadTracker(banks), mesh)
                    sec = _time_call(_run, 3)
                    ref: Optional[float] = None
                    if backend == "python":
                        py_secs[policy.name] = sec
                        if isinstance(policy, HybridPolicy):
                            ref = _time_call(
                                lambda p=policy, mh=mean_hops, banks=nb:
                                hybrid_select_batch_reference(
                                    p, mh, LoadTracker(banks), mesh), 3)
                    else:
                        ref = py_secs.get(policy.name)
                    metrics[label] = _metric(
                        sec, n, {"n": n, "mesh": [w, hgt],
                                 "backend": backend,
                                 "policy": policy.name}, ref)
    finally:
        kernels.set_backend(before)
    return metrics


def _bench_relayout(sizes: dict) -> Dict[str, dict]:
    from repro.relayout.autoplace import run_autoplace
    from repro.relayout.policy import (ArrayDrift, RelayoutConfig, Telemetry,
                                       decide)

    scale = sizes["relayout_scale"]
    seed = sizes.get("relayout_seed", 0)
    reps = sizes["micro_reps"]
    metrics = {}

    # End-to-end static + online pair for the canonical drifting stream.
    t0 = time.perf_counter()
    report = run_autoplace(("stream_flip",), RelayoutConfig(seed=seed),
                           scale=scale, seed=seed)
    sec = time.perf_counter() - t0
    metrics["autoplace_stream_flip"] = _metric(
        sec, 1, {"scale": scale, "migrations": report.plan.applied_count(),
                 "recovered": report.best_recovered})

    # Policy micro-bench: one decide() over a wide telemetry snapshot
    # (the per-epoch cost the engine pays at every boundary).
    nb = 64
    n_arrays = sizes["decide_arrays"]
    cfg = RelayoutConfig()
    arrays = tuple(
        ArrayDrift(name=f"a{i}", vaddr=i << 12, total=1024.0 + i,
                   remote=512.0,
                   delta_hist=tuple(512.0 if d == (i % nb) else 0.0
                                    for d in range(nb)))
        for i in range(n_arrays))
    telemetry = Telemetry(epoch="bench", num_banks=nb,
                          bank_heat=tuple(float(b + 1) for b in range(nb)),
                          healthy=(True,) * nb, arrays=arrays,
                          budget_left=cfg.max_total)
    sec = _time_call(lambda: decide(telemetry, cfg), reps * 10)
    metrics["policy_decide"] = _metric(
        sec, reps * 10, {"arrays": n_arrays, "num_banks": nb})
    return metrics


def _bench_interfere(sizes: dict) -> Dict[str, dict]:
    """Host-interference engine: end-to-end sweep cost + pinned slowdown.

    ``interfere_end_to_end`` tracks the wall cost of a two-factor
    contention sweep over vecadd.  ``interfere_slowdown_vecadd`` is the
    machine-*independent* number CI gates on: its ``seconds`` /
    ``reference_seconds`` pair holds *simulated cycles* (clean vs
    contended at the top factor), so the recorded ``speedup`` is the
    deterministic slowdown ratio — identical on any machine, and a drift
    in it means the injection physics changed, not the hardware."""
    from repro.interfere.cli import run_interfere
    from repro.interfere.plan import HostTrafficPlan

    scale = sizes["interfere_scale"]
    seed = sizes.get("interfere_seed", 0)
    factors = (1.0, 4.0)
    plan = HostTrafficPlan.generate(seed)
    params = {"scale": scale, "seed": seed, "factors": list(factors)}

    t0 = time.perf_counter()
    report = run_interfere(("vecadd",), plan, mode="AFF_ALLOC", scale=scale,
                           seed=seed, factors=factors)
    sec = time.perf_counter() - t0
    metrics = {"interfere_end_to_end": _metric(sec, 1, params)}

    row = report.rows[0]
    top = max(row["arms"], key=lambda a: a["factor"])
    clean_cycles = float(row["clean"]["cycles"])
    contended_cycles = float(top["metrics"]["cycles"])
    metrics["interfere_slowdown_vecadd"] = _metric(
        clean_cycles, 1,
        {**params, "workload": "vecadd", "unit": "sim-cycles"},
        contended_cycles)
    return metrics


_BENCHES = {
    "noc": _bench_noc,
    "translate": _bench_translate,
    "iot": _bench_iot,
    "fig12": _bench_fig12,
    "relayout": _bench_relayout,
    "alloc": _bench_alloc,
    "interfere": _bench_interfere,
    "fig12_full": _bench_fig12_full,
}


# ----------------------------------------------------------------------
# Runner / JSON IO
# ----------------------------------------------------------------------
def _env_metadata() -> dict:
    from repro.perf import kernels

    try:
        affinity = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-linux
        affinity = None
    return {
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        # Schedulable CPUs can be fewer than cpu_count in cgroups/CI.
        "cpu_affinity": affinity,
        **kernels.backend_info(),
        # Bench *metadata*, never a result metric; wall time is the point.
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),  # afflint: allow(DET001)
    }


def run_benches(names, smoke: bool = False,
                progress: Optional[Callable[[str], None]] = None,
                seed: int = 0,
                profile_dir: Optional[Path] = None) -> Dict[str, dict]:
    """Run the named benches; returns ``{bench_name: payload}``.

    ``seed`` feeds the end-to-end benches only (fig12, relayout); the
    hot-path microbenches pin their own RNG so the CI-gated payloads
    stay comparable across invocations.  ``profile_dir`` opts into
    cProfile around each bench, dumping ``BENCH_<name>.prof`` there —
    the JSON payloads themselves are unchanged by profiling.
    """
    sizes = dict(_SMOKE if smoke else _FULL)
    sizes["fig12_seed"] = int(seed)
    sizes["relayout_seed"] = int(seed)
    sizes["interfere_seed"] = int(seed)
    out = {}
    for name in names:
        if name not in _BENCHES:
            raise ValueError(f"unknown bench {name!r}; "
                             f"available: {', '.join(BENCH_NAMES)}")
        if progress:
            progress(f"[bench] {name} ...")
        t0 = time.perf_counter()
        if profile_dir is not None:
            import cProfile
            profile_dir.mkdir(parents=True, exist_ok=True)
            prof = cProfile.Profile()
            metrics = prof.runcall(_BENCHES[name], sizes)
            prof_path = profile_dir / f"BENCH_{name}.prof"
            prof.dump_stats(prof_path)
            if progress:
                progress(f"  profile -> {prof_path}")
        else:
            metrics = _BENCHES[name](sizes)
        if progress:
            for mname, m in metrics.items():
                sp = (f"{m['speedup']:.1f}x vs reference"
                      if m["speedup"] is not None else "no reference")
                progress(f"  {mname}: {m['seconds'] * 1e3:.3f} ms ({sp})")
            progress(f"[bench] {name} done in "
                     f"{time.perf_counter() - t0:.1f}s")
        out[name] = {
            "bench": name,
            "schema": SCHEMA_VERSION,
            "smoke": smoke,
            "env": _env_metadata(),
            "metrics": metrics,
        }
    return out


def write_bench_json(payloads: Dict[str, dict], out_dir: Path) -> List[Path]:
    out_dir.mkdir(parents=True, exist_ok=True)
    paths = []
    for name, payload in payloads.items():
        path = out_dir / f"BENCH_{name}.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        paths.append(path)
    return paths


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def cli(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro bench",
        description="Run the tracked performance benchmarks and write "
                    "BENCH_<name>.json.")
    parser.add_argument("--only", default=",".join(BENCH_NAMES),
                        help="comma-separated bench names "
                             f"(default: {','.join(BENCH_NAMES)})")
    parser.add_argument("--smoke", action="store_true",
                        help="reduced problem sizes/reps (CI)")
    parser.add_argument("--out", default=".",
                        help="directory for BENCH_<name>.json "
                             "(default: current directory / repo root)")
    parser.add_argument("--compare", action="store_true",
                        help="compare against baseline JSONs and exit "
                             "non-zero on regression")
    parser.add_argument("--baseline", default=None,
                        help="baseline directory for --compare "
                             "(default: --out dir, read before overwriting)")
    parser.add_argument("--threshold", type=float, default=2.0,
                        help="regression factor (default 2.0)")
    parser.add_argument("--compare-metric", default="both",
                        choices=("seconds", "speedup", "both"),
                        help="which measurement --compare judges")
    parser.add_argument("--profile", action="store_true",
                        help="run each bench under cProfile and write "
                             "BENCH_<name>.prof next to the JSONs")
    from repro.perf.kernels import BACKEND_CHOICES
    parser.add_argument("--kernels", default=None, choices=BACKEND_CHOICES,
                        help="pin the kernel backend for every bench "
                             "(default: REPRO_KERNELS env or auto)")
    from repro.harness.cliutil import add_seed_argument
    add_seed_argument(parser, help_suffix="feeds the end-to-end benches "
                                          "(fig12, relayout) only")
    args = parser.parse_args(argv)

    if args.kernels:
        from repro.perf import kernels
        resolved = kernels.set_backend(args.kernels)
        print(f"[bench] kernel backend: {resolved}", flush=True)

    names = [n for n in args.only.split(",") if n]
    bad = [n for n in names if n not in _BENCHES]
    if bad:
        parser.error(f"unknown bench(es) {bad}; "
                     f"available: {', '.join(BENCH_NAMES)}")

    out_dir = Path(args.out)
    baseline_dir = Path(args.baseline) if args.baseline else out_dir

    # Read baselines before running (and before overwriting them).
    baselines = {}
    if args.compare:
        for name in names:
            path = baseline_dir / f"BENCH_{name}.json"
            if path.exists():
                baselines[name] = json.loads(path.read_text())

    payloads = run_benches(names, smoke=args.smoke,
                           progress=lambda line: print(line, flush=True),
                           seed=args.seed,
                           profile_dir=out_dir if args.profile else None)
    for path in write_bench_json(payloads, out_dir):
        print(f"wrote {path}")

    from repro.harness.cliutil import EXIT_FAILURE, EXIT_OK
    if not args.compare:
        return EXIT_OK
    problems = []
    for name, payload in payloads.items():
        if name not in baselines:
            print(f"[compare] no baseline for {name} "
                  f"({baseline_dir / f'BENCH_{name}.json'}) — skipped")
            continue
        problems += compare_bench(baselines[name], payload,
                                  threshold=args.threshold,
                                  metric=args.compare_metric)
    if problems:
        print(f"\n{len(problems)} regression(s) beyond "
              f"{args.threshold:g}x:", file=sys.stderr)
        for p in problems:
            print(f"  {p}", file=sys.stderr)
        return EXIT_FAILURE
    print(f"\n[compare] no regressions beyond {args.threshold:g}x")
    return EXIT_OK


if __name__ == "__main__":
    sys.exit(cli())
