"""Pre-vectorization reference implementations of the simulator hot paths.

PR 3 replaced the per-pair/per-region/per-entry Python loops in NoC
routing, address translation, IOT bank lookup, footprint registration,
and batched affinity scoring with precomputed incidence structures and
``searchsorted``/``bincount`` scatter-adds.  The originals live on here,
verbatim, for two jobs:

* **equivalence oracles** — the hypothesis property suite
  (``tests/test_vectorized_equivalence.py``) checks the vectorized paths
  against these on randomized inputs, and the vectorized paths must be
  *byte-identical* (same float bit patterns), not merely close;
* **before/after benchmarking** — ``python -m repro bench`` times each
  hot path twice, once through :func:`reference_impls` and once through
  the shipped code, so ``BENCH_*.json`` carries a measured speedup
  instead of a stale hand-recorded number.

Nothing here is a fallback: the vectorized implementations have no
scalar code path left.  If an equivalence test fails, the vectorized
code is wrong — fix it, don't reroute through this module.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import List

import numpy as np

__all__ = [
    "pair_channel_loads_reference",
    "mesh_link_loads_reference",
    "translate_reference",
    "iot_banks_reference",
    "register_heap_footprint_reference",
    "affinity_hop_sums_reference",
    "hybrid_select_batch_reference",
    "chained_hybrid_reference",
    "first_unique_reference",
    "first_unique_counts_reference",
    "reference_impls",
]


# ----------------------------------------------------------------------
# NoC routing
# ----------------------------------------------------------------------
def pair_channel_loads_reference(mesh, pair_flits: np.ndarray) -> np.ndarray:
    """Original per-pair loop of :func:`repro.arch.noc.pair_channel_loads`."""
    n = mesh.num_tiles
    loads = np.zeros(mesh.num_links + 2 * n, dtype=np.float64)
    inj = mesh.num_links
    ej = mesh.num_links + n
    for p in np.nonzero(pair_flits)[0]:
        s, d = divmod(int(p), n)
        if s == d:
            continue
        w = pair_flits[p]
        loads[inj + s] += w
        loads[ej + d] += w
        for link in mesh.route_links(s, d):
            loads[link] += w
    return loads


def mesh_link_loads_reference(mesh, src: np.ndarray, dst: np.ndarray,
                              weight: np.ndarray) -> np.ndarray:
    """Original route-walking loop of :meth:`repro.arch.mesh.Mesh.link_loads`."""
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    weight = np.broadcast_to(np.asarray(weight, dtype=np.float64), src.shape)
    pair = src * mesh.num_tiles + dst
    pair_weight = np.bincount(pair, weights=weight,
                              minlength=mesh.num_tiles ** 2)
    loads = np.zeros(mesh.num_links, dtype=np.float64)
    nonzero = np.nonzero(pair_weight)[0]
    for p in nonzero:
        s, d = divmod(int(p), mesh.num_tiles)
        if s == d:
            continue
        for link in mesh.route_links(s, d):
            loads[link] += pair_weight[p]
    return loads


# ----------------------------------------------------------------------
# Address translation
# ----------------------------------------------------------------------
def translate_reference(space, vaddrs) -> np.ndarray:
    """Original per-unique-region loop of
    :meth:`repro.vm.layout.AddressSpace.translate`."""
    vaddrs = np.atleast_1d(np.asarray(vaddrs, dtype=np.int64))
    out = np.empty_like(vaddrs)
    idx = np.searchsorted(space._starts, vaddrs, side="right") - 1
    if (idx < 0).any():
        bad = vaddrs[idx < 0][0]
        raise RuntimeError(f"unmapped virtual address {int(bad):#x}")
    for rid in np.unique(idx):
        region = space._regions[rid]
        mask = idx == rid
        addrs = vaddrs[mask]
        if (addrs >= space._ends[rid]).any():
            bad = addrs[addrs >= space._ends[rid]][0]
            raise RuntimeError(f"unmapped virtual address {int(bad):#x}")
        out[mask] = region.translate(addrs)
    return out


# ----------------------------------------------------------------------
# IOT bank lookup
# ----------------------------------------------------------------------
def iot_banks_reference(iot, addrs: np.ndarray,
                        default_shift: int) -> np.ndarray:
    """Original per-entry mask loop of
    :meth:`repro.arch.iot.InterleaveOverrideTable.banks`."""
    addrs = np.asarray(addrs, dtype=np.int64)
    banks = (addrs >> default_shift) % iot.num_banks
    for start, end, shift in zip(iot._starts, iot._ends, iot._shifts):
        mask = (addrs >= start) & (addrs < end)
        if mask.any():
            banks[mask] = ((addrs[mask] - start) >> shift) % iot.num_banks
    return banks


# ----------------------------------------------------------------------
# Heap footprint registration
# ----------------------------------------------------------------------
def register_heap_footprint_reference(machine, vaddr: int, size: int) -> None:
    """Original per-page loop of ``Machine._register_heap_footprint``."""
    from repro.arch.address import align_up

    if size <= 0:
        return
    page = machine.config.page_size
    pos = vaddr
    end = vaddr + size
    while pos < end:
        page_end = min(end, align_up(pos + 1, page))
        machine.llc.register_range(machine.space.translate_one(pos),
                                   page_end - pos)
        pos = page_end


# ----------------------------------------------------------------------
# Batched affinity scoring
# ----------------------------------------------------------------------
def affinity_hop_sums_reference(alloc_ids: np.ndarray, banks: np.ndarray,
                                dist: np.ndarray, n: int) -> np.ndarray:
    """Original ``np.add.at`` row scatter of ``malloc_irregular_batch``:
    summed hop distance from every candidate bank to each allocation's
    affinity banks."""
    nb = dist.shape[0]
    hop_sums = np.zeros((n, nb), dtype=np.float64)
    np.add.at(hop_sums, alloc_ids, dist[:, banks].T)
    return hop_sums


# ----------------------------------------------------------------------
# Sequential bank-select loops (original bodies: fresh temporaries and a
# full ``loads.sum()`` every iteration)
# ----------------------------------------------------------------------
def hybrid_select_batch_reference(self, mean_hops, load, mesh) -> np.ndarray:
    """Original loop body of :meth:`HybridPolicy.select_batch`."""
    n, nb = mean_hops.shape
    loads = load.loads  # private working copy
    out = np.empty(n, dtype=np.int64)
    h = self.h
    total = loads.sum()
    for i in range(n):
        if h > 0 and total > 0:
            score = mean_hops[i] + h * (loads / (total / nb) - 1.0)
        else:
            score = mean_hops[i]
        b = int(np.argmin(score))
        out[i] = b
        loads[b] += 1.0
        total += 1.0
    for b, c in zip(*np.unique(out, return_counts=True)):
        load.record(int(b), float(c))
    return out


def chained_hybrid_reference(self, prev_ids: np.ndarray,
                             head_banks: np.ndarray,
                             n: int, nb: int) -> np.ndarray:
    """Original loop body of ``AffinityAllocator._chained_hybrid``."""
    dist = self.mesh.hops_to_all(np.arange(nb)).astype(np.float64)
    loads = self.load.loads  # working copy
    h = self.policy.h
    chosen = np.empty(n, dtype=np.int64)
    zeros = np.zeros(nb, dtype=np.float64)
    for i in range(n):
        p = prev_ids[i]
        if p >= 0:
            hops_row = dist[:, chosen[p]]
        elif head_banks[i] >= 0:
            hops_row = dist[:, head_banks[i]]
        else:
            hops_row = zeros
        if h > 0:
            total = loads.sum()
            if total > 0:
                score = hops_row + h * (loads / (total / nb) - 1.0)
            else:
                score = hops_row
        else:
            score = hops_row
        b = int(np.argmin(score))
        chosen[i] = b
        loads[b] += 1.0
    for b, c in zip(*np.unique(chosen, return_counts=True)):
        self.load.record(int(b), float(c))
    return chosen


# ----------------------------------------------------------------------
# Executor dedup keys (original: unconditional np.unique sort)
# ----------------------------------------------------------------------
def first_unique_reference(key: np.ndarray) -> np.ndarray:
    """Original ``np.unique(key, return_index=True)`` of the executor's
    (core, line) dedup, without the sorted-input boundary scan."""
    if key.size == 0:
        return np.empty(0, dtype=np.intp)
    return np.unique(key, return_index=True)[1]


def first_unique_counts_reference(key: np.ndarray):
    if key.size == 0:
        empty = np.empty(0, dtype=np.intp)
        return empty, empty.copy()
    _, first, counts = np.unique(key, return_index=True, return_counts=True)
    return first, counts


# ----------------------------------------------------------------------
# Before/after switchyard
# ----------------------------------------------------------------------
@contextmanager
def reference_impls():
    """Route every vectorized hot path through its pre-PR original.

    Patches module globals and methods in place (process-wide, not
    thread-safe) and restores them on exit.  Used by ``repro bench`` to
    measure the "before" timings in the same process, and by tests that
    want to exercise the reference paths end-to-end.
    """
    from repro.arch import iot as iot_mod
    from repro.arch import mesh as mesh_mod
    from repro.arch import noc as noc_mod
    from repro.core import policy as policy_mod
    from repro.core import runtime as runtime_mod
    from repro.nsc import executor as executor_mod
    from repro.perf import model as model_mod
    from repro.vm import layout as layout_mod
    from repro import machine as machine_mod

    def _uncached_channel_loads(self):
        return noc_mod.pair_channel_loads(
            self.mesh, sum(self._pair_flits.values()))

    def _per_instance_hops(self):
        if self._pair_hops is None:
            n = self.mesh.num_tiles
            idx = np.arange(n * n)
            self._pair_hops = self.mesh.hops(idx // n, idx % n).astype(np.float64)
        return self._pair_hops

    # PR 4 grew the shipped signatures (fault masks, raw-bank lookups)
    # after these references were frozen.  The wrappers below keep the
    # reference loops verbatim as the timed "before" core while
    # accepting the newer call shapes; the fault-injected variants have
    # no pre-PR-4 original to reproduce, so they are clean-run only.
    def _iot_banks_compat(self, addrs, default_shift, apply_remap=True):
        addrs = np.asarray(addrs, dtype=np.int64)
        banks = iot_banks_reference(self, addrs, default_shift)
        if self._mig:
            banks = self._apply_migrations(addrs, banks)
        if apply_remap and self._remap is not None:
            return self._remap[banks]
        return banks

    def _select_batch_compat(self, mean_hops, load, mesh, mask=None):
        if mask is not None:
            raise NotImplementedError(
                "reference select_batch predates fault masks; "
                "reference_impls() is clean-run only")
        return hybrid_select_batch_reference(self, mean_hops, load, mesh)

    def _chained_hybrid_compat(self, prev_ids, head_banks, n, nb, mask=None):
        if mask is not None:
            raise NotImplementedError(
                "reference chained path predates fault masks; "
                "reference_impls() is clean-run only")
        return chained_hybrid_reference(self, prev_ids, head_banks, n, nb)

    saved = [
        (noc_mod, "pair_channel_loads", noc_mod.pair_channel_loads),
        (model_mod, "pair_channel_loads", model_mod.pair_channel_loads),
        (noc_mod.TrafficAccountant, "_channel_loads",
         noc_mod.TrafficAccountant._channel_loads),
        (noc_mod.TrafficAccountant, "_hops_per_pair",
         noc_mod.TrafficAccountant._hops_per_pair),
        (mesh_mod.Mesh, "link_loads", mesh_mod.Mesh.link_loads),
        (layout_mod.AddressSpace, "translate",
         layout_mod.AddressSpace.translate),
        (iot_mod.InterleaveOverrideTable, "banks",
         iot_mod.InterleaveOverrideTable.banks),
        (machine_mod.Machine, "_register_heap_footprint",
         machine_mod.Machine._register_heap_footprint),
        (runtime_mod, "_affinity_hop_sums", runtime_mod._affinity_hop_sums),
        (policy_mod.HybridPolicy, "select_batch",
         policy_mod.HybridPolicy.select_batch),
        (runtime_mod.AffinityAllocator, "_chained_hybrid",
         runtime_mod.AffinityAllocator._chained_hybrid),
        (executor_mod, "_first_unique", executor_mod._first_unique),
        (executor_mod, "_first_unique_counts",
         executor_mod._first_unique_counts),
    ]
    try:
        noc_mod.pair_channel_loads = pair_channel_loads_reference
        model_mod.pair_channel_loads = pair_channel_loads_reference
        noc_mod.TrafficAccountant._channel_loads = _uncached_channel_loads
        noc_mod.TrafficAccountant._hops_per_pair = _per_instance_hops
        mesh_mod.Mesh.link_loads = mesh_link_loads_reference
        layout_mod.AddressSpace.translate = translate_reference
        iot_mod.InterleaveOverrideTable.banks = _iot_banks_compat
        machine_mod.Machine._register_heap_footprint = \
            register_heap_footprint_reference
        runtime_mod._affinity_hop_sums = affinity_hop_sums_reference
        policy_mod.HybridPolicy.select_batch = _select_batch_compat
        runtime_mod.AffinityAllocator._chained_hybrid = _chained_hybrid_compat
        executor_mod._first_unique = first_unique_reference
        executor_mod._first_unique_counts = first_unique_counts_reference
        yield
    finally:
        for obj, name, orig in saved:
            setattr(obj, name, orig)
