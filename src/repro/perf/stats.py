"""Run recording: every event the trace executor emits lands here.

A :class:`RunRecorder` accumulates, for one workload run:

* NoC message batches (via a :class:`~repro.arch.noc.TrafficAccountant`),
* per-bank L3 line accesses, remote atomics, and near-data ops,
* per-core committed ops and serialized (dependence-chain) cycles,
* private-cache line accesses (for energy),
* *phases* — labeled checkpoints (e.g. one BFS iteration) that snapshot
  counter deltas, so the perf model can time each phase at its own
  bottleneck and the harness can plot timelines (paper Figs 14/18).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.arch.noc import MessageClass, TrafficAccountant
from repro.machine import Machine

__all__ = ["PhaseStats", "RunRecorder"]


@dataclass
class PhaseStats:
    """Counter deltas for one phase of a run."""

    label: str
    bank_line_accesses: np.ndarray
    bank_atomics: np.ndarray
    bank_remote_reqs: np.ndarray
    bank_near_ops: np.ndarray
    core_ops: np.ndarray
    core_serial_cycles: np.ndarray
    pair_flits: Dict[MessageClass, np.ndarray]
    private_line_accesses: float

    def total_flits(self) -> float:
        return float(sum(v.sum() for v in self.pair_flits.values()))


class RunRecorder:
    """Mutable event sink for one run on one machine."""

    def __init__(self, machine: Machine):
        self.machine = machine
        self.traffic = machine.new_traffic()
        nb, nc = machine.num_banks, machine.num_cores
        self.bank_line_accesses = np.zeros(nb, dtype=np.float64)
        self.bank_atomics = np.zeros(nb, dtype=np.float64)
        self.bank_remote_reqs = np.zeros(nb, dtype=np.float64)
        self.bank_near_ops = np.zeros(nb, dtype=np.float64)
        self.core_ops = np.zeros(nc, dtype=np.float64)
        self.core_serial_cycles = np.zeros(nc, dtype=np.float64)
        self.private_line_accesses = 0.0
        # Offloaded-stream locality (measured ground truth for the afflint
        # coverage estimator).  Deliberately kept out of phase snapshots:
        # they inform no timing/energy result, only the locality report.
        self.stream_elem_accesses = 0.0
        self.stream_remote_accesses = 0.0
        self.phases: List[PhaseStats] = []
        self._mark = self._snapshot()

    # ------------------------------------------------------------------
    # Event sinks (all accept scalars or arrays)
    # ------------------------------------------------------------------
    def add_bank_accesses(self, banks, count=1.0) -> None:
        """L3 line accesses at bank(s)."""
        self._accumulate(self.bank_line_accesses, banks, count)

    def add_bank_atomics(self, banks, count=1.0) -> None:
        """Atomic operations executed at bank(s)."""
        self._accumulate(self.bank_atomics, banks, count)

    def add_remote_reqs(self, banks, count=1.0) -> None:
        """Remote fine-grained requests handled at bank(s): the per-message
        receive overhead colocation avoids (see PerfParams.remote_req_cycles)."""
        self._accumulate(self.bank_remote_reqs, banks, count)

    def add_near_ops(self, banks, count=1.0) -> None:
        """Near-data compute ops executed at bank(s)' stream engine."""
        self._accumulate(self.bank_near_ops, banks, count)

    def add_core_ops(self, cores, count=1.0) -> None:
        """Committed core ops (compute + address generation)."""
        self._accumulate(self.core_ops, cores, count)

    def add_serial_cycles(self, cores, cycles) -> None:
        """Serialized dependence-chain cycles charged to core(s)' task."""
        self._accumulate(self.core_serial_cycles, cores, cycles)

    def add_private_accesses(self, count: float) -> None:
        self.private_line_accesses += float(count)

    def add_stream_locality(self, total: float, remote: float) -> None:
        """Offloaded stream element accesses, split local vs remote."""
        self.stream_elem_accesses += float(total)
        self.stream_remote_accesses += float(remote)

    @property
    def stream_local_fraction(self) -> Optional[float]:
        """Measured fraction of offloaded accesses that stayed bank-local."""
        if self.stream_elem_accesses <= 0:
            return None
        return 1.0 - self.stream_remote_accesses / self.stream_elem_accesses

    @staticmethod
    def _accumulate(target: np.ndarray, idx, count) -> None:
        idx = np.atleast_1d(np.asarray(idx, dtype=np.int64))
        count = np.broadcast_to(np.asarray(count, dtype=np.float64), idx.shape)
        # bincount itself rejects negative indices, and an index past the
        # end yields a histogram longer than ``target`` — so bounds
        # violations surface without paying two extra reduction passes
        # per call on the hot accounting path.
        try:
            binned = np.bincount(idx, weights=count, minlength=target.size)
        except ValueError:
            raise ValueError("bank/core index out of range") from None
        if binned.size > target.size:
            raise ValueError("bank/core index out of range")
        target += binned

    # ------------------------------------------------------------------
    # Phases
    # ------------------------------------------------------------------
    def _snapshot(self) -> dict:
        return {
            "bank_line_accesses": self.bank_line_accesses.copy(),
            "bank_atomics": self.bank_atomics.copy(),
            "bank_remote_reqs": self.bank_remote_reqs.copy(),
            "bank_near_ops": self.bank_near_ops.copy(),
            "core_ops": self.core_ops.copy(),
            "core_serial_cycles": self.core_serial_cycles.copy(),
            "pair_flits": {cls: self.traffic._pair_flits[cls].copy()
                           for cls in MessageClass},
            "private": self.private_line_accesses,
        }

    def end_phase(self, label: str) -> PhaseStats:
        """Close the current phase, recording deltas since the last mark."""
        interference = self.machine.interference
        if interference is not None:
            # One host epoch per NDC phase, injected *before* the
            # snapshot so the host's messages land inside this phase and
            # the perf model prices the contention into its bottlenecks.
            interference.on_epoch(self, label)
        now = self._snapshot()
        prev = self._mark
        phase = PhaseStats(
            label=label,
            bank_line_accesses=now["bank_line_accesses"] - prev["bank_line_accesses"],
            bank_atomics=now["bank_atomics"] - prev["bank_atomics"],
            bank_remote_reqs=now["bank_remote_reqs"] - prev["bank_remote_reqs"],
            bank_near_ops=now["bank_near_ops"] - prev["bank_near_ops"],
            core_ops=now["core_ops"] - prev["core_ops"],
            core_serial_cycles=now["core_serial_cycles"] - prev["core_serial_cycles"],
            pair_flits={cls: now["pair_flits"][cls] - prev["pair_flits"][cls]
                        for cls in MessageClass},
            private_line_accesses=now["private"] - prev["private"],
        )
        self.phases.append(phase)
        self._mark = now
        tracer = self.machine.tracer
        if tracer is not None:
            tracer.on_phase_end(phase)
        return phase

    def has_open_phase(self) -> bool:
        """True if events were recorded after the last end_phase()."""
        now = self._snapshot()
        prev = self._mark
        if now["private"] != prev["private"]:
            return True
        for key in ("bank_line_accesses", "bank_atomics", "bank_remote_reqs",
                    "bank_near_ops", "core_ops", "core_serial_cycles"):
            if not np.array_equal(now[key], prev[key]):
                return True
        return any(not np.array_equal(now["pair_flits"][c], prev["pair_flits"][c])
                   for c in MessageClass)

    def close(self) -> None:
        """Wrap any trailing events into a final phase."""
        if self.has_open_phase():
            self.end_phase("tail")
