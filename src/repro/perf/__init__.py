"""Performance accounting: run recording, bottleneck timing, comparisons."""

from repro.perf.stats import PhaseStats, RunRecorder
from repro.perf.model import PerfModel, RunResult
from repro.perf.compare import energy_efficiency, geomean, speedup, traffic_ratio

__all__ = [
    "PhaseStats",
    "RunRecorder",
    "PerfModel",
    "RunResult",
    "speedup",
    "energy_efficiency",
    "traffic_ratio",
    "geomean",
]
