"""Numba-compiled kernel backend (optional; mirrors pybackend bit-for-bit).

Every jitted loop executes the *same arithmetic in the same order* as
the numpy expressions it replaces: the Eq. 4 score is evaluated per
element as ``((load / t) - 1.0) * h + hops (+ penalty)`` — the exact
op chain of the in-place numpy body — under default ``@njit`` IEEE
semantics (no ``fastmath``, so no reassociation and no FMA
contraction), and argmin is a manual first-index scan matching
``ndarray.argmin`` tie-breaking.  Reductions that are
order-sensitive in numpy (``loads.sum()`` uses pairwise summation)
stay in numpy in the wrappers rather than being re-rolled in jitted
linear loops.

When numba is not importable this module still imports cleanly with
``AVAILABLE = False`` and the registry never selects it; the dedup
kernels whose cost is pure integer bookkeeping delegate to
:mod:`repro.perf.kernels.pybackend` where a jit adds nothing.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.perf.kernels import pybackend

NAME = "numba"

try:  # pragma: no cover - exercised only where the wheel exists
    import numba
    from numba import njit

    AVAILABLE = True
    NUMBA_VERSION: Optional[str] = numba.__version__
except Exception:  # pragma: no cover
    AVAILABLE = False
    NUMBA_VERSION = None

__all__ = [
    "NAME",
    "AVAILABLE",
    "NUMBA_VERSION",
    "hybrid_select_batch",
    "chained_hybrid",
    "first_unique",
    "first_unique_counts",
    "consecutive_dedup",
    "migration_pairs",
    "credit_roundtrips",
]


if AVAILABLE:  # pragma: no cover - exercised only where the wheel exists

    @njit(cache=True)
    def _hybrid_jit(mean_hops, loads, total, h, penalty, use_penalty, out):
        n, nb = mean_hops.shape
        for i in range(n):
            if h > 0.0 and total > 0.0:
                t = total / nb
                best = 0
                s = ((loads[0] / t) - 1.0) * h + mean_hops[i, 0]
                if use_penalty:
                    s = s + penalty[0]
                best_s = s
                for b in range(1, nb):
                    s = ((loads[b] / t) - 1.0) * h + mean_hops[i, b]
                    if use_penalty:
                        s = s + penalty[b]
                    if s < best_s:
                        best_s = s
                        best = b
            else:
                best = 0
                s = mean_hops[i, 0] + penalty[0] if use_penalty \
                    else mean_hops[i, 0]
                best_s = s
                for b in range(1, nb):
                    s = mean_hops[i, b] + penalty[b] if use_penalty \
                        else mean_hops[i, b]
                    if s < best_s:
                        best_s = s
                        best = b
            out[i] = best
            loads[best] += 1.0
            total += 1.0

    @njit(cache=True)
    def _chained_jit(dist_t, prev_ids, head_banks, loads, total, h,
                     penalty, use_penalty, chosen):
        n = prev_ids.size
        nb = loads.size
        for i in range(n):
            p = prev_ids[i]
            if p >= 0:
                row = dist_t[chosen[p]]
                has_row = True
            elif head_banks[i] >= 0:
                row = dist_t[head_banks[i]]
                has_row = True
            else:
                row = dist_t[0]  # unused; zeros handled via has_row
                has_row = False
            if h > 0.0 and total > 0.0:
                t = total / nb
                best = 0
                hop0 = row[0] if has_row else 0.0
                s = ((loads[0] / t) - 1.0) * h + hop0
                if use_penalty:
                    s = s + penalty[0]
                best_s = s
                for b in range(1, nb):
                    hop = row[b] if has_row else 0.0
                    s = ((loads[b] / t) - 1.0) * h + hop
                    if use_penalty:
                        s = s + penalty[b]
                    if s < best_s:
                        best_s = s
                        best = b
            else:
                best = 0
                hop0 = row[0] if has_row else 0.0
                s = hop0 + penalty[0] if use_penalty else hop0
                best_s = s
                for b in range(1, nb):
                    hop = row[b] if has_row else 0.0
                    s = hop + penalty[b] if use_penalty else hop
                    if s < best_s:
                        best_s = s
                        best = b
            chosen[i] = best
            loads[best] += 1.0
            total += 1.0

    @njit(cache=True)
    def _sorted_boundaries(key):
        n = key.size
        count = 1
        for i in range(1, n):
            if key[i] != key[i - 1]:
                count += 1
        first = np.empty(count, dtype=np.intp)
        first[0] = 0
        j = 1
        for i in range(1, n):
            if key[i] != key[i - 1]:
                first[j] = i
                j += 1
        return first

    @njit(cache=True)
    def _is_sorted(key):
        for i in range(1, key.size):
            if key[i] < key[i - 1]:
                return False
        return True

    @njit(cache=True)
    def _consecutive_dedup_jit(values, groups):
        n = values.size
        first = np.empty(n, dtype=np.bool_)
        if n == 0:
            return first
        first[0] = True
        for i in range(1, n):
            first[i] = (values[i] != values[i - 1]
                        or groups[i] != groups[i - 1])
        return first

    @njit(cache=True)
    def _migration_moved_jit(banks, groups):
        n = banks.size
        moved = np.empty(n - 1, dtype=np.bool_)
        for i in range(1, n):
            moved[i - 1] = (banks[i] != banks[i - 1]
                            and groups[i] == groups[i - 1])
        return moved

    def hybrid_select_batch(mean_hops, loads, h, penalty):
        total = float(loads.sum())  # numpy pairwise sum, as pybackend
        n = mean_hops.shape[0]
        out = np.empty(n, dtype=np.int64)
        if n == 0:
            return out
        use_penalty = penalty is not None
        pen = penalty if use_penalty else np.empty(0, dtype=np.float64)
        _hybrid_jit(np.ascontiguousarray(mean_hops, dtype=np.float64),
                    loads, total, float(h), pen, use_penalty, out)
        return out

    def chained_hybrid(dist_t, prev_ids, head_banks, loads, h, penalty):
        total = float(loads.sum())
        chosen = np.empty(prev_ids.size, dtype=np.int64)
        if prev_ids.size == 0:
            return chosen
        use_penalty = penalty is not None
        pen = penalty if use_penalty else np.empty(0, dtype=np.float64)
        _chained_jit(np.ascontiguousarray(dist_t, dtype=np.float64),
                     np.ascontiguousarray(prev_ids, dtype=np.int64),
                     np.ascontiguousarray(head_banks, dtype=np.int64),
                     loads, total, float(h), pen, use_penalty, chosen)
        return chosen

    def first_unique(key):
        if key.size == 0:
            return np.empty(0, dtype=np.intp)
        if _is_sorted(key):
            return _sorted_boundaries(key)
        return pybackend.first_unique(key)

    def first_unique_counts(key):
        n = key.size
        if n == 0:
            empty = np.empty(0, dtype=np.intp)
            return empty, empty.copy()
        if _is_sorted(key):
            first = _sorted_boundaries(key)
            counts = np.empty(first.size, dtype=np.intp)
            counts[:-1] = np.diff(first)
            counts[-1] = n - first[-1]
            return first, counts
        return pybackend.first_unique_counts(key)

    def consecutive_dedup(values, groups):
        if values.size == 0:
            return np.zeros(0, dtype=bool)
        return _consecutive_dedup_jit(values, groups)

    def migration_pairs(banks, groups):
        if banks.size < 2:
            empty = np.empty(0, dtype=banks.dtype)
            return empty, empty.copy()
        moved = _migration_moved_jit(banks, groups)
        return banks[:-1][moved], banks[1:][moved]

else:
    # Registry never selects this module when numba is missing, but the
    # functions stay callable (tests import the module unconditionally).
    hybrid_select_batch = pybackend.hybrid_select_batch
    chained_hybrid = pybackend.chained_hybrid
    first_unique = pybackend.first_unique
    first_unique_counts = pybackend.first_unique_counts
    consecutive_dedup = pybackend.consecutive_dedup
    migration_pairs = pybackend.migration_pairs

credit_roundtrips = pybackend.credit_roundtrips
