"""Kernel backend compiled from C at first use (no wheel required).

The container this repo targets ships a system C compiler but not
numba, so depending on a compiled-extension *wheel* would be a new
dependency while depending on ``cc`` is free: ``_ckernels.c`` (a page
of scalar loops mirroring the numpy op chain statement by statement)
is compiled once into a cached shared object and loaded through
ctypes.  The build is keyed by a hash of the source and the compiler
banner, so editing the C file or switching compilers rebuilds
automatically; any failure — no compiler, read-only tree and no
tempdir, cc dying — just flips ``AVAILABLE`` off and the registry
falls back to the python backend (bit-identical results, lower
throughput; never silent numeric drift).

Only the two sequential Eq. 4 loops live in C — they are the Amdahl
wall DESIGN §12 profiles.  Every other kernel delegates to
:mod:`repro.perf.kernels.pybackend`, whose vectorized forms are
already memory-bound (a C radix-sort dedup was tried and measured
slower than numpy's stable argsort on the workload's real sparse
keys, so it was dropped).

Exactness: compiled with ``-ffp-contract=off -fno-fast-math`` so the
C chain performs the same IEEE-754 binary64 roundings in the same
order as the numpy scalar ops (x86-64 SSE2 doubles carry no excess
precision), and the caller passes ``total`` from numpy's pairwise sum
so even the one reduction in the contract keeps numpy's bits.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
from pathlib import Path
from typing import Optional

import numpy as np

from repro.perf.kernels import pybackend

NAME = "c"

_SOURCE = Path(__file__).with_name("_ckernels.c")

_lib: Optional[ctypes.CDLL] = None
COMPILER: Optional[str] = None


def _compiler() -> Optional[str]:
    import shutil
    for cand in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if cand and shutil.which(cand):
            return cand
    return None


def _build_dirs() -> list:
    dirs = [Path(__file__).parent / "_build"]
    try:
        dirs.append(Path(tempfile.gettempdir())
                    / f"repro-kernels-{os.getuid()}")
    except AttributeError:  # pragma: no cover - non-posix
        dirs.append(Path(tempfile.gettempdir()) / "repro-kernels")
    return dirs


def _compile() -> Optional[ctypes.CDLL]:
    global COMPILER
    cc = _compiler()
    if cc is None or not _SOURCE.is_file():
        return None
    source = _SOURCE.read_bytes()
    try:
        banner = subprocess.run(
            [cc, "--version"], capture_output=True, timeout=30,
        ).stdout.splitlines()[:1]
    except (OSError, subprocess.SubprocessError, IndexError):
        return None
    COMPILER = (banner[0].decode("utf-8", "replace").strip()
                if banner else cc)
    tag = hashlib.sha256(source + b"\0" + COMPILER.encode()).hexdigest()[:16]
    flags = ["-O2", "-fPIC", "-shared", "-ffp-contract=off",
             "-fno-fast-math"]
    for build_dir in _build_dirs():
        so_path = build_dir / f"_ckernels-{tag}.so"
        if so_path.is_file():
            try:
                return ctypes.CDLL(str(so_path))
            except OSError:
                pass
        try:
            build_dir.mkdir(parents=True, exist_ok=True)
            tmp = so_path.with_name(f".{so_path.name}.{os.getpid()}.tmp")
            subprocess.run(
                [cc, *flags, "-o", str(tmp), str(_SOURCE)],
                capture_output=True, timeout=120, check=True)
            os.replace(tmp, so_path)  # atomic vs concurrent builders
            return ctypes.CDLL(str(so_path))
        except (OSError, subprocess.SubprocessError):
            continue
    return None


_D = ctypes.POINTER(ctypes.c_double)
_I = ctypes.POINTER(ctypes.c_int64)


def _bind(lib: ctypes.CDLL) -> ctypes.CDLL:
    lib.repro_hybrid_select_batch.restype = None
    lib.repro_hybrid_select_batch.argtypes = [
        _D, _D, ctypes.c_double, _D, ctypes.c_double,
        ctypes.c_int64, ctypes.c_int64, _I]
    lib.repro_chained_hybrid.restype = None
    lib.repro_chained_hybrid.argtypes = [
        _D, _I, _I, _D, ctypes.c_double, _D, _D, ctypes.c_double,
        ctypes.c_int64, ctypes.c_int64, _I]
    return lib


_lib = _compile()
if _lib is not None:
    _bind(_lib)

AVAILABLE = _lib is not None


def _dptr(a: np.ndarray):
    return a.ctypes.data_as(_D)


def _iptr(a: np.ndarray):
    return a.ctypes.data_as(_I)


def _loads_buffer(loads: np.ndarray) -> np.ndarray:
    """A float64 C-contiguous view/copy the C loop can mutate.

    Callers normally hand over a fresh float64 copy already; anything
    else gets staged through a buffer that :func:`_loads_writeback`
    copies back, preserving the mutate-in-place contract."""
    if loads.dtype == np.float64 and loads.flags.c_contiguous:
        return loads
    return np.ascontiguousarray(loads, dtype=np.float64)


def _loads_writeback(loads: np.ndarray, buf: np.ndarray) -> None:
    if buf is not loads:
        loads[...] = buf


if AVAILABLE:

    def hybrid_select_batch(mean_hops, loads, h, penalty):
        mh = np.ascontiguousarray(mean_hops, dtype=np.float64)
        n, nb = mh.shape
        out = np.empty(n, dtype=np.int64)
        if n == 0:
            return out
        pen = None
        if penalty is not None:
            pen = np.ascontiguousarray(penalty, dtype=np.float64)
        buf = _loads_buffer(loads)
        total = float(buf.sum())
        _lib.repro_hybrid_select_batch(
            _dptr(mh), _dptr(buf), float(h),
            _dptr(pen) if pen is not None else None,
            total, n, nb, _iptr(out))
        _loads_writeback(loads, buf)
        return out

    def chained_hybrid(dist_t, prev_ids, head_banks, loads, h, penalty):
        dt = np.ascontiguousarray(dist_t, dtype=np.float64)
        prev = np.ascontiguousarray(prev_ids, dtype=np.int64)
        heads = np.ascontiguousarray(head_banks, dtype=np.int64)
        n = prev.size
        nb = loads.size
        chosen = np.empty(n, dtype=np.int64)
        if n == 0:
            return chosen
        pen = None
        if penalty is not None:
            pen = np.ascontiguousarray(penalty, dtype=np.float64)
        zeros = np.zeros(nb, dtype=np.float64)
        buf = _loads_buffer(loads)
        total = float(buf.sum())
        _lib.repro_chained_hybrid(
            _dptr(dt), _iptr(prev), _iptr(heads), _dptr(buf),
            float(h), _dptr(pen) if pen is not None else None,
            _dptr(zeros), total, n, nb, _iptr(chosen))
        _loads_writeback(loads, buf)
        return chosen

else:  # pragma: no cover - exercised only where no compiler exists
    hybrid_select_batch = pybackend.hybrid_select_batch
    chained_hybrid = pybackend.chained_hybrid

# The accounting kernels are already vectorized numpy — C would only
# re-buy memory bandwidth numpy saturates.
first_unique = pybackend.first_unique
first_unique_counts = pybackend.first_unique_counts
consecutive_dedup = pybackend.consecutive_dedup
migration_pairs = pybackend.migration_pairs
credit_roundtrips = pybackend.credit_roundtrips
shrink_key = pybackend.shrink_key
