"""Numpy-only kernel backend (always available; the default oracle).

The interesting piece is :func:`hybrid_select_batch`.  Eq. 4's loop is
sequential by construction — each choice bumps the chosen bank's load,
shifting the balance term every later step sees — so PR 3 left it as
~3 µs/iteration of numpy dispatch and it became fig12's Amdahl wall.

The rewrite here is *incremental scoring through a division table*,
and it is exact, not approximate.  Loads only ever change by ``+= 1.0``
inside the loop, so while they stay integer-valued the load term
``fl(fl(fl(L / t_i) - 1) * h)`` can only take ``band × K`` distinct
values per chunk of K steps: one per (integer load value L, step
divisor ``t_i = (total0 + i) / nb``) pair.  Precompute that table with
three vectorized ufunc passes in the *same in-place op order* as the
scalar loop — every table element then carries the identical IEEE-754
bit pattern the scalar chain would produce, because elementwise ufunc
loops round each intermediate exactly like the scalar ops do.  Each
step of the chunk collapses to a gather of the current loads' column
(``np.take``), one add of the row's hop vector (plus the optional
penalty row, in the same order), and an ``argmin`` — three numpy
dispatches instead of six, with no data-dependent speculation to
mispredict.

Exactness needs ``total`` and the loads to stay integer-valued
(< 2**52) so ``total0 + i`` and the band indices carry no rounding;
the irregular-allocation trackers only ever add 1.0, but the guards
are checked and the original sequential loop kept as the fallback for
anything else (fractional loads, ``h < 0``, a load band wider than
``_MAX_BAND``).  See DESIGN §12 for the full argument.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

NAME = "python"

__all__ = [
    "NAME",
    "hybrid_select_batch",
    "chained_hybrid",
    "first_unique",
    "first_unique_counts",
    "consecutive_dedup",
    "migration_pairs",
    "credit_roundtrips",
    "shrink_key",
]


# ----------------------------------------------------------------------
# Eq. 4 bank-select
# ----------------------------------------------------------------------

#: Division-table chunk length.  Larger chunks amortize the table
#: build over more steps but widen the load band the table must cover;
#: 128 is the measured knee for the paper's 64-bank mesh.
_CHUNK = 128

#: Widest integer load band (max load − min load + chunk) the table is
#: built for.  Balanced Eq. 4 batches stay within a few hundred; a
#: pathologically skewed tracker falls back to the sequential loop
#: rather than allocating a huge table.
_MAX_BAND = 4096


def _select_sequential(mean_hops: np.ndarray, loads: np.ndarray,
                       total: float, h: float,
                       penalty: Optional[np.ndarray],
                       out: np.ndarray, start: int) -> None:
    """The pre-PR-8 scalar loop, verbatim op order (exact oracle)."""
    n, nb = mean_hops.shape
    score = np.empty(nb, dtype=np.float64)
    if penalty is not None:
        for i in range(start, n):
            if h > 0 and total > 0:
                np.divide(loads, total / nb, out=score)
                score -= 1.0
                score *= h
                score += mean_hops[i]
                score += penalty
                b = int(score.argmin())
            else:
                b = int((mean_hops[i] + penalty).argmin())
            out[i] = b
            loads[b] += 1.0
            total += 1.0
    else:
        for i in range(start, n):
            if h > 0 and total > 0:
                np.divide(loads, total / nb, out=score)
                score -= 1.0
                score *= h
                score += mean_hops[i]
                b = int(score.argmin())
            else:
                b = int(mean_hops[i].argmin())
            out[i] = b
            loads[b] += 1.0
            total += 1.0


def hybrid_select_batch(mean_hops: np.ndarray, loads: np.ndarray,
                        h: float,
                        penalty: Optional[np.ndarray]) -> np.ndarray:
    """Sequential Eq. 4 over a batch (see module docstring).

    Args:
        mean_hops: ``(n, nb)`` float64 mean hop distances.
        loads: the caller's working copy of the per-bank loads; mutated
            in place exactly as the scalar loop would.
        h: the policy's load weight (finite, ≥ 0).
        penalty: optional ``(nb,)`` additive row (0.0 healthy / inf
            failed) for the chaos-degraded path, or None.

    Returns the chosen bank per row, bit-identical to
    :func:`repro.perf.reference.hybrid_select_batch_reference`.
    """
    n, nb = mean_hops.shape
    out = np.empty(n, dtype=np.int64)
    if n == 0:
        return out
    total = float(loads.sum())

    if h == 0:
        # Min-Hop: scores never read the loads, so the whole batch
        # collapses to one row-wise argmin (first-index ties preserved).
        if penalty is not None:
            out[:] = (mean_hops + penalty).argmin(axis=1)
        else:
            out[:] = mean_hops.argmin(axis=1)
        np.add.at(loads, out, 1.0)
        return out

    # The division table needs the running divisors t_i = (total0 + i)
    # / nb to carry the exact bits of `total += 1.0` and the loads to
    # index an integer band; that holds only for integer values below
    # 2**52 and h > 0 (h < 0 flips the scalar loop onto its hops-only
    # branch).  Anything else takes the original loop unchanged.
    if not (h > 0 and np.isfinite(h) and total == np.floor(total)
            and total + n < 2.0 ** 52
            and bool(np.all(loads == np.floor(loads)))):
        _select_sequential(mean_hops, loads, total, h, penalty, out, 0)
        return out

    i = 0
    # The scalar loop scores by hops alone until the first allocation
    # lands (total == 0); replay that step before building tables.
    while total == 0.0 and i < n:
        if penalty is not None:
            b = int((mean_hops[i] + penalty).argmin())
        else:
            b = int(mean_hops[i].argmin())
        out[i] = b
        loads[b] += 1.0
        total += 1.0
        i += 1

    loads_i = loads.astype(np.int64)
    while i < n:
        k = min(_CHUNK, n - i)
        lmin = int(loads_i.min())
        band = int(loads_i.max()) - lmin + k + 1
        if band > _MAX_BAND:
            loads[:] = loads_i
            _select_sequential(mean_hops, loads, total, h, penalty, out, i)
            return out
        # table[j, L - lmin] is the load term a bank holding L
        # allocations scores at step i + j — the same divide / -1.0 /
        # *h chain as the scalar body, rounded per element exactly like
        # the scalar ops, so the gathered values are bit-identical.
        t_col = (total + np.arange(k, dtype=np.float64)) / nb
        table = np.divide(
            np.arange(lmin, lmin + band, dtype=np.float64)[None, :],
            t_col[:, None])
        table -= 1.0
        table *= h
        idx = loads_i - lmin
        if penalty is not None:
            for j in range(k):
                row = table[j][idx]
                row += mean_hops[i + j]
                row += penalty
                b = int(row.argmin())
                out[i + j] = b
                idx[b] += 1
        else:
            for j in range(k):
                row = table[j][idx]
                row += mean_hops[i + j]
                b = int(row.argmin())
                out[i + j] = b
                idx[b] += 1
        np.add(idx, lmin, out=loads_i)
        total += float(k)
        i += k
    loads[:] = loads_i
    return out


def chained_hybrid(dist_t: np.ndarray, prev_ids: np.ndarray,
                   head_banks: np.ndarray, loads: np.ndarray, h: float,
                   penalty: Optional[np.ndarray]) -> np.ndarray:
    """Eq. 4 where allocation ``i``'s affinity is the bank chosen for
    ``prev_ids[i]`` earlier in the same batch (or ``head_banks[i]``).

    The hop row depends on earlier in-batch choices, but those are
    always resolved by the time step ``i`` runs, so the same division
    table as :func:`hybrid_select_batch` applies — only the hop vector
    added per step changes.  ``dist_t`` is the *transposed* hop table
    (``dist_t[j] == dist[:, j]``, C-contiguous) so each step reads a
    contiguous row instead of a strided column.

    Mutates ``loads`` in place; returns the chosen banks.
    """
    n = prev_ids.size
    nb = loads.size
    chosen = np.empty(n, dtype=np.int64)
    zeros = np.zeros(nb, dtype=np.float64)
    total = float(loads.sum())
    if (h > 0 and np.isfinite(h) and total == np.floor(total)
            and total + n < 2.0 ** 52
            and bool(np.all(loads == np.floor(loads)))):
        i = 0
        # Hops-only scoring until the first allocation lands.
        while total == 0.0 and i < n:
            p = prev_ids[i]
            if p >= 0:
                hops_row = dist_t[chosen[p]]
            elif head_banks[i] >= 0:
                hops_row = dist_t[head_banks[i]]
            else:
                hops_row = zeros
            if penalty is not None:
                b = int((hops_row + penalty).argmin())
            else:
                b = int(hops_row.argmin())
            chosen[i] = b
            loads[b] += 1.0
            total += 1.0
            i += 1
        loads_i = loads.astype(np.int64)
        ok = True
        while i < n:
            k = min(_CHUNK, n - i)
            lmin = int(loads_i.min())
            band = int(loads_i.max()) - lmin + k + 1
            if band > _MAX_BAND:
                ok = False
                break
            t_col = (total + np.arange(k, dtype=np.float64)) / nb
            table = np.divide(
                np.arange(lmin, lmin + band, dtype=np.float64)[None, :],
                t_col[:, None])
            table -= 1.0
            table *= h
            idx = loads_i - lmin
            for j in range(k):
                p = prev_ids[i + j]
                if p >= 0:
                    hops_row = dist_t[chosen[p]]
                elif head_banks[i + j] >= 0:
                    hops_row = dist_t[head_banks[i + j]]
                else:
                    hops_row = zeros
                row = table[j][idx]
                row += hops_row
                if penalty is not None:
                    row += penalty
                b = int(row.argmin())
                chosen[i + j] = b
                idx[b] += 1
            np.add(idx, lmin, out=loads_i)
            total += float(k)
            i += k
        loads[:] = loads_i
        if ok:
            return chosen
        # Skewed load band: finish on the scalar body below.
        n_start = i
    else:
        n_start = 0
    score = np.empty(nb, dtype=np.float64)
    if penalty is not None:
        for i in range(n_start, n):
            p = prev_ids[i]
            if p >= 0:
                hops_row = dist_t[chosen[p]]
            elif head_banks[i] >= 0:
                hops_row = dist_t[head_banks[i]]
            else:
                hops_row = zeros
            if h > 0 and total > 0:
                np.divide(loads, total / nb, out=score)
                score -= 1.0
                score *= h
                score += hops_row
                score += penalty
                b = int(score.argmin())
            else:
                b = int((hops_row + penalty).argmin())
            chosen[i] = b
            loads[b] += 1.0
            total += 1.0
    else:
        for i in range(n_start, n):
            p = prev_ids[i]
            if p >= 0:
                hops_row = dist_t[chosen[p]]
            elif head_banks[i] >= 0:
                hops_row = dist_t[head_banks[i]]
            else:
                hops_row = zeros
            if h > 0 and total > 0:
                np.divide(loads, total / nb, out=score)
                score -= 1.0
                score *= h
                score += hops_row
                b = int(score.argmin())
            else:
                b = int(hops_row.argmin())
            chosen[i] = b
            loads[b] += 1.0
            total += 1.0
    return chosen


# ----------------------------------------------------------------------
# Executor dedup / accounting kernels
# ----------------------------------------------------------------------

def shrink_key(key: np.ndarray) -> np.ndarray:
    """Bias the key to its minimum and narrow to int32 when it fits.

    Subtracting a constant and narrowing the dtype are strictly
    monotone, so ``np.unique``'s sort order — and therefore the
    first-occurrence indices the callers consume — is unchanged, while
    the radix sort runs half the passes over half the bytes."""
    lo = key.min()
    if int(key.max()) - int(lo) < (1 << 31):
        return (key - lo).astype(np.int32)
    return key


#: Use the O(n + span) scatter table instead of ``np.unique``'s sort
#: when the key span is at most this multiple of n (plus slack for
#: tiny inputs).  Beyond it the table's memory traffic loses to the
#: int32 radix sort.
_SCATTER_SLACK = 1024


def _scatter_table(key: np.ndarray, n: int) -> Optional[np.ndarray]:
    """First-occurrence index per key value (or None when too sparse).

    ``table[v - lo]`` is the index of the first occurrence of value
    ``v``, or -1 when absent.  Built with one reversed fancy
    assignment: numpy scatter keeps the *last* write per duplicate
    target, so writing indices in reverse order leaves the first."""
    lo = int(key.min())
    span = int(key.max()) - lo + 1
    if span > 4 * n + _SCATTER_SLACK:
        return None
    table = np.full(span, -1, dtype=np.intp)
    table[(key - lo)[::-1]] = np.arange(n - 1, -1, -1, dtype=np.intp)
    return table


def _is_sorted(key: np.ndarray) -> bool:
    """Non-decreasing test with a cheap 64-element head reject: unsorted
    inputs (the ones about to pay an argsort) almost always betray
    themselves immediately, so the full O(n) comparison pass is only
    spent on inputs that are still candidates for the O(n) scan path."""
    if key.size > 65 and not bool((key[1:65] >= key[:64]).all()):
        return False
    return bool((key[1:] >= key[:-1]).all())


def first_unique(key: np.ndarray) -> np.ndarray:
    """``np.unique(key, return_index=True)[1]``: index of the first
    occurrence of each distinct key, ordered by ascending key.

    Sorted inputs (traces mostly walk arrays in address order) take an
    O(n) boundary scan; dense unsorted keys take the O(n + span)
    scatter table — both identical to the ``np.unique`` sort, which
    remains the sparse-key fallback."""
    n = key.size
    if n == 0:
        return np.empty(0, dtype=np.intp)
    if _is_sorted(key):
        change = np.empty(n, dtype=bool)
        change[0] = True
        np.not_equal(key[1:], key[:-1], out=change[1:])
        return np.flatnonzero(change)
    table = _scatter_table(key, n)
    if table is not None:
        return table[table >= 0]
    starts = _collapse_runs(key, n)
    if starts is None:
        return _argsort_first(shrink_key(key))[0]
    first, _ = _argsort_first(shrink_key(key[starts]))
    return starts[first]


def _collapse_runs(key: np.ndarray, n: int) -> Optional[np.ndarray]:
    """Indices of consecutive-duplicate run starts, or None when runs
    are too short to pay for themselves.

    Executor line walks repeat each cache line ``line/elem_size`` times
    back to back, so the sparse unsorted keys about to pay an argsort
    typically shrink ~an order of magnitude under run collapse.  Every
    run start carries its run's original position, and the *first* run
    of a key starts at that key's first occurrence — so deduping the
    run starts and mapping through them is exactly deduping ``key``."""
    mask = np.empty(n, dtype=bool)
    mask[0] = True
    np.not_equal(key[1:], key[:-1], out=mask[1:])
    if 2 * int(np.count_nonzero(mask)) > n:
        return None
    return np.flatnonzero(mask)


def _argsort_first(key: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """First-occurrence indices and run boundaries via one stable sort.

    A stable argsort puts equal keys in original order, so the index at
    each run boundary of the sorted keys *is* the first occurrence —
    exactly what ``np.unique(key, return_index=True)`` computes, minus
    its second pass over the values."""
    order = np.argsort(key, kind="stable")
    sk = key[order]
    change = np.empty(key.size, dtype=bool)
    change[0] = True
    np.not_equal(sk[1:], sk[:-1], out=change[1:])
    return order[change], np.flatnonzero(change)


def first_unique_counts(key: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Like :func:`first_unique` but also returns the multiplicity of
    each distinct key (``np.unique(..., return_counts=True)``)."""
    n = key.size
    if n == 0:
        empty = np.empty(0, dtype=np.intp)
        return empty, empty.copy()
    if _is_sorted(key):
        change = np.empty(n, dtype=bool)
        change[0] = True
        np.not_equal(key[1:], key[:-1], out=change[1:])
        first = np.flatnonzero(change)
        counts = np.empty(first.size, dtype=np.intp)
        counts[:-1] = np.diff(first)
        counts[-1] = n - first[-1]
        return first, counts
    table = _scatter_table(key, n)
    if table is not None:
        present = table >= 0
        lo = key.min()
        all_counts = np.bincount(key - lo, minlength=table.size)
        return table[present], all_counts[present].astype(np.intp, copy=False)
    starts = _collapse_runs(key, n)
    if starts is None:
        first, bounds = _argsort_first(shrink_key(key))
        counts = np.empty(bounds.size, dtype=np.intp)
        counts[:-1] = np.diff(bounds)
        counts[-1] = n - bounds[-1]
        return first, counts
    # Sort run starts only; a key's count is the total length of its
    # runs, gathered per sorted run and summed per distinct key — every
    # addend is an exact small integer, so this matches the full sort.
    work = shrink_key(key[starts])
    order = np.argsort(work, kind="stable")
    sk = work[order]
    change = np.empty(work.size, dtype=bool)
    change[0] = True
    np.not_equal(sk[1:], sk[:-1], out=change[1:])
    bounds = np.flatnonzero(change)
    runlens = np.empty(starts.size, dtype=np.intp)
    runlens[:-1] = np.diff(starts)
    runlens[-1] = n - starts[-1]
    counts = np.add.reduceat(runlens[order], bounds)
    return starts[order[change]], counts.astype(np.intp, copy=False)


def consecutive_dedup(values: np.ndarray, groups: np.ndarray) -> np.ndarray:
    """Mask of entries starting a new run of equal ``values`` within the
    same ``groups`` entry (both arrays in iteration order)."""
    if values.size == 0:
        return np.zeros(0, dtype=bool)
    first = np.ones(values.size, dtype=bool)
    first[1:] = (values[1:] != values[:-1]) | (groups[1:] != groups[:-1])
    return first


def migration_pairs(banks: np.ndarray,
                    groups: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """(src, dst) bank pairs where a stream migrates between
    consecutive deduped touches of the same group."""
    moved = (banks[1:] != banks[:-1]) & (groups[1:] == groups[:-1])
    return banks[:-1][moved], banks[1:][moved]


def credit_roundtrips(counts: np.ndarray, credit_iters: float) -> np.ndarray:
    """Per-core credit round trips: one per ``credit_iters`` iterations."""
    return np.ceil(counts / credit_iters)
