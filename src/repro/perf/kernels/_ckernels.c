/* Scalar Eq. 4 loops for the `c` kernel backend.
 *
 * Every statement mirrors the numpy scalar chain in
 * repro/perf/kernels/pybackend.py one rounding at a time:
 *
 *     s = loads[b] / t;  s = s - 1.0;  s = s * h;
 *     s = s + hops[b];  (s = s + penalty[b];)
 *
 * with first-index argmin via strict `<`.  Both numpy and this file do
 * IEEE-754 binary64 arithmetic in round-to-nearest, so the results are
 * bit-identical *provided the compiler neither contracts a*b+c into
 * FMA nor reorders the chain* — which is why cbackend.py compiles with
 * `-ffp-contract=off -fno-fast-math` and why each step is written as a
 * separate assignment.  `total` is computed by the caller with
 * numpy's pairwise sum and passed in, so even a fractional starting
 * total carries numpy's exact bits.
 */

#include <stdint.h>

static int64_t pick(const double *hops, const double *loads, double h,
                    const double *penalty, double total, int64_t nb)
{
    int64_t best = 0;
    double bestscore = 0.0;
    if (h > 0.0 && total > 0.0) {
        double t = total / (double)nb;
        for (int64_t b = 0; b < nb; b++) {
            double s = loads[b] / t;
            s = s - 1.0;
            s = s * h;
            s = s + hops[b];
            if (penalty)
                s = s + penalty[b];
            /* numpy argmin: strict `<` keeps the first index on ties;
             * the first NaN (s != s) wins over any number. */
            if (b == 0 || s < bestscore
                    || (s != s && bestscore == bestscore)) {
                bestscore = s;
                best = b;
            }
        }
    } else {
        for (int64_t b = 0; b < nb; b++) {
            double s = hops[b];
            if (penalty)
                s = s + penalty[b];
            if (b == 0 || s < bestscore
                    || (s != s && bestscore == bestscore)) {
                bestscore = s;
                best = b;
            }
        }
    }
    return best;
}

void repro_hybrid_select_batch(const double *mean_hops, double *loads,
                               double h, const double *penalty,
                               double total, int64_t n, int64_t nb,
                               int64_t *out)
{
    for (int64_t i = 0; i < n; i++) {
        int64_t b = pick(mean_hops + i * nb, loads, h, penalty, total, nb);
        out[i] = b;
        loads[b] += 1.0;
        total += 1.0;
    }
}

void repro_chained_hybrid(const double *dist_t, const int64_t *prev_ids,
                          const int64_t *head_banks, double *loads,
                          double h, const double *penalty,
                          const double *zeros, double total, int64_t n,
                          int64_t nb, int64_t *chosen)
{
    for (int64_t i = 0; i < n; i++) {
        const double *hops;
        int64_t p = prev_ids[i];
        if (p >= 0)
            hops = dist_t + chosen[p] * nb;
        else if (head_banks[i] >= 0)
            hops = dist_t + head_banks[i] * nb;
        else
            hops = zeros;
        int64_t b = pick(hops, loads, h, penalty, total, nb);
        chosen[i] = b;
        loads[b] += 1.0;
        total += 1.0;
    }
}
