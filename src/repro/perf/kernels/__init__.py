"""Pluggable compute backends for the allocator/executor hot loops.

PR 3 vectorized the simulator's batch paths but left the Eq. 4
bank-select loop sequential — every choice shifts the load the next
choice sees — and DESIGN §7 called it the Amdahl wall of fig12.  This
package puts the remaining inner loops behind a tiny backend registry
so the same call sites can run either

* ``python`` — numpy-only, always available.  Carries the algorithmic
  work: incremental Eq. 4 scoring through a per-chunk *division table*
  (exact — every table element carries the same IEEE roundings as the
  scalar chain; see :mod:`repro.perf.kernels.pybackend` and DESIGN
  §12), scatter-based first-occurrence dedup, and bulk load recording;
  or
* ``numba`` — ``@njit`` scalar loops executing the same arithmetic in
  the same IEEE order (no fastmath, no contraction), compiled to native
  code.  Optional: when the wheel is absent the registry falls back —
  a *backend* fallback, never a silent numeric drift, because every
  backend is bit-identical to :mod:`repro.perf.reference` by contract
  (tests/test_kernels_equivalence.py); or
* ``c`` — the two sequential Eq. 4 loops compiled from a shipped C
  source by the *system* compiler at first use (cached .so, loaded via
  ctypes, ``-ffp-contract=off``).  Available wherever ``cc`` is, which
  unlike the numba wheel includes this repo's reference container.

Selection: ``REPRO_KERNELS=python|numba|c|auto`` (default ``auto`` =
numba when importable, else ``c`` when a compiler is present, else
``python``), or :func:`set_backend` / ``--kernels`` on the bench and
CLI entry points.  The numba import and the C compile are lazy: a
process pinned to the python backend pays for neither.

The backend surface every implementation must export:

``hybrid_select_batch(mean_hops, loads, h, penalty)``
    Sequential Eq. 4 over a batch; mutates the ``loads`` working copy.
``chained_hybrid(dist_t, prev_ids, head_banks, loads, h, penalty)``
    Eq. 4 where affinity banks come from the batch's earlier choices.
``first_unique(key)`` / ``first_unique_counts(key)``
    ``np.unique(key, return_index=True)[1]`` (+ counts) equivalents.
``consecutive_dedup(values, groups)``
    Run-boundary mask used by the executor's stream accounting.
``migration_pairs(banks, groups)``
    (src, dst) bank pairs of the executor's stream migrations.
``credit_roundtrips(counts, credit_iters)``
    Per-core credit round-trip counts (``np.ceil(counts / k)``).
"""

from __future__ import annotations

import importlib.metadata
import importlib.util
import os
import warnings
from types import ModuleType
from typing import Dict, Optional, Tuple

from repro.perf.kernels import pybackend

__all__ = [
    "available_backends",
    "backend_info",
    "get_backend",
    "set_backend",
    "BACKEND_CHOICES",
]

#: Names accepted by :func:`set_backend` and ``REPRO_KERNELS``.
BACKEND_CHOICES: Tuple[str, ...] = ("auto", "python", "numba", "c")

_active: Optional[ModuleType] = None


def _numba_importable() -> bool:
    """Whether the numba wheel exists, without importing it."""
    try:
        return importlib.util.find_spec("numba") is not None
    except (ImportError, ValueError):
        return False


def _c_available() -> bool:
    """Whether the C backend compiled (imports — and builds — lazily)."""
    try:
        from repro.perf.kernels import cbackend
        return cbackend.AVAILABLE
    except Exception:
        return False


def available_backends() -> Tuple[str, ...]:
    """Backends that can actually execute in this interpreter."""
    names = ["python"]
    if _numba_importable():
        names.append("numba")
    if _c_available():
        names.append("c")
    return tuple(names)


def set_backend(name: str = "auto") -> str:
    """Select the active kernel backend; returns the resolved name.

    ``auto`` resolves to ``numba`` when the wheel is importable, then
    ``c`` when a system compiler can build the shipped kernels, else
    ``python``.  Requesting an unavailable backend explicitly warns
    and falls back to ``python`` — allocator results are bit-identical
    either way, only throughput differs.
    """
    global _active
    name = (name or "auto").lower()
    if name not in BACKEND_CHOICES:
        raise ValueError(
            f"unknown kernel backend {name!r}; choose from {BACKEND_CHOICES}")
    if name == "auto":
        if _numba_importable():
            name = "numba"
        elif _c_available():
            name = "c"
        else:
            name = "python"
    if name == "numba":
        from repro.perf.kernels import nbbackend
        if nbbackend.AVAILABLE:
            _active = nbbackend
            return _active.NAME
        warnings.warn("kernel backend 'numba' requested but numba is not "
                      "importable; falling back to the python backend "
                      "(bit-identical results, lower throughput)",
                      RuntimeWarning, stacklevel=2)
    elif name == "c":
        if _c_available():
            from repro.perf.kernels import cbackend
            _active = cbackend
            return _active.NAME
        warnings.warn("kernel backend 'c' requested but no working C "
                      "compiler was found; falling back to the python "
                      "backend (bit-identical results, lower throughput)",
                      RuntimeWarning, stacklevel=2)
    _active = pybackend
    return _active.NAME


def get_backend() -> ModuleType:
    """The active backend module (resolving ``REPRO_KERNELS`` lazily)."""
    global _active
    if _active is None:
        set_backend(os.environ.get("REPRO_KERNELS", "auto"))
    assert _active is not None
    return _active


def backend_info() -> Dict[str, Optional[str]]:
    """Attribution block for BENCH_*.json / RunResult metadata."""
    numba_version: Optional[str] = None
    if _numba_importable():
        try:
            numba_version = importlib.metadata.version("numba")
        except Exception:
            numba_version = "unknown"
    active = get_backend()
    cc: Optional[str] = None
    if active.NAME == "c":
        cc = getattr(active, "COMPILER", None)
    return {
        "kernels": active.NAME,
        "numba": numba_version,
        "cc": cc,
    }
