"""Interleave pools (paper §4.1).

One pool per power-of-two interleaving from 64 B (a cache line) to 4 KiB
(a page).  A pool is a reserved virtual segment; addresses inside it map
to L3 banks by Eq. 1::

    bank(vaddr) = floor((vaddr - start) / intrlv)  mod  num_banks

The OS backs the pool with contiguous physical pages as it grows (the
``expand`` "syscall"), so the hardware needs exactly one IOT entry per
pool.  The affinity-alloc runtime carves the pool into *slots* of
``intrlv`` bytes each; slot ``i`` lives on bank ``i mod num_banks``, which
is the invariant everything above this layer relies on.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.analysis.diagnostics import PoolExhaustedError
from repro.arch.address import AddressRange, align_up, is_power_of_two
from repro.arch.iot import InterleaveOverrideTable, IotEntry
from repro.vm.layout import AddressSpace, LinearRegion, VirtualLayout

__all__ = ["InterleavePool", "PoolManager", "POOL_INTERLEAVES"]

POOL_INTERLEAVES = (64, 128, 256, 512, 1024, 2048, 4096)


class InterleavePool:
    """One reserved, contiguously-backed virtual segment with fixed interleave."""

    def __init__(self, intrlv: int, vbase: int, pbase: int, reserved: int,
                 num_banks: int, page_size: int = 4096):
        if not is_power_of_two(intrlv):
            raise ValueError(f"pool interleave must be power of two, got {intrlv}")
        self.intrlv = intrlv
        self.vrange = AddressRange(vbase, vbase + reserved)
        self.pbase = pbase
        self.num_banks = num_banks
        self.page_size = page_size
        self._backed = 0  # bytes of physical backing (watermark)
        self.expansions = 0  # number of expand "syscalls" issued
        # Fault injection: a pool-exhaustion fault caps the number of
        # expand syscalls the "OS" will grant this pool (None = only the
        # virtual reservation limits growth, the healthy behaviour).
        self.max_expansions: Optional[int] = None

    # ------------------------------------------------------------------
    @property
    def vbase(self) -> int:
        return self.vrange.start

    @property
    def backed_bytes(self) -> int:
        return self._backed

    @property
    def backed_end_vaddr(self) -> int:
        return self.vbase + self._backed

    def contains(self, vaddr: int) -> bool:
        return self.vrange.contains(vaddr)

    # ------------------------------------------------------------------
    # Slot arithmetic (Eq. 1)
    # ------------------------------------------------------------------
    def slot_of(self, vaddrs) -> np.ndarray:
        return (np.asarray(vaddrs, dtype=np.int64) - self.vbase) // self.intrlv

    def bank_of(self, vaddrs) -> np.ndarray:
        return self.slot_of(vaddrs) % self.num_banks

    def slot_vaddr(self, slot: int) -> int:
        return self.vbase + slot * self.intrlv

    def slots_backed(self) -> int:
        return self._backed // self.intrlv

    # ------------------------------------------------------------------
    # Growth
    # ------------------------------------------------------------------
    def expand(self, nbytes: int) -> AddressRange:
        """Back ``nbytes`` more (page-rounded); returns the new virtual range.

        Models the mmap/brk-style syscall of paper §4.1: physical pages are
        appended contiguously at the watermark.
        """
        if nbytes <= 0:
            raise ValueError("expansion must be positive")
        if self.max_expansions is not None and self.expansions >= self.max_expansions:
            raise PoolExhaustedError(
                f"interleave pool {self.intrlv}B hit its injected expansion "
                f"cap ({self.max_expansions})")
        nbytes = align_up(nbytes, self.page_size)
        new_end = self._backed + nbytes
        if self.vbase + new_end > self.vrange.end:
            raise PoolExhaustedError(
                f"interleave pool {self.intrlv}B exhausted its reservation")
        rng = AddressRange(self.vbase + self._backed, self.vbase + new_end)
        self._backed = new_end
        self.expansions += 1
        return rng

    def ensure_backed(self, vaddr_end: int) -> Optional[AddressRange]:
        """Fault-style growth: back the pool through ``vaddr_end``."""
        need = vaddr_end - self.vbase
        if need <= self._backed:
            return None
        return self.expand(need - self._backed)

    def __repr__(self) -> str:
        return (f"InterleavePool(intrlv={self.intrlv}, backed={self._backed:#x}, "
                f"vbase={self.vbase:#x})")


class PoolManager:
    """Creates the 7 per-process pools, wires regions and IOT entries."""

    def __init__(self, space: AddressSpace, iot: InterleaveOverrideTable,
                 num_banks: int, page_size: int = 4096,
                 interleaves=POOL_INTERLEAVES):
        self.space = space
        self.iot = iot
        self.num_banks = num_banks
        self.page_size = page_size
        self._pools: Dict[int, InterleavePool] = {}
        self._iot_installed: Dict[int, bool] = {}
        for i, intrlv in enumerate(interleaves):
            vbase = VirtualLayout.pool_vbase(i)
            pbase = VirtualLayout.pool_pbase(i)
            pool = InterleavePool(intrlv, vbase, pbase, VirtualLayout.POOL_STRIDE,
                                  num_banks, page_size)
            self._pools[intrlv] = pool
            self._iot_installed[intrlv] = False
            space.add(LinearRegion(f"pool-{intrlv}B", vbase, pbase,
                                   VirtualLayout.POOL_STRIDE))

    # ------------------------------------------------------------------
    @property
    def interleaves(self) -> List[int]:
        return sorted(self._pools)

    def pool(self, intrlv: int) -> InterleavePool:
        try:
            return self._pools[intrlv]
        except KeyError:
            raise KeyError(f"no interleave pool for {intrlv}B "
                           f"(supported: {self.interleaves})") from None

    def has_pool(self, intrlv: int) -> bool:
        return intrlv in self._pools

    def pool_containing(self, vaddr: int) -> Optional[InterleavePool]:
        for pool in self._pools.values():
            if pool.contains(vaddr):
                return pool
        return None

    def round_to_valid_interleave(self, size: int) -> Optional[int]:
        """Smallest supported interleaving >= size, or None if too large."""
        for intrlv in self.interleaves:
            if intrlv >= size:
                return intrlv
        return None

    # ------------------------------------------------------------------
    def expand(self, intrlv: int, nbytes: int) -> AddressRange:
        """Grow a pool and keep its IOT entry in sync.

        The IOT entry is installed on first expansion (a pool that was
        never touched costs no IOT entry) and its ``end`` grows afterwards.
        """
        pool = self.pool(intrlv)
        rng = pool.expand(nbytes)
        pstart = pool.pbase
        pend = pool.pbase + pool.backed_bytes
        if not self._iot_installed[intrlv]:
            self.iot.install(IotEntry(pstart, pend, intrlv))
            self._iot_installed[intrlv] = True
        else:
            self.iot.update_end(pstart, pend)
        return rng

    def bank_of(self, vaddr: int) -> Optional[int]:
        """Bank for a pool address, or None if outside every pool."""
        pool = self.pool_containing(vaddr)
        if pool is None:
            return None
        return int(pool.bank_of(vaddr))
