"""Simulated OS memory layer: address space, regions, interleave pools.

The OS's role in affinity alloc (paper §4.1) is deliberately small: it
reserves one virtual segment per power-of-two interleaving ("interleave
pools"), backs each with *contiguous* physical pages on demand, and tells
the hardware about them with one IOT entry per pool.  Everything else
(which pool, which slot, which bank) is the runtime's job.
"""

from repro.vm.layout import AddressSpace, LinearRegion, PagedRegion, VirtualLayout
from repro.vm.pools import InterleavePool, PoolManager, POOL_INTERLEAVES

__all__ = [
    "AddressSpace",
    "LinearRegion",
    "PagedRegion",
    "VirtualLayout",
    "InterleavePool",
    "PoolManager",
    "POOL_INTERLEAVES",
]
