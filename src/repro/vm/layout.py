"""Virtual address space map and translation.

The simulator uses real integer addresses (they index nothing — data lives
in numpy arrays owned by the data structures) so that bank mapping, IOT
lookup, and allocator arithmetic behave exactly as in the paper.

Three region kinds cover every mapping the paper needs:

* ``LinearRegion`` — virtual range mapped to one contiguous physical
  range.  Used for the heap (baseline malloc) and for every interleave
  pool (paper §4.1 "backed by contiguous physical addresses similar to a
  segment").
* ``PagedRegion`` — per-4-KiB-page mapping.  Used for the "Random" layout
  of Fig 4 (each virtual page -> random physical page) and for
  beyond-page-size interleavings (paper footnote 4: virtual pages mapped
  to 4 KiB-interleaved physical pages at the desired bank).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.arch.address import AddressRange

__all__ = ["LinearRegion", "PagedRegion", "AddressSpace", "VirtualLayout"]


class LinearRegion:
    """Contiguous virtual->physical mapping (segment-style)."""

    def __init__(self, name: str, vbase: int, pbase: int, size: int):
        self.name = name
        self.vrange = AddressRange(vbase, vbase + size)
        self.pbase = pbase

    def translate(self, vaddrs: np.ndarray) -> np.ndarray:
        return vaddrs - self.vrange.start + self.pbase

    def __repr__(self) -> str:
        return f"LinearRegion({self.name}, v={self.vrange.start:#x}+{self.vrange.size:#x})"


class PagedRegion:
    """Per-page virtual->physical mapping.

    The page table is a growable numpy array of frame base addresses; a
    frame of -1 means unmapped (touching it raises, like a segfault).
    """

    def __init__(self, name: str, vbase: int, size: int, page_size: int = 4096):
        if size % page_size:
            raise ValueError("PagedRegion size must be page aligned")
        self.name = name
        self.vrange = AddressRange(vbase, vbase + size)
        self.page_size = page_size
        # Power-of-two pages (the only kind configs use) translate with a
        # shift and a mask; both equal `//`/`%` bit for bit on int64.
        if page_size & (page_size - 1) == 0:
            self._page_shift = page_size.bit_length() - 1
        else:
            self._page_shift = None
        self.max_pages = size // page_size
        # Growable frame table: only as large as the highest mapped page
        # (the reservation is 1 TiB; preallocating it would be absurd).
        self._frames = np.empty(0, dtype=np.int64)

    def _grow_to(self, npages: int) -> None:
        if npages <= self._frames.size:
            return
        cap = max(npages, self._frames.size * 2, 64)
        grown = np.full(min(cap, self.max_pages), -1, dtype=np.int64)
        grown[:self._frames.size] = self._frames
        self._frames = grown

    def map_page(self, vpage_index: int, frame_paddr: int) -> None:
        if frame_paddr % self.page_size:
            raise ValueError("frame must be page aligned")
        if not (0 <= vpage_index < self.max_pages):
            raise ValueError("page index outside the region")
        self._grow_to(vpage_index + 1)
        self._frames[vpage_index] = frame_paddr

    def frame_of(self, vpage_index: int) -> int:
        if vpage_index >= self._frames.size:
            return -1
        return int(self._frames[vpage_index])

    def translate(self, vaddrs: np.ndarray) -> np.ndarray:
        offs = vaddrs - self.vrange.start
        if self._page_shift is not None:
            pages = offs >> self._page_shift
            in_page = offs & (self.page_size - 1)
        else:
            pages = offs // self.page_size
            in_page = offs % self.page_size
        # take() bounds-checks the gather itself, so the only extra
        # validity pass left is the unmapped-frame min(); full boolean
        # masks are only materialized on the error paths.
        try:
            frames = self._frames.take(pages)
        except IndexError:
            bad = vaddrs[pages >= self._frames.size][0]
            raise RuntimeError(f"access to unmapped page in {self.name}: "
                               f"{int(bad):#x}") from None
        if frames.size and int(frames.min()) < 0:
            bad = vaddrs[frames < 0][0]
            raise RuntimeError(f"access to unmapped page in {self.name}: {int(bad):#x}")
        return frames + in_page

    def __repr__(self) -> str:
        return f"PagedRegion({self.name}, v={self.vrange.start:#x}+{self.vrange.size:#x})"


class AddressSpace:
    """Sorted collection of non-overlapping regions with vectorized translate."""

    def __init__(self):
        self._regions: List = []
        self._starts = np.empty(0, dtype=np.int64)
        self._ends = np.empty(0, dtype=np.int64)
        # Per-region linear deltas (pbase - vbase) let translate() handle
        # every LinearRegion — the heap and all interleave pools — as one
        # fancy-indexed add; only PagedRegions need a per-region call.
        self._deltas = np.empty(0, dtype=np.int64)
        self._paged_ids: List[int] = []

    def add(self, region) -> None:
        for r in self._regions:
            if r.vrange.overlaps(region.vrange):
                raise ValueError(f"{region} overlaps {r}")
        self._regions.append(region)
        self._regions.sort(key=lambda r: r.vrange.start)
        self._starts = np.array([r.vrange.start for r in self._regions], dtype=np.int64)
        self._ends = np.array([r.vrange.end for r in self._regions], dtype=np.int64)
        self._deltas = np.array(
            [r.pbase - r.vrange.start if isinstance(r, LinearRegion) else 0
             for r in self._regions], dtype=np.int64)
        self._paged_ids = [i for i, r in enumerate(self._regions)
                           if not isinstance(r, LinearRegion)]

    def region_of(self, vaddr: int):
        idx = int(np.searchsorted(self._starts, vaddr, side="right")) - 1
        if idx >= 0 and vaddr < self._ends[idx]:
            return self._regions[idx]
        return None

    def translate(self, vaddrs) -> np.ndarray:
        """Virtual -> physical for scalar or array addresses.

        One ``searchsorted`` locates every address's region; linear
        regions (the common case: heap + every interleave pool) then
        translate in a single fancy-indexed add, and only paged regions
        fall back to a per-region page-table gather.
        """
        vaddrs = np.atleast_1d(np.asarray(vaddrs, dtype=np.int64))
        if vaddrs.size:
            # Fast path: a batch whose [min, max] fits one region (almost
            # every executor call — a trace walks one array) needs two
            # O(n) reductions and one scalar bisect instead of the
            # per-address searchsorted and gathers below.  Regions never
            # overlap, so min/max inside region i puts every address in i.
            lo = int(vaddrs.min())
            i = int(np.searchsorted(self._starts, lo, side="right")) - 1
            if i >= 0 and lo >= self._starts[i] \
                    and int(vaddrs.max()) < self._ends[i]:
                region = self._regions[i]
                if isinstance(region, LinearRegion):
                    return vaddrs + self._deltas[i]
                return region.translate(vaddrs)
        idx = np.searchsorted(self._starts, vaddrs, side="right") - 1
        if (idx < 0).any():
            bad = vaddrs[idx < 0][0]
            raise RuntimeError(f"unmapped virtual address {int(bad):#x}")
        oob = vaddrs >= self._ends[idx]
        if oob.any():
            # Report what the old per-region loop reported: lowest region
            # id first, then first offender in array order within it.
            rid = int(idx[oob].min())
            bad = vaddrs[oob & (idx == rid)][0]
            raise RuntimeError(f"unmapped virtual address {int(bad):#x}")
        out = vaddrs + self._deltas[idx]
        for rid in self._paged_ids:
            mask = idx == rid
            if mask.any():
                out[mask] = self._regions[rid].translate(vaddrs[mask])
        return out

    def translate_one(self, vaddr: int) -> int:
        return int(self.translate(np.asarray([vaddr]))[0])


class VirtualLayout:
    """Fixed virtual-layout constants for a simulated process.

    Mirrors the paper: 7 interleave pools of 1 TiB each (~2.7% of the
    48-bit space), plus a conventional heap and a paged segment for
    page-granularity mappings.
    """

    TIB = 1 << 40

    HEAP_VBASE = 0x0100_0000_0000
    HEAP_SIZE = TIB
    PAGED_VBASE = 0x0300_0000_0000
    PAGED_SIZE = TIB
    POOL_VBASE = 0x1000_0000_0000
    POOL_STRIDE = TIB  # 1 TiB reserved per pool

    # Physical windows (a 48-bit paper machine; purely arithmetic here).
    HEAP_PBASE = 0x0000_1000_0000
    POOL_PBASE = 0x2000_0000_0000
    POOL_PSTRIDE = TIB
    PAGED_PBASE = 0x5000_0000_0000

    @classmethod
    def pool_vbase(cls, pool_index: int) -> int:
        return cls.POOL_VBASE + pool_index * cls.POOL_STRIDE

    @classmethod
    def pool_pbase(cls, pool_index: int) -> int:
        return cls.POOL_PBASE + pool_index * cls.POOL_PSTRIDE
