"""Virtual address space map and translation.

The simulator uses real integer addresses (they index nothing — data lives
in numpy arrays owned by the data structures) so that bank mapping, IOT
lookup, and allocator arithmetic behave exactly as in the paper.

Three region kinds cover every mapping the paper needs:

* ``LinearRegion`` — virtual range mapped to one contiguous physical
  range.  Used for the heap (baseline malloc) and for every interleave
  pool (paper §4.1 "backed by contiguous physical addresses similar to a
  segment").
* ``PagedRegion`` — per-4-KiB-page mapping.  Used for the "Random" layout
  of Fig 4 (each virtual page -> random physical page) and for
  beyond-page-size interleavings (paper footnote 4: virtual pages mapped
  to 4 KiB-interleaved physical pages at the desired bank).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.arch.address import AddressRange

__all__ = ["LinearRegion", "PagedRegion", "AddressSpace", "VirtualLayout"]


class LinearRegion:
    """Contiguous virtual->physical mapping (segment-style)."""

    def __init__(self, name: str, vbase: int, pbase: int, size: int):
        self.name = name
        self.vrange = AddressRange(vbase, vbase + size)
        self.pbase = pbase

    def translate(self, vaddrs: np.ndarray) -> np.ndarray:
        return vaddrs - self.vrange.start + self.pbase

    def __repr__(self) -> str:
        return f"LinearRegion({self.name}, v={self.vrange.start:#x}+{self.vrange.size:#x})"


class PagedRegion:
    """Per-page virtual->physical mapping.

    The page table is a growable numpy array of frame base addresses; a
    frame of -1 means unmapped (touching it raises, like a segfault).
    """

    def __init__(self, name: str, vbase: int, size: int, page_size: int = 4096):
        if size % page_size:
            raise ValueError("PagedRegion size must be page aligned")
        self.name = name
        self.vrange = AddressRange(vbase, vbase + size)
        self.page_size = page_size
        self.max_pages = size // page_size
        # Growable frame table: only as large as the highest mapped page
        # (the reservation is 1 TiB; preallocating it would be absurd).
        self._frames = np.empty(0, dtype=np.int64)

    def _grow_to(self, npages: int) -> None:
        if npages <= self._frames.size:
            return
        cap = max(npages, self._frames.size * 2, 64)
        grown = np.full(min(cap, self.max_pages), -1, dtype=np.int64)
        grown[:self._frames.size] = self._frames
        self._frames = grown

    def map_page(self, vpage_index: int, frame_paddr: int) -> None:
        if frame_paddr % self.page_size:
            raise ValueError("frame must be page aligned")
        if not (0 <= vpage_index < self.max_pages):
            raise ValueError("page index outside the region")
        self._grow_to(vpage_index + 1)
        self._frames[vpage_index] = frame_paddr

    def frame_of(self, vpage_index: int) -> int:
        if vpage_index >= self._frames.size:
            return -1
        return int(self._frames[vpage_index])

    def translate(self, vaddrs: np.ndarray) -> np.ndarray:
        offs = vaddrs - self.vrange.start
        pages = offs // self.page_size
        if pages.size and pages.max() >= self._frames.size:
            bad = vaddrs[pages >= self._frames.size][0]
            raise RuntimeError(f"access to unmapped page in {self.name}: {int(bad):#x}")
        frames = self._frames[pages]
        if (frames < 0).any():
            bad = vaddrs[frames < 0][0]
            raise RuntimeError(f"access to unmapped page in {self.name}: {int(bad):#x}")
        return frames + offs % self.page_size

    def __repr__(self) -> str:
        return f"PagedRegion({self.name}, v={self.vrange.start:#x}+{self.vrange.size:#x})"


class AddressSpace:
    """Sorted collection of non-overlapping regions with vectorized translate."""

    def __init__(self):
        self._regions: List = []
        self._starts = np.empty(0, dtype=np.int64)
        self._ends = np.empty(0, dtype=np.int64)

    def add(self, region) -> None:
        for r in self._regions:
            if r.vrange.overlaps(region.vrange):
                raise ValueError(f"{region} overlaps {r}")
        self._regions.append(region)
        self._regions.sort(key=lambda r: r.vrange.start)
        self._starts = np.array([r.vrange.start for r in self._regions], dtype=np.int64)
        self._ends = np.array([r.vrange.end for r in self._regions], dtype=np.int64)

    def region_of(self, vaddr: int):
        idx = int(np.searchsorted(self._starts, vaddr, side="right")) - 1
        if idx >= 0 and vaddr < self._ends[idx]:
            return self._regions[idx]
        return None

    def translate(self, vaddrs) -> np.ndarray:
        """Virtual -> physical for scalar or array addresses."""
        vaddrs = np.atleast_1d(np.asarray(vaddrs, dtype=np.int64))
        out = np.empty_like(vaddrs)
        idx = np.searchsorted(self._starts, vaddrs, side="right") - 1
        if (idx < 0).any():
            bad = vaddrs[idx < 0][0]
            raise RuntimeError(f"unmapped virtual address {int(bad):#x}")
        for rid in np.unique(idx):
            region = self._regions[rid]
            mask = idx == rid
            addrs = vaddrs[mask]
            if (addrs >= self._ends[rid]).any():
                bad = addrs[addrs >= self._ends[rid]][0]
                raise RuntimeError(f"unmapped virtual address {int(bad):#x}")
            out[mask] = region.translate(addrs)
        return out

    def translate_one(self, vaddr: int) -> int:
        return int(self.translate(np.asarray([vaddr]))[0])


class VirtualLayout:
    """Fixed virtual-layout constants for a simulated process.

    Mirrors the paper: 7 interleave pools of 1 TiB each (~2.7% of the
    48-bit space), plus a conventional heap and a paged segment for
    page-granularity mappings.
    """

    TIB = 1 << 40

    HEAP_VBASE = 0x0100_0000_0000
    HEAP_SIZE = TIB
    PAGED_VBASE = 0x0300_0000_0000
    PAGED_SIZE = TIB
    POOL_VBASE = 0x1000_0000_0000
    POOL_STRIDE = TIB  # 1 TiB reserved per pool

    # Physical windows (a 48-bit paper machine; purely arithmetic here).
    HEAP_PBASE = 0x0000_1000_0000
    POOL_PBASE = 0x2000_0000_0000
    POOL_PSTRIDE = TIB
    PAGED_PBASE = 0x5000_0000_0000

    @classmethod
    def pool_vbase(cls, pool_index: int) -> int:
        return cls.POOL_VBASE + pool_index * cls.POOL_STRIDE

    @classmethod
    def pool_pbase(cls, pool_index: int) -> int:
        return cls.POOL_PBASE + pool_index * cls.POOL_PSTRIDE
