"""Constraint linting of layout plans and allocator state (``AFF0xx``).

:func:`lint_plan` resolves a :class:`~repro.analysis.plan.LayoutPlan`
with the runtime's own pure solver and diagnoses every way a layout can
go wrong before a single byte is allocated:

* AFF001 — an Eq. 2/3 alignment constraint has no layout (offset not a
  slot multiple, or no legal interleave for the element ratio),
* AFF002 — the alignment chain is broken (unknown / forward / fallback
  target),
* AFF003 — the spec itself conflicts (partition + align_to, intra-array
  affinity with p/q != 1, malformed sizes),
* AFF004 — the required interleaving has no backing pool,
* AFF005 — forced element padding wastes more than
  :data:`PADDING_WASTE_THRESHOLD` of the array's footprint,
* AFF006 — predicted demand exceeds a pool's virtual reservation.

:func:`lint_allocator` performs the same checks post-hoc against a live
:class:`~repro.core.runtime.AffinityAllocator` (fallbacks that actually
happened, pools nearing exhaustion).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.analysis.diagnostics import (
    Diagnostic,
    DiagnosticReport,
    LayoutError,
    Severity,
    Site,
)
from repro.analysis.plan import LayoutPlan, PlannedArray, ResolvedTarget
from repro.core.affine import AffineLayout, LayoutKind, solve_affine_layout
from repro.core.api import AffineArray
from repro.machine import Machine
from repro.vm.layout import VirtualLayout

__all__ = ["lint_plan", "lint_allocator", "plan_pool_demand",
           "PADDING_WASTE_THRESHOLD", "POOL_PRESSURE_THRESHOLD"]

#: AFF005 fires when padding wastes more than this fraction of footprint.
PADDING_WASTE_THRESHOLD = 0.5

#: AFF006 (post-hoc) fires when a pool backed more than this fraction of
#: its virtual reservation.
POOL_PRESSURE_THRESHOLD = 0.9

#: AffineLayout fallback codes -> (diagnostic code, one-line cause).
_FALLBACK_CODE_MAP = {
    "align-offset": ("AFF001", "align_x lands between interleave slots"),
    "bad-ratio": ("AFF001", "no legal interleave exists for the element "
                            "ratio (Eq. 3 yields a fraction)"),
    "unsupported-interleave": ("AFF004", "Eq. 3 interleave has no backing "
                                         "pool and is not page-aligned"),
    "no-line-pool": ("AFF004", "no interleave pool can hold a cache line"),
    "no-target": ("AFF002", "alignment target has no affinity layout"),
}


def _site(plan: LayoutPlan, name: str) -> Site:
    return Site("array", name, detail=f"plan {plan.name}")


def _diagnose_fallback(layout: AffineLayout, site: Site,
                       report: DiagnosticReport) -> None:
    code, cause = _FALLBACK_CODE_MAP.get(
        layout.code, ("AFF001", "constraint system is unsatisfiable"))
    report.add(Diagnostic(
        code, Severity.ERROR, site,
        f"{cause}: {layout.reason}",
        fix_hint="relax the alignment (align_x on a slot boundary, "
                 "integer p/q element ratio) or let the array fall back "
                 "intentionally"))


def _array_footprint(spec: PlannedArray, layout: AffineLayout) -> int:
    stride = max(layout.stride, spec.elem_size)
    return (spec.num_elem - 1) * stride + spec.elem_size


def plan_pool_demand(plan: LayoutPlan, layouts: Dict[str, AffineLayout],
                     pools, page_size: int) -> Tuple[Dict[int, int], int]:
    """Predicted bytes each interleave pool must back for one plan.

    Returns ``(pool_demand, paged_demand)``: bytes per pool interleave
    (page frames for PAGED layouts land on the ``page_size`` pool, the
    same frames a partitioned allocation draws at runtime) and the
    virtual-range bytes consumed from the paged segment.  Pure — shared
    by the single-plan AFF006 check and the cross-plan interference
    analyzer's aggregate INT002 check, so both predict with one formula.
    """
    pool_demand: Dict[int, int] = {}
    paged_demand = 0
    seen: set = set()
    for pa in plan.arrays:
        if pa.name in seen:
            continue  # duplicate names are an AFF003 error, counted once
        seen.add(pa.name)
        layout = layouts.get(pa.name)
        if layout is None or layout.kind is LayoutKind.FALLBACK:
            continue
        footprint = _array_footprint(pa, layout)
        if layout.kind is LayoutKind.POOL:
            nslots = -(-footprint // layout.intrlv)
            pool_demand[layout.intrlv] = (pool_demand.get(layout.intrlv, 0)
                                          + nslots * layout.intrlv)
        else:  # PAGED: virtual range + page frames from the 4 KiB pool
            nchunks = -(-footprint // layout.intrlv)
            paged_demand += nchunks * layout.intrlv
            pool_demand[page_size] = (pool_demand.get(page_size, 0)
                                      + nchunks * layout.intrlv)
    for dem in plan.irregular:
        intrlv = pools.round_to_valid_interleave(dem.size)
        if intrlv is None:
            continue  # AFF004 error; no pool to charge
        pool_demand[intrlv] = (pool_demand.get(intrlv, 0)
                               + dem.count * intrlv)
    return pool_demand, paged_demand


def lint_plan(plan: LayoutPlan, machine: Optional[Machine] = None,
              ) -> Tuple[DiagnosticReport, Dict[str, AffineLayout]]:
    """Statically resolve every planned array and diagnose AFF0xx issues.

    Returns the report plus the predicted layout per array name — the
    exact :class:`AffineLayout` the runtime would choose, so callers (and
    tests) can cross-check predictions against real allocations.
    """
    machine = machine if machine is not None else Machine()
    pools, mesh = machine.pools, machine.mesh
    line = machine.config.cache.line_bytes
    page = machine.config.page_size
    report = DiagnosticReport()
    layouts: Dict[str, AffineLayout] = {}
    strides: Dict[str, int] = {}

    seen: Dict[str, PlannedArray] = {}
    for pa in plan.arrays:
        site = _site(plan, pa.name)
        if pa.name in seen:
            report.add(Diagnostic(
                "AFF003", Severity.ERROR, site,
                f"array {pa.name!r} planned twice",
                fix_hint="give each allocation a unique name"))
            continue
        seen[pa.name] = pa

        target = None
        if pa.align_to is not None:
            if pa.align_to not in layouts:
                known = pa.align_to in {p.name for p in plan.arrays}
                report.add(Diagnostic(
                    "AFF002", Severity.ERROR, site,
                    f"aligns to {pa.align_to!r}, which is "
                    + ("planned later (forward reference)" if known
                       else "not in the plan"),
                    fix_hint="plan the target array before its dependents"))
                layouts[pa.name] = AffineLayout(
                    LayoutKind.FALLBACK, 0, 0, pa.elem_size,
                    "broken alignment chain", code="no-target")
                strides[pa.name] = pa.elem_size
                continue
            target = ResolvedTarget(pa.align_to, layouts[pa.align_to],
                                    strides[pa.align_to])

        try:
            spec = AffineArray(pa.elem_size, pa.num_elem, align_to=target,
                               align_p=pa.align_p, align_q=pa.align_q,
                               align_x=pa.align_x, partition=pa.partition)
        except LayoutError as e:
            report.add(Diagnostic(
                "AFF003", Severity.ERROR, site, str(e),
                fix_hint="fix the spec: partition and align_to are "
                         "exclusive, intra-array affinity needs p == q == 1"))
            layouts[pa.name] = AffineLayout(
                LayoutKind.FALLBACK, 0, 0, max(pa.elem_size, 1),
                f"invalid spec: {e}", code="bad-spec")
            strides[pa.name] = max(pa.elem_size, 1)
            continue

        layout = solve_affine_layout(spec, pools, mesh, line, page)
        layouts[pa.name] = layout
        strides[pa.name] = layout.stride

        if layout.kind is LayoutKind.FALLBACK:
            _diagnose_fallback(layout, site, report)
            continue

        if layout.stride > pa.elem_size:
            waste = 1.0 - pa.elem_size / layout.stride
            if waste > PADDING_WASTE_THRESHOLD:
                report.add(Diagnostic(
                    "AFF005", Severity.WARNING, site,
                    f"padding to a {layout.stride}B stride wastes "
                    f"{waste:.0%} of the array's footprint "
                    f"({layout.reason})",
                    fix_hint="restructure the element ratio so Eq. 3 "
                             "yields a legal interleave without padding"))

    for dem in plan.irregular:
        site = Site("alloc", dem.label, detail=f"plan {plan.name}")
        if pools.round_to_valid_interleave(dem.size) is None:
            report.add(Diagnostic(
                "AFF004", Severity.ERROR, site,
                f"irregular objects of {dem.size}B exceed the largest "
                f"interleaving ({pools.interleaves[-1]}B)",
                fix_hint="use an affine allocation for objects beyond "
                         "the largest pool interleave"))

    pool_demand, paged_demand = plan_pool_demand(plan, layouts, pools, page)
    for intrlv, demand in sorted(pool_demand.items()):
        if demand > VirtualLayout.POOL_STRIDE:
            report.add(Diagnostic(
                "AFF006", Severity.ERROR,
                Site("pool", f"{intrlv}B", detail=f"plan {plan.name}"),
                f"predicted demand {demand / 2**40:.2f} TiB exceeds the "
                f"{VirtualLayout.POOL_STRIDE / 2**40:.0f} TiB reservation",
                fix_hint="shrink the working set or split it across "
                         "interleavings"))
    if paged_demand > VirtualLayout.PAGED_SIZE:
        report.add(Diagnostic(
            "AFF006", Severity.ERROR,
            Site("pool", "paged-segment", detail=f"plan {plan.name}"),
            f"predicted paged demand {paged_demand / 2**40:.2f} TiB "
            f"exceeds the {VirtualLayout.PAGED_SIZE / 2**40:.0f} TiB "
            "segment",
            fix_hint="shrink the partitioned arrays"))
    return report, layouts


def lint_allocator(allocator) -> DiagnosticReport:
    """Post-hoc AFF0xx checks against a live allocator's state."""
    report = DiagnosticReport()
    for vaddr, rec in sorted(allocator._records.items()):
        layout = rec.layout
        name = rec.handle.name or f"{vaddr:#x}"
        site = Site("array", name)
        if layout.kind is LayoutKind.FALLBACK:
            code, cause = _FALLBACK_CODE_MAP.get(
                layout.code, ("AFF001", "constraint unsatisfiable"))
            report.add(Diagnostic(
                code, Severity.WARNING, site,
                f"allocation fell back to the baseline heap — {cause}: "
                f"{layout.reason}",
                fix_hint="this array has no bank affinity at runtime"))
        elif layout.stride > rec.handle.elem_size:
            waste = 1.0 - rec.handle.elem_size / layout.stride
            if waste > PADDING_WASTE_THRESHOLD:
                report.add(Diagnostic(
                    "AFF005", Severity.WARNING, site,
                    f"padded to {layout.stride}B stride "
                    f"({waste:.0%} waste)",
                    fix_hint="restructure the element ratio to avoid "
                             "padding"))
    for intrlv in allocator.pools.interleaves:
        pool = allocator.pools.pool(intrlv)
        frac = pool.backed_bytes / VirtualLayout.POOL_STRIDE
        if frac > POOL_PRESSURE_THRESHOLD:
            report.add(Diagnostic(
                "AFF006", Severity.WARNING, Site("pool", f"{intrlv}B"),
                f"pool has backed {frac:.0%} of its reservation",
                fix_hint="the next expansion may raise PoolExhaustedError"))
    return report
