"""Static affinity-coverage estimation (``COV0xx``).

Predicts, from layout alone, the fraction of a kernel's offloaded
accesses that stay bank-local and the mean NoC hops of the remainder —
the paper's Fig. 2 diagnosis without running the experiment.  The
estimator mirrors the compiler's grouping exactly (loads forwarded to
their consuming store's bank, indirect requests from base to target
bank, chases migrating between consecutive nodes), so on affine kernels
its prediction matches the executor's measured
``stream_elem_accesses`` / ``stream_remote_accesses`` counters.

Bank lookup is analytic for pool/paged layouts (Eq. 1: the slot index
advances by ``stride // intrlv`` per element from ``start_bank``) and
falls back to the hardware mapping path for plain arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.diagnostics import (
    Diagnostic,
    DiagnosticReport,
    Severity,
    Site,
)
from repro.core.affine import AffineLayout, LayoutKind
from repro.machine import Machine

__all__ = ["StreamCoverage", "KernelCoverage", "static_banks",
           "estimate_kernel_coverage", "estimate_plan_coverage",
           "LOCAL_FRACTION_THRESHOLD", "MAX_SAMPLES"]

#: COV001 fires below this predicted bank-local fraction.
LOCAL_FRACTION_THRESHOLD = 0.5

#: Iteration-sampling cap (layouts are periodic; 4096 samples is exact
#: for every interleave/stride combination the pools support).
MAX_SAMPLES = 4096


def static_banks(handle, idx: np.ndarray, machine: Machine) -> np.ndarray:
    """Owning bank per element index, derived from the layout.

    Pool/paged layouts resolve analytically (start bank plus slot
    advance); plain and fallback arrays use the hardware mapping path.
    """
    idx = np.asarray(idx, dtype=np.int64)
    layout = getattr(handle, "layout", None)
    if (isinstance(layout, AffineLayout)
            and layout.kind in (LayoutKind.POOL, LayoutKind.PAGED)):
        advance = (idx * handle.stride) // layout.intrlv
        return (layout.start_bank + advance) % machine.num_banks
    return handle.banks(idx)


def _sample_iterations(trip_count: int) -> np.ndarray:
    if trip_count <= MAX_SAMPLES:
        return np.arange(trip_count, dtype=np.int64)
    return np.unique(np.linspace(0, trip_count - 1, MAX_SAMPLES,
                                 dtype=np.int64))


@dataclass
class StreamCoverage:
    """Predicted locality of one stream (or stream pair)."""

    stream: str
    role: str          # "forwarded", "store", "read", "indirect", "chase"
    local_fraction: float
    mean_hops: float
    weight: float      # element accesses this row stands for


@dataclass
class KernelCoverage:
    """Per-kernel coverage report."""

    kernel: str
    rows: List[StreamCoverage] = field(default_factory=list)

    @property
    def total_accesses(self) -> float:
        return sum(r.weight for r in self.rows)

    @property
    def local_fraction(self) -> float:
        total = self.total_accesses
        if total <= 0:
            return 1.0
        return sum(r.local_fraction * r.weight for r in self.rows) / total

    @property
    def mean_hops(self) -> float:
        total = self.total_accesses
        if total <= 0:
            return 0.0
        return sum(r.mean_hops * r.weight for r in self.rows) / total

    def render(self) -> str:
        from repro.harness.report import ascii_table
        rows = [[r.stream, r.role, f"{r.local_fraction:.3f}",
                 f"{r.mean_hops:.2f}", f"{r.weight:,.0f}"]
                for r in self.rows]
        rows.append(["TOTAL", "", f"{self.local_fraction:.3f}",
                     f"{self.mean_hops:.2f}", f"{self.total_accesses:,.0f}"])
        header = f"kernel {self.kernel}: predicted affinity coverage"
        return header + "\n" + ascii_table(
            ["stream", "role", "local", "hops", "accesses"], rows)

    def diagnostics(self, machine: Machine) -> DiagnosticReport:
        report = DiagnosticReport()
        site = Site("kernel", self.kernel)
        hops_threshold = (machine.config.noc.width
                          + machine.config.noc.height) / 3.0
        if self.local_fraction < LOCAL_FRACTION_THRESHOLD:
            worst = min(self.rows, key=lambda r: r.local_fraction,
                        default=None)
            report.add(Diagnostic(
                "COV001", Severity.WARNING, site,
                f"predicted bank-local fraction {self.local_fraction:.2f} "
                f"is below {LOCAL_FRACTION_THRESHOLD}"
                + (f" (worst stream: {worst.stream})" if worst else ""),
                fix_hint="align the kernel's arrays to each other "
                         "(malloc_aff with align_to) so operands "
                         "colocate"))
        if self.mean_hops > hops_threshold:
            report.add(Diagnostic(
                "COV002", Severity.WARNING, site,
                f"predicted mean NoC distance {self.mean_hops:.2f} hops "
                f"exceeds {hops_threshold:.1f}",
                fix_hint="co-locate producers and consumers; remote "
                         "operands traverse the mesh every iteration"))
        return report


def estimate_kernel_coverage(kernel, machine: Machine) -> KernelCoverage:
    """Estimate coverage for a kernel from its layout alone.

    ``kernel`` is a :class:`~repro.nsc.compiler.KernelBuilder` or a
    :class:`~repro.nsc.compiler.CompiledKernel` carrying its builder.
    """
    from repro.nsc.compiler import AccessKind, KernelBuilder, _affine_idx

    builder = kernel if isinstance(kernel, KernelBuilder) else kernel.builder
    if builder is None:
        raise ValueError("kernel has no builder attached; compile with "
                         "compile_kernel() or pass the KernelBuilder")
    mesh = machine.mesh
    iters = _sample_iterations(builder.trip_count)
    trip = float(builder.trip_count)
    cov = KernelCoverage(builder.name)
    consumed: set = set()

    for acc in builder.accesses():
        if acc.kind is not AccessKind.AFFINE_STORE:
            continue
        out_banks = static_banks(acc.handle, _affine_idx(acc, iters), machine)
        for src in acc.inputs:
            sacc = builder.access(src)
            if sacc.kind is not AccessKind.AFFINE_LOAD:
                continue
            consumed.add(src)
            in_banks = static_banks(sacc.handle, _affine_idx(sacc, iters),
                                    machine)
            local = float((in_banks == out_banks).mean())
            hops = float(mesh.hops(in_banks, out_banks).mean())
            cov.rows.append(StreamCoverage(sacc.name, "forwarded",
                                           local, hops, trip))
        cov.rows.append(StreamCoverage(acc.name, "store", 1.0, 0.0, trip))

    for acc in builder.accesses():
        if acc.kind is AccessKind.AFFINE_LOAD and acc.name not in consumed:
            cov.rows.append(StreamCoverage(acc.name, "read", 1.0, 0.0, trip))
        elif acc.kind in (AccessKind.INDIRECT_LOAD,
                          AccessKind.INDIRECT_ATOMIC):
            base = builder.access(acc.address_from)
            b_banks = static_banks(base.handle, _affine_idx(base, iters),
                                   machine)
            tidx = np.asarray(acc.target_indices(iters), dtype=np.int64)
            t_banks = static_banks(acc.handle, tidx, machine)
            local = float((b_banks == t_banks).mean())
            hops = float(mesh.hops(b_banks, t_banks).mean())
            cov.rows.append(StreamCoverage(acc.name, "indirect",
                                           local, hops, trip))

    for spec in builder._chases:
        vaddrs = np.asarray(spec.node_vaddrs, dtype=np.int64)
        if vaddrs.size == 0:
            continue
        banks = machine.banks_of(vaddrs)
        chain_ids = np.asarray(spec.chain_ids, dtype=np.int64)
        same = chain_ids[1:] == chain_ids[:-1]
        moved = (banks[1:] != banks[:-1]) & same
        local = 1.0 - float(moved.sum()) / vaddrs.size
        step_hops = mesh.hops(banks[:-1], banks[1:])
        hops = float((step_hops * same).sum()) / vaddrs.size
        cov.rows.append(StreamCoverage(spec.name, "chase", local, hops,
                                       float(vaddrs.size)))
    return cov


def estimate_plan_coverage(plan, layouts: Dict[str, AffineLayout],
                           machine: Machine) -> Tuple[DiagnosticReport,
                                                      Dict[str, float]]:
    """Predict pairwise alignment quality straight from a layout plan.

    For every planned array with an alignment target, computes the
    fraction of elements that land on their Eq. 2 partner's bank, using
    only the predicted layouts.  Informational (NOTE severity): the
    kernel-level estimator owns the warnings.
    """
    report = DiagnosticReport()
    fractions: Dict[str, float] = {}
    specs = {pa.name: pa for pa in plan.arrays}
    nb = machine.num_banks

    def banks_of(name: str, idx: np.ndarray) -> Optional[np.ndarray]:
        layout = layouts.get(name)
        pa = specs[name]
        if (layout is None
                or layout.kind not in (LayoutKind.POOL, LayoutKind.PAGED)):
            return None
        stride = max(layout.stride, pa.elem_size)
        return (layout.start_bank + (idx * stride) // layout.intrlv) % nb

    for pa in plan.arrays:
        if pa.align_to is None or pa.align_to not in specs:
            continue
        target = specs[pa.align_to]
        i = _sample_iterations(pa.num_elem)
        j = np.clip((pa.align_p * i) // pa.align_q + pa.align_x,
                    0, target.num_elem - 1)
        mine = banks_of(pa.name, i)
        theirs = banks_of(pa.align_to, j)
        if mine is None or theirs is None:
            continue
        frac = float((mine == theirs).mean())
        fractions[pa.name] = frac
        report.add(Diagnostic(
            "COV001", Severity.NOTE,
            Site("array", pa.name, detail=f"plan {plan.name}"),
            f"{frac:.0%} of elements land on their {pa.align_to!r} "
            "partner's bank",
            fix_hint="" if frac >= LOCAL_FRACTION_THRESHOLD else
            "check align_x lands on a slot boundary"))
    return report, fractions
