"""The afflint self-sanitizer: AST passes over this repository's own
source (``DET0xx`` / ``GRD0xx``), run as ``repro lint --self``.

PRs 1-6 built load-bearing *dynamic* invariants — byte-identical results
across ``--jobs``, clean-path byte-identity behind ``is None`` feature
guards, cache keys that extend with every new ``run_figures`` kwarg —
that 855 tests exercise but nothing enforces at the source level, so
every new subsystem re-risks the latent-bug classes PR 4 fixed.  These
passes make the disciplines checkable:

* DET001 — unseeded randomness or wallclock readable from simulation
  code: the stdlib ``random`` module, numpy's legacy global RNG
  (``np.random.rand`` & co.), argument-less ``default_rng()``, and
  wall-clock reads (``time.time``, ``datetime.now``, ...).  Monotonic
  timers (``perf_counter``, ``monotonic``, ``process_time``) are fine —
  wall timing is excluded from result metrics by design.
* DET002 — iteration over unordered sources (set literals/calls,
  ``iterdir``/``glob``/``os.listdir``) whose order can leak into
  results or merged logs.  Order-insensitive reducers (``sum``,
  ``min``, ``max``, ``any``, ``all``, ``len``) and ``sorted(...)``
  consumption are exempt.
* GRD001 — use of a feature-state attribute (``machine.faults``,
  ``machine.relayout``, ``machine.tracer``) not dominated by an
  ``is None`` clean-path guard.  The recognized guard idioms are
  exactly the shipped ones: alias-then-``if st is not None``, direct
  ``if x.faults is not None``, ternaries, ``assert ... is not None``,
  ``and``-chains, and early ``return`` on ``is None``.
* GRD002 — a parameter of a function that computes a cache key does not
  flow into the key (the stale-cache class of bug: adding a
  ``run_figures`` kwarg without extending the digest).  Parameters that
  legitimately do not affect results (``use_cache``, ``cache_dir``,
  ``crash``, ...) are allowlisted.

Findings anchor to real ``file:line`` sites.  A finding can be
suppressed in place with ``# afflint: allow(CODE)`` on the same line —
the escape hatch for deliberate exceptions (e.g. the wall-clock
timestamp stamped into bench *metadata*).
"""

from __future__ import annotations

import ast
import os
import re
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.analysis.diagnostics import (
    Diagnostic,
    DiagnosticReport,
    Severity,
    Site,
)

__all__ = ["selfcheck_source", "selfcheck_paths", "FEATURE_ATTRS",
           "CACHE_PARAM_ALLOWLIST"]

#: Machine attributes that are None on the clean path (see machine.py).
FEATURE_ATTRS = frozenset({"faults", "relayout", "tracer", "interference"})

#: Parameters that deliberately never enter a cache key: cache plumbing
#: itself, UI callbacks, and worker-crash injection (which only kills
#: workers mid-run and must never change a *result*, so keying on it
#: would split the cache for identical outputs).
CACHE_PARAM_ALLOWLIST = frozenset({
    "self", "cls", "use_cache", "cache_dir", "cache", "crash",
    "progress", "notify", "jobs", "builder",
})

_WALLCLOCK = frozenset({
    "time.time", "time.time_ns", "time.ctime", "time.asctime",
    "time.localtime", "time.gmtime", "time.strftime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

_NUMPY_LEGACY_RNG = frozenset({
    "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "shuffle", "permutation", "choice", "seed",
    "standard_normal", "uniform", "normal", "bytes",
})

_FS_LISTING_METHODS = frozenset({"iterdir", "glob", "rglob"})
_FS_LISTING_FUNCS = frozenset({"os.listdir", "os.scandir"})

#: Callables whose result does not depend on argument order.
_ORDER_INSENSITIVE = frozenset({
    "sorted", "sum", "min", "max", "any", "all", "len", "set",
    "frozenset", "dict",
})

#: Callables that materialize their argument's order into a sequence.
_ORDER_MATERIALIZING = frozenset({"list", "tuple", "enumerate", "reversed"})

_PRAGMA_RE = re.compile(r"#\s*afflint:\s*allow\(([A-Z0-9,\s]+)\)")


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` -> ``"a.b.c"`` for pure Name/Attribute chains."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return f"{base}.{node.attr}" if base else None
    return None


class _ModuleContext:
    """Shared per-file state: source lines, pragmas, import aliases."""

    def __init__(self, source: str, filename: str, tree: ast.Module):
        self.filename = filename
        self.lines = source.splitlines()
        self.imports: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.imports[alias.asname or alias.name.split(".")[0]] \
                        = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module \
                    and node.level == 0:
                for alias in node.names:
                    self.imports[alias.asname or alias.name] \
                        = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Dotted call target with the leading alias import-resolved."""
        dotted = _dotted(node)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        full = self.imports.get(head, head)
        return f"{full}.{rest}" if rest else full

    def allowed(self, code: str, lineno: int) -> bool:
        if not (1 <= lineno <= len(self.lines)):
            return False
        m = _PRAGMA_RE.search(self.lines[lineno - 1])
        if not m:
            return False
        return code in {c.strip() for c in m.group(1).split(",")}


def _add(report: DiagnosticReport, ctx: _ModuleContext, code: str,
         severity: Severity, node: ast.AST, message: str, fix: str,
         detail: str = "") -> None:
    lineno = getattr(node, "lineno", 0)
    if ctx.allowed(code, lineno):
        return
    report.add(Diagnostic(
        code, severity,
        Site("file", ctx.filename, detail=detail,
             file=ctx.filename, line=lineno),
        message, fix_hint=fix))


# ----------------------------------------------------------------------
# DET001 — unseeded randomness / wallclock
# ----------------------------------------------------------------------
def _check_det001(tree: ast.Module, ctx: _ModuleContext,
                  report: DiagnosticReport) -> None:
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random":
                    _add(report, ctx, "DET001", Severity.ERROR, node,
                         "stdlib random imported; its module-level RNG is "
                         "process-global and unseeded",
                         "use a seeded numpy Generator "
                         "(np.random.default_rng(seed)) threaded from the "
                         "run's seed")
        elif isinstance(node, ast.ImportFrom):
            if node.module == "random" and node.level == 0:
                _add(report, ctx, "DET001", Severity.ERROR, node,
                     "stdlib random imported; its module-level RNG is "
                     "process-global and unseeded",
                     "use a seeded numpy Generator threaded from the "
                     "run's seed")
        elif isinstance(node, ast.Call):
            target = ctx.resolve(node.func)
            if target is None:
                continue
            if target in _WALLCLOCK:
                _add(report, ctx, "DET001", Severity.ERROR, node,
                     f"wall-clock read {target}() can reach results or "
                     "logs; repeated runs would differ",
                     "derive timestamps from the run seed or virtual "
                     "time, or keep wall time out of result artifacts "
                     "(monotonic timers are fine for wall_s)")
            elif target.startswith("random."):
                _add(report, ctx, "DET001", Severity.ERROR, node,
                     f"{target}() draws from the process-global stdlib "
                     "RNG",
                     "use a seeded numpy Generator threaded from the "
                     "run's seed")
            elif (target.startswith("numpy.random.")
                    and target.rsplit(".", 1)[1] in _NUMPY_LEGACY_RNG):
                _add(report, ctx, "DET001", Severity.ERROR, node,
                     f"{target}() uses numpy's legacy global RNG state",
                     "use a seeded Generator: "
                     "np.random.default_rng(seed)")
            elif (target.rsplit(".", 1)[-1] == "default_rng"
                    and not node.args and not node.keywords):
                _add(report, ctx, "DET001", Severity.ERROR, node,
                     "default_rng() without a seed draws OS entropy",
                     "pass the run's seed: default_rng(seed)")


# ----------------------------------------------------------------------
# DET002 — unordered iteration
# ----------------------------------------------------------------------
def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset"))


def _scope_nodes(scope: ast.AST):
    """Every node of ``scope``'s body without descending into nested
    scopes (functions, lambdas, classes)."""
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda, ast.ClassDef)):
            stack.extend(ast.iter_child_nodes(node))


def _set_variables(scope: ast.AST) -> Set[str]:
    """Names that are only ever bound to set values within ``scope``."""
    is_set: Dict[str, bool] = {}

    def note(name: str, setness: bool) -> None:
        is_set[name] = is_set.get(name, True) and setness

    for node in _scope_nodes(scope):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    note(target.id, _is_set_expr(node.value))
                else:  # tuple targets etc.: unknown value shapes
                    for n in ast.walk(target):
                        if isinstance(n, ast.Name):
                            note(n.id, False)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if isinstance(node.target, ast.Name):
                note(node.target.id, _is_set_expr(node.value))
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            for n in ast.walk(node.target):
                if isinstance(n, ast.Name):
                    note(n.id, False)
        elif isinstance(node, ast.comprehension):
            for n in ast.walk(node.target):
                if isinstance(n, ast.Name):
                    note(n.id, False)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    for n in ast.walk(item.optional_vars):
                        if isinstance(n, ast.Name):
                            note(n.id, False)
        # AugAssign (s |= other) preserves set-ness: not an invalidation.
    return {name for name, setness in is_set.items() if setness}


def _unordered_source(node: ast.AST, ctx: _ModuleContext,
                      set_vars: Set[str]) -> Optional[str]:
    """Why ``node``'s iteration order is unstable, or None."""
    if _is_set_expr(node):
        return "set iteration order is hash-dependent"
    if isinstance(node, ast.Name) and node.id in set_vars:
        return (f"{node.id!r} is a set; its iteration order is "
                "hash-dependent")
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Attribute) \
                and node.func.attr in _FS_LISTING_METHODS:
            return (f".{node.func.attr}() yields filesystem order, "
                    "which varies across machines")
        target = ctx.resolve(node.func)
        if target in _FS_LISTING_FUNCS:
            return (f"{target}() yields filesystem order, which varies "
                    "across machines")
    return None


def _check_det002(tree: ast.Module, ctx: _ModuleContext,
                  report: DiagnosticReport) -> None:
    # Iterations that are the direct argument of an order-insensitive
    # reducer are fine; remember those call sites to exempt them.
    exempt: Set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                and node.func.id in _ORDER_INSENSITIVE:
            for arg in node.args:
                exempt.add(id(arg))
                if isinstance(arg, (ast.GeneratorExp, ast.ListComp)):
                    for gen in arg.generators:
                        exempt.add(id(gen.iter))

    scopes = [tree] + [n for n in ast.walk(tree)
                       if isinstance(n, (ast.FunctionDef,
                                         ast.AsyncFunctionDef,
                                         ast.ClassDef))]
    for scope in scopes:
        set_vars = _set_variables(scope)

        def flag(iter_node: ast.AST, where: ast.AST, what: str) -> None:
            reason = _unordered_source(iter_node, ctx, set_vars)
            if reason is None or id(iter_node) in exempt:
                return
            _add(report, ctx, "DET002", Severity.WARNING, where,
                 f"{what} over an unordered source: {reason}; the order "
                 "can leak into results or merged logs",
                 "wrap the source in sorted(...) with a total key")

        for node in _scope_nodes(scope):
            if isinstance(node, ast.For):
                flag(node.iter, node, "for-loop")
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp,
                                   ast.DictComp, ast.SetComp)):
                if isinstance(node, ast.SetComp) or id(node) in exempt:
                    continue  # building a set loses order anyway
                for gen in node.generators:
                    flag(gen.iter, node, "comprehension")
            elif isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Name) \
                        and func.id in _ORDER_MATERIALIZING and node.args:
                    flag(node.args[0], node, f"{func.id}(...)")
                elif isinstance(func, ast.Attribute) \
                        and func.attr in ("extend", "join") and node.args:
                    flag(node.args[0], node, f".{func.attr}(...)")


# ----------------------------------------------------------------------
# GRD001 — clean-path guard discipline
# ----------------------------------------------------------------------
_GuardSet = FrozenSet[str]


def _feature_expr_key(node: ast.AST, taints: Dict[str, str],
                      ) -> Optional[str]:
    """Guard-state key if ``node`` evaluates to a feature-state value."""
    if isinstance(node, ast.Attribute) and node.attr in FEATURE_ATTRS:
        dotted = _dotted(node)
        if dotted is not None and "." in dotted:
            return dotted
    if isinstance(node, ast.Name) and node.id in taints:
        return node.id
    return None


def _test_guards(test: ast.AST, taints: Dict[str, str],
                 positive: bool) -> Set[str]:
    """Keys known non-None when ``test`` is True (positive) / False."""
    out: Set[str] = set()
    if isinstance(test, ast.Compare) and len(test.ops) == 1 \
            and isinstance(test.comparators[0], ast.Constant) \
            and test.comparators[0].value is None:
        key = _feature_expr_key(test.left, taints)
        if key is not None:
            if positive and isinstance(test.ops[0], ast.IsNot):
                out.add(key)
            elif not positive and isinstance(test.ops[0], ast.Is):
                out.add(key)
    elif isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        out |= _test_guards(test.operand, taints, not positive)
    elif isinstance(test, ast.BoolOp):
        if positive and isinstance(test.op, ast.And):
            for v in test.values:
                out |= _test_guards(v, taints, True)
        elif not positive and isinstance(test.op, ast.Or):
            for v in test.values:
                out |= _test_guards(v, taints, False)
    elif positive:
        key = _feature_expr_key(test, taints)
        if key is not None:
            out.add(key)  # truthiness: `if machine.tracer:` / `if st:`
    return out


class _GuardChecker:
    """Flow-sensitive (per straight-line block + branches) GRD001 pass."""

    def __init__(self, ctx: _ModuleContext, report: DiagnosticReport):
        self.ctx = ctx
        self.report = report

    # -- expression side -------------------------------------------------
    def _check_expr(self, node: Optional[ast.AST], guarded: _GuardSet,
                    taints: Dict[str, str]) -> None:
        if node is None:
            return
        if isinstance(node, ast.BoolOp):
            acc = set(guarded)
            for value in node.values:
                self._check_expr(value, frozenset(acc), taints)
                if isinstance(node.op, ast.And):
                    acc |= _test_guards(value, taints, True)
                else:
                    acc |= _test_guards(value, taints, False)
            return
        if isinstance(node, ast.IfExp):
            self._check_expr(node.test, guarded, taints)
            pos = _test_guards(node.test, taints, True)
            neg = _test_guards(node.test, taints, False)
            self._check_expr(node.body, guarded | pos, taints)
            self._check_expr(node.orelse, guarded | neg, taints)
            return
        if isinstance(node, ast.Attribute):
            key = _feature_expr_key(node.value, taints)
            if key is not None and key not in guarded:
                pretty = _dotted(node.value) or key
                self._flag(node, pretty)
            self._check_expr(node.value, guarded, taints)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            return  # separate scope; functions are checked independently
        for child in ast.iter_child_nodes(node):
            self._check_expr(child, guarded, taints)

    def _flag(self, node: ast.AST, expr: str) -> None:
        _add(self.report, self.ctx, "GRD001", Severity.ERROR, node,
             f"use of feature state {expr!r} is not dominated by an "
             "is-None guard; on the clean path this attribute is None "
             "and the access raises",
             "alias and guard: `st = ...; if st is not None: st.use()` "
             "(see machine.py's clean-path contract)")

    # -- statement side --------------------------------------------------
    def check_body(self, stmts: Sequence[ast.stmt]) -> None:
        self._block(stmts, frozenset(), {})

    def _block(self, stmts: Sequence[ast.stmt], guarded: _GuardSet,
               taints: Dict[str, str]) -> Tuple[_GuardSet, bool]:
        for stmt in stmts:
            guarded, terminated = self._stmt(stmt, guarded, taints)
            if terminated:
                return guarded, True
        return guarded, False

    def _invalidate(self, name: str, guarded: _GuardSet,
                    taints: Dict[str, str]) -> _GuardSet:
        taints.pop(name, None)
        return guarded - {name}

    def _stmt(self, stmt: ast.stmt, guarded: _GuardSet,
              taints: Dict[str, str]) -> Tuple[_GuardSet, bool]:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            checker = _GuardChecker(self.ctx, self.report)
            checker.check_body(stmt.body)
            return guarded, False
        if isinstance(stmt, ast.ClassDef):
            for sub in stmt.body:
                guarded_cls, _ = self._stmt(sub, frozenset(), {})
            return guarded, False
        if isinstance(stmt, ast.Assign):
            self._check_expr(stmt.value, guarded, taints)
            for target in stmt.targets:
                guarded = self._assign(target, stmt.value, guarded, taints)
            return guarded, False
        if isinstance(stmt, ast.AnnAssign):
            self._check_expr(stmt.value, guarded, taints)
            if stmt.value is not None:
                guarded = self._assign(stmt.target, stmt.value, guarded,
                                       taints)
            return guarded, False
        if isinstance(stmt, ast.AugAssign):
            self._check_expr(stmt.value, guarded, taints)
            if isinstance(stmt.target, ast.Name):
                guarded = self._invalidate(stmt.target.id, guarded, taints)
            return guarded, False
        if isinstance(stmt, ast.Assert):
            self._check_expr(stmt.test, guarded, taints)
            return guarded | _test_guards(stmt.test, taints, True), False
        if isinstance(stmt, ast.If):
            self._check_expr(stmt.test, guarded, taints)
            pos = _test_guards(stmt.test, taints, True)
            neg = _test_guards(stmt.test, taints, False)
            body_taints = dict(taints)
            body_out, body_term = self._block(stmt.body, guarded | pos,
                                              body_taints)
            else_taints = dict(taints)
            else_out, else_term = self._block(stmt.orelse, guarded | neg,
                                              else_taints)
            taints.update(body_taints)
            taints.update(else_taints)
            if body_term and else_term:
                return guarded, True
            if body_term:
                return else_out, False
            if else_term:
                return body_out, False
            return body_out & else_out, False
        if isinstance(stmt, (ast.While,)):
            self._check_expr(stmt.test, guarded, taints)
            pos = _test_guards(stmt.test, taints, True)
            self._block(stmt.body, guarded | pos, dict(taints))
            self._block(stmt.orelse, guarded, dict(taints))
            return guarded, False
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._check_expr(stmt.iter, guarded, taints)
            if isinstance(stmt.target, ast.Name):
                guarded = self._invalidate(stmt.target.id, guarded, taints)
            self._block(stmt.body, guarded, dict(taints))
            self._block(stmt.orelse, guarded, dict(taints))
            return guarded, False
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._check_expr(item.context_expr, guarded, taints)
            return self._block(stmt.body, guarded, taints)
        if isinstance(stmt, ast.Try):
            self._block(stmt.body, guarded, dict(taints))
            for handler in stmt.handlers:
                self._block(handler.body, guarded, dict(taints))
            self._block(stmt.orelse, guarded, dict(taints))
            out, term = self._block(stmt.finalbody, guarded, taints)
            return out, term
        if isinstance(stmt, ast.Return):
            self._check_expr(stmt.value, guarded, taints)
            return guarded, True
        if isinstance(stmt, ast.Raise):
            self._check_expr(stmt.exc, guarded, taints)
            return guarded, True
        if isinstance(stmt, (ast.Break, ast.Continue)):
            return guarded, True
        if isinstance(stmt, (ast.Expr, ast.Delete)):
            for child in ast.iter_child_nodes(stmt):
                self._check_expr(child, guarded, taints)
            return guarded, False
        for child in ast.iter_child_nodes(stmt):
            self._check_expr(child, guarded, taints)
        return guarded, False

    def _assign(self, target: ast.AST, value: ast.AST, guarded: _GuardSet,
                taints: Dict[str, str]) -> _GuardSet:
        if not isinstance(target, ast.Name):
            if isinstance(target, (ast.Tuple, ast.List)):
                for elt in target.elts:
                    guarded = self._assign(elt, value, guarded, taints)
            return guarded
        name = target.id
        guarded = self._invalidate(name, guarded, taints)
        key = _feature_expr_key(value, taints)
        if key is not None:
            # Alias of feature state (directly or via another alias):
            # tainted until guarded.  If the source was already guarded,
            # the alias inherits that knowledge.
            taints[name] = key if "." in key else taints.get(key, key)
            if key in guarded or (isinstance(value, ast.Name)
                                  and value.id in guarded):
                guarded = guarded | {name}
        return guarded


def _check_grd001(tree: ast.Module, ctx: _ModuleContext,
                  report: DiagnosticReport) -> None:
    _GuardChecker(ctx, report).check_body(tree.body)


# ----------------------------------------------------------------------
# GRD002 — cache-key digest completeness
# ----------------------------------------------------------------------
def _check_grd002(tree: ast.Module, ctx: _ModuleContext,
                  report: DiagnosticReport) -> None:
    # The module *defining* the key function is cache plumbing, not a
    # consumer; its helpers forward **params wholesale.
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                and node.name == "cache_key":
            return

    for fn in ast.walk(tree):
        if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        calls = [node for node in ast.walk(fn)
                 if isinstance(node, ast.Call)
                 and _dotted(node.func) is not None
                 and _dotted(node.func).rsplit(".", 1)[-1] == "cache_key"]
        if not calls:
            continue

        covered: Set[str] = set()
        splat_dicts: Set[str] = set()
        for call in calls:
            for arg in call.args:
                covered |= {n.id for n in ast.walk(arg)
                            if isinstance(n, ast.Name)}
            for kw in call.keywords:
                if kw.arg is None and isinstance(kw.value, ast.Name):
                    splat_dicts.add(kw.value.id)
                else:
                    covered |= {n.id for n in ast.walk(kw.value)
                                if isinstance(n, ast.Name)}
        # Anything assigned into a splatted dict feeds the key too.
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    feeds = (
                        isinstance(target, ast.Name)
                        and target.id in splat_dicts
                    ) or (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Name)
                        and target.value.id in splat_dicts
                    )
                    if feeds:
                        covered |= {n.id for n in ast.walk(node.value)
                                    if isinstance(n, ast.Name)}
            elif isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr == "update" \
                    and isinstance(node.func.value, ast.Name) \
                    and node.func.value.id in splat_dicts:
                for n in ast.walk(node):
                    if isinstance(n, ast.Name):
                        covered.add(n.id)

        args = fn.args
        params = [a.arg for a in
                  (*args.posonlyargs, *args.args, *args.kwonlyargs)]
        for param in params:
            if param in covered or param in CACHE_PARAM_ALLOWLIST:
                continue
            _add(report, ctx, "GRD002", Severity.ERROR, fn,
                 f"parameter {param!r} of {fn.name}() never flows into "
                 "its cache key; two calls differing only in this "
                 "parameter would collide on one cache entry",
                 "fold the parameter (or a digest of it) into the "
                 "key-field dict, or allowlist it if it provably cannot "
                 "change results", detail=fn.name)


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def selfcheck_source(source: str, filename: str) -> DiagnosticReport:
    """Run every DET/GRD pass over one module's source text."""
    report = DiagnosticReport()
    tree = ast.parse(source, filename=filename)
    ctx = _ModuleContext(source, filename, tree)
    _check_det001(tree, ctx, report)
    _check_det002(tree, ctx, report)
    _check_grd001(tree, ctx, report)
    _check_grd002(tree, ctx, report)
    return report


def selfcheck_paths(paths: Sequence[os.PathLike],
                    base: Optional[Path] = None) -> DiagnosticReport:
    """Sanitize every ``.py`` file under ``paths`` (files or trees).

    Files are visited in sorted path order so reports are stable, and
    sites are rendered relative to ``base`` (default: the current
    directory) so output does not depend on where the tree is mounted.
    """
    files: List[Path] = []
    for p in paths:
        path = Path(p)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    report = DiagnosticReport()
    root = base if base is not None else Path.cwd()
    for path in files:
        try:
            rel = os.path.relpath(path, root)
        except ValueError:  # different drive (Windows)
            rel = str(path)
        report.extend(selfcheck_source(path.read_text(encoding="utf-8"),
                                       rel.replace(os.sep, "/")))
    return report
