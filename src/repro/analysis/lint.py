"""The afflint orchestrator and CLI (``python -m repro lint``).

A :class:`LintSession` is the analysis-time analogue of a run context:
it owns a machine and a *recording* allocator (``record_events=True``),
and fixtures/workloads register layout plans and kernels against it.
:func:`run_passes` then drives all four passes and merges their findings
into one deduplicated :class:`DiagnosticReport`:

1. constraint linting of every registered plan (+ allocator state),
2. lifetime checking of the allocator's event trace,
3. stream-graph hazard detection per kernel,
4. static coverage estimation per kernel (and per plan, as notes).

The CLI lints the shipped workloads' layout plans by default, or fixture
files (modules defining ``build(session)``) when paths are given.  Two
further modes cover the v2 passes:

* ``--plans SPEC`` runs the cross-plan interference analyzer
  (:mod:`repro.analysis.interference`) over a *set* of tenants — either
  comma-separated shipped workload names or a fixture module defining
  ``tenants()`` (and optionally ``config()``) — emitting INT001-INT004,
  plus INT005 under ``--verify-traffic`` (predictions held to measured
  counters).
* ``--self [PATHS]`` runs the determinism/guard sanitizer
  (:mod:`repro.analysis.selfcheck`) over this repository's own source
  (default: the installed ``repro`` package), emitting DET/GRD codes.

``--format text|json|github`` selects the output encoding in every
mode (see :mod:`repro.analysis.format`).
"""

from __future__ import annotations

import argparse
import importlib.util
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.analysis import constraints, coverage, hazards, lifetime
from repro.analysis.diagnostics import DiagnosticReport
from repro.analysis.plan import LayoutPlan
from repro.config import DEFAULT_CONFIG, SystemConfig
from repro.core.runtime import AffinityAllocator
from repro.machine import Machine

__all__ = ["LintSession", "LintResult", "run_passes", "lint_fixture_file",
           "lint_workload_plans", "load_tenant_fixture", "cli"]


class LintSession:
    """Analysis-time context fixtures and workloads lint against."""

    def __init__(self, config: SystemConfig = DEFAULT_CONFIG,
                 strict: bool = False, seed: int = 0):
        self.machine = Machine(config, seed=seed)
        self.allocator = AffinityAllocator(self.machine, strict=strict,
                                           record_events=True)
        self.plans: List[LayoutPlan] = []
        self.kernels: List[object] = []
        #: Set False when leaked allocations at session end are expected.
        self.expect_clean_exit = True

    # Convenience alias so fixtures read like workload code.
    @property
    def alloc(self) -> AffinityAllocator:
        return self.allocator

    def add_plan(self, plan: LayoutPlan) -> LayoutPlan:
        self.plans.append(plan)
        return plan

    def add_kernel(self, kernel) -> object:
        """Register a kernel (KernelBuilder or CompiledKernel).

        Registration counts as a *use* of every array the kernel touches,
        so freeing an array before registering a kernel over it is a
        use-after-free (LIF003).
        """
        builder = getattr(kernel, "builder", kernel)
        if builder is not None and hasattr(builder, "accesses"):
            for acc in builder.accesses():
                vaddr = getattr(acc.handle, "vaddr", None)
                if vaddr is not None:
                    self.allocator.record_use(
                        int(vaddr), getattr(acc.handle, "name", acc.name))
        self.kernels.append(kernel)
        return kernel

    def use(self, handle) -> None:
        """Explicitly mark a handle/address as referenced."""
        vaddr = getattr(handle, "vaddr", handle)
        self.allocator.record_use(int(vaddr),
                                  getattr(handle, "name", ""))


@dataclass
class LintResult:
    """Merged findings plus the per-kernel coverage reports."""

    report: DiagnosticReport
    coverages: List[coverage.KernelCoverage] = field(default_factory=list)

    def render(self) -> str:
        parts = [c.render() for c in self.coverages]
        parts.append(self.report.render())
        return "\n\n".join(parts)


def _merge(target: DiagnosticReport, source: DiagnosticReport,
           seen: set) -> None:
    for d in source:
        key = (d.code, str(d.site), d.message)
        if key in seen:
            continue
        seen.add(key)
        target.add(d)


def run_passes(session: LintSession) -> LintResult:
    """Drive all four afflint passes over one session."""
    merged = DiagnosticReport()
    seen: set = set()
    coverages: List[coverage.KernelCoverage] = []

    for plan in session.plans:
        plan_report, layouts = constraints.lint_plan(plan, session.machine)
        _merge(merged, plan_report, seen)
        cov_report, _frac = coverage.estimate_plan_coverage(
            plan, layouts, session.machine)
        _merge(merged, cov_report, seen)

    _merge(merged, constraints.lint_allocator(session.allocator), seen)

    events = session.allocator.events or []
    _merge(merged,
           lifetime.check_lifetime(events, session.expect_clean_exit),
           seen)

    for kernel in session.kernels:
        graph = getattr(kernel, "graph", None)
        name = getattr(kernel, "name", "")
        if graph is not None:
            _merge(merged, hazards.check_graph(graph, name), seen)
        builder = getattr(kernel, "builder", kernel)
        if builder is not None and hasattr(builder, "accesses"):
            if graph is None:
                from repro.nsc.compiler import _build_graph
                _merge(merged,
                       hazards.check_graph(_build_graph(builder),
                                           builder.name), seen)
            cov = coverage.estimate_kernel_coverage(builder, session.machine)
            coverages.append(cov)
            _merge(merged, cov.diagnostics(session.machine), seen)
    return LintResult(merged, coverages)


def lint_fixture_file(path, strict: bool = False,
                      config: SystemConfig = DEFAULT_CONFIG) -> LintResult:
    """Lint one fixture module (must define ``build(session)``)."""
    path = Path(path)
    module = _load_fixture_module(path, "lint_fixture")
    build = getattr(module, "build", None)
    if build is None:
        raise ImportError(f"fixture {path} defines no build(session)")
    session = LintSession(config, strict=strict)
    build(session)
    return run_passes(session)


def lint_workload_plans(scale: float = 0.12,
                        config: SystemConfig = DEFAULT_CONFIG,
                        ) -> Tuple[LintResult, Dict[str, DiagnosticReport]]:
    """Lint the layout plan of every shipped workload that declares one."""
    from repro.workloads import WORKLOADS

    session = LintSession(config)
    per_workload: Dict[str, DiagnosticReport] = {}
    for name in sorted(WORKLOADS):
        plan = WORKLOADS[name].layout_plan(scale)
        if plan is None:
            continue
        report, layouts = constraints.lint_plan(plan, session.machine)
        cov_report, _ = coverage.estimate_plan_coverage(
            plan, layouts, session.machine)
        report.extend(cov_report)
        per_workload[name] = report
        session.add_plan(plan)
    result = run_passes(session)
    return result, per_workload


def _load_fixture_module(path: Path, prefix: str):
    spec = importlib.util.spec_from_file_location(
        f"{prefix}_{path.stem}", path)
    if spec is None or spec.loader is None:
        raise ImportError(f"cannot load fixture {path}")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def load_tenant_fixture(path) -> Tuple[list, Machine]:
    """Load a tenant-set fixture: a module defining ``tenants()`` (a
    list of :class:`~repro.analysis.interference.Tenant`) and optionally
    ``config()`` (a :class:`SystemConfig` for the shared machine)."""
    path = Path(path)
    module = _load_fixture_module(path, "tenant_fixture")
    tenants_fn = getattr(module, "tenants", None)
    if tenants_fn is None:
        raise ImportError(f"tenant fixture {path} defines no tenants()")
    config_fn = getattr(module, "config", None)
    config = config_fn() if config_fn is not None else DEFAULT_CONFIG
    return list(tenants_fn()), Machine(config)


def _cli_self(args) -> int:
    from repro.analysis.format import render_report
    from repro.analysis.selfcheck import selfcheck_paths

    if args.paths:
        targets = [Path(p) for p in args.paths]
    else:
        import repro
        targets = [Path(repro.__file__).parent]
    report = selfcheck_paths(targets)
    print(render_report(report, args.format))
    if args.expect_findings:
        return 0 if report.has_findings else 1
    if report.has_errors or (args.strict and report.has_findings):
        return 1
    return 0


def _cli_plans(args) -> int:
    from repro.analysis import interference as itf
    from repro.analysis.format import render_report

    spec = args.plans
    if spec.endswith(".py"):
        if args.verify_traffic:
            print("--verify-traffic needs workload-name tenants (it runs "
                  "the named workloads); got a fixture file")
            return 2
        tenants, machine = load_tenant_fixture(spec)
    else:
        names = [s.strip() for s in spec.split(",") if s.strip()]
        from repro.workloads import WORKLOADS
        unknown = [n for n in names if n not in WORKLOADS]
        if not names or unknown:
            print(f"--plans expects shipped workload names or a .py "
                  f"fixture; unknown: {', '.join(unknown) or '(empty)'}")
            return 2
        tenants = itf.tenants_from_workloads(names, scale=args.scale)
        machine = Machine()

    result = itf.analyze_interference(tenants, machine)
    report = result.report
    rows = []
    if args.verify_traffic:
        vreport, rows = itf.validate_contention(
            tenants, scale=args.scale, seed=args.seed)
        report.extend(vreport)

    if args.format == "text":
        print(result.matrix.render())
        print()
        for row in rows:
            print(f"verify {row.tenant}: access TVD {row.access_tvd:.3f} "
                  f"(tol {itf.ACCESS_SHARE_TOLERANCE}), flit TVD "
                  f"{row.flit_tvd:.3f} (tol {itf.FLIT_SHARE_TOLERANCE})")
        if rows:
            print()
        print(report.render())
    else:
        print(render_report(report, args.format))

    if args.expect_findings:
        return 0 if report.has_findings else 1
    if report.has_errors or (args.strict and report.has_findings):
        return 1
    return 0


def _collect_fixture_paths(paths: List[str]) -> List[Path]:
    out: List[Path] = []
    for p in paths:
        path = Path(p)
        if path.is_dir():
            out.extend(sorted(f for f in path.glob("*.py")
                              if not f.name.startswith("_")))
        else:
            out.append(path)
    return out


def cli(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro lint",
        description="afflint: static affinity/layout analysis.")
    parser.add_argument("paths", nargs="*",
                        help="fixture files or directories; with none "
                             "given, lints every shipped workload's "
                             "layout plan (with --self: source files or "
                             "trees to sanitize)")
    parser.add_argument("--strict", action="store_true",
                        help="exit nonzero on warnings, not just errors")
    parser.add_argument("--self", dest="self_check", action="store_true",
                        help="run the determinism/guard self-sanitizer "
                             "(DET/GRD codes) over the given paths, or "
                             "over the installed repro package when no "
                             "paths are given")
    parser.add_argument("--plans", type=str, default=None,
                        help="cross-plan interference analysis (INT "
                             "codes) over a tenant set: comma-separated "
                             "shipped workload names, or a .py fixture "
                             "defining tenants() and optionally "
                             "config()")
    parser.add_argument("--verify-traffic", action="store_true",
                        help="with --plans over workload names: run the "
                             "workloads and hold the predicted "
                             "contention matrix to the measured-counter "
                             "tolerance contract (INT005 on divergence)")
    parser.add_argument("--format", choices=("text", "json", "github"),
                        default="text",
                        help="output encoding (default text); json is "
                             "the stable afflint-diagnostics/1 schema, "
                             "github emits workflow-command annotations")
    parser.add_argument("--scale", type=float, default=0.12,
                        help="workload scale for plan linting "
                             "(default 0.12)")
    parser.add_argument("--expect-findings", action="store_true",
                        help="invert the exit code: succeed only if "
                             "findings were reported (CI fixture check)")
    parser.add_argument("--fault-log", type=Path, default=None,
                        help="replay a chaos fault event log (JSON from "
                             "python -m repro chaos --save-log) into CHS "
                             "diagnostics; exits nonzero on unhandled "
                             "faults (CHS001)")
    parser.add_argument("--migration-plan", type=Path, default=None,
                        help="replay an autoplace migration plan (JSON "
                             "from python -m repro autoplace --save-plan) "
                             "into RLY diagnostics; exits nonzero on "
                             "unsafe migrations (RLY001/RLY004)")
    from repro.harness.cliutil import add_seed_argument
    add_seed_argument(parser, help_suffix="accepted for CLI uniformity; "
                                          "layout linting is "
                                          "seed-independent")
    args = parser.parse_args(argv)
    from repro.analysis.format import render_report

    if args.self_check and args.plans is not None:
        print("--self and --plans are mutually exclusive")
        return 2

    if args.self_check:
        return _cli_self(args)

    if args.plans is not None:
        return _cli_plans(args)

    if args.verify_traffic:
        print("--verify-traffic requires --plans")
        return 2

    if args.fault_log is not None:
        from repro.faults.log import FaultEventLog
        report = FaultEventLog.load(args.fault_log).to_diagnostics()
        print(render_report(report, args.format))
        if args.expect_findings:
            return 0 if report.has_findings else 1
        return 1 if report.has_errors else 0

    if args.migration_plan is not None:
        from repro.relayout.plan import MigrationPlan
        plan = MigrationPlan.load(args.migration_plan)
        report = plan.to_diagnostics(DEFAULT_CONFIG.num_banks)
        print(render_report(report, args.format))
        if args.expect_findings:
            return 0 if report.has_findings else 1
        return 1 if report.has_errors else 0

    any_findings = False
    any_errors = False
    if args.paths:
        merged = DiagnosticReport()
        for path in _collect_fixture_paths(args.paths):
            result = lint_fixture_file(path)
            if args.format == "text":
                print(f"== {path.name} ==")
                print(result.render())
                print()
            else:
                merged.extend(result.report)
            any_findings |= result.report.has_findings
            any_errors |= result.report.has_errors
        if args.format != "text":
            print(render_report(merged, args.format))
    else:
        result, per_workload = lint_workload_plans(scale=args.scale)
        if args.format == "text":
            for name, report in per_workload.items():
                print(f"{name}: {report.summary()}")
            print()
            print(result.render())
        else:
            print(render_report(result.report, args.format))
        any_findings = result.report.has_findings
        any_errors = result.report.has_errors

    if args.expect_findings:
        return 0 if any_findings else 1
    if any_errors or (args.strict and any_findings):
        return 1
    return 0
