"""``afflint`` — static affinity/layout analysis (``python -m repro lint``).

Four passes over a common typed-diagnostic core:

* :mod:`repro.analysis.constraints` — AFF0xx constraint linting of
  :class:`~repro.core.api.AffineArray` plans and allocator state,
* :mod:`repro.analysis.lifetime` — LIF0xx allocation lifetime checking,
* :mod:`repro.analysis.hazards` — RACE0xx stream-graph hazard detection,
* :mod:`repro.analysis.coverage` — COV0xx static locality estimation.

Only :mod:`repro.analysis.diagnostics` (and the dependency-free
:mod:`repro.analysis.lifetime`) load eagerly: the runtime imports this
package's exception types from deep inside ``core``/``vm``, so pulling in
the passes here (which themselves import ``core``/``nsc``/``workloads``)
would create an import cycle.  The pass modules resolve lazily via
PEP 562 ``__getattr__``.
"""

from __future__ import annotations

import importlib
from typing import Any

from repro.analysis.diagnostics import (  # noqa: F401  (re-exported)
    CODES,
    AffinityError,
    AllocationError,
    AllocationSizeError,
    AffinityCountError,
    Diagnostic,
    DiagnosticReport,
    DoubleFreeError,
    LayoutError,
    LintFailure,
    OversizeError,
    PoolExhaustedError,
    Severity,
    Site,
    UnknownAddressError,
)

__all__ = [
    "CODES",
    "AffinityError",
    "AllocationError",
    "AllocationSizeError",
    "AffinityCountError",
    "Diagnostic",
    "DiagnosticReport",
    "DoubleFreeError",
    "LayoutError",
    "LintFailure",
    "OversizeError",
    "PoolExhaustedError",
    "Severity",
    "Site",
    "UnknownAddressError",
    "constraints",
    "coverage",
    "diagnostics",
    "hazards",
    "lifetime",
    "lint",
    "plan",
]

_LAZY_SUBMODULES = ("constraints", "coverage", "diagnostics", "hazards",
                    "lifetime", "lint", "plan")


def __getattr__(name: str) -> Any:
    if name in _LAZY_SUBMODULES:
        return importlib.import_module(f"repro.analysis.{name}")
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
