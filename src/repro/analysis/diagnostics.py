"""Typed diagnostics and the affinity error hierarchy (afflint core).

Every ``afflint`` pass reports findings as :class:`Diagnostic` values —
a stable machine-readable code, a severity, a :class:`Site` naming the
object the finding is anchored to, a human message, and a fix hint.
Codes are grouped by pass:

* ``AFF0xx`` — constraint linter (alignment / interleave / pool issues),
* ``LIF0xx`` — allocation lifetime checker,
* ``RACE0xx`` — stream-graph hazard detector,
* ``COV0xx`` — static affinity-coverage estimator,
* ``CHS0xx`` — chaos fault-log replay checker,
* ``INT0xx`` — cross-plan (multi-tenant) interference analyzer,
* ``DET0xx`` / ``GRD0xx`` — the self-sanitizer over this repository's
  own source (determinism and clean-path guard discipline).

The module also defines the :class:`AffinityError` exception hierarchy
used by the runtime's error paths.  Every class subclasses
:class:`ValueError` so pre-existing ``except ValueError`` callers keep
working, while the linter and new callers can discriminate precisely.

This module deliberately imports nothing from the rest of :mod:`repro`,
so any layer (``core``, ``vm``, ``nsc``, ``harness``) may depend on it
without cycles.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional

__all__ = [
    "Severity",
    "Site",
    "Diagnostic",
    "DiagnosticReport",
    "CODES",
    "AffinityError",
    "LayoutError",
    "AllocationError",
    "AllocationSizeError",
    "AffinityCountError",
    "OversizeError",
    "PoolExhaustedError",
    "DoubleFreeError",
    "UnknownAddressError",
    "LintFailure",
    "TopologyError",
    "NoHealthyBankError",
    "WorkerCrashError",
]


class Severity(enum.IntEnum):
    """Ordered severity; comparisons follow the obvious order."""

    NOTE = 0
    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Site:
    """Where a diagnostic is anchored.

    Attributes:
        kind: object class — ``"array"``, ``"alloc"``, ``"stream"``,
            ``"kernel"``, ``"pool"``, ``"plan"``, ``"tenant"``,
            ``"bank"``, or ``"file"``.
        name: the object's name (array/stream/kernel name, pool size,
            or a formatted address for anonymous allocations).
        detail: optional extra location context (e.g. owning kernel).
        file: source path, for diagnostics anchored to code (the
            self-sanitizer); empty for runtime-object sites.
        line: 1-based source line when ``file`` is set, else 0.
    """

    kind: str
    name: str
    detail: str = ""
    file: str = ""
    line: int = 0

    def __str__(self) -> str:
        if self.file:
            base = f"{self.file}:{self.line}"
            return f"{base} ({self.detail})" if self.detail else base
        base = f"{self.kind} {self.name!r}"
        return f"{base} ({self.detail})" if self.detail else base

    def to_dict(self) -> Dict[str, object]:
        """Stable machine-readable form (one key per field, always)."""
        return {"kind": self.kind, "name": self.name, "detail": self.detail,
                "file": self.file, "line": self.line}


#: Registry of every diagnostic code afflint can emit.
CODES: Dict[str, str] = {
    # Constraint linter -------------------------------------------------
    "AFF001": "unsatisfiable alignment constraint (Eq. 2/3 has no layout)",
    "AFF002": "broken inter-array alignment chain (unknown, forward, or "
              "fallback target)",
    "AFF003": "partition vs. alignment conflict in one spec",
    "AFF004": "required interleaving has no backing InterleavePool",
    "AFF005": "forced element padding wastes space above threshold",
    "AFF006": "predicted demand exhausts an interleave pool reservation",
    # Lifetime checker --------------------------------------------------
    "LIF001": "double free of an affinity allocation",
    "LIF002": "allocation leaked at exit",
    "LIF003": "use after free of an affinity allocation",
    "LIF004": "free of an address that was never allocated",
    # Stream-graph hazards ----------------------------------------------
    "RACE001": "remote-atomic and plain-store streams overlap on one array",
    "RACE002": "read-after-write pair with no dependence edge",
    "RACE003": "write-after-write pair with no dependence edge",
    # Coverage estimator ------------------------------------------------
    "COV001": "predicted bank-local fraction below threshold",
    "COV002": "predicted mean NoC hops per access above threshold",
    # Chaos fault-log replay --------------------------------------------
    "CHS001": "fault event left unhandled (no degradation path fired)",
    "CHS002": "fault handled by a degraded-mode fallback",
    "CHS003": "fault plan event never triggered during the run",
    # Online re-layout plan replay ---------------------------------------
    "RLY001": "migration targets a failed or out-of-range bank",
    "RLY002": "migration applied by the online re-layout engine",
    "RLY003": "migration decision skipped (ineligible or unsafe)",
    "RLY004": "epoch exceeded the plan's max-per-epoch migration bound",
    # Cross-plan interference analyzer -----------------------------------
    "INT001": "conflicting interleave claims exceed the IOT's bank-range "
              "entries",
    "INT002": "aggregate capacity/quota overflow on an interleave pool",
    "INT003": "predicted hot-bank contention across tenant plans",
    "INT004": "tenant placement dilutes another tenant's affinity",
    "INT005": "contention prediction diverges from measured traffic "
              "beyond tolerance",
    # Self-sanitizer: determinism ----------------------------------------
    "DET001": "unseeded randomness or wallclock reachable from "
              "simulation paths",
    "DET002": "unordered set/filesystem iteration feeding results or "
              "merged logs",
    # Self-sanitizer: guard discipline -----------------------------------
    "GRD001": "feature-state attribute access not dominated by an "
              "is-None clean-path guard",
    "GRD002": "cache-key parameter missing from the figure-cache digest",
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding from an afflint pass."""

    code: str
    severity: Severity
    site: Site
    message: str
    fix_hint: str = ""

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise ValueError(f"unknown diagnostic code {self.code!r}")

    def render(self) -> str:
        line = f"{self.code} {self.severity}: {self.site}: {self.message}"
        if self.fix_hint:
            line += f"\n    fix: {self.fix_hint}"
        return line

    def to_dict(self) -> Dict[str, object]:
        """Stable machine-readable form — one object per diagnostic.

        The key set is frozen (schema ``afflint-diagnostics/1``); new
        fields may be added but existing keys never change meaning.
        """
        return {"code": self.code, "severity": str(self.severity),
                "site": self.site.to_dict(), "message": self.message,
                "fix_hint": self.fix_hint}

    def __str__(self) -> str:
        return self.render()


@dataclass
class DiagnosticReport:
    """An ordered collection of diagnostics with summary helpers."""

    diagnostics: List[Diagnostic] = field(default_factory=list)

    def add(self, diag: Diagnostic) -> None:
        self.diagnostics.append(diag)

    def extend(self, diags: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diags)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def by_code(self, code: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    def codes(self) -> List[str]:
        return sorted({d.code for d in self.diagnostics})

    def count(self, severity: Severity) -> int:
        return sum(1 for d in self.diagnostics if d.severity is severity)

    @property
    def has_errors(self) -> bool:
        return any(d.severity is Severity.ERROR for d in self.diagnostics)

    @property
    def has_findings(self) -> bool:
        """True if anything at WARNING or above was reported."""
        return any(d.severity >= Severity.WARNING for d in self.diagnostics)

    def summary(self) -> str:
        return (f"{self.count(Severity.ERROR)} error(s), "
                f"{self.count(Severity.WARNING)} warning(s), "
                f"{self.count(Severity.NOTE)} note(s)")

    def render(self) -> str:
        if not self.diagnostics:
            return "no findings"
        body = "\n".join(d.render() for d in self.diagnostics)
        return f"{body}\n{self.summary()}"


# ----------------------------------------------------------------------
# Exception hierarchy (satellite: typed error paths)
# ----------------------------------------------------------------------
class AffinityError(ValueError):
    """Base of every affinity-runtime error.

    Subclasses :class:`ValueError` for backwards compatibility with the
    runtime's original bare-``ValueError`` error paths.
    """


class LayoutError(AffinityError):
    """An affine spec is malformed or its constraints conflict."""


class AllocationError(AffinityError):
    """An allocation request is invalid."""


class AllocationSizeError(AllocationError):
    """Non-positive (or otherwise nonsensical) allocation size."""


class AffinityCountError(AllocationError):
    """Too many affinity addresses for one irregular allocation."""


class OversizeError(AllocationError):
    """Irregular allocation exceeds the largest valid interleaving."""


class PoolExhaustedError(AffinityError, MemoryError):
    """An interleave pool ran out of its virtual reservation.

    Also a :class:`MemoryError` so callers treating exhaustion as OOM
    keep working.
    """


class DoubleFreeError(AffinityError):
    """``free_aff`` was called twice on the same live allocation."""


class UnknownAddressError(AffinityError):
    """An address handed to ``free_aff``/``realloc_aff`` was never
    allocated (or is not allocatable)."""


class LintFailure(AffinityError):
    """A pre-flight lint stage found error-severity diagnostics."""

    def __init__(self, report: "DiagnosticReport"):
        self.report = report
        super().__init__(f"afflint pre-flight failed: {report.summary()}")


class TopologyError(AffinityError):
    """A topology change would leave the mesh unroutable (e.g. removing
    a link that disconnects a tile)."""


class NoHealthyBankError(AllocationError):
    """Every candidate bank for a placement decision is failed/masked."""


class WorkerCrashError(RuntimeError):
    """An injected runner-worker crash (chaos fault injection).

    Deliberately *not* an :class:`AffinityError`: it models infrastructure
    death, not an allocation problem, and must cross process boundaries
    (it is raised inside pool workers and re-raised in the parent), so it
    keeps a single-string payload to stay picklable.
    """

    def __init__(self, task: str = ""):
        self.task = task
        super().__init__(f"injected worker crash while running {task!r}")
