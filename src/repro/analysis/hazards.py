"""Stream-graph hazard detection (``RACE0xx``).

Offloaded streams of one kernel run concurrently at their banks; only
the dependence edges of the :class:`~repro.nsc.stream.StreamGraph` order
them (paper Fig 2).  Two streams touching the same array with at least
one plain writer and no ordering path between them therefore race:

* RACE001 — a remote atomic and a plain store overlap on one array
  (atomics only commute with other atomics; a concurrent plain store
  makes the combined result order-dependent),
* RACE002 — a read-after-write pair with no dependence edge,
* RACE003 — two plain writers with no dependence edge.

Overlap is judged by handle identity or virtual-range intersection, so
two windows into one array are caught even through distinct handles.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.analysis.diagnostics import (
    Diagnostic,
    DiagnosticReport,
    Severity,
    Site,
)
from repro.nsc.stream import StreamDef, StreamGraph, StreamKind

__all__ = ["check_graph", "check_kernel"]

_PLAIN_WRITERS = {StreamKind.AFFINE_STORE, StreamKind.INDIRECT_STORE}
_WRITERS = _PLAIN_WRITERS | {StreamKind.ATOMIC}
_READERS = {StreamKind.AFFINE_LOAD, StreamKind.INDIRECT_LOAD,
            StreamKind.REDUCE, StreamKind.POINTER_CHASE}


def _reachability(graph: StreamGraph) -> Dict[str, Set[str]]:
    """Transitive closure: name -> set of stream names reachable from it."""
    succ: Dict[str, List[str]] = {s.name: [] for s in graph.streams}
    for dep in graph.deps:
        succ[dep.src].append(dep.dst)
    closure: Dict[str, Set[str]] = {}
    for name in succ:
        seen: Set[str] = set()
        stack = list(succ[name])
        while stack:
            n = stack.pop()
            if n in seen:
                continue
            seen.add(n)
            stack.extend(succ[n])
        closure[name] = seen
    return closure


def _overlaps(a: StreamDef, b: StreamDef) -> bool:
    ha, hb = a.handle, b.handle
    if ha is None or hb is None:
        return False
    if ha is hb:
        return True
    try:
        return (max(ha.vaddr, hb.vaddr)
                < min(ha.end_vaddr, hb.end_vaddr))
    except AttributeError:
        return False  # AddressView-style handles: identity only


def _ordered(closure: Dict[str, Set[str]], a: str, b: str) -> bool:
    return b in closure[a] or a in closure[b]


def check_graph(graph: StreamGraph, kernel_name: str = "") -> DiagnosticReport:
    """Diagnose RACE0xx hazards in one kernel's stream graph."""
    report = DiagnosticReport()
    closure = _reachability(graph)
    streams = graph.streams

    def site(a: StreamDef, b: StreamDef) -> Site:
        return Site("stream", f"{a.name}/{b.name}",
                    detail=f"kernel {kernel_name}" if kernel_name else "")

    for i, a in enumerate(streams):
        for b in streams[i + 1:]:
            if not _overlaps(a, b):
                continue
            a_w, b_w = a.kind in _WRITERS, b.kind in _WRITERS
            if not (a_w or b_w):
                continue  # two readers never conflict
            ordered = _ordered(closure, a.name, b.name)
            array = getattr(a.handle, "name", "") or "array"

            kinds = {a.kind, b.kind}
            if StreamKind.ATOMIC in kinds and kinds & _PLAIN_WRITERS:
                report.add(Diagnostic(
                    "RACE001",
                    Severity.WARNING if ordered else Severity.ERROR,
                    site(a, b),
                    f"remote atomic and plain store both target "
                    f"{array!r}"
                    + ("" if ordered else " with no ordering edge"),
                    fix_hint="make both streams atomic, or add a "
                             "dependence edge serializing them"))
            elif a_w and b_w:
                if kinds == {StreamKind.ATOMIC}:
                    continue  # atomics commute with atomics
                if not ordered:
                    report.add(Diagnostic(
                        "RACE003", Severity.WARNING, site(a, b),
                        f"two writers target {array!r} with no "
                        "ordering edge",
                        fix_hint="add a dependence edge, or split the "
                                 "writes across disjoint ranges"))
            else:
                if not ordered:
                    writer, reader = (a, b) if a_w else (b, a)
                    report.add(Diagnostic(
                        "RACE002", Severity.ERROR, site(a, b),
                        f"{reader.name!r} reads {array!r} while "
                        f"{writer.name!r} writes it, with no dependence "
                        "edge between them",
                        fix_hint=f"add a value/address dependence "
                                 f"{writer.name} -> {reader.name} (or "
                                 "split the kernel)"))
    return report


def check_kernel(compiled) -> DiagnosticReport:
    """Convenience wrapper over a :class:`~repro.nsc.compiler.CompiledKernel`."""
    return check_graph(compiled.graph, compiled.name)
