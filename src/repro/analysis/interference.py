"""Cross-plan (multi-tenant) interference analysis (``INT0xx``).

The single-plan linter answers "is this layout plan sound in isolation?".
Production allocation is concurrent: many tenants submit plans against
*one* machine's pools, IOT, and banks, and the failure modes that matter
— CHoNDA-style concurrent-host contention, CODA-style co-location
conflicts — only exist across plan *sets*.  This pass takes a set of
:class:`Tenant` plans, resolves every array with the runtime's own
solver (:func:`~repro.core.affine.solve_affine_layout`, via
:func:`~repro.analysis.constraints.lint_plan`), simulates the irregular
demand through the runtime's own Eq. 4 bank-select policy with one
*shared* load tracker, and diagnoses:

* INT001 — the tenants' distinct interleave claims exceed the IOT's
  bank-range entries, so at least two claims would alias or evict on
  the same bank range (on this architecture compatible claims share an
  entry, so capacity is the only cross-tenant conflict),
* INT002 — aggregate demand across all tenants overflows an interleave
  pool's virtual reservation (or the paged segment), or one tenant's
  demand overflows its declared quota,
* INT003 — predicted hot-bank contention: the aggregate per-bank access
  weight concentrates beyond :data:`HOT_BANK_FACTOR` times the mean on
  a bank that at least two tenants contend for,
* INT004 — affinity dilution: a tenant whose predicted weight
  concentrates on a small *home* bank set (it has real affinity to
  lose) finds those same banks dominated by co-tenant weight, so its
  streams queue behind another tenant's traffic — it is pushed
  off-bank in effect even when no bank is globally hot (INT003's
  absolute criterion can stay silent while one tenant still smothers
  another's home banks),
* INT005 — (validation mode) the predicted contention matrix diverges
  from measured traffic counters beyond the tolerance contract.
* INT006 — (host-injection mode) what an interference run *actually*
  charged diverges from the pure replay of its
  :class:`~repro.interfere.plan.HostTrafficPlan`
  (:func:`~repro.interfere.plan.predict_host_injection`), or re-homing
  failed to conserve the injected access mass
  (:func:`verify_host_injection`).

**Batched Eq. 4 scoring.**  The hop term of Eq. 4 is computed for *all*
tenants at once as one matrix product — every tenant's affine bank
distribution against the all-pairs hop table
(:func:`batched_affinity_hops`) — which is exactly the
score-all-candidates x all-pending-arrays vectorized shape the
ROADMAP's Amdahl-wall item needs.  The sequential part (each placement
shifts the load the next one sees) then reuses the runtime's own
:meth:`~repro.core.policy.HybridPolicy.select_batch` on the stacked
rows, so the simulation *is* the allocator, not a reimplementation.

**Tolerance contract (COV-style).**  Predictions are validated against
runs of the shipped workloads: the predicted per-bank access shares
must match (a) the executor's measured per-bank line-access counters
within :data:`ACCESS_SHARE_TOLERANCE` total-variation distance, and
(b) the :class:`~repro.arch.noc.TrafficAccountant`'s measured per-bank
DATA ejection flits within :data:`FLIT_SHARE_TOLERANCE` (looser: the
ejection ports also carry core-bound responses, which block-distributed
cores spread uniformly).  :func:`validate_contention` emits INT005 when
either bound is exceeded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:
    from repro.interfere.engine import InterferenceState

import numpy as np

from repro.analysis.constraints import lint_plan, plan_pool_demand
from repro.analysis.diagnostics import (
    Diagnostic,
    DiagnosticReport,
    Severity,
    Site,
)
from repro.analysis.plan import LayoutPlan
from repro.config import DEFAULT_CONFIG, SystemConfig
from repro.core.affine import AffineLayout, LayoutKind
from repro.core.load import LoadTracker
from repro.core.policy import HybridPolicy
from repro.machine import Machine
from repro.vm.layout import VirtualLayout

__all__ = [
    "Tenant",
    "ContentionMatrix",
    "InterferenceResult",
    "ValidationRow",
    "batched_affinity_hops",
    "predicted_bank_weights",
    "analyze_interference",
    "tenants_from_workloads",
    "validate_contention",
    "verify_host_injection",
    "HOST_INJECTION_RTOL",
    "HOT_BANK_FACTOR",
    "HOT_SHARE_FLOOR",
    "HOME_MASS_FRACTION",
    "HOME_SET_MAX_FRACTION",
    "DILUTION_DOMINANCE",
    "ACCESS_SHARE_TOLERANCE",
    "FLIT_SHARE_TOLERANCE",
    "MAX_IRREGULAR_UNITS",
]

#: INT003 fires when a bank's aggregate predicted weight exceeds this
#: multiple of the mean bank weight.
HOT_BANK_FACTOR = 3.0

#: ... and at least two tenants each contribute this fraction of the hot
#: bank's weight (a single-tenant hotspot is a COV/AFF finding, not
#: interference).
HOT_SHARE_FLOOR = 0.05

#: INT004's notion of a tenant's *home* banks: the smallest bank set
#: carrying this fraction of the tenant's predicted weight.
HOME_MASS_FRACTION = 0.5

#: A tenant only has affinity to dilute when its home set is small —
#: at most this fraction of the banks.  A tenant spread uniformly has
#: no home banks to be pushed off of.
HOME_SET_MAX_FRACTION = 0.25

#: INT004 fires when co-tenant weight on the victim's home banks
#: exceeds this multiple of the victim's own weight there.
DILUTION_DOMINANCE = 2.0

#: INT005 tolerance: total-variation distance between predicted and
#: measured per-bank shares of executor line accesses.  Predictions are
#: element-granular while the executor counts deduplicated *lines*, so
#: quantization contributes up to ~num_banks / (2 * lines) TVD on small
#: runs; 0.05 covers every shipped workload down to scale 0.05 (measured
#: 0.005-0.027) with real plan drift still well above it.
ACCESS_SHARE_TOLERANCE = 0.05

#: INT005 tolerance against per-bank DATA ejection flits from the
#: TrafficAccountant (looser: ports also carry core-bound responses).
FLIT_SHARE_TOLERANCE = 0.10

#: INT006 tolerance: relative divergence allowed between the engine's
#: injected-traffic ledger and the pure plan replay.  The two walk the
#: identical stream/epoch order with identical arithmetic, so this only
#: absorbs float noise — any modeling drift lands far above it.
HOST_INJECTION_RTOL = 1e-9

#: Per-tenant cap on simulated irregular placement units; demand beyond
#: the cap is coarsened into equal-weight units (Eq. 4 sees the same
#: load *shape*, just fewer decisions).
MAX_IRREGULAR_UNITS = 2048

#: Sampling cap for per-array bank histograms (layouts are periodic;
#: matches the coverage estimator's contract).
_MAX_SAMPLES = 4096


@dataclass(frozen=True)
class Tenant:
    """One tenant's statically declared allocation intent.

    Attributes:
        name: tenant id (workload name, service name, ...).
        plan: the tenant's :class:`~repro.analysis.plan.LayoutPlan`.
        quota_bytes: optional per-tenant demand quota; exceeding it is an
            INT002 error (the allocation-service admission contract).
    """

    name: str
    plan: LayoutPlan
    quota_bytes: Optional[int] = None


@dataclass
class ContentionMatrix:
    """Predicted per-(tenant, bank) access weights.

    ``matrix[t, b]`` is tenant ``t``'s predicted element-access weight
    on bank ``b`` — affine arrays resolved analytically from their
    layouts, irregular demand placed by the shared Eq. 4 simulation.
    """

    tenants: List[str]
    matrix: np.ndarray  # (num_tenants, num_banks), float64

    @property
    def num_banks(self) -> int:
        return int(self.matrix.shape[1])

    def aggregate(self) -> np.ndarray:
        """Total predicted weight per bank across every tenant."""
        return self.matrix.sum(axis=0)

    def shares(self) -> np.ndarray:
        """Per-tenant bank shares (rows sum to 1; zero rows stay zero)."""
        totals = self.matrix.sum(axis=1, keepdims=True)
        safe = np.where(totals > 0, totals, 1.0)
        return self.matrix / safe

    def hot_banks(self, factor: float = HOT_BANK_FACTOR) -> np.ndarray:
        """Bank ids whose aggregate weight exceeds ``factor`` x mean."""
        agg = self.aggregate()
        mean = agg.mean()
        if mean <= 0:
            return np.empty(0, dtype=np.int64)
        return np.flatnonzero(agg > factor * mean).astype(np.int64)

    def render(self) -> str:
        from repro.harness.report import ascii_table
        agg = self.aggregate()
        mean = float(agg.mean())
        rows = []
        for i, name in enumerate(self.tenants):
            w = self.matrix[i]
            total = float(w.sum())
            top = np.argsort(w)[::-1][:3]
            top_s = " ".join(f"b{int(b)}:{w[b] / total:.2f}" for b in top
                             if total > 0 and w[b] > 0)
            rows.append([name, f"{total:,.0f}", top_s or "-"])
        hottest = int(np.argmax(agg)) if agg.size else 0
        ratio = float(agg[hottest] / mean) if mean > 0 else 0.0
        rows.append(["AGGREGATE", f"{float(agg.sum()):,.0f}",
                     f"b{hottest}:{ratio:.2f}x mean"])
        header = "predicted contention matrix (per-tenant bank weights)"
        return header + "\n" + ascii_table(
            ["tenant", "weight", "top banks (share)"], rows)


@dataclass
class InterferenceResult:
    """Everything one :func:`analyze_interference` pass produced."""

    report: DiagnosticReport
    matrix: ContentionMatrix
    #: per-tenant resolved layouts, keyed by tenant name then array name.
    layouts: Dict[str, Dict[str, AffineLayout]]
    #: per-pool aggregate predicted demand in bytes (page-frame demand of
    #: PAGED arrays included under the page-size pool).
    pool_demand: Dict[int, int] = field(default_factory=dict)
    #: mean placement hops per tenant: (solo, contended).
    dilution: Dict[str, Tuple[float, float]] = field(default_factory=dict)

    def render(self) -> str:
        return self.matrix.render() + "\n\n" + self.report.render()


@dataclass(frozen=True)
class ValidationRow:
    """Predicted-vs-measured comparison for one tenant workload."""

    tenant: str
    access_tvd: float   # TVD vs executor per-bank line accesses
    flit_tvd: float     # TVD vs TrafficAccountant per-bank DATA ejection


# ----------------------------------------------------------------------
# Prediction
# ----------------------------------------------------------------------
def _sample_elements(num_elem: int) -> np.ndarray:
    if num_elem <= _MAX_SAMPLES:
        return np.arange(num_elem, dtype=np.int64)
    return np.unique(np.linspace(0, num_elem - 1, _MAX_SAMPLES,
                                 dtype=np.int64))


def predicted_bank_weights(plan: LayoutPlan,
                           layouts: Dict[str, AffineLayout],
                           machine: Machine) -> np.ndarray:
    """Predicted per-bank element-access weight of one plan's *affine*
    arrays (irregular demand is placed by the shared Eq. 4 simulation in
    :func:`analyze_interference`, since its banks depend on co-tenants).

    Pool/paged layouts resolve analytically (Eq. 1: the slot index
    advances by ``stride // intrlv`` per element from ``start_bank``);
    fallback arrays live on the baseline line-interleaved heap and
    spread uniformly.
    """
    nb = machine.num_banks
    weights = np.zeros(nb, dtype=np.float64)
    seen: set = set()
    for pa in plan.arrays:
        if pa.name in seen:
            continue
        seen.add(pa.name)
        layout = layouts.get(pa.name)
        if layout is None:
            continue
        if layout.kind is LayoutKind.FALLBACK:
            weights += pa.num_elem / nb
            continue
        stride = max(layout.stride, pa.elem_size)
        idx = _sample_elements(pa.num_elem)
        banks = (layout.start_bank + (idx * stride) // layout.intrlv) % nb
        hist = np.bincount(banks, minlength=nb).astype(np.float64)
        weights += hist * (pa.num_elem / idx.size)
    return weights


def batched_affinity_hops(weights: np.ndarray, machine: Machine) -> np.ndarray:
    """Mean hop distance from every candidate bank to every tenant's
    affine mass, for all tenants in one vectorized pass.

    Args:
        weights: ``(num_tenants, num_banks)`` affine weight matrix.

    Returns:
        ``(num_tenants, num_banks)`` matrix ``H`` where ``H[t, b]`` is
        the expected Manhattan distance from bank ``b`` to an affinity
        address of tenant ``t`` — the Eq. 4 hop term for every pending
        allocation of every tenant, computed as one matrix product
        against the all-pairs hop table (the batched-scoring shape the
        sequential per-allocation loop is Amdahl-limited by).
    """
    nb = machine.num_banks
    hop_table = machine.mesh.hops_to_all(np.arange(nb, dtype=np.int64))
    hop_table = np.asarray(hop_table, dtype=np.float64).reshape(nb, nb)
    totals = weights.sum(axis=1, keepdims=True)
    shares = np.divide(weights, np.where(totals > 0, totals, 1.0))
    return shares @ hop_table


def _irregular_units(plan: LayoutPlan) -> Tuple[int, float]:
    """(simulated units, weight per unit) for a plan's irregular demand."""
    count = sum(d.count for d in plan.irregular)
    if count <= 0:
        return 0, 0.0
    units = min(count, MAX_IRREGULAR_UNITS)
    return units, count / units


# ----------------------------------------------------------------------
# Analysis
# ----------------------------------------------------------------------
def analyze_interference(tenants: Sequence[Tenant],
                         machine: Optional[Machine] = None,
                         policy_h: float = 5.0) -> InterferenceResult:
    """Resolve a set of tenant plans against one machine and diagnose
    INT001-INT004 (INT005 belongs to :func:`validate_contention`)."""
    machine = machine if machine is not None else Machine()
    nb = machine.num_banks
    report = DiagnosticReport()
    names = [t.name for t in tenants]
    if len(set(names)) != len(names):
        dupes = sorted({n for n in names if names.count(n) > 1})
        for name in dupes:
            report.add(Diagnostic(
                "INT002", Severity.ERROR, Site("tenant", name),
                "duplicate tenant name in the plan set",
                fix_hint="give each tenant a unique name"))
        # Analysis continues; duplicate rows stay distinguishable by index.

    layouts: Dict[str, Dict[str, AffineLayout]] = {}
    affine = np.zeros((len(tenants), nb), dtype=np.float64)
    per_tenant_demand: List[Tuple[Dict[int, int], int]] = []
    for i, tenant in enumerate(tenants):
        plan_report, plan_layouts = lint_plan(tenant.plan, machine)
        layouts[tenant.name] = plan_layouts
        affine[i] = predicted_bank_weights(tenant.plan, plan_layouts, machine)
        per_tenant_demand.append(plan_pool_demand(
            tenant.plan, plan_layouts, machine.pools,
            machine.config.page_size))

    # INT001 — interleave claims vs IOT bank-range entries.  Compatible
    # claims (same interleave) share one entry; distinct interleaves each
    # need their own, and the page pool backs every PAGED chunk.
    claims = sorted({g for demand, _ in per_tenant_demand for g in demand})
    capacity = machine.iot.capacity
    if len(claims) > capacity:
        claimants = sorted({t.name for t, (d, _) in zip(tenants,
                                                        per_tenant_demand)
                            if d})
        report.add(Diagnostic(
            "INT001", Severity.ERROR,
            Site("pool", "iot", detail=f"{len(tenants)} tenants"),
            f"plans claim {len(claims)} distinct interleaves "
            f"({', '.join(f'{g}B' for g in claims)}) but the IOT holds "
            f"{capacity} bank-range entries; at least two claims would "
            f"alias on the same range (tenants: {', '.join(claimants)})",
            fix_hint="consolidate tenants onto shared interleavings or "
                     "provision more IOT entries"))

    # INT002 — aggregate pool/paged overflow and per-tenant quotas.
    pool_total: Dict[int, int] = {}
    paged_total = 0
    for (demand, paged) in per_tenant_demand:
        for g, b in demand.items():
            pool_total[g] = pool_total.get(g, 0) + b
        paged_total += paged
    for g, total in sorted(pool_total.items()):
        if total > VirtualLayout.POOL_STRIDE:
            contributors = sorted(
                (t.name for t, (d, _) in zip(tenants, per_tenant_demand)
                 if d.get(g, 0) > 0))
            report.add(Diagnostic(
                "INT002", Severity.ERROR,
                Site("pool", f"{g}B", detail=f"{len(contributors)} tenants"),
                f"aggregate demand {total / 2**40:.2f} TiB exceeds the "
                f"{VirtualLayout.POOL_STRIDE / 2**40:.0f} TiB reservation "
                f"(tenants: {', '.join(contributors)})",
                fix_hint="admission control must reject or queue part of "
                         "this plan set"))
    if paged_total > VirtualLayout.PAGED_SIZE:
        report.add(Diagnostic(
            "INT002", Severity.ERROR, Site("pool", "paged-segment"),
            f"aggregate paged demand {paged_total / 2**40:.2f} TiB "
            f"exceeds the {VirtualLayout.PAGED_SIZE / 2**40:.0f} TiB "
            "segment",
            fix_hint="shrink or stagger the partitioned tenants"))
    for tenant, (demand, paged) in zip(tenants, per_tenant_demand):
        if tenant.quota_bytes is None:
            continue
        used = sum(demand.values()) + paged
        if used > tenant.quota_bytes:
            report.add(Diagnostic(
                "INT002", Severity.ERROR, Site("tenant", tenant.name),
                f"predicted demand {used:,} B exceeds the tenant's "
                f"{tenant.quota_bytes:,} B quota",
                fix_hint="raise the quota or shrink the plan"))

    # Irregular placement — batched Eq. 4 hop rows for all tenants at
    # once, then the runtime's own sequential select_batch over the
    # round-robin-admitted unit stream with one shared load tracker.
    hop_rows = batched_affinity_hops(affine, machine)
    units = [_irregular_units(t.plan) for t in tenants]
    # Fair-share admission: tenant i's unit k arrives at fractional time
    # (k + 0.5) / n_i, so concurrent allocation streams interleave in
    # proportion to their rates (a big tenant genuinely crowds the
    # timeline a small one allocates against).  Ties break by tenant
    # order — fully deterministic.
    arrivals = sorted(
        ((k + 0.5) / n, i)
        for i, (n, _) in enumerate(units) if n > 0
        for k in range(n))
    order = [i for _, i in arrivals]
    irregular = np.zeros_like(affine)
    contended_hops = {t.name: 0.0 for t in tenants}
    if order:
        stacked = hop_rows[np.asarray(order, dtype=np.int64)]
        policy = HybridPolicy(policy_h)
        banks = policy.select_batch(stacked, LoadTracker(nb), machine.mesh)
        placed_hops: Dict[int, List[float]] = {}
        for pos, (tidx, bank) in enumerate(zip(order, banks)):
            w = units[tidx][1]
            irregular[tidx, bank] += w
            placed_hops.setdefault(tidx, []).append(
                float(stacked[pos, bank]))
        for tidx, hops in placed_hops.items():
            contended_hops[tenants[tidx].name] = float(np.mean(hops))

    # Solo re-placement per tenant (informational: mean hops its units
    # would see on an empty machine vs the shared timeline above).
    dilution: Dict[str, Tuple[float, float]] = {}
    for i, tenant in enumerate(tenants):
        n_units = units[i][0]
        if n_units == 0:
            continue
        solo_policy = HybridPolicy(policy_h)
        solo_rows = np.repeat(hop_rows[i:i + 1], n_units, axis=0)
        solo_banks = solo_policy.select_batch(solo_rows, LoadTracker(nb),
                                              machine.mesh)
        solo = float(hop_rows[i, solo_banks].mean())
        dilution[tenant.name] = (solo, contended_hops[tenant.name])

    matrix = ContentionMatrix([t.name for t in tenants], affine + irregular)

    # INT004 — affinity dilution by home-bank domination.  Eq. 4 scores
    # load *ratios*, which self-normalize across tenant counts, so the
    # honest static signal is occupancy: find each concentrated tenant's
    # home banks and check whether co-tenants out-weigh it there.
    home_cap = max(1, int(nb * HOME_SET_MAX_FRACTION))
    for i, tenant in enumerate(tenants):
        own = matrix.matrix[i]
        total = float(own.sum())
        if total <= 0:
            continue
        ranked = np.argsort(own)[::-1]
        cum = np.cumsum(own[ranked])
        home_size = int(np.searchsorted(cum,
                                        HOME_MASS_FRACTION * total) + 1)
        if home_size > home_cap:
            continue  # spread tenant: no home banks to be pushed off of
        home = ranked[:home_size]
        own_mass = float(own[home].sum())
        others = matrix.matrix[:, home].sum(axis=1)
        others[i] = 0.0
        others_mass = float(others.sum())
        if others_mass <= DILUTION_DOMINANCE * own_mass:
            continue
        dominant = tenants[int(np.argmax(others))].name
        banks_s = ", ".join(f"b{int(b)}" for b in sorted(home.tolist()))
        report.add(Diagnostic(
            "INT004", Severity.WARNING, Site("tenant", tenant.name),
            f"{HOME_MASS_FRACTION:.0%} of this tenant's predicted weight "
            f"sits on {home_size} bank(s) ({banks_s}) where co-tenants "
            f"out-weigh it {others_mass / own_mass:.1f}x "
            f"(dominant: {dominant}); its streams are effectively "
            "pushed off-bank",
            fix_hint="stagger the tenants' start banks or move the "
                     "dominant tenant to a different interleaving"))

    # INT003 — hot banks that at least two tenants actually contend for.
    agg = matrix.aggregate()
    mean = float(agg.mean())
    if mean > 0:
        for bank in matrix.hot_banks():
            contrib = matrix.matrix[:, bank]
            top = np.argsort(contrib)[::-1]
            sharers = [matrix.tenants[j] for j in top
                       if agg[bank] > 0
                       and contrib[j] >= HOT_SHARE_FLOOR * agg[bank]]
            if len(sharers) < 2:
                continue  # single-tenant hotspot: a COV/AFF concern
            report.add(Diagnostic(
                "INT003", Severity.WARNING,
                Site("bank", str(int(bank))),
                f"predicted weight {agg[bank]:,.0f} is "
                f"{agg[bank] / mean:.1f}x the mean bank weight; "
                f"contended by {', '.join(sharers[:4])}",
                fix_hint="stagger start banks or partition the hot "
                         "arrays across more banks"))

    return InterferenceResult(report, matrix, layouts,
                              pool_demand=pool_total, dilution=dilution)


# ----------------------------------------------------------------------
# Validation against measured counters (INT005)
# ----------------------------------------------------------------------
def tenants_from_workloads(names: Sequence[str],
                           scale: float = 0.12) -> List[Tenant]:
    """Build tenants from shipped workloads that declare layout plans."""
    from repro.workloads import WORKLOADS

    tenants = []
    for name in names:
        wl = WORKLOADS[name]
        plan = wl.layout_plan(scale)
        if plan is None:
            raise ValueError(f"workload {name!r} declares no layout plan; "
                             "it cannot join a --plans tenant set")
        tenants.append(Tenant(name, plan))
    return tenants


def _tvd(pred: np.ndarray, meas: np.ndarray) -> float:
    """Total-variation distance between two weight vectors' shares."""
    p = pred.sum()
    m = meas.sum()
    if p <= 0 or m <= 0:
        return 0.0 if p == m else 1.0
    return 0.5 * float(np.abs(pred / p - meas / m).sum())


def validate_contention(tenants: Sequence[Tenant],
                        config: SystemConfig = DEFAULT_CONFIG,
                        scale: float = 0.12, seed: int = 0,
                        ) -> Tuple[DiagnosticReport, List[ValidationRow]]:
    """Run each tenant's workload and hold predictions to the tolerance
    contract (module docstring), emitting INT005 where it is broken.

    Each tenant name must be a shipped workload (the prediction is pure;
    the measurement runs the real executor in ``AFF_ALLOC`` mode at the
    same scale/seed, on its own machine — placement is slot-position
    independent, so solo measurements validate the shared prediction).
    """
    from repro.arch.noc import MessageClass
    from repro.nsc.engine import EngineMode
    from repro.workloads import run_workload

    report = DiagnosticReport()
    rows: List[ValidationRow] = []
    machine = Machine(config)
    nb = machine.num_banks
    for tenant in tenants:
        _plan_report, plan_layouts = lint_plan(tenant.plan, machine)
        predicted = predicted_bank_weights(tenant.plan, plan_layouts,
                                           machine)
        result = run_workload(tenant.name, EngineMode.AFF_ALLOC,
                              config=config, scale=scale, seed=seed)
        measured_access = np.zeros(nb, dtype=np.float64)
        measured_eject = np.zeros(nb, dtype=np.float64)
        for phase in result.phases:
            measured_access += phase.bank_line_accesses
            pair = phase.pair_flits[MessageClass.DATA].reshape(nb, nb)
            measured_eject += pair.sum(axis=0)
        access_tvd = _tvd(predicted, measured_access)
        # A fully bank-local workload moves zero DATA flits — there are
        # no traffic shares to compare, which is success, not divergence.
        flit_tvd = (_tvd(predicted, measured_eject)
                    if measured_eject.sum() > 0 else 0.0)
        rows.append(ValidationRow(tenant.name, access_tvd, flit_tvd))
        if access_tvd > ACCESS_SHARE_TOLERANCE:
            report.add(Diagnostic(
                "INT005", Severity.WARNING, Site("tenant", tenant.name),
                f"predicted bank shares diverge from measured line "
                f"accesses by TVD {access_tvd:.3f} "
                f"(tolerance {ACCESS_SHARE_TOLERANCE})",
                fix_hint="the plan no longer describes what the "
                         "workload allocates; update layout_plan()"))
        if flit_tvd > FLIT_SHARE_TOLERANCE:
            report.add(Diagnostic(
                "INT005", Severity.WARNING, Site("tenant", tenant.name),
                f"predicted bank shares diverge from measured DATA "
                f"ejection flits by TVD {flit_tvd:.3f} "
                f"(tolerance {FLIT_SHARE_TOLERANCE})",
                fix_hint="the plan no longer describes what the "
                         "workload allocates; update layout_plan()"))
    return report, rows


# ----------------------------------------------------------------------
# Host-injection contract (INT006)
# ----------------------------------------------------------------------
def verify_host_injection(state: "InterferenceState",
                          ) -> Tuple[DiagnosticReport, Dict[str, float]]:
    """Hold an interference run's ledger to the pure plan replay.

    The contract has two halves:

    * **exactness** — the plan-space (pre-IOT-remap) bank accesses,
      atomics, and total message count the engine charged must equal
      :func:`~repro.interfere.plan.predict_host_injection` replayed for
      the same plan over the same number of host epochs, within
      :data:`HOST_INJECTION_RTOL`;
    * **conservation** — re-homing moves injected mass between banks but
      never creates or destroys it, so the post-remap totals must equal
      the plan-space totals.

    Emits INT006 (error severity: a broken injection model invalidates
    every slowdown it produced) per violated half.  Returns the report
    plus the residuals for CLI/report surfacing.
    """
    from repro.interfere.plan import predict_host_injection

    report = DiagnosticReport()
    nb = int(state.injected_raw_accesses.size)
    pred = predict_host_injection(state.plan, state.epoch_index, nb)

    def _residual(actual: np.ndarray, expected: np.ndarray) -> float:
        scale = max(float(np.abs(expected).max(initial=0.0)), 1.0)
        return float(np.abs(actual - expected).max(initial=0.0)) / scale

    acc_res = _residual(state.injected_raw_accesses,
                        np.asarray(pred["bank_accesses"]))
    atom_res = _residual(state.injected_raw_atomics,
                         np.asarray(pred["bank_atomics"]))
    msg_expected = float(pred["messages"])
    msg_res = (abs(state.injected_messages - msg_expected)
               / max(abs(msg_expected), 1.0))
    for label, res in (("bank accesses", acc_res), ("bank atomics", atom_res),
                       ("messages", msg_res)):
        if res > HOST_INJECTION_RTOL:
            report.add(Diagnostic(
                "INT006", Severity.ERROR,
                Site("interference", state.task or "run"),
                f"injected host {label} diverge from the pure plan replay "
                f"by relative residual {res:.3e} "
                f"(tolerance {HOST_INJECTION_RTOL:.0e}) over "
                f"{state.epoch_index} host epoch(s)",
                fix_hint="the engine and predict_host_injection disagree "
                         "about the stream algebra; fix whichever changed"))
    acc_cons = (abs(float(state.injected_bank_accesses.sum())
                    - float(state.injected_raw_accesses.sum()))
                / max(float(state.injected_raw_accesses.sum()), 1.0))
    atom_cons = (abs(float(state.injected_bank_atomics.sum())
                     - float(state.injected_raw_atomics.sum()))
                 / max(float(state.injected_raw_atomics.sum()), 1.0))
    for label, res in (("accesses", acc_cons), ("atomics", atom_cons)):
        if res > HOST_INJECTION_RTOL:
            report.add(Diagnostic(
                "INT006", Severity.ERROR,
                Site("interference", state.task or "run"),
                f"bank re-homing failed to conserve injected {label} "
                f"(relative residual {res:.3e})",
                fix_hint="remap_banks must permute targets, never drop "
                         "or duplicate them"))
    residuals = {"accesses": acc_res, "atomics": atom_res,
                 "messages": msg_res, "conservation_accesses": acc_cons,
                 "conservation_atomics": atom_cons}
    return report, residuals
