"""Render a :class:`DiagnosticReport` as text, JSON, or GitHub
annotations (``repro lint --format``).

The JSON form is a stable machine-readable schema
(``afflint-diagnostics/1``): one object per diagnostic with the frozen
key set from :meth:`Diagnostic.to_dict`, plus a summary block.  Keys
never change meaning; new keys may be added.

The GitHub form emits one workflow command per diagnostic
(``::error file=...,line=...,title=CODE::message``) so findings
annotate PR diffs directly; diagnostics anchored to runtime objects
rather than files drop the file/line properties.  A problem matcher for
the *text* form ships in ``.github/afflint-problem-matcher.json``.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.analysis.diagnostics import (
    DiagnosticReport,
    Diagnostic,
    Severity,
)

__all__ = ["SCHEMA", "FORMATS", "report_to_json", "render_report"]

SCHEMA = "afflint-diagnostics/1"
FORMATS = ("text", "json", "github")

_GITHUB_LEVEL = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.NOTE: "notice",
}


def report_to_json(report: DiagnosticReport) -> Dict[str, object]:
    """The report as a JSON-serializable dict (schema afflint-diagnostics/1)."""
    return {
        "schema": SCHEMA,
        "findings": [d.to_dict() for d in report],
        "summary": {
            "errors": report.count(Severity.ERROR),
            "warnings": report.count(Severity.WARNING),
            "notes": report.count(Severity.NOTE),
        },
    }


def _github_line(diag: Diagnostic) -> str:
    level = _GITHUB_LEVEL[diag.severity]
    props = []
    if diag.site.file:
        props.append(f"file={diag.site.file}")
        props.append(f"line={diag.site.line}")
    props.append(f"title={diag.code}")
    message = diag.message
    if not diag.site.file:
        message = f"{diag.site}: {message}"
    # Workflow-command payloads are single-line; escape per the spec.
    message = (message.replace("%", "%25").replace("\r", "%0D")
               .replace("\n", "%0A"))
    return f"::{level} {','.join(props)}::{message}"


def render_report(report: DiagnosticReport, fmt: str = "text") -> str:
    """Render ``report`` in one of :data:`FORMATS`."""
    if fmt == "text":
        return report.render()
    if fmt == "json":
        return json.dumps(report_to_json(report), indent=1, sort_keys=True)
    if fmt == "github":
        lines: List[str] = [_github_line(d) for d in report]
        lines.append(f"afflint: {report.summary()}")
        return "\n".join(lines)
    raise ValueError(f"unknown format {fmt!r}; expected one of {FORMATS}")
