"""Declarative layout plans — the constraint linter's input.

A :class:`LayoutPlan` is the *static* description of what a workload will
ask the allocator for: a sequence of :class:`PlannedArray` specs (with
inter-array alignment expressed by *name*, since no handles exist before
allocation) plus optional bulk irregular demand.  Workloads expose one
via :meth:`repro.workloads.base.Workload.layout_plan`, and the linter
resolves it with the same pure solver (`solve_affine_layout`) the runtime
uses — so a lint verdict is exactly the layout the runtime would pick,
without allocating a byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.diagnostics import LayoutError

__all__ = ["PlannedArray", "IrregularDemand", "LayoutPlan", "ResolvedTarget"]


@dataclass(frozen=True)
class PlannedArray:
    """One affine allocation a workload intends to make.

    Mirrors :class:`~repro.core.api.AffineArray`, with ``align_to`` given
    as the *name* of an earlier planned array instead of a handle.
    """

    name: str
    elem_size: int
    num_elem: int
    align_to: Optional[str] = None
    align_p: int = 1
    align_q: int = 1
    align_x: int = 0
    partition: bool = False

    @property
    def total_bytes(self) -> int:
        return self.elem_size * self.num_elem


@dataclass(frozen=True)
class IrregularDemand:
    """Bulk irregular allocation demand (e.g. one graph's nodes)."""

    size: int
    count: int
    label: str = "irregular"


@dataclass
class LayoutPlan:
    """Everything a workload will allocate, statically declared."""

    name: str
    arrays: List[PlannedArray] = field(default_factory=list)
    irregular: List[IrregularDemand] = field(default_factory=list)

    def array(self, name: str, elem_size: int, num_elem: int,
              **kwargs) -> PlannedArray:
        """Append a planned array (builder-style convenience)."""
        pa = PlannedArray(name, elem_size, num_elem, **kwargs)
        self.arrays.append(pa)
        return pa

    def demand(self, size: int, count: int,
               label: str = "irregular") -> IrregularDemand:
        dem = IrregularDemand(size, count, label)
        self.irregular.append(dem)
        return dem

    def by_name(self) -> Dict[str, PlannedArray]:
        out: Dict[str, PlannedArray] = {}
        for pa in self.arrays:
            if pa.name in out:
                raise LayoutError(f"duplicate planned array {pa.name!r} "
                                  f"in plan {self.name!r}")
            out[pa.name] = pa
        return out


@dataclass
class ResolvedTarget:
    """Stand-in for an allocated handle during static resolution.

    ``solve_affine_layout`` only reads ``.layout`` and ``.stride`` off an
    alignment target, so this is all the linter needs to chain layouts
    without touching the allocator.
    """

    name: str
    layout: object  # AffineLayout (kept untyped to avoid a core import)
    stride: int
