"""Allocation lifetime checking (afflint pass 2: ``LIF0xx``).

The runtime (``AffinityAllocator(record_events=True)``) records a linear
sequence of :class:`AllocEvent` values — one per ``malloc_aff`` /
``free_aff`` / handle use — and :func:`check_lifetime` replays it to
report double frees (LIF001), leaks at exit (LIF002), uses after free
(LIF003), and frees of never-allocated addresses (LIF004).

This module imports only :mod:`repro.analysis.diagnostics`, so the core
runtime may depend on it without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable

from repro.analysis.diagnostics import (
    Diagnostic,
    DiagnosticReport,
    Severity,
    Site,
)

__all__ = ["AllocEvent", "check_lifetime"]

#: Cap on individually-reported leaks; the rest collapse into one note.
MAX_LEAK_REPORTS = 10


@dataclass(frozen=True)
class AllocEvent:
    """One step of an allocation lifetime trace.

    Attributes:
        op: ``"alloc"``, ``"free"``, or ``"use"``.
        vaddr: the allocation's base virtual address.
        size: bytes (alloc events only; 0 otherwise).
        label: human name of the object (array name, "irregular", ...).
    """

    op: str
    vaddr: int
    size: int = 0
    label: str = ""


def _site(vaddr: int, label: str) -> Site:
    return Site("alloc", label or f"{vaddr:#x}")


def check_lifetime(events: Iterable[AllocEvent],
                   expect_clean_exit: bool = True) -> DiagnosticReport:
    """Replay a lifetime trace and report LIF0xx findings."""
    report = DiagnosticReport()
    live: Dict[int, AllocEvent] = {}
    freed: Dict[int, str] = {}  # vaddr -> label at time of free
    for ev in events:
        if ev.op == "alloc":
            live[ev.vaddr] = ev
            freed.pop(ev.vaddr, None)
        elif ev.op == "free":
            if ev.vaddr in live:
                rec = live.pop(ev.vaddr)
                freed[ev.vaddr] = rec.label or ev.label
            elif ev.vaddr in freed:
                report.add(Diagnostic(
                    "LIF001", Severity.ERROR,
                    _site(ev.vaddr, ev.label or freed[ev.vaddr]),
                    f"free_aff called twice on {ev.vaddr:#x}",
                    fix_hint="drop the second free_aff, or null the "
                             "pointer after the first"))
            else:
                report.add(Diagnostic(
                    "LIF004", Severity.WARNING,
                    _site(ev.vaddr, ev.label),
                    f"free_aff of {ev.vaddr:#x}, which was never allocated",
                    fix_hint="free only addresses returned by malloc_aff"))
        elif ev.op == "use":
            if ev.vaddr in freed and ev.vaddr not in live:
                report.add(Diagnostic(
                    "LIF003", Severity.ERROR,
                    _site(ev.vaddr, ev.label or freed[ev.vaddr]),
                    f"use of {ev.vaddr:#x} after it was freed",
                    fix_hint="keep the allocation live across every "
                             "kernel that references it"))
        else:
            raise ValueError(f"unknown lifetime op {ev.op!r}")
    if expect_clean_exit:
        leaks = list(live.values())
        for ev in leaks[:MAX_LEAK_REPORTS]:
            report.add(Diagnostic(
                "LIF002", Severity.WARNING, _site(ev.vaddr, ev.label),
                f"{ev.size or '?'}B allocation at {ev.vaddr:#x} never freed",
                fix_hint="free_aff every allocation before exit"))
        if len(leaks) > MAX_LEAK_REPORTS:
            report.add(Diagnostic(
                "LIF002", Severity.NOTE, Site("plan", "lifetime"),
                f"{len(leaks) - MAX_LEAK_REPORTS} further leak(s) suppressed"))
    return report
