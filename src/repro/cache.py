"""Content-addressed on-disk artifact cache.

The harness regenerates the same Kronecker/power-law graphs and the same
experiment metric tables over and over — across figures, across benchmark
files, across CLI invocations.  This module trades a little disk for all
of that recomputation, the same co-locate-vs-recompute tradeoff the
source paper optimizes in hardware.

Keys are SHA-256 digests of a canonical JSON encoding of
``(kind, generator version, parameters)``; values are ``.npz`` blobs
(graph arrays) or ``.json`` blobs (experiment metric summaries).  The
cache is safe under concurrent writers: every write goes to a tempfile in
the cache directory followed by an atomic :func:`os.replace`, so readers
only ever see complete entries and the last concurrent writer of one key
wins with an identical payload (keys are content-addressed — two writers
of the same key are writing the same bytes).

Knobs (all optional):

* ``REPRO_CACHE_DIR``      — cache directory (default ``~/.cache/repro``).
* ``REPRO_CACHE_MAX_BYTES``— LRU size cap (default 2 GiB).
* ``REPRO_NO_CACHE=1``     — disable the cache process-wide.
* :meth:`ArtifactCache.disabled` / ``configure(enabled=False)`` — the
  programmatic / ``--no-cache`` escape hatch.

Corrupted entries (truncated ``.npz`` after a crash, hand-edited JSON)
are treated as misses: the entry is deleted and regenerated, never
raised to the caller.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import tempfile
from collections import OrderedDict
from pathlib import Path
from typing import Callable, Dict, Optional

import numpy as np

__all__ = [
    "GENERATOR_VERSION",
    "ArtifactCache",
    "get_cache",
    "configure",
    "cache_key",
    "cached_graph",
    "cached_json",
]

#: Bump whenever a generator/experiment changes its output for the same
#: parameters — every old cache entry is invalidated at once.
GENERATOR_VERSION = 1

DEFAULT_MAX_BYTES = 2 << 30  # 2 GiB

#: In-process memo over the hottest ``.npz`` entries.  Keys are content
#: addresses, so one key can only ever name one payload — serving from
#: memory is exactly as correct as re-reading the file, minus the
#: zipfile + zlib decompress the profile charges every graph reload.
DEFAULT_MEM_BYTES = 256 << 20  # 256 MiB


def _canonical(obj):
    """Reduce parameters to a deterministic JSON-encodable form."""
    if isinstance(obj, dict):
        return {str(k): _canonical(v) for k, v in sorted(obj.items())}
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, float):
        # repr round-trips exactly; 0.1 and 0.1000...01 stay distinct
        return float(obj)
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, os.PathLike):
        return os.fspath(obj)
    raise TypeError(f"unhashable cache parameter {obj!r} ({type(obj).__name__})")


def cache_key(kind: str, **params) -> str:
    """SHA-256 content address of ``(kind, GENERATOR_VERSION, params)``."""
    payload = json.dumps(
        {"kind": kind, "version": GENERATOR_VERSION,
         "params": _canonical(params)},
        sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ArtifactCache:
    """A directory of content-addressed ``.npz``/``.json`` artifacts."""

    def __init__(self, root: Optional[os.PathLike] = None,
                 max_bytes: Optional[int] = None,
                 enabled: Optional[bool] = None):
        if root is None:
            root = os.environ.get("REPRO_CACHE_DIR") or (
                Path.home() / ".cache" / "repro")
        self.root = Path(root)
        if max_bytes is None:
            max_bytes = int(os.environ.get("REPRO_CACHE_MAX_BYTES",
                                           DEFAULT_MAX_BYTES))
        self.max_bytes = max_bytes
        if enabled is None:
            enabled = os.environ.get("REPRO_NO_CACHE", "") not in ("1", "true")
        self.enabled = enabled
        self.hits = 0
        self.misses = 0
        self.mem_max_bytes = int(os.environ.get("REPRO_CACHE_MEM_BYTES",
                                                DEFAULT_MEM_BYTES))
        self._mem: "OrderedDict[str, Dict[str, np.ndarray]]" = OrderedDict()
        self._mem_bytes = 0

    # ------------------------------------------------------------------
    def path_for(self, key: str, suffix: str) -> Path:
        return self.root / f"{key}{suffix}"

    def _touch(self, path: Path) -> None:
        """Refresh mtime so LRU eviction sees the entry as recently used."""
        with contextlib.suppress(OSError):
            os.utime(path, None)

    def _atomic_write(self, path: Path, writer: Callable[[object], None],
                      mode: str = "wb") -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, mode) as fh:
                writer(fh)
            os.replace(tmp, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp)
            raise

    def _drop(self, path: Path) -> None:
        with contextlib.suppress(OSError):
            path.unlink()

    # ------------------------- in-memory layer -------------------------
    def _mem_store(self, key: str, arrays: Dict[str, np.ndarray]) -> None:
        size = sum(a.nbytes for a in arrays.values())
        if size > self.mem_max_bytes:
            return
        old = self._mem.pop(key, None)
        if old is not None:
            self._mem_bytes -= sum(a.nbytes for a in old.values())
        self._mem[key] = arrays
        self._mem_bytes += size
        while self._mem_bytes > self.mem_max_bytes and self._mem:
            _, dropped = self._mem.popitem(last=False)
            self._mem_bytes -= sum(a.nbytes for a in dropped.values())

    def _mem_clear(self) -> None:
        self._mem.clear()
        self._mem_bytes = 0

    # ----------------------------- npz --------------------------------
    def get_arrays(self, key: str) -> Optional[Dict[str, np.ndarray]]:
        """Load an ``.npz`` entry; any read error is a miss (and deletes).

        Recently read entries are served from an in-process memo (copies,
        so callers may mutate freely); keys are content addresses, so the
        memo can never go stale against the file it shadows.  Only reads
        populate the memo — the first load after a write still exercises
        the on-disk entry, keeping corruption detectable."""
        if not self.enabled:
            return None
        memo = self._mem.get(key)
        if memo is not None:
            self._mem.move_to_end(key)
            self.hits += 1
            return {name: a.copy() for name, a in memo.items()}
        path = self.path_for(key, ".npz")
        try:
            with np.load(path, allow_pickle=False) as zf:
                out = {name: zf[name] for name in zf.files}
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:  # truncated/corrupt — regenerate, don't crash
            self._drop(path)
            self.misses += 1
            return None
        self.hits += 1
        self._touch(path)
        self._mem_store(key, {name: a.copy() for name, a in out.items()})
        return out

    def put_arrays(self, key: str, arrays: Dict[str, np.ndarray]) -> None:
        if not self.enabled:
            return
        path = self.path_for(key, ".npz")
        self._atomic_write(path, lambda fh: np.savez_compressed(fh, **arrays))
        self.evict()

    # ----------------------------- json -------------------------------
    def get_json(self, key: str):
        if not self.enabled:
            return None
        path = self.path_for(key, ".json")
        try:
            with open(path, "r", encoding="utf-8") as fh:
                out = json.load(fh)
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            self._drop(path)
            self.misses += 1
            return None
        self.hits += 1
        self._touch(path)
        return out

    def put_json(self, key: str, obj) -> None:
        if not self.enabled:
            return
        path = self.path_for(key, ".json")
        data = json.dumps(obj, sort_keys=True, indent=1)
        self._atomic_write(
            path, lambda fh: fh.write(data), mode="w")
        self.evict()

    # --------------------------- eviction ------------------------------
    def size_bytes(self) -> int:
        return sum(p.stat().st_size for p in self._entries())

    def _entries(self):
        if not self.root.is_dir():
            return []
        out = []
        for p in sorted(self.root.iterdir()):
            if p.suffix in (".npz", ".json"):
                with contextlib.suppress(OSError):
                    p.stat()
                    out.append(p)
        return out

    def evict(self, max_bytes: Optional[int] = None) -> int:
        """Delete least-recently-used entries until under the size cap.

        Returns the number of entries removed.
        """
        cap = self.max_bytes if max_bytes is None else max_bytes
        entries = []
        for p in self._entries():
            with contextlib.suppress(OSError):
                st = p.stat()
                entries.append((st.st_mtime, st.st_size, p))
        total = sum(sz for _, sz, _ in entries)
        removed = 0
        entries.sort()  # oldest mtime first
        for _, sz, p in entries:
            if total <= cap:
                break
            self._drop(p)
            total -= sz
            removed += 1
        return removed

    def clear(self) -> None:
        for p in self._entries():
            self._drop(p)
        self._mem_clear()

    # --------------------------- control -------------------------------
    @contextlib.contextmanager
    def disabled(self):
        """Temporarily bypass the cache (the ``--no-cache`` path)."""
        prev, self.enabled = self.enabled, False
        try:
            yield self
        finally:
            self.enabled = prev

    def __repr__(self) -> str:
        state = "on" if self.enabled else "off"
        return (f"ArtifactCache({self.root}, {state}, "
                f"hits={self.hits}, misses={self.misses})")


# ----------------------------------------------------------------------
# Process-wide singleton
# ----------------------------------------------------------------------
_CACHE: Optional[ArtifactCache] = None


def get_cache() -> ArtifactCache:
    global _CACHE
    if _CACHE is None:
        _CACHE = ArtifactCache()
    return _CACHE


def configure(root: Optional[os.PathLike] = None,
              max_bytes: Optional[int] = None,
              enabled: Optional[bool] = None) -> ArtifactCache:
    """Replace the process-wide cache (tests, CLI ``--no-cache``, workers)."""
    global _CACHE
    _CACHE = ArtifactCache(root=root, max_bytes=max_bytes, enabled=enabled)
    return _CACHE


# ----------------------------------------------------------------------
# High-level helpers
# ----------------------------------------------------------------------
def cached_graph(kind: str, builder: Callable[[], "object"], **params):
    """Memoize a CSR graph build on disk, keyed by its parameters.

    ``builder`` must be deterministic in ``params``; on a hit the graph is
    reconstructed from the stored ``index``/``edges``(/``weights``)
    arrays without re-running the generator.
    """
    from repro.graphs.csr import CSRGraph

    cache = get_cache()
    key = cache_key(kind, **params)
    arrays = cache.get_arrays(key)
    if arrays is not None and "index" in arrays and "edges" in arrays:
        try:
            return CSRGraph(arrays["index"], arrays["edges"],
                            arrays.get("weights"))
        except ValueError:  # stale/corrupt payload: fall through to rebuild
            cache._drop(cache.path_for(key, ".npz"))
    graph = builder()
    payload = {"index": graph.index, "edges": graph.edges}
    if graph.weights is not None:
        payload["weights"] = graph.weights
    cache.put_arrays(key, payload)
    return graph


def cached_json(kind: str, builder: Callable[[], object], **params):
    """Memoize a JSON-serializable computation (metric summaries)."""
    cache = get_cache()
    key = cache_key(kind, **params)
    hit = cache.get_json(key)
    if hit is not None:
        return hit
    obj = builder()
    cache.put_json(key, obj)
    return obj
