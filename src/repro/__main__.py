"""Command-line entry point: regenerate paper experiments.

Usage::

    python -m repro list                   # available experiments/workloads
    python -m repro fig4                   # run one figure, print its table
    python -m repro fig12 --scale 0.25
    python -m repro all --jobs 8           # every figure/ablation/table,
                                           # fanned across 8 processes
    python -m repro fig4 --no-cache        # bypass the artifact cache
    python -m repro run pr_push --mode Aff-Alloc --scale 0.1
    python -m repro lint                   # afflint the workload layouts
    python -m repro lint examples/lint_fixtures --expect-findings
    python -m repro bench                  # tracked perf benchmarks
    python -m repro bench --smoke --compare --baseline benchmarks/smoke
    python -m repro chaos --seed 0 --rate 0.05   # fault injection +
                                           # degradation report
    python -m repro chaos --plan plan.json vecadd pr_push
    python -m repro interfere                # host-contention sweep
    python -m repro interfere vecadd --intensity 2 --sweep 0.5,1,2,4
    python -m repro autoplace                # static vs online re-layout
    python -m repro autoplace stream_flip --scale 0.1 --check-determinism
    python -m repro trace vecadd --out trace.json --metrics m.csv --top 5
    python -m repro trace --diff a.json b.json   # exact trace comparison
    python -m repro info --json            # versions, defaults, cache,
                                           # registries

Results of ``all`` (and any multi-experiment invocation) are also written
as machine-readable JSON to ``results/run-<hash>.json``; the hash covers
the experiment configuration (ids/scale/seed/generator version), never
the job count, so ``--jobs 8`` and ``--jobs 1`` produce byte-identical
files.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.harness import runner
from repro.nsc.engine import EngineMode
from repro.workloads import WORKLOADS, run_workload

#: Backwards-compatible alias — the registry now lives in the runner.
EXPERIMENTS = runner.EXPERIMENTS


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "lint":
        # afflint has its own argument surface; delegate wholesale.
        from repro.analysis.lint import cli as lint_cli
        return lint_cli(list(argv[1:]))
    if argv and argv[0] == "bench":
        from repro.perf.bench import cli as bench_cli
        return bench_cli(list(argv[1:]))
    if argv and argv[0] == "chaos":
        from repro.faults.chaos import cli as chaos_cli
        return chaos_cli(list(argv[1:]))
    if argv and argv[0] == "interfere":
        from repro.interfere.cli import cli as interfere_cli
        return interfere_cli(list(argv[1:]))
    if argv and argv[0] == "autoplace":
        from repro.relayout.autoplace import cli as autoplace_cli
        return autoplace_cli(list(argv[1:]))
    if argv and argv[0] == "trace":
        from repro.obs.cli import cli as trace_cli
        return trace_cli(list(argv[1:]))
    if argv and argv[0] == "info":
        from repro.harness.info import cli as info_cli
        return info_cli(list(argv[1:]))

    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce 'Affinity Alloc' (MICRO 2023) experiments.")
    parser.add_argument("target",
                        help="'list', 'all', an experiment id (fig4..fig20, "
                             "abl_*, table1..table4), a comma-separated list "
                             "of ids, or 'run' for a single workload")
    parser.add_argument("workload", nargs="?", help="workload name for 'run'")
    parser.add_argument("--scale", type=float, default=0.12,
                        help="fraction of Table 3 input sizes (default 0.12)")
    parser.add_argument("--seed", type=int, default=0,
                        help="base RNG seed threaded through experiments")
    parser.add_argument("--jobs", "-j", type=int, default=1,
                        help="worker processes for experiments (default 1)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the content-addressed artifact cache")
    parser.add_argument("--results-dir", default="results",
                        help="where run-<hash>.json lands (default results/)")
    parser.add_argument("--mode", default="Aff-Alloc",
                        choices=[m.value for m in EngineMode])
    parser.add_argument("--no-lint", action="store_true",
                        help="skip the afflint pre-flight over workload "
                             "layout plans")
    args = parser.parse_args(argv)

    if args.target == "list":
        print("experiments:", " ".join(sorted(runner.EXPERIMENTS)))
        print("workloads  :", " ".join(sorted(WORKLOADS)))
        return 0

    if args.target == "run":
        if not args.workload:
            parser.error("'run' needs a workload name")
        mode = next(m for m in EngineMode if m.value == args.mode)
        t0 = time.perf_counter()
        r = run_workload(args.workload, mode, scale=args.scale,
                         seed=args.seed)
        print(f"{r.label}: cycles={r.cycles:,.0f} "
              f"flit-hops={r.total_flit_hops:,.0f} "
              f"L3-miss={r.l3_miss_pct:.1f}% energy={r.energy_pj:,.0f} pJ "
              f"({time.perf_counter() - t0:.1f}s wall)")
        return 0

    if args.target == "all":
        ids = runner.ALL_IDS
    else:
        ids = tuple(t for t in args.target.split(",") if t)
        bad = [t for t in ids if t not in runner.EXPERIMENTS]
        if bad or not ids:
            parser.error(f"unknown target {args.target!r}; try 'list'")

    report = runner.run_figures(
        ids, jobs=args.jobs, scale=args.scale, seed=args.seed,
        use_cache=not args.no_cache,
        results_dir=args.results_dir if len(ids) > 1 else None,
        preflight=not args.no_lint,
        progress=lambda line: print(line, file=sys.stderr, flush=True))

    for fig in report.figures:
        print(fig.render())
        print()
    if len(ids) > 1:
        print(report.summary_table())
        if report.path is not None:
            print(f"\nmetrics JSON: {report.path}")
    print(f"\n[{len(ids)} experiment(s) in {report.wall_s:.1f}s wall, "
          f"jobs={report.jobs}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
