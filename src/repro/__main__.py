"""Command-line entry point: regenerate paper experiments.

Usage::

    python -m repro list                   # available experiments/workloads
    python -m repro fig4                   # run one figure, print its table
    python -m repro fig12 --scale 0.25
    python -m repro run pr_push --mode Aff-Alloc --scale 0.1
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.harness import experiments as exp
from repro.harness import tables
from repro.harness.report import render
from repro.nsc.engine import EngineMode
from repro.workloads import WORKLOADS, run_workload

EXPERIMENTS = {
    "fig4": lambda scale: exp.fig4_vecadd_delta(n=max(int((1 << 20) * scale * 4), 1 << 16)),
    "fig6": lambda scale: exp.fig6_chunk_remap(scale=scale),
    "fig12": lambda scale: exp.fig12_overall(scale=scale),
    "fig13": lambda scale: exp.fig13_policies(scale=scale),
    "fig14": lambda scale: exp.fig14_atomic_timeline(scale=scale),
    "fig15": lambda scale: exp.fig15_affine_scaling(scale=scale),
    "fig16": lambda scale: exp.fig16_graph_scaling(
        log_sizes=(12, 13, 14, 15)),
    "fig17": lambda scale: exp.fig17_bfs_iterations(scale=scale),
    "fig18": lambda scale: exp.fig18_push_pull_timeline(scale=scale),
    "fig19": lambda scale: exp.fig19_degree_sweep(
        total_edges=max(int((1 << 22) * scale), 1 << 16)),
    "fig20": lambda scale: exp.fig20_real_world(scale=scale / 4),
    "table1": lambda scale: tables.table1_iot_format(),
    "table2": lambda scale: tables.table2_system_parameters(),
    "table3": lambda scale: tables.table3_workloads(),
    "table4": lambda scale: tables.table4_real_world_graphs(),
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce 'Affinity Alloc' (MICRO 2023) experiments.")
    parser.add_argument("target", help="'list', an experiment id (fig4..fig20, table1..table4), "
                                       "or 'run' for a single workload")
    parser.add_argument("workload", nargs="?", help="workload name for 'run'")
    parser.add_argument("--scale", type=float, default=0.12,
                        help="fraction of Table 3 input sizes (default 0.12)")
    parser.add_argument("--mode", default="Aff-Alloc",
                        choices=[m.value for m in EngineMode])
    args = parser.parse_args(argv)

    if args.target == "list":
        print("experiments:", " ".join(sorted(EXPERIMENTS)))
        print("workloads  :", " ".join(sorted(WORKLOADS)))
        return 0

    if args.target == "run":
        if not args.workload:
            parser.error("'run' needs a workload name")
        mode = next(m for m in EngineMode if m.value == args.mode)
        t0 = time.time()
        r = run_workload(args.workload, mode, scale=args.scale)
        print(f"{r.label}: cycles={r.cycles:,.0f} "
              f"flit-hops={r.total_flit_hops:,.0f} "
              f"L3-miss={r.l3_miss_pct:.1f}% energy={r.energy_pj:,.0f} pJ "
              f"({time.time() - t0:.1f}s wall)")
        return 0

    if args.target not in EXPERIMENTS:
        parser.error(f"unknown target {args.target!r}; try 'list'")
    t0 = time.time()
    result = EXPERIMENTS[args.target](args.scale)
    print(render(result))
    print(f"\n[{args.target} completed in {time.time() - t0:.1f}s wall]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
