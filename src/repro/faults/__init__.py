"""Deterministic fault injection + graceful degradation (chaos layer).

The subsystem has four parts:

* :mod:`repro.faults.plan` — typed, seeded :class:`FaultPlan` (what to
  break and when).
* :mod:`repro.faults.log` — the typed :class:`FaultEventLog` every
  injected/handled fault is recorded into (replayable by tests and
  afflint).
* :mod:`repro.faults.injector` — the active :class:`FaultSession` /
  per-machine :class:`FaultState` that applies the plan and drives each
  layer's degradation path.
* :mod:`repro.faults.chaos` — the ``python -m repro chaos`` runner that
  executes clean-vs-faulted pairs and emits the degradation report.

Everything is gated so that *no* active fault session means the simulator
executes the exact original instruction stream — clean runs stay
byte-identical to a tree without this package.
"""

from repro.faults.log import FaultEventLog, FaultRecord
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan
from repro.faults.injector import (FaultSession, FaultState,
                                   active_fault_session, fault_session)

__all__ = [
    "FaultKind",
    "FaultEvent",
    "FaultPlan",
    "FaultRecord",
    "FaultEventLog",
    "FaultSession",
    "FaultState",
    "fault_session",
    "active_fault_session",
]
