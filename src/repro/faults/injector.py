"""The fault injector: applies a plan to a machine and drives degradation.

Lifecycle:

1. A caller opens ``with fault_session(plan, log, task=...)``.  The
   session becomes process-globally *active*.
2. ``make_context`` (workloads/base.py) builds the :class:`Machine` and,
   if a session is active, calls :meth:`FaultSession.attach` — creating a
   :class:`FaultState` bound to that machine (``machine.faults``).
3. Boot-phase events apply immediately at attach (pool caps, armed alloc
   ordinals, ``phase="boot"`` bank/link failures).  Run-phase bank/link
   failures are deferred until the executor issues its first primitive
   (:meth:`FaultState.activate_run_phase`), so the allocator has already
   placed data on the soon-to-fail resources and the re-home / reroute /
   retry machinery is genuinely exercised.
4. Every layer consults ``machine.faults`` through cheap ``is None``
   guards; with no session the simulator executes the exact original
   instruction stream (clean runs stay byte-identical).

Everything the injector does or observes lands in the session's
:class:`~repro.faults.log.FaultEventLog`, in plan order, so same-seed
runs produce identical logs (a property the chaos suite pins).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import (
    TYPE_CHECKING,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Union,
)

import numpy as np

from repro.analysis.diagnostics import TopologyError
from repro.faults.log import FaultEventLog, FaultRecord
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan

if TYPE_CHECKING:
    from repro.machine import Machine
    from repro.perf.stats import RunRecorder

__all__ = ["FaultState", "FaultSession", "fault_session",
           "active_fault_session"]


class FaultState:
    """Per-machine fault state: healthy mask, armed events, degradation
    bookkeeping.  Created by :meth:`FaultSession.attach`; reachable from
    every layer as ``machine.faults``."""

    #: Bounded exponential backoff charged (serial cycles, all cores)
    #: each time an offloaded stream must retry or abandon an offload.
    RETRY_BACKOFF_CYCLES = (64.0, 128.0, 256.0)

    def __init__(self, plan: FaultPlan, log: FaultEventLog,
                 machine: Machine, task: str = "") -> None:
        self.plan = plan
        self.log = log
        self.task = task
        self.healthy = np.ones(machine.num_banks, dtype=bool)
        #: Allocation ordinals armed to fail (ALLOC_FAIL events).
        self.alloc_fail_ordinals: Set[int] = set()
        self._alloc_seq = 0
        #: Re-homed banks whose first offloaded touch still owes a
        #: retry-storm charge (run-phase BANK_FAIL with rehome).
        self.pending_touch: Set[int] = set()
        #: Failed banks with no re-home: offloads touching them fall
        #: back to host execution.
        self.no_rehome: Set[int] = set()
        self._run_events: List[FaultEvent] = []
        self._run_applied = False
        self._machine = machine
        # Degradation counters surfaced in the chaos report.
        self.retries = 0
        self.host_fallbacks = 0
        self._apply_boot(machine)

    # ------------------------------------------------------------------
    def _rec(self, kind: Union[FaultKind, str], target: object,
             action: str, detail: str = "", count: float = 0.0) -> None:
        kind_str = kind.value if isinstance(kind, FaultKind) else str(kind)
        self.log.add(FaultRecord(task=self.task, kind=kind_str,
                                 target=str(target), action=action,
                                 detail=detail, count=count))
        tracer = self._machine.tracer
        if tracer is not None:
            # Retries get their own category in the span taxonomy; every
            # other record is a generic fault event.
            cat = "retry" if action == "retry" else "fault"
            tracer.instant(action, cat,
                           {"kind": kind_str, "target": str(target),
                            "detail": detail, "count": count})

    def note(self, kind: Union[FaultKind, str], target: object,
             action: str, detail: str = "", count: float = 0.0) -> None:
        """Public hook for other layers (runtime, executor) to log how
        they handled a fault."""
        self._rec(kind, target, action, detail, count)

    # ------------------------------------------------------------------
    # Plan application
    # ------------------------------------------------------------------
    def _apply_boot(self, machine: Machine) -> None:
        for ev in self.plan.events:
            if ev.kind is FaultKind.POOL_EXHAUST:
                if machine.pools.has_pool(ev.target):
                    machine.pools.pool(ev.target).max_expansions = ev.param
                    self._rec(ev.kind, ev.target, "injected",
                              f"expansion cap {ev.param}")
                else:
                    self._rec(ev.kind, ev.target, "skipped", "no such pool")
            elif ev.kind is FaultKind.ALLOC_FAIL:
                self.alloc_fail_ordinals.add(ev.target)
                self._rec(ev.kind, ev.target, "injected",
                          "armed for allocation ordinal")
            elif ev.kind is FaultKind.BANK_FAIL:
                if ev.phase == "boot":
                    self._fail_bank(machine, ev, run_phase=False)
                else:
                    self._run_events.append(ev)
                    self._rec(ev.kind, ev.target, "injected",
                              "armed; fires when streaming starts")
            elif ev.kind is FaultKind.LINK_FAIL:
                if ev.phase == "boot":
                    self._fail_link(machine, ev)
                else:
                    self._run_events.append(ev)
                    self._rec(ev.kind, f"{ev.target}-{ev.param}", "injected",
                              "armed; fires when streaming starts")
            # WORKER_CRASH is consumed by the harness, never per-machine.

    def activate_run_phase(self, machine: Machine) -> None:
        """Fire armed run-phase events; idempotent, called by the executor
        at the top of every primitive (first call wins)."""
        if self._run_applied:
            return
        self._run_applied = True
        for ev in self._run_events:
            if ev.kind is FaultKind.BANK_FAIL:
                self._fail_bank(machine, ev, run_phase=True)
            else:
                self._fail_link(machine, ev)

    # ------------------------------------------------------------------
    def _fail_bank(self, machine: Machine, ev: FaultEvent,
                   run_phase: bool) -> None:
        bank = ev.target
        if bank >= self.healthy.size:
            self._rec(ev.kind, bank, "skipped", "no such bank")
            return
        if not self.healthy[bank]:
            self._rec(ev.kind, bank, "skipped", "bank already failed")
            return
        self.healthy[bank] = False
        if not self.healthy.any():
            self.healthy[bank] = True
            self._rec(ev.kind, bank, "unhandled",
                      "would fail the last healthy bank")
            return
        if ev.rehome:
            cand = np.flatnonzero(self.healthy)
            hops = machine.mesh.hops(
                np.full(cand.size, bank, dtype=np.int64), cand)
            repl = int(cand[int(np.argmin(hops))])  # lowest id on ties
            moved = machine.llc.rehome_bank(bank, repl)
            if run_phase:
                self.pending_touch.add(bank)
            self._rec(ev.kind, bank, "rehomed",
                      f"IOT remap bank {bank} -> bank {repl}", count=moved)
        else:
            self.no_rehome.add(bank)
            self._rec(ev.kind, bank, "injected",
                      "no re-home; offloads touching it fall back to host")

    def _fail_link(self, machine: Machine, ev: FaultEvent) -> None:
        a, b = ev.target, ev.param
        label = f"{a}-{b}"
        try:
            machine.mesh.remove_link_between(a, b)
        except TopologyError as exc:
            self._rec(ev.kind, label, "skipped", str(exc))
            return
        self._rec(ev.kind, label, "rerouted",
                  f"link removed; topology epoch "
                  f"{machine.mesh.topology_epoch}")

    # ------------------------------------------------------------------
    # Allocator hooks
    # ------------------------------------------------------------------
    def take_alloc_fault(self) -> Optional[int]:
        """Advance the allocation ordinal; return it if armed to fail."""
        seq = self._alloc_seq
        self._alloc_seq += 1
        return seq if seq in self.alloc_fail_ordinals else None

    @property
    def any_failed(self) -> bool:
        return not bool(self.healthy.all())

    def policy_mask(self) -> Optional[np.ndarray]:
        """Healthy-bank mask for bank-select policies (None when all
        healthy, which keeps the policy on its original scoring path)."""
        return self.healthy if self.any_failed else None

    # ------------------------------------------------------------------
    # Executor hooks
    # ------------------------------------------------------------------
    def _charge_backoff(self, recorder: RunRecorder,
                        num_cores: int) -> float:
        cycles = float(sum(self.RETRY_BACKOFF_CYCLES))
        recorder.add_serial_cycles(np.arange(num_cores), cycles)
        self.retries += len(self.RETRY_BACKOFF_CYCLES)
        return cycles

    def check_first_touch(self, raw_banks: np.ndarray,
                          recorder: RunRecorder, num_cores: int) -> None:
        """Charge the retry storm the first time an offloaded stream
        touches each re-homed bank (``raw_banks`` is the pre-remap
        mapping, so failed banks are still visible here)."""
        if not self.pending_touch:
            return
        present = set(int(b) for b in np.unique(raw_banks).tolist())
        for bank in sorted(self.pending_touch & present):
            self.pending_touch.discard(bank)
            cycles = self._charge_backoff(recorder, num_cores)
            self._rec(FaultKind.BANK_FAIL, bank, "retry",
                      f"{len(self.RETRY_BACKOFF_CYCLES)} offload retries "
                      f"({cycles:.0f} backoff cycles), re-issued to the "
                      f"re-homed bank", count=cycles)

    def blocks_offload(self, banks_arrays: Sequence[Optional[np.ndarray]],
                       recorder: RunRecorder, num_cores: int) -> bool:
        """True if any stream operand lives on a failed, non-re-homed
        bank: the offload is retried (bounded backoff) then abandoned,
        and the caller must run the primitive on the host cores."""
        if not self.no_rehome:
            return False
        dead = np.fromiter(sorted(self.no_rehome), dtype=np.int64)
        for banks in banks_arrays:
            if banks is None:
                continue
            banks = np.asarray(banks)
            if banks.size == 0:
                continue
            hit = np.isin(banks, dead)
            if hit.any():
                bank = int(np.asarray(banks)[hit].min())
                cycles = self._charge_backoff(recorder, num_cores)
                self.host_fallbacks += 1
                self._rec(FaultKind.BANK_FAIL, bank, "host-fallback",
                          f"offload retries exhausted ({cycles:.0f} backoff "
                          f"cycles); stream ran on host cores", count=cycles)
                return True
        return False

    # ------------------------------------------------------------------
    def finalize(self) -> None:
        """Log armed faults that never fired (CHS003 on replay)."""
        for o in sorted(self.alloc_fail_ordinals):
            if o >= self._alloc_seq:
                self._rec(FaultKind.ALLOC_FAIL, o, "not-triggered",
                          f"only {self._alloc_seq} allocations issued")
        for bank in sorted(self.pending_touch):
            self._rec(FaultKind.BANK_FAIL, bank, "not-triggered",
                      "re-homed bank never touched by an offloaded stream")
        self.pending_touch.clear()
        for ev in self.plan.by_kind(FaultKind.POOL_EXHAUST):
            if not self._machine.pools.has_pool(ev.target):
                continue
            pool = self._machine.pools.pool(ev.target)
            if pool.expansions < ev.param:
                self._rec(ev.kind, ev.target, "not-triggered",
                          f"pool issued {pool.expansions} expansion(s), "
                          f"never reached the cap of {ev.param}")


class FaultSession:
    """One plan + log, attachable to any number of machines (a chaos task
    may build several contexts; they share the log)."""

    def __init__(self, plan: FaultPlan, log: Optional[FaultEventLog] = None,
                 task: str = "") -> None:
        self.plan = plan
        self.log = log if log is not None else FaultEventLog()
        self.task = task
        self.states: List[FaultState] = []

    def attach(self, machine: Machine) -> FaultState:
        state = FaultState(self.plan, self.log, machine, self.task)
        machine.faults = state
        self.states.append(state)
        return state

    def finalize(self) -> None:
        for state in self.states:
            state.finalize()


_ACTIVE: Optional[FaultSession] = None


def active_fault_session() -> Optional[FaultSession]:
    return _ACTIVE


@contextmanager
def fault_session(plan: FaultPlan, log: Optional[FaultEventLog] = None,
                  task: str = "") -> Iterator[FaultSession]:
    """Make a fault session active for the dynamic extent of the block.

    Machines built inside the block (via ``make_context``) get the plan
    attached.  Sessions nest; the previous one is restored on exit.
    """
    global _ACTIVE
    prev = _ACTIVE
    session = FaultSession(plan, log, task)
    _ACTIVE = session
    try:
        yield session
    finally:
        _ACTIVE = prev
