"""Typed fault plans: what to break, where, and when.

A :class:`FaultPlan` is an ordered tuple of :class:`FaultEvent`\\ s.  Plans
are either authored explicitly (tests pin canonical plans as JSON files)
or generated from a seed + rate, in which case generation is fully
deterministic: the same ``(seed, rate, config, tasks)`` always yields the
same plan, independent of host, process count, or interning.

Event semantics (the ``target``/``param`` encoding per kind):

=================  ==========================  ===========================
kind               target                      param
=================  ==========================  ===========================
``BANK_FAIL``      failed bank id              --
``LINK_FAIL``      tile A of the link          tile B of the link
``POOL_EXHAUST``   pool interleave (bytes)     expansion cap granted
``ALLOC_FAIL``     allocation ordinal          --
``WORKER_CRASH``   task ordinal (mod #tasks)   crash count before success
=================  ==========================  ===========================

``phase`` is ``"boot"`` (applied before any allocation) or ``"run"``
(armed at boot, fired when the executor starts streaming — so the
allocator places data on the soon-to-fail resource first and the
degradation machinery is actually exercised).  ``rehome=False`` on a
``BANK_FAIL`` suppresses the IOT re-home: offloaded streams touching the
bank must fall back to host execution instead.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass
from pathlib import Path
import os
from typing import Dict, List, Tuple, Union

import numpy as np

from repro.config import DEFAULT_CONFIG, SystemConfig

__all__ = ["FaultKind", "FaultEvent", "FaultPlan"]


class FaultKind(enum.Enum):
    BANK_FAIL = "bank-fail"
    LINK_FAIL = "link-fail"
    POOL_EXHAUST = "pool-exhaust"
    ALLOC_FAIL = "alloc-fail"
    WORKER_CRASH = "worker-crash"


@dataclass(frozen=True)
class FaultEvent:
    """One typed fault; immutable so plans can live in sets/dict keys."""

    kind: FaultKind
    target: int
    param: int = 0
    phase: str = "run"
    rehome: bool = True

    def __post_init__(self) -> None:
        if self.phase not in ("boot", "run"):
            raise ValueError(f"phase must be 'boot' or 'run', got {self.phase!r}")
        if self.target < 0:
            raise ValueError(f"target must be non-negative, got {self.target}")

    def describe(self) -> str:
        k = self.kind
        if k is FaultKind.BANK_FAIL:
            mode = "re-homed" if self.rehome else "no-rehome"
            return f"bank {self.target} fails at {self.phase} ({mode})"
        if k is FaultKind.LINK_FAIL:
            return f"link {self.target}-{self.param} fails at {self.phase}"
        if k is FaultKind.POOL_EXHAUST:
            return (f"pool {self.target}B capped at "
                    f"{self.param} expansion(s)")
        if k is FaultKind.ALLOC_FAIL:
            return f"allocation ordinal {self.target} fails"
        return f"worker for task ordinal {self.target} crashes x{self.param}"

    def to_dict(self) -> Dict:
        return {"kind": self.kind.value, "target": self.target,
                "param": self.param, "phase": self.phase,
                "rehome": self.rehome}

    @classmethod
    def from_dict(cls, d: Dict) -> "FaultEvent":
        return cls(kind=FaultKind(d["kind"]), target=int(d["target"]),
                   param=int(d.get("param", 0)),
                   phase=str(d.get("phase", "run")),
                   rehome=bool(d.get("rehome", True)))


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, immutable set of faults to inject into one run."""

    events: Tuple[FaultEvent, ...] = ()
    seed: int = 0
    rate: float = 0.0

    # ------------------------------------------------------------------
    @classmethod
    def empty(cls) -> "FaultPlan":
        return cls(events=())

    @property
    def is_empty(self) -> bool:
        return not self.events

    def by_kind(self, kind: FaultKind) -> List[FaultEvent]:
        return [e for e in self.events if e.kind is kind]

    def crash_budget(self, task_names: List[str]) -> Dict[str, int]:
        """Map WORKER_CRASH events onto concrete task names.

        The event's ``target`` is an ordinal taken mod the task count, so
        a plan generated without knowing the task list still applies
        deterministically to any list.
        """
        budget: Dict[str, int] = {}
        if not task_names:
            return budget
        for ev in self.by_kind(FaultKind.WORKER_CRASH):
            name = task_names[ev.target % len(task_names)]
            budget[name] = budget.get(name, 0) + max(1, ev.param)
        return budget

    # ------------------------------------------------------------------
    # Serialization (tests pin canonical plans as JSON)
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps({
            "seed": self.seed,
            "rate": self.rate,
            "events": [e.to_dict() for e in self.events],
        }, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        d = json.loads(text)
        return cls(events=tuple(FaultEvent.from_dict(e)
                                for e in d.get("events", [])),
                   seed=int(d.get("seed", 0)),
                   rate=float(d.get("rate", 0.0)))

    def save(self, path: Union[str, os.PathLike]) -> None:
        Path(path).write_text(self.to_json() + "\n")

    @classmethod
    def load(cls, path: Union[str, os.PathLike]) -> "FaultPlan":
        return cls.from_json(Path(path).read_text())

    # ------------------------------------------------------------------
    @classmethod
    def generate(cls, seed: int, rate: float,
                 config: SystemConfig = DEFAULT_CONFIG,
                 tasks: int = 0) -> "FaultPlan":
        """Seeded random plan; the draw order below is part of the format.

        Categories are drawn in a fixed order (banks, links, pools, alloc
        ordinals, worker crashes) from one ``default_rng(seed)`` stream,
        so a given ``(seed, rate)`` pair names exactly one plan forever.
        Caps keep generated plans survivable: at most a quarter of the
        banks fail, at most 4 links (never disconnecting — the injector
        skips those at apply time), and alloc faults stay sparse.
        """
        # Imported here, not at module top: mesh pulls numpy-heavy modules
        # that plan-only consumers (the harness) don't otherwise need.
        from repro.arch.mesh import Mesh

        if rate < 0.0:
            raise ValueError("fault rate must be non-negative")
        rng = np.random.default_rng(seed)
        events: List[FaultEvent] = []

        nb = config.num_banks
        draws = rng.random(nb)
        failed = np.flatnonzero(draws < rate)[: max(1, nb // 4)]
        for i, b in enumerate(failed.tolist()):
            # Every third failed bank is non-re-homeable, so generated
            # plans exercise the host-fallback path too.
            events.append(FaultEvent(FaultKind.BANK_FAIL, int(b),
                                     rehome=(i % 3 != 2)))

        mesh = Mesh(config.noc.width, config.noc.height)
        pairs = mesh.undirected_interior_links()
        draws = rng.random(len(pairs))
        for i in np.flatnonzero(draws < rate / 2)[:4].tolist():
            a, b = pairs[int(i)]
            events.append(FaultEvent(FaultKind.LINK_FAIL, int(a), param=int(b)))

        for intrlv in (64, 128, 256, 512, 1024, 2048, 4096):
            if rng.random() < rate:
                events.append(FaultEvent(FaultKind.POOL_EXHAUST, intrlv,
                                         param=1 + int(rng.integers(0, 3)),
                                         phase="boot"))

        n_alloc = int(rng.poisson(rate * 20.0))
        if n_alloc:
            ordinals = np.unique(rng.integers(0, 2000, size=n_alloc))
            for o in ordinals.tolist():
                events.append(FaultEvent(FaultKind.ALLOC_FAIL, int(o),
                                         phase="boot"))

        for t in range(tasks):
            if rng.random() < rate:
                events.append(FaultEvent(FaultKind.WORKER_CRASH, t, param=1))

        return cls(events=tuple(events), seed=seed, rate=float(rate))

    def __str__(self) -> str:
        if self.is_empty:
            return "FaultPlan(empty)"
        lines = [f"FaultPlan(seed={self.seed}, rate={self.rate}, "
                 f"{len(self.events)} events)"]
        lines += [f"  - {e.describe()}" for e in self.events]
        return "\n".join(lines)
