"""Typed fault event log — every injected and handled fault, replayable.

The log is the contract between the injector and everything downstream:
the chaos CLI prints it, golden tests pin it, the property suite asserts
same-seed runs produce identical logs, and ``python -m repro lint
--fault-log`` replays it into CHS diagnostics.

Each :class:`FaultRecord` carries an *action* — what the degradation
machinery did about the fault:

===================  ===================================================
action               meaning
===================  ===================================================
``injected``         fault applied (or armed) as planned
``rehomed``          bank retired; IOT remap installed, footprint moved
``rerouted``         link removed; routing recomputed around it
``skipped``          fault could not apply (would disconnect the mesh,
                     bank already failed, no such pool) — benign
``alloc-degraded``   armed allocation fault fired; allocator degraded
``pool-fallback``    pool exhausted; allocation moved to another pool
``heap-fallback``    all pools exhausted; allocation fell back to heap
``retry``            offloaded stream retried (bounded backoff) after
                     touching a re-homed bank
``host-fallback``    offload abandoned; stream ran on the host cores
``crash``            worker crashed (injected)
``restart``          harness restarted a crashed worker
``not-triggered``    armed fault never fired during the run
``unhandled``        no degradation path fired — a chaos-suite failure
===================  ===================================================
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Union

if TYPE_CHECKING:
    from repro.analysis.diagnostics import DiagnosticReport

__all__ = ["FaultRecord", "FaultEventLog", "ACTIONS"]

ACTIONS = frozenset({
    "injected", "rehomed", "rerouted", "skipped", "alloc-degraded",
    "pool-fallback", "heap-fallback", "retry", "host-fallback",
    "crash", "restart", "not-triggered", "unhandled",
})

#: Actions that mean "a fault happened and something degraded gracefully".
HANDLED_ACTIONS = frozenset({
    "rehomed", "rerouted", "alloc-degraded", "pool-fallback",
    "heap-fallback", "retry", "host-fallback", "restart",
})


@dataclass(frozen=True)
class FaultRecord:
    """One log line: who, what, and how it was handled."""

    task: str      # workload/figure the record belongs to ("" = global)
    kind: str      # FaultKind value string ("bank-fail", ...)
    target: str    # kind-specific target ("17", "9-10", "256", ...)
    action: str    # see module docstring table
    detail: str = ""
    count: float = 0.0  # kind-specific magnitude (bytes moved, cycles, ...)

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ValueError(f"unknown fault action {self.action!r}")

    def to_dict(self) -> Dict:
        return {"task": self.task, "kind": self.kind, "target": self.target,
                "action": self.action, "detail": self.detail,
                "count": self.count}

    @classmethod
    def from_dict(cls, d: Dict) -> "FaultRecord":
        return cls(task=str(d.get("task", "")), kind=str(d["kind"]),
                   target=str(d["target"]), action=str(d["action"]),
                   detail=str(d.get("detail", "")),
                   count=float(d.get("count", 0.0)))

    def render(self) -> str:
        where = f"[{self.task}] " if self.task else ""
        tail = f" ({self.detail})" if self.detail else ""
        return f"{where}{self.kind} {self.target}: {self.action}{tail}"


class FaultEventLog:
    """Append-only ordered record list with value equality."""

    def __init__(self, records: Optional[List[FaultRecord]] = None) -> None:
        self.records: List[FaultRecord] = list(records) if records else []

    def add(self, record: FaultRecord) -> None:
        self.records.append(record)

    def extend(self, other: "FaultEventLog") -> None:
        self.records.extend(other.records)

    def __len__(self) -> int:
        return len(self.records)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FaultEventLog):
            return NotImplemented
        return self.records == other.records

    # ------------------------------------------------------------------
    def count(self, action: str) -> int:
        return sum(1 for r in self.records if r.action == action)

    @property
    def unhandled(self) -> List[FaultRecord]:
        return [r for r in self.records if r.action == "unhandled"]

    def handled_count(self) -> int:
        return sum(1 for r in self.records if r.action in HANDLED_ACTIONS)

    # ------------------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps([r.to_dict() for r in self.records], indent=2)

    @classmethod
    def from_json(cls, text: str) -> "FaultEventLog":
        return cls([FaultRecord.from_dict(d) for d in json.loads(text)])

    def save(self, path: Union[str, os.PathLike]) -> None:
        Path(path).write_text(self.to_json() + "\n")

    @classmethod
    def load(cls, path: Union[str, os.PathLike]) -> "FaultEventLog":
        return cls.from_json(Path(path).read_text())

    def render(self) -> str:
        if not self.records:
            return "(no fault events)"
        return "\n".join(r.render() for r in self.records)

    # ------------------------------------------------------------------
    def to_diagnostics(self) -> "DiagnosticReport":
        """Replay the log into afflint CHS diagnostics.

        ``unhandled`` records become CHS001 errors (the chaos-smoke CI
        gate), handled degradations become CHS002 notes, and armed-but-
        never-fired faults become CHS003 notes.
        """
        from repro.analysis.diagnostics import (Diagnostic, DiagnosticReport,
                                                Severity, Site)
        report = DiagnosticReport()
        for rec in self.records:
            site = Site(kind="fault", name=f"{rec.kind}:{rec.target}",
                        detail=rec.task)
            if rec.action == "unhandled":
                code, sev = "CHS001", Severity.ERROR
            elif rec.action in ("not-triggered", "skipped"):
                code, sev = "CHS003", Severity.NOTE
            else:
                code, sev = "CHS002", Severity.NOTE
            report.add(Diagnostic(code=code, severity=sev, site=site,
                                  message=f"{rec.action}: "
                                          f"{rec.detail or rec.render()}"))
        return report
