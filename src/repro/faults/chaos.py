"""``python -m repro chaos`` — clean-vs-faulted runs + degradation report.

For every requested workload the runner executes a *clean* run and a
*faulted* run (same mode, scale, and seed; the faulted one inside a
:func:`~repro.faults.injector.fault_session`), then reports how
gracefully the system degraded: slowdown, extra NoC flit-hops, achieved
stream locality, and the retry/fallback counts from the fault event log.

Determinism contract (pinned by ``tests/test_chaos_golden.py``):

* the same ``(plan, workloads, mode, scale, seed)`` produces an
  identical event log and degradation report, for ``--jobs 1`` and
  ``--jobs N`` alike — per-task logs are collected in the workers and
  merged in task order, never completion order;
* WORKER_CRASH events crash the worker *before* it computes; the parent
  restarts it (capped), so crashes change the report only by their
  ``crash``/``restart`` records.
"""

from __future__ import annotations

import argparse
import json
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from typing import TYPE_CHECKING

from repro.analysis.diagnostics import WorkerCrashError
from repro.faults.injector import fault_session
from repro.faults.log import FaultEventLog, FaultRecord
from repro.faults.plan import FaultKind, FaultPlan

if TYPE_CHECKING:
    from repro.interfere.plan import HostTrafficPlan

__all__ = ["ChaosReport", "run_chaos", "cli"]

#: Small, fast defaults covering both paper families: one affine kernel
#: (vecadd, Fig 4) and one graph kernel (pr_push, Fig 12).
DEFAULT_WORKLOADS = ("vecadd", "pr_push")

_MAX_TASK_RESTARTS = 3


# ----------------------------------------------------------------------
# Worker
# ----------------------------------------------------------------------
def _chaos_task(name: str, mode_name: str, scale: float, seed: int,
                plan_json: str, crash: bool,
                interfere_json: Optional[str] = None) -> Dict:
    """One workload's clean + faulted pair (runs in this or a worker
    process).  Returns plain data only, so results pickle and merge
    identically whatever the process layout.

    ``interfere_json`` (a serialized
    :class:`~repro.interfere.plan.HostTrafficPlan`) composes host
    contention into the *faulted* arm only — the question chaos answers
    is "how gracefully does the system degrade", and the clean arm is
    the yardstick.  The row gains an ``injected_messages`` entry only
    when interference is active, so plain chaos reports (and their
    goldens) stay byte-identical."""
    if crash:
        raise WorkerCrashError(name)
    from contextlib import ExitStack

    from repro.nsc.engine import EngineMode
    from repro.workloads.base import run_workload

    mode = EngineMode[mode_name]
    plan = FaultPlan.from_json(plan_json)

    from repro.harness.report import run_metrics

    clean = run_workload(name, mode, scale=scale, seed=seed)
    log = FaultEventLog()
    with ExitStack() as stack:
        interference = None
        if interfere_json is not None:
            from repro.interfere.engine import interfere_session
            from repro.interfere.plan import HostTrafficPlan
            interference = stack.enter_context(interfere_session(
                HostTrafficPlan.from_json(interfere_json), task=name))
        session = stack.enter_context(fault_session(plan, log, task=name))
        faulted = run_workload(name, mode, scale=scale, seed=seed)
        session.finalize()
        retries = sum(s.retries for s in session.states)
        host_fb = sum(s.host_fallbacks for s in session.states)

    row = {"workload": name,
           "clean": run_metrics(clean),
           "faulted": run_metrics(faulted),
           "retries": retries,
           "host_fallbacks": host_fb,
           "records": [r.to_dict() for r in log.records]}
    if interference is not None:
        row["injected_messages"] = sum(
            s.injected_messages for s in interference.states)
    return row


# ----------------------------------------------------------------------
# Report
# ----------------------------------------------------------------------
@dataclass
class ChaosReport:
    """Aggregate of one :func:`run_chaos` invocation."""

    plan: FaultPlan
    mode: str
    scale: float
    seed: int
    rows: List[Dict] = field(default_factory=list)
    log: FaultEventLog = field(default_factory=FaultEventLog)
    restarts: Dict[str, int] = field(default_factory=dict)
    #: Host-traffic plan composed into the faulted arms, if any.  Joins
    #: the payload only when set, so plain chaos reports keep their
    #: pre-interference bytes.
    interfere: Optional["HostTrafficPlan"] = None

    @property
    def unhandled_count(self) -> int:
        return self.log.count("unhandled")

    def to_dict(self) -> Dict:
        payload = {"plan": json.loads(self.plan.to_json()),
                   "mode": self.mode, "scale": self.scale, "seed": self.seed,
                   "rows": self.rows,
                   "restarts": dict(sorted(self.restarts.items())),
                   "handled_faults": self.log.handled_count(),
                   "unhandled_faults": self.unhandled_count}
        if self.interfere is not None:
            payload["interfere"] = json.loads(self.interfere.to_json())
        return payload

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=1) + "\n"

    def render(self) -> str:
        from repro.harness.report import ascii_table, ratio, section
        headers = ["workload", "slowdown", "extra hops", "locality clean",
                   "locality faulted", "retries", "host-fb", "restarts"]
        contended = self.interfere is not None
        if contended:
            headers.append("inj msgs")
        table_rows = []
        for row in self.rows:
            c, f = row["clean"], row["faulted"]
            slowdown = ratio(f["cycles"], c["cycles"])
            cells = [
                row["workload"], f"{slowdown:.2f}x",
                f"{f['flit_hops'] - c['flit_hops']:.0f}",
                f"{c['locality']:.3f}", f"{f['locality']:.3f}",
                row["retries"], row["host_fallbacks"],
                self.restarts.get(row["workload"], 0)]
            if contended:
                cells.append(f"{row.get('injected_messages', 0.0):.0f}")
            table_rows.append(cells)
        lines = [str(self.plan), "",
                 section("Degradation report",
                         ascii_table(headers, table_rows)), "",
                 section("Fault event log", self.log.render()), "",
                 f"handled: {self.log.handled_count()}  "
                 f"unhandled: {self.unhandled_count}"]
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Runner
# ----------------------------------------------------------------------
def run_chaos(workloads: Sequence[str], plan: FaultPlan,
              mode: str = "AFF_ALLOC", scale: float = 0.05, seed: int = 0,
              jobs: int = 1,
              progress: Optional[Callable[[str], None]] = None,
              interfere: Optional["HostTrafficPlan"] = None) -> ChaosReport:
    """Run clean-vs-faulted pairs for every workload under one plan.

    WORKER_CRASH events are consumed here (budget mapped over the
    workload list by ordinal); all other events ride into the workers
    via the serialized plan and apply inside each task's fault session.
    ``interfere`` additionally composes a host-traffic plan into every
    faulted arm (see :func:`_chaos_task`); ``None`` — or an *empty*
    plan, which attaches nothing — leaves the report byte-identical to
    a plain chaos run.
    """
    notify = progress or (lambda line: None)
    plan_json = plan.to_json()
    interfere_json: Optional[str] = None
    if interfere is not None and not interfere.is_empty:
        interfere_json = interfere.to_json()
    crashes = plan.crash_budget(list(workloads))
    jobs = max(1, int(jobs))

    results: Dict[str, Dict] = {}
    restarts: Dict[str, int] = {}

    def _attempt_loop(run_once: Callable[[bool], Dict], name: str) -> Dict:
        remaining = crashes.get(name, 0)
        attempt = 0
        while True:
            try:
                return run_once(remaining > 0)
            except WorkerCrashError:
                remaining -= 1
                attempt += 1
                restarts[name] = restarts.get(name, 0) + 1
                if attempt > _MAX_TASK_RESTARTS:
                    raise
                notify(f"[restart] {name} worker crashed (injected); "
                       f"restart {attempt}/{_MAX_TASK_RESTARTS}")

    if jobs == 1 or len(workloads) <= 1:
        for name in workloads:
            results[name] = _attempt_loop(
                lambda c, n=name: _chaos_task(n, mode, scale, seed,
                                              plan_json, c, interfere_json),
                name)
            notify(f"[done] {name}")
    else:
        with ProcessPoolExecutor(max_workers=min(jobs, len(workloads))) as pool:
            remaining = dict(crashes)
            attempts: Dict[str, int] = {}
            futs = {pool.submit(_chaos_task, name, mode, scale, seed,
                                plan_json, remaining.get(name, 0) > 0,
                                interfere_json): name
                    for name in workloads}
            while futs:
                fut = next(as_completed(futs))
                name = futs.pop(fut)
                try:
                    results[name] = fut.result()
                except WorkerCrashError:
                    remaining[name] = remaining.get(name, 0) - 1
                    attempts[name] = attempts.get(name, 0) + 1
                    restarts[name] = restarts.get(name, 0) + 1
                    if attempts[name] > _MAX_TASK_RESTARTS:
                        raise
                    notify(f"[restart] {name} worker crashed (injected); "
                           f"restart {attempts[name]}/{_MAX_TASK_RESTARTS}")
                    futs[pool.submit(_chaos_task, name, mode, scale, seed,
                                     plan_json,
                                     remaining.get(name, 0) > 0,
                                     interfere_json)] = name
                    continue
                notify(f"[done] {name}")

    # Merge in task order (never completion order) so jobs=1 and jobs=N
    # produce identical logs and reports.
    log = FaultEventLog()
    rows: List[Dict] = []
    for name in workloads:
        r = results[name]
        for _ in range(restarts.get(name, 0)):
            log.add(FaultRecord(task=name, kind=FaultKind.WORKER_CRASH.value,
                                target=name, action="crash",
                                detail="injected worker crash"))
            log.add(FaultRecord(task=name, kind=FaultKind.WORKER_CRASH.value,
                                target=name, action="restart",
                                detail="harness restarted the worker"))
        for rec in r["records"]:
            log.add(FaultRecord.from_dict(rec))
        keys = ("workload", "clean", "faulted", "retries", "host_fallbacks")
        row = {k: r[k] for k in keys}
        if "injected_messages" in r:
            row["injected_messages"] = r["injected_messages"]
        rows.append(row)
    return ChaosReport(plan=plan, mode=mode, scale=scale, seed=seed,
                       rows=rows, log=log, restarts=restarts,
                       interfere=interfere if interfere_json else None)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def cli(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro chaos",
        description="Deterministic fault injection: run workloads under a "
                    "fault plan and report graceful degradation.")
    parser.add_argument("workloads", nargs="*", default=[],
                        help=f"workload names (default: "
                             f"{', '.join(DEFAULT_WORKLOADS)})")
    parser.add_argument("--plan", type=Path, default=None,
                        help="JSON fault plan file (overrides --seed/--rate)")
    parser.add_argument("--interfere", type=Path, default=None,
                        help="JSON host-traffic plan to compose into the "
                             "faulted arms (see 'python -m repro interfere "
                             "--save-plan')")
    parser.add_argument("--seed", type=int, default=0,
                        help="plan-generation / run seed (default 0)")
    parser.add_argument("--rate", type=float, default=0.05,
                        help="per-resource fault probability for generated "
                             "plans (default 0.05)")
    parser.add_argument("--mode", default="AFF_ALLOC",
                        choices=["IN_CORE", "NEAR_L3", "AFF_ALLOC"],
                        help="engine mode for the runs (default AFF_ALLOC)")
    parser.add_argument("--scale", type=float, default=0.05,
                        help="workload scale (default 0.05)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (default 1)")
    parser.add_argument("--save-log", type=Path, default=None,
                        help="write the fault event log JSON here")
    parser.add_argument("--save-report", type=Path, default=None,
                        help="write the degradation report JSON here")
    args = parser.parse_args(argv)

    workloads = args.workloads or list(DEFAULT_WORKLOADS)
    from repro.workloads import WORKLOADS
    bad = [w for w in workloads if w not in WORKLOADS]
    if bad:
        parser.error(f"unknown workload(s): {', '.join(bad)}; "
                     f"try 'python -m repro list'")
    # Unreadable/invalid plan files are *usage* errors (exit 2, argparse
    # convention), not check failures — parser.error both halves.
    if args.plan is not None:
        try:
            plan = FaultPlan.load(args.plan)
        except (OSError, ValueError, KeyError) as exc:
            parser.error(f"cannot load fault plan {args.plan}: {exc}")
    else:
        plan = FaultPlan.generate(args.seed, args.rate, tasks=len(workloads))
    interfere = None
    if args.interfere is not None:
        from repro.interfere.plan import HostTrafficPlan
        try:
            interfere = HostTrafficPlan.load(args.interfere)
        except (OSError, ValueError, KeyError) as exc:
            parser.error(f"cannot load host-traffic plan "
                         f"{args.interfere}: {exc}")

    report = run_chaos(workloads, plan, mode=args.mode, scale=args.scale,
                       seed=args.seed, jobs=args.jobs, progress=print,
                       interfere=interfere)
    print(report.render())
    if args.save_log is not None:
        report.log.save(args.save_log)
        print(f"fault log -> {args.save_log}")
    if args.save_report is not None:
        args.save_report.write_text(report.to_json(), encoding="utf-8")
        print(f"degradation report -> {args.save_report}")
    from repro.harness.cliutil import EXIT_FAILURE, EXIT_OK
    if report.unhandled_count:
        print(f"ERROR: {report.unhandled_count} unhandled fault event(s)")
        return EXIT_FAILURE
    return EXIT_OK
