"""``python -m repro chaos`` — clean-vs-faulted runs + degradation report.

For every requested workload the runner executes a *clean* run and a
*faulted* run (same mode, scale, and seed; the faulted one inside a
:func:`~repro.faults.injector.fault_session`), then reports how
gracefully the system degraded: slowdown, extra NoC flit-hops, achieved
stream locality, and the retry/fallback counts from the fault event log.

Determinism contract (pinned by ``tests/test_chaos_golden.py``):

* the same ``(plan, workloads, mode, scale, seed)`` produces an
  identical event log and degradation report, for ``--jobs 1`` and
  ``--jobs N`` alike — per-task logs are collected in the workers and
  merged in task order, never completion order;
* WORKER_CRASH events crash the worker *before* it computes; the parent
  restarts it (capped), so crashes change the report only by their
  ``crash``/``restart`` records.
"""

from __future__ import annotations

import argparse
import json
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis.diagnostics import WorkerCrashError
from repro.faults.injector import fault_session
from repro.faults.log import FaultEventLog, FaultRecord
from repro.faults.plan import FaultKind, FaultPlan

__all__ = ["ChaosReport", "run_chaos", "cli"]

#: Small, fast defaults covering both paper families: one affine kernel
#: (vecadd, Fig 4) and one graph kernel (pr_push, Fig 12).
DEFAULT_WORKLOADS = ("vecadd", "pr_push")

_MAX_TASK_RESTARTS = 3


# ----------------------------------------------------------------------
# Worker
# ----------------------------------------------------------------------
def _chaos_task(name: str, mode_name: str, scale: float, seed: int,
                plan_json: str, crash: bool) -> Dict:
    """One workload's clean + faulted pair (runs in this or a worker
    process).  Returns plain data only, so results pickle and merge
    identically whatever the process layout."""
    if crash:
        raise WorkerCrashError(name)
    from repro.nsc.engine import EngineMode
    from repro.workloads.base import run_workload

    mode = EngineMode[mode_name]
    plan = FaultPlan.from_json(plan_json)

    from repro.harness.report import run_metrics

    clean = run_workload(name, mode, scale=scale, seed=seed)
    log = FaultEventLog()
    with fault_session(plan, log, task=name) as session:
        faulted = run_workload(name, mode, scale=scale, seed=seed)
        session.finalize()
        retries = sum(s.retries for s in session.states)
        host_fb = sum(s.host_fallbacks for s in session.states)

    return {"workload": name,
            "clean": run_metrics(clean),
            "faulted": run_metrics(faulted),
            "retries": retries,
            "host_fallbacks": host_fb,
            "records": [r.to_dict() for r in log.records]}


# ----------------------------------------------------------------------
# Report
# ----------------------------------------------------------------------
@dataclass
class ChaosReport:
    """Aggregate of one :func:`run_chaos` invocation."""

    plan: FaultPlan
    mode: str
    scale: float
    seed: int
    rows: List[Dict] = field(default_factory=list)
    log: FaultEventLog = field(default_factory=FaultEventLog)
    restarts: Dict[str, int] = field(default_factory=dict)

    @property
    def unhandled_count(self) -> int:
        return self.log.count("unhandled")

    def to_dict(self) -> Dict:
        return {"plan": json.loads(self.plan.to_json()),
                "mode": self.mode, "scale": self.scale, "seed": self.seed,
                "rows": self.rows,
                "restarts": dict(sorted(self.restarts.items())),
                "handled_faults": self.log.handled_count(),
                "unhandled_faults": self.unhandled_count}

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=1) + "\n"

    def render(self) -> str:
        from repro.harness.report import ascii_table, ratio, section
        headers = ["workload", "slowdown", "extra hops", "locality clean",
                   "locality faulted", "retries", "host-fb", "restarts"]
        table_rows = []
        for row in self.rows:
            c, f = row["clean"], row["faulted"]
            slowdown = ratio(f["cycles"], c["cycles"])
            table_rows.append([
                row["workload"], f"{slowdown:.2f}x",
                f"{f['flit_hops'] - c['flit_hops']:.0f}",
                f"{c['locality']:.3f}", f"{f['locality']:.3f}",
                row["retries"], row["host_fallbacks"],
                self.restarts.get(row["workload"], 0)])
        lines = [str(self.plan), "",
                 section("Degradation report",
                         ascii_table(headers, table_rows)), "",
                 section("Fault event log", self.log.render()), "",
                 f"handled: {self.log.handled_count()}  "
                 f"unhandled: {self.unhandled_count}"]
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Runner
# ----------------------------------------------------------------------
def run_chaos(workloads: Sequence[str], plan: FaultPlan,
              mode: str = "AFF_ALLOC", scale: float = 0.05, seed: int = 0,
              jobs: int = 1,
              progress: Optional[Callable[[str], None]] = None) -> ChaosReport:
    """Run clean-vs-faulted pairs for every workload under one plan.

    WORKER_CRASH events are consumed here (budget mapped over the
    workload list by ordinal); all other events ride into the workers
    via the serialized plan and apply inside each task's fault session.
    """
    notify = progress or (lambda line: None)
    plan_json = plan.to_json()
    crashes = plan.crash_budget(list(workloads))
    jobs = max(1, int(jobs))

    results: Dict[str, Dict] = {}
    restarts: Dict[str, int] = {}

    def _attempt_loop(run_once: Callable[[bool], Dict], name: str) -> Dict:
        remaining = crashes.get(name, 0)
        attempt = 0
        while True:
            try:
                return run_once(remaining > 0)
            except WorkerCrashError:
                remaining -= 1
                attempt += 1
                restarts[name] = restarts.get(name, 0) + 1
                if attempt > _MAX_TASK_RESTARTS:
                    raise
                notify(f"[restart] {name} worker crashed (injected); "
                       f"restart {attempt}/{_MAX_TASK_RESTARTS}")

    if jobs == 1 or len(workloads) <= 1:
        for name in workloads:
            results[name] = _attempt_loop(
                lambda c, n=name: _chaos_task(n, mode, scale, seed,
                                              plan_json, c), name)
            notify(f"[done] {name}")
    else:
        with ProcessPoolExecutor(max_workers=min(jobs, len(workloads))) as pool:
            remaining = dict(crashes)
            attempts: Dict[str, int] = {}
            futs = {pool.submit(_chaos_task, name, mode, scale, seed,
                                plan_json, remaining.get(name, 0) > 0): name
                    for name in workloads}
            while futs:
                fut = next(as_completed(futs))
                name = futs.pop(fut)
                try:
                    results[name] = fut.result()
                except WorkerCrashError:
                    remaining[name] = remaining.get(name, 0) - 1
                    attempts[name] = attempts.get(name, 0) + 1
                    restarts[name] = restarts.get(name, 0) + 1
                    if attempts[name] > _MAX_TASK_RESTARTS:
                        raise
                    notify(f"[restart] {name} worker crashed (injected); "
                           f"restart {attempts[name]}/{_MAX_TASK_RESTARTS}")
                    futs[pool.submit(_chaos_task, name, mode, scale, seed,
                                     plan_json,
                                     remaining.get(name, 0) > 0)] = name
                    continue
                notify(f"[done] {name}")

    # Merge in task order (never completion order) so jobs=1 and jobs=N
    # produce identical logs and reports.
    log = FaultEventLog()
    rows: List[Dict] = []
    for name in workloads:
        r = results[name]
        for _ in range(restarts.get(name, 0)):
            log.add(FaultRecord(task=name, kind=FaultKind.WORKER_CRASH.value,
                                target=name, action="crash",
                                detail="injected worker crash"))
            log.add(FaultRecord(task=name, kind=FaultKind.WORKER_CRASH.value,
                                target=name, action="restart",
                                detail="harness restarted the worker"))
        for rec in r["records"]:
            log.add(FaultRecord.from_dict(rec))
        rows.append({k: r[k] for k in ("workload", "clean", "faulted",
                                       "retries", "host_fallbacks")})
    return ChaosReport(plan=plan, mode=mode, scale=scale, seed=seed,
                       rows=rows, log=log, restarts=restarts)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def cli(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro chaos",
        description="Deterministic fault injection: run workloads under a "
                    "fault plan and report graceful degradation.")
    parser.add_argument("workloads", nargs="*", default=[],
                        help=f"workload names (default: "
                             f"{', '.join(DEFAULT_WORKLOADS)})")
    parser.add_argument("--plan", type=Path, default=None,
                        help="JSON fault plan file (overrides --seed/--rate)")
    parser.add_argument("--seed", type=int, default=0,
                        help="plan-generation / run seed (default 0)")
    parser.add_argument("--rate", type=float, default=0.05,
                        help="per-resource fault probability for generated "
                             "plans (default 0.05)")
    parser.add_argument("--mode", default="AFF_ALLOC",
                        choices=["IN_CORE", "NEAR_L3", "AFF_ALLOC"],
                        help="engine mode for the runs (default AFF_ALLOC)")
    parser.add_argument("--scale", type=float, default=0.05,
                        help="workload scale (default 0.05)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (default 1)")
    parser.add_argument("--save-log", type=Path, default=None,
                        help="write the fault event log JSON here")
    parser.add_argument("--save-report", type=Path, default=None,
                        help="write the degradation report JSON here")
    args = parser.parse_args(argv)

    workloads = args.workloads or list(DEFAULT_WORKLOADS)
    from repro.workloads import WORKLOADS
    bad = [w for w in workloads if w not in WORKLOADS]
    if bad:
        parser.error(f"unknown workload(s): {', '.join(bad)}; "
                     f"try 'python -m repro list'")
    if args.plan is not None:
        plan = FaultPlan.load(args.plan)
    else:
        plan = FaultPlan.generate(args.seed, args.rate, tasks=len(workloads))

    report = run_chaos(workloads, plan, mode=args.mode, scale=args.scale,
                       seed=args.seed, jobs=args.jobs, progress=print)
    print(report.render())
    if args.save_log is not None:
        report.log.save(args.save_log)
        print(f"fault log -> {args.save_log}")
    if args.save_report is not None:
        args.save_report.write_text(report.to_json(), encoding="utf-8")
        print(f"degradation report -> {args.save_report}")
    from repro.harness.cliutil import EXIT_FAILURE, EXIT_OK
    if report.unhandled_count:
        print(f"ERROR: {report.unhandled_count} unhandled fault event(s)")
        return EXIT_FAILURE
    return EXIT_OK
