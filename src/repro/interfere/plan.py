"""Typed host-traffic plans: who the host hammers, how hard, and when.

A :class:`HostTrafficPlan` is an ordered tuple of :class:`HostStream`\\ s.
Plans are either authored explicitly (tests pin canonical plans as JSON
files) or generated from a seed + intensity, in which case generation is
fully deterministic: the same ``(seed, intensity, config)`` always yields
the same plan, independent of host, process count, or interning.

Stream semantics (the ``tile``/``targets`` encoding per kind):

=============  =======================  ================================
kind           tile                     targets
=============  =======================  ================================
``READ``       host injection tile      LLC banks read each epoch
``WRITE``      host injection tile      LLC banks written each epoch
``ATOMIC``     host injection tile      LLC banks hit with atomics
``LINK``       source tile              destination tiles (raw transfers)
=============  =======================  ================================

``intensity`` is the mean message count the stream issues per NDC epoch
(the engine charges one batch at every :meth:`RunRecorder.end_phase`).
``burst`` in ``[0, 1)`` modulates each epoch's count by a seeded factor
in ``[1-burst, 1+burst]`` drawn from ``default_rng([seed, stream, epoch])``
— independent of intensity, so scaling a plan up or down never changes
the burst pattern and slowdown stays monotone in intensity.
``start``/``stop`` gate the stream to an epoch window (``stop=-1`` means
"until the run ends").
"""

from __future__ import annotations

import enum
import hashlib
import json
import os
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, List, Tuple, Union

import numpy as np

from repro.config import DEFAULT_CONFIG, SystemConfig

__all__ = ["HostStreamKind", "HostStream", "HostTrafficPlan",
           "burst_multiplier", "predict_host_injection"]


class HostStreamKind(enum.Enum):
    READ = "read"
    WRITE = "write"
    ATOMIC = "atomic"
    LINK = "link"


#: Stream kinds whose targets are LLC banks (and therefore follow IOT
#: re-homes when chaos retires a bank mid-run).
BANK_KINDS = (HostStreamKind.READ, HostStreamKind.WRITE,
              HostStreamKind.ATOMIC)


def burst_multiplier(seed: int, stream_idx: int, epoch: int,
                     burst: float) -> float:
    """Per-epoch intensity modulation factor in ``[1-burst, 1+burst]``.

    Keyed by (plan seed, stream index, epoch index) only — deliberately
    *not* by intensity — so :meth:`HostTrafficPlan.scaled` sweeps are
    strictly monotone and the pure predictor replays the engine exactly.
    """
    if burst <= 0.0:
        return 1.0
    u = float(np.random.default_rng([seed, stream_idx, epoch]).random())
    return 1.0 + burst * (2.0 * u - 1.0)


@dataclass(frozen=True)
class HostStream:
    """One typed host traffic stream; immutable so plans hash/compare."""

    kind: HostStreamKind
    tile: int
    targets: Tuple[int, ...]
    intensity: float
    start: int = 0
    stop: int = -1
    burst: float = 0.0

    def __post_init__(self) -> None:
        if self.tile < 0:
            raise ValueError(f"tile must be non-negative, got {self.tile}")
        if not self.targets:
            raise ValueError("stream must name at least one target")
        if any(t < 0 for t in self.targets):
            raise ValueError("targets must be non-negative")
        if self.intensity < 0.0:
            raise ValueError(
                f"intensity must be non-negative, got {self.intensity}")
        if not (0.0 <= self.burst < 1.0):
            raise ValueError(f"burst must be in [0, 1), got {self.burst}")
        if self.start < 0:
            raise ValueError(f"start must be non-negative, got {self.start}")
        if self.stop != -1 and self.stop <= self.start:
            raise ValueError("stop must be -1 or greater than start")

    def active(self, epoch: int) -> bool:
        return self.start <= epoch and (self.stop < 0 or epoch < self.stop)

    def describe(self) -> str:
        window = (f"epochs {self.start}.." if self.stop < 0
                  else f"epochs {self.start}..{self.stop}")
        tgt = ",".join(str(t) for t in self.targets)
        noun = "tiles" if self.kind is HostStreamKind.LINK else "banks"
        extra = f", burst {self.burst:.2f}" if self.burst else ""
        return (f"host {self.kind.value} from tile {self.tile} onto "
                f"{noun} [{tgt}] @ {self.intensity:g} msg/epoch "
                f"({window}{extra})")

    def to_dict(self) -> Dict:
        return {"kind": self.kind.value, "tile": self.tile,
                "targets": list(self.targets),
                "intensity": self.intensity, "start": self.start,
                "stop": self.stop, "burst": self.burst}

    @classmethod
    def from_dict(cls, d: Dict) -> "HostStream":
        return cls(kind=HostStreamKind(d["kind"]), tile=int(d["tile"]),
                   targets=tuple(int(t) for t in d["targets"]),
                   intensity=float(d["intensity"]),
                   start=int(d.get("start", 0)),
                   stop=int(d.get("stop", -1)),
                   burst=float(d.get("burst", 0.0)))


@dataclass(frozen=True)
class HostTrafficPlan:
    """An ordered, immutable set of host streams to run against one NDC
    run.  The empty plan is the clean host: attaching it is a no-op and
    runs stay byte-identical to uncontended ones."""

    streams: Tuple[HostStream, ...] = ()
    seed: int = 0
    intensity: float = 0.0

    # ------------------------------------------------------------------
    @classmethod
    def empty(cls) -> "HostTrafficPlan":
        return cls(streams=())

    @property
    def is_empty(self) -> bool:
        return not self.streams

    def by_kind(self, kind: HostStreamKind) -> List[HostStream]:
        return [s for s in self.streams if s.kind is kind]

    def scaled(self, factor: float) -> "HostTrafficPlan":
        """Same streams, intensities multiplied by ``factor``.

        Burst modulation is keyed by (seed, stream, epoch) only, so a
        scaled plan replays the identical burst pattern — the basis of
        the monotone-slowdown property the tests pin.
        """
        if factor < 0.0:
            raise ValueError("scale factor must be non-negative")
        return HostTrafficPlan(
            streams=tuple(replace(s, intensity=s.intensity * factor)
                          for s in self.streams),
            seed=self.seed, intensity=self.intensity * factor)

    # ------------------------------------------------------------------
    # Serialization (tests pin canonical plans as JSON)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        return {"seed": self.seed, "intensity": self.intensity,
                "streams": [s.to_dict() for s in self.streams]}

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, d: Dict) -> "HostTrafficPlan":
        return cls(streams=tuple(HostStream.from_dict(s)
                                 for s in d.get("streams", [])),
                   seed=int(d.get("seed", 0)),
                   intensity=float(d.get("intensity", 0.0)))

    @classmethod
    def from_json(cls, text: str) -> "HostTrafficPlan":
        return cls.from_dict(json.loads(text))

    def save(self, path: Union[str, os.PathLike]) -> None:
        Path(path).write_text(self.to_json() + "\n")

    @classmethod
    def load(cls, path: Union[str, os.PathLike]) -> "HostTrafficPlan":
        return cls.from_json(Path(path).read_text())

    def digest(self) -> str:
        """Stable 12-hex fingerprint, used to extend run cache keys."""
        blob = json.dumps(self.to_dict(), sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()[:12]

    # ------------------------------------------------------------------
    @classmethod
    def generate(cls, seed: int, intensity: float = 1.0,
                 config: SystemConfig = DEFAULT_CONFIG) -> "HostTrafficPlan":
        """Seeded random plan; the draw order below is part of the format.

        Stream categories are drawn in a fixed order (hot banks, reads,
        writes, one atomic stream, link streams) from one
        ``default_rng(seed)`` stream, so a ``(seed, intensity)`` pair
        names exactly one plan forever.  The shape mirrors a host that
        keeps working while NDC runs: corner-tile memory controllers
        streaming over a hot subset of banks, plus DMA-style tile-to-tile
        transfers crossing the mesh center.
        """
        if intensity < 0.0:
            raise ValueError("host intensity must be non-negative")
        rng = np.random.default_rng(seed)
        streams: List[HostStream] = []
        if intensity == 0.0:
            return cls(streams=(), seed=seed, intensity=0.0)

        nb = config.num_banks
        w, h = config.noc.width, config.noc.height
        corners = (0, w - 1, (h - 1) * w, w * h - 1)

        # Hot-bank working set: ~1/8 of the banks, at least 2.
        n_hot = max(2, nb // 8)
        hot = np.sort(rng.choice(nb, size=min(n_hot, nb), replace=False))
        hot_tuple = tuple(int(b) for b in hot.tolist())

        # Read streams from every corner over the hot set.
        base = 24.0 * intensity
        for c in corners:
            streams.append(HostStream(
                HostStreamKind.READ, int(c), hot_tuple,
                intensity=base * float(0.75 + 0.5 * rng.random()),
                burst=float(0.25 * rng.random())))

        # Write-backs from two opposite corners over half the hot set.
        half = hot_tuple[: max(1, len(hot_tuple) // 2)]
        for c in (corners[0], corners[3]):
            streams.append(HostStream(
                HostStreamKind.WRITE, int(c), half,
                intensity=0.5 * base * float(0.75 + 0.5 * rng.random()),
                burst=float(0.25 * rng.random())))

        # One atomic stream on the single hottest bank (lock word / queue
        # tail shared with the host).
        hottest = hot_tuple[int(rng.integers(0, len(hot_tuple)))]
        streams.append(HostStream(
            HostStreamKind.ATOMIC, int(corners[1]), (int(hottest),),
            intensity=0.25 * base))

        # DMA-style link streams crossing the center of the mesh.
        center = (h // 2) * w + w // 2
        for c in (corners[0], corners[2]):
            streams.append(HostStream(
                HostStreamKind.LINK, int(c), (int(center),),
                intensity=0.5 * base * float(0.75 + 0.5 * rng.random())))

        return cls(streams=tuple(streams), seed=seed,
                   intensity=float(intensity))

    def describe(self) -> List[str]:
        return [s.describe() for s in self.streams]

    def __str__(self) -> str:
        if self.is_empty:
            return "HostTrafficPlan(empty)"
        lines = [f"HostTrafficPlan(seed={self.seed}, "
                 f"intensity={self.intensity:g}, "
                 f"{len(self.streams)} streams)"]
        lines += [f"  - {s.describe()}" for s in self.streams]
        return "\n".join(lines)


def predict_host_injection(plan: HostTrafficPlan, epochs: int,
                           num_banks: int) -> Dict[str, np.ndarray]:
    """Pure replay of the engine's injection algebra — no machine needed.

    Returns the plan-space (pre-IOT-remap) per-bank access and atomic
    vectors plus the total message count after ``epochs`` host epochs.
    The INT006 analysis check compares these against what an
    :class:`~repro.interfere.engine.InterferenceState` actually charged;
    any divergence means the engine and the model disagree about the
    injected contention.
    """
    accesses = np.zeros(num_banks, dtype=np.float64)
    atomics = np.zeros(num_banks, dtype=np.float64)
    messages = 0.0
    for epoch in range(epochs):
        for idx, s in enumerate(plan.streams):
            if not s.active(epoch) or s.intensity <= 0.0:
                continue
            n = s.intensity * burst_multiplier(plan.seed, idx, epoch, s.burst)
            targets = np.asarray(s.targets, dtype=np.int64)
            per = n / targets.size
            if s.kind is HostStreamKind.READ:
                # request + line response per message, one bank access
                np.add.at(accesses, targets[targets < num_banks], per)
                messages += 2.0 * n
            elif s.kind is HostStreamKind.WRITE:
                # request + response + writeback, two bank accesses
                np.add.at(accesses, targets[targets < num_banks], 2.0 * per)
                messages += 3.0 * n
            elif s.kind is HostStreamKind.ATOMIC:
                np.add.at(atomics, targets[targets < num_banks], per)
                messages += n
            else:  # LINK: raw transfer, no bank involvement
                messages += n
    return {"bank_accesses": accesses, "bank_atomics": atomics,
            "messages": np.float64(messages)}
