"""Concurrent-host interference: deterministic contention injection.

The paper evaluates NDC workloads in isolation; production near-data
execution shares the LLC banks, NoC links, and DRAM controllers with a
host that never stops issuing traffic (CHoNDA's "not-so-near" case).
This package injects that host as a seeded :class:`HostTrafficPlan` —
typed read/write/atomic/link streams charged through the run's real
:class:`~repro.arch.noc.TrafficAccountant` and bank counters, so NDC
runs slow down for physical reasons the perf model already prices.

Wiring follows the faults/relayout/trace house pattern: a process-global
session, a per-machine state behind ``machine.interference``, and
``is None`` guards on every hook so clean runs execute the exact
original instruction stream.
"""

from repro.interfere.plan import (
    HostStream,
    HostStreamKind,
    HostTrafficPlan,
    burst_multiplier,
    predict_host_injection,
)
from repro.interfere.engine import (
    InterferenceSession,
    InterferenceState,
    active_interference_session,
    interfere_session,
)

__all__ = [
    "HostStream",
    "HostStreamKind",
    "HostTrafficPlan",
    "burst_multiplier",
    "predict_host_injection",
    "InterferenceSession",
    "InterferenceState",
    "active_interference_session",
    "interfere_session",
]
