"""The interference engine: charges a host-traffic plan into real runs.

Lifecycle (mirrors :mod:`repro.faults.injector`):

1. A caller opens ``with interfere_session(plan, task=...)``.  The
   session becomes process-globally *active*.
2. ``make_context`` (workloads/base.py) builds the :class:`Machine` and,
   if a session is active and the plan is non-empty, calls
   :meth:`InterferenceSession.attach` — creating an
   :class:`InterferenceState` bound to that machine
   (``machine.interference``).  Empty plans attach *nothing*: the clean
   path stays structurally identical, not merely numerically.
3. :meth:`~repro.perf.stats.RunRecorder.end_phase` consults
   ``machine.interference`` through a cheap ``is None`` guard and, when
   present, injects one host epoch of traffic *before* sealing the
   phase — so the injected messages land inside the phase the NDC work
   ran in and the perf model prices the contention into that phase's
   link/bank bottlenecks.
4. Injection charges go through the run's real
   :class:`~repro.arch.noc.TrafficAccountant` and bank counters with the
   executor's own message conventions (request/response/writeback), so
   slowdowns come from the same physics as NDC traffic — no synthetic
   penalty terms anywhere.

Bank-targeted streams pass through the IOT bank remap
(:meth:`~repro.arch.iot.InterleaveOverrideTable.remap_banks`): when chaos
retires a bank mid-run, the host's traffic follows the re-home exactly as
NDC traffic does.  The *plan-space* (pre-remap) tallies are kept
separately so the INT006 analysis check can verify the engine against the
pure :func:`~repro.interfere.plan.predict_host_injection` replay even
under fault composition.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional

import numpy as np

from repro.arch.noc import MessageClass
from repro.interfere.plan import (
    HostStream,
    HostStreamKind,
    HostTrafficPlan,
    burst_multiplier,
)

if TYPE_CHECKING:
    from repro.machine import Machine
    from repro.perf.stats import RunRecorder

__all__ = ["InterferenceState", "InterferenceSession", "interfere_session",
           "active_interference_session"]

#: Header-only host request payload (same figure the executor uses for
#: indirect requests).
_REQ_BYTES = 8
#: Payload of a DMA-style tile-to-tile host transfer (one cache line).
_LINK_BYTES = 64


class InterferenceState:
    """Per-machine interference state: the plan, the epoch cursor, and
    the injected-traffic ledger.  Created by
    :meth:`InterferenceSession.attach`; reachable as
    ``machine.interference``."""

    def __init__(self, plan: HostTrafficPlan, machine: "Machine",
                 task: str = "") -> None:
        self.plan = plan
        self.task = task
        self._machine = machine
        #: Host epochs injected so far (== NDC phases sealed so far).
        self.epoch_index = 0
        nb = machine.num_banks
        #: Post-remap bank accesses actually charged (what the perf model
        #: timed).
        self.injected_bank_accesses = np.zeros(nb, dtype=np.float64)
        #: Plan-space (pre-remap) bank accesses — the INT006 oracle space.
        self.injected_raw_accesses = np.zeros(nb, dtype=np.float64)
        self.injected_bank_atomics = np.zeros(nb, dtype=np.float64)
        self.injected_raw_atomics = np.zeros(nb, dtype=np.float64)
        #: Total host messages placed on the NoC.
        self.injected_messages = 0.0
        #: Per-epoch record: (phase label, messages this epoch).
        self.epochs: List[Dict[str, object]] = []
        self._line_bytes = machine.config.cache.line_bytes

    # ------------------------------------------------------------------
    def on_epoch(self, recorder: "RunRecorder", label: str) -> None:
        """Inject one host epoch of traffic into ``recorder``.

        Called from the top of ``RunRecorder.end_phase`` so the charges
        land inside the phase being sealed.  Streams are walked in plan
        order with a counted-loop RNG key (seed, stream, epoch), so the
        injected traffic is a pure function of the plan and the phase
        sequence — same seed, same traffic, byte for byte.
        """
        epoch = self.epoch_index
        self.epoch_index += 1
        before = self.injected_messages
        iot = self._machine.iot
        for idx, stream in enumerate(self.plan.streams):
            if not stream.active(epoch) or stream.intensity <= 0.0:
                continue
            n = stream.intensity * burst_multiplier(
                self.plan.seed, idx, epoch, stream.burst)
            self._inject_stream(recorder, iot, stream, n)
        self.epochs.append({"label": label,
                            "messages": self.injected_messages - before})

    def _inject_stream(self, recorder: "RunRecorder", iot, stream: HostStream,
                       n: float) -> None:
        raw = np.asarray(stream.targets, dtype=np.int64)
        per = n / raw.size
        tile = stream.tile
        kind = stream.kind
        if kind is HostStreamKind.LINK:
            # DMA-style transfer between tiles: payload data on the mesh,
            # no bank involvement.
            recorder.traffic.record(tile, raw, _LINK_BYTES,
                                    MessageClass.DATA, count=per)
            self.injected_messages += n
            return
        homed = iot.remap_banks(raw)
        if kind is HostStreamKind.ATOMIC:
            # Remote atomic: header-only request, executed at the bank.
            recorder.traffic.record(tile, homed, _REQ_BYTES,
                                    MessageClass.CONTROL, count=per)
            recorder.add_bank_atomics(homed, per)
            np.add.at(self.injected_raw_atomics, raw, per)
            np.add.at(self.injected_bank_atomics, homed, per)
            self.injected_messages += n
            return
        # READ: request up, line back, one bank access.
        recorder.traffic.record(tile, homed, 0,
                                MessageClass.CONTROL, count=per)
        recorder.traffic.record(homed, tile, self._line_bytes,
                                MessageClass.DATA, count=per)
        recorder.add_bank_accesses(homed, per)
        np.add.at(self.injected_raw_accesses, raw, per)
        np.add.at(self.injected_bank_accesses, homed, per)
        self.injected_messages += 2.0 * n
        if kind is HostStreamKind.WRITE:
            # WRITE = read-for-ownership + dirty writeback: one more DATA
            # message to the bank and a second bank access.
            recorder.traffic.record(tile, homed, self._line_bytes,
                                    MessageClass.DATA, count=per)
            recorder.add_bank_accesses(homed, per)
            np.add.at(self.injected_raw_accesses, raw, per)
            np.add.at(self.injected_bank_accesses, homed, per)
            self.injected_messages += n

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, float]:
        return {
            "epochs": float(self.epoch_index),
            "messages": float(self.injected_messages),
            "bank_accesses": float(self.injected_bank_accesses.sum()),
            "bank_atomics": float(self.injected_bank_atomics.sum()),
        }


class InterferenceSession:
    """One plan, attachable to any number of machines (an intensity sweep
    builds several contexts; each gets its own state)."""

    def __init__(self, plan: HostTrafficPlan, task: str = "") -> None:
        self.plan = plan
        self.task = task
        self.states: List[InterferenceState] = []

    def attach(self, machine: "Machine") -> Optional[InterferenceState]:
        """Attach interference state to ``machine``.

        Empty plans attach nothing: ``machine.interference`` stays None
        and the run is *structurally* identical to an uncontended one —
        the byte-identity property the tests pin falls out of this, not
        out of arithmetic with zeros.
        """
        if self.plan.is_empty:
            return None
        state = InterferenceState(self.plan, machine, self.task)
        machine.interference = state
        self.states.append(state)
        return state


_ACTIVE: Optional[InterferenceSession] = None


def active_interference_session() -> Optional[InterferenceSession]:
    return _ACTIVE


@contextmanager
def interfere_session(plan: HostTrafficPlan,
                      task: str = "") -> Iterator[InterferenceSession]:
    """Make an interference session active for the block's dynamic extent.

    Machines built inside the block (via ``make_context``) get the plan
    attached.  Sessions nest; the previous one is restored on exit.
    """
    global _ACTIVE
    prev = _ACTIVE
    session = InterferenceSession(plan, task)
    _ACTIVE = session
    try:
        yield session
    finally:
        _ACTIVE = prev
