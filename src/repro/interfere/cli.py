"""``python -m repro interfere`` — concurrent-host contention sweep.

For every requested workload the runner executes a *clean* run and one
*contended* run per host-intensity factor (same mode, scale, and seed;
the contended ones inside an
:func:`~repro.interfere.engine.interfere_session` over
``plan.scaled(factor)``), then reports the slowdown, the injected host
traffic, and the INT006 injection-model verification
(:func:`~repro.analysis.interference.verify_host_injection`) for each
arm.  Under ``AFF_ALLOC`` it also runs one *recovery* arm at the highest
factor — the contended run composed with online re-layout — and reports
how much of the contention penalty migration claws back.

Determinism contract (pinned by ``tests/test_interfere_properties.py``):
the same ``(plan, workloads, mode, scale, seed, factors)`` produce an
identical report for ``--jobs 1`` and ``--jobs N`` alike — per-task
results are collected in the workers and merged in task order, never
completion order.
"""

from __future__ import annotations

import argparse
import json
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.interfere.plan import HostTrafficPlan

__all__ = ["InterfereReport", "DEFAULT_WORKLOADS", "DEFAULT_FACTORS",
           "run_interfere", "cli"]

#: Fast defaults covering an affine kernel plus the two bank-hostile zoo
#: members (skewed join, gather/scatter) where contention bites hardest.
DEFAULT_WORKLOADS = ("vecadd", "hash_join_skew", "spmv_gather")

#: Host-intensity multipliers applied to the base plan, in sweep order.
DEFAULT_FACTORS = (0.5, 1.0, 2.0, 4.0)


# ----------------------------------------------------------------------
# Worker
# ----------------------------------------------------------------------
def _interfere_task(name: str, mode_name: str, scale: float, seed: int,
                    plan_json: str, factors: Tuple[float, ...]) -> Dict:
    """One workload's clean + per-factor contended arms (runs in this or
    a worker process).  Returns plain data only, so results pickle and
    merge identically whatever the process layout."""
    from repro.analysis.interference import verify_host_injection
    from repro.harness.report import ratio, run_metrics
    from repro.interfere.engine import interfere_session
    from repro.nsc.engine import EngineMode
    from repro.workloads.base import run_workload

    mode = EngineMode[mode_name]
    plan = HostTrafficPlan.from_json(plan_json)

    clean = run_workload(name, mode, scale=scale, seed=seed)
    clean_m = run_metrics(clean)

    arms: List[Dict] = []
    for factor in factors:
        with interfere_session(plan.scaled(factor), task=name) as session:
            result = run_workload(name, mode, scale=scale, seed=seed)
        findings: List[str] = []
        residuals: Dict[str, float] = {}
        host: Dict[str, float] = {}
        for state in session.states:
            report, res = verify_host_injection(state)
            findings.extend(d.render() for d in report.diagnostics)
            for key, value in res.items():
                residuals[key] = max(residuals.get(key, 0.0), value)
            host = state.summary()
        metrics = run_metrics(result)
        arms.append({"factor": factor,
                     "metrics": metrics,
                     "slowdown": ratio(metrics["cycles"], clean_m["cycles"]),
                     "host": host,
                     "int006_findings": findings,
                     "residuals": residuals})

    recovery: Optional[Dict] = None
    if mode is EngineMode.AFF_ALLOC and factors:
        # Recovery arm: the heaviest contention composed with online
        # re-layout — how much of the penalty does migration claw back?
        from repro.relayout.engine import relayout_session
        from repro.relayout.policy import RelayoutConfig
        fmax = max(factors)
        cfg = RelayoutConfig(seed=seed)
        with interfere_session(plan.scaled(fmax), task=name):
            with relayout_session(cfg, task=name) as relayout:
                online = run_workload(name, mode, scale=scale, seed=seed)
        online_m = run_metrics(online)
        contended = next(a["metrics"]["cycles"] for a in arms
                         if a["factor"] == fmax)
        recovery = {"factor": fmax,
                    "metrics": online_m,
                    "recovered": ratio(contended, online_m["cycles"]),
                    "migrations": relayout.merged_plan().applied_count()}

    return {"workload": name, "clean": clean_m, "arms": arms,
            "recovery": recovery}


# ----------------------------------------------------------------------
# Report
# ----------------------------------------------------------------------
@dataclass
class InterfereReport:
    """Aggregate of one :func:`run_interfere` invocation."""

    plan: HostTrafficPlan
    mode: str
    scale: float
    seed: int
    factors: Tuple[float, ...]
    rows: List[Dict] = field(default_factory=list)

    @property
    def max_slowdown(self) -> float:
        return max((arm["slowdown"] for row in self.rows
                    for arm in row["arms"]), default=1.0)

    @property
    def int006_findings(self) -> List[str]:
        return [line for row in self.rows for arm in row["arms"]
                for line in arm["int006_findings"]]

    @property
    def best_recovered(self) -> float:
        return max((row["recovery"]["recovered"] for row in self.rows
                    if row["recovery"] is not None), default=1.0)

    def to_dict(self) -> Dict:
        return {"plan": json.loads(self.plan.to_json()),
                "mode": self.mode, "scale": self.scale, "seed": self.seed,
                "factors": list(self.factors),
                "rows": self.rows}

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=1) + "\n"

    def render(self) -> str:
        from repro.harness.report import ascii_table, section
        headers = ["workload", "factor", "clean cyc", "contended cyc",
                   "slowdown", "host msgs", "INT006"]
        table_rows = []
        for row in self.rows:
            clean = row["clean"]
            for arm in row["arms"]:
                m = arm["metrics"]
                table_rows.append([
                    row["workload"], f"{arm['factor']:g}x",
                    f"{clean['cycles']:.0f}", f"{m['cycles']:.0f}",
                    f"{arm['slowdown']:.3f}x",
                    f"{arm['host'].get('messages', 0.0):.0f}",
                    "FAIL" if arm["int006_findings"] else "ok"])
        lines = [str(self.plan), "",
                 section("Host-contention report",
                         ascii_table(headers, table_rows))]
        recovery_rows = []
        for row in self.rows:
            rec = row["recovery"]
            if rec is None:
                continue
            contended = next(a["metrics"]["cycles"] for a in row["arms"]
                             if a["factor"] == rec["factor"])
            recovery_rows.append([
                row["workload"], f"{rec['factor']:g}x",
                f"{contended:.0f}", f"{rec['metrics']['cycles']:.0f}",
                f"{rec['recovered']:.3f}x", rec["migrations"]])
        if recovery_rows:
            lines += ["", section(
                "Re-layout recovery (contended vs contended+online)",
                ascii_table(["workload", "factor", "contended cyc",
                             "online cyc", "recovered", "migrations"],
                            recovery_rows))]
        findings = self.int006_findings
        if findings:
            lines += ["", section("INT006 findings", "\n".join(findings))]
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Runner
# ----------------------------------------------------------------------
def run_interfere(workloads: Sequence[str], plan: HostTrafficPlan,
                  mode: str = "AFF_ALLOC", scale: float = 0.05,
                  seed: int = 0,
                  factors: Sequence[float] = DEFAULT_FACTORS,
                  jobs: int = 1,
                  progress: Optional[Callable[[str], None]] = None
                  ) -> InterfereReport:
    """Run clean-vs-contended sweeps for every workload under one plan."""
    notify = progress or (lambda line: None)
    plan_json = plan.to_json()
    factors_t = tuple(float(f) for f in factors)
    jobs = max(1, int(jobs))
    from repro.workloads import WORKLOADS
    unknown = [w for w in workloads if w not in WORKLOADS]
    if unknown:
        raise KeyError(f"unknown workload(s): {', '.join(unknown)}; "
                       f"available: {', '.join(sorted(WORKLOADS))}")

    results: Dict[str, Dict] = {}
    if jobs == 1 or len(workloads) <= 1:
        for name in workloads:
            results[name] = _interfere_task(name, mode, scale, seed,
                                            plan_json, factors_t)
            notify(f"[done] {name}")
    else:
        with ProcessPoolExecutor(max_workers=min(jobs, len(workloads))) as pool:
            futs = {pool.submit(_interfere_task, name, mode, scale, seed,
                                plan_json, factors_t): name
                    for name in workloads}
            for fut in as_completed(futs):
                name = futs[fut]
                results[name] = fut.result()
                notify(f"[done] {name}")

    # Merge in task order (never completion order) so jobs=1 and jobs=N
    # produce identical reports.
    rows = [results[name] for name in workloads]
    return InterfereReport(plan=plan, mode=mode, scale=scale, seed=seed,
                           factors=factors_t, rows=rows)


# ----------------------------------------------------------------------
# Empty-plan identity gate
# ----------------------------------------------------------------------
def _check_empty_identity(scale: float, seed: int,
                          notify: Callable[[str], None]) -> bool:
    """Byte-compare ``run-<hash>.json`` for ``interfere=None`` versus an
    *empty* plan — the structural no-op contract CI gates on."""
    import tempfile

    from repro.harness.runner import run_figures
    with tempfile.TemporaryDirectory() as tmp:
        base = Path(tmp)
        clean = run_figures(["fig4"], scale=scale, seed=seed,
                            use_cache=False, results_dir=base / "clean",
                            preflight=False)
        empty = run_figures(["fig4"], scale=scale, seed=seed,
                            use_cache=False, results_dir=base / "empty",
                            preflight=False,
                            interfere=HostTrafficPlan.empty())
        assert clean.path is not None and empty.path is not None
        same_name = clean.path.name == empty.path.name
        same_bytes = clean.path.read_bytes() == empty.path.read_bytes()
    if same_name and same_bytes:
        notify("empty-plan identity check passed "
               f"(run-*.json byte-identical, name {clean.path.name})")
        return True
    notify("ERROR: empty-plan run differs from the clean run "
           f"(same name: {same_name}, same bytes: {same_bytes})")
    return False


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def _parse_factors(text: str) -> Tuple[float, ...]:
    factors = tuple(float(tok) for tok in text.split(",") if tok.strip())
    if not factors or any(f < 0 for f in factors):
        raise ValueError(f"bad sweep {text!r}")
    return factors


def cli(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro interfere",
        description="Concurrent-host interference: run workloads against "
                    "a deterministic host-traffic plan, sweep its "
                    "intensity, and report slowdown + recovery.")
    parser.add_argument("workloads", nargs="*", default=[],
                        help=f"workload names (default: "
                             f"{', '.join(DEFAULT_WORKLOADS)})")
    parser.add_argument("--plan", type=Path, default=None,
                        help="JSON host-traffic plan file (overrides "
                             "--seed/--intensity generation)")
    parser.add_argument("--seed", type=int, default=0,
                        help="plan-generation / run seed (default 0)")
    parser.add_argument("--intensity", type=float, default=1.0,
                        help="base host intensity for generated plans "
                             "(default 1.0)")
    parser.add_argument("--sweep", type=str, default=None,
                        help="comma-separated intensity factors "
                             f"(default: "
                             f"{','.join(str(f) for f in DEFAULT_FACTORS)})")
    parser.add_argument("--mode", default="AFF_ALLOC",
                        choices=["IN_CORE", "NEAR_L3", "AFF_ALLOC"],
                        help="engine mode for the runs (default AFF_ALLOC)")
    parser.add_argument("--scale", type=float, default=0.05,
                        help="workload scale (default 0.05)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (default 1)")
    parser.add_argument("--save-report", type=Path, default=None,
                        help="write the contention report JSON here")
    parser.add_argument("--save-plan", type=Path, default=None,
                        help="write the (generated or loaded) plan here")
    parser.add_argument("--min-slowdown", type=float, default=0.0,
                        help="fail unless some contended arm slows down at "
                             "least this much (e.g. 1.01)")
    parser.add_argument("--check-empty-identity", action="store_true",
                        help="gate: an empty plan's run-<hash>.json must "
                             "be byte-identical to a clean run's")
    parser.add_argument("--check-determinism", action="store_true",
                        help="re-run with --jobs 2 and require a "
                             "byte-identical report")
    args = parser.parse_args(argv)

    workloads = args.workloads or list(DEFAULT_WORKLOADS)
    from repro.workloads import WORKLOADS
    bad = [w for w in workloads if w not in WORKLOADS]
    if bad:
        parser.error(f"unknown workload(s): {', '.join(bad)}; "
                     f"try 'python -m repro list'")
    if args.sweep is not None:
        try:
            factors = _parse_factors(args.sweep)
        except ValueError as exc:
            parser.error(str(exc))
    else:
        factors = DEFAULT_FACTORS
    if args.plan is not None:
        try:
            plan = HostTrafficPlan.load(args.plan)
        except (OSError, ValueError, KeyError) as exc:
            parser.error(f"cannot load plan {args.plan}: {exc}")
    else:
        plan = HostTrafficPlan.generate(args.seed, intensity=args.intensity)

    from repro.harness.cliutil import EXIT_FAILURE, EXIT_OK

    if args.check_empty_identity:
        if not _check_empty_identity(args.scale, args.seed, print):
            return EXIT_FAILURE

    report = run_interfere(workloads, plan, mode=args.mode,
                           scale=args.scale, seed=args.seed,
                           factors=factors, jobs=args.jobs, progress=print)
    print(report.render())
    if args.save_plan is not None:
        plan.save(args.save_plan)
        print(f"host-traffic plan -> {args.save_plan}")
    if args.save_report is not None:
        args.save_report.write_text(report.to_json(), encoding="utf-8")
        print(f"contention report -> {args.save_report}")

    if args.check_determinism:
        again = run_interfere(workloads, plan, mode=args.mode,
                              scale=args.scale, seed=args.seed,
                              factors=factors, jobs=2)
        if again.to_json() != report.to_json():
            print("ERROR: report differs between --jobs 1 and --jobs 2")
            return EXIT_FAILURE
        print("determinism check passed (jobs=1 == jobs=2)")
    findings = report.int006_findings
    if findings:
        print(f"ERROR: {len(findings)} INT006 injection-model finding(s)")
        return EXIT_FAILURE
    if args.min_slowdown > 0.0 and report.max_slowdown < args.min_slowdown:
        print(f"ERROR: max slowdown {report.max_slowdown:.3f}x below "
              f"required {args.min_slowdown:.3f}x")
        return EXIT_FAILURE
    return EXIT_OK
