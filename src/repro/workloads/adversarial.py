"""Adversarial workload zoo: the traffic the shipped kernels never send.

The ten Table 3 workloads are *friendly*: regular strides, uniform
indirections, one allocation burst at startup.  The zoo covers the cases
related systems show break allocators and not-so-near-data machines:

* ``hash_join_skew``   — a Zipf-skewed hash-join pipeline.  A handful of
  buckets absorb most of the build atomics and probe gathers, so one
  bank's ejection port becomes the bottleneck (the contention shape host
  interference amplifies).
* ``spmv_gather``      — SpMV / GNN-style gather-scatter over a CSR
  structure with power-law column reuse: per edge chunk, walk the index
  array, gather ``x[col]``, scatter atomics into ``y[row]``.
* ``alloc_storm``      — a PUMA-style alignment-hostile allocation
  storm: batches of odd-sized arrays with offset alignment chains plus
  irregular alloc/free churn, each batch touched once then half-freed,
  so the allocator faces fragmentation instead of one clean burst.
* ``iot_pressure``     — an NDPage-style translation-pressure scenario:
  live arrays spread over every pool interleave plus partitioned
  (paged) arrays, sized to force pool expansions, with epochs touching
  every array — deep range-table pressure on the IOT.

Each declares :meth:`layout_plan` so the afflint pre-flight covers it,
and registration makes all four reachable from experiments, bench,
chaos, trace, and interfere by name.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.config import DEFAULT_CONFIG, SystemConfig
from repro.nsc.engine import EngineMode
from repro.perf.model import RunResult
from repro.workloads.base import Workload, make_context, register

__all__ = ["SkewedHashJoin", "SpmvGather", "AllocStorm", "IotPressure"]


def _zipf_indices(rng: np.random.Generator, a: float, size: int,
                  modulo: int) -> np.ndarray:
    """Zipf-distributed indices folded into ``[0, modulo)``.

    ``numpy``'s zipf sampler returns unbounded ranks; rank 1 (the hot
    element) maps to index 0, so the skew concentrates on a stable
    prefix of the index space.
    """
    z = rng.zipf(a, size=size).astype(np.int64)
    return (z - 1) % modulo


@register
class SkewedHashJoin(Workload):
    """Build + probe a bucket array under Zipf-skewed keys."""

    name = "hash_join_skew"
    layout_kind = "Ptr-Chasing"
    SCALED_PARAMS = ("build_keys", "probe_keys", "buckets")

    def default_params(self) -> Dict:
        return {"build_keys": 1 << 17, "probe_keys": 1 << 18,
                "buckets": 1 << 14, "zipf_a": 1.2, "epochs": 4}

    def layout_plan(self, scale: float = 1.0, **overrides):
        from repro.analysis.plan import LayoutPlan
        p = self.params(scale, **overrides)
        plan = LayoutPlan(self.name)
        plan.array("buckets", 8, p["buckets"], partition=True)
        plan.array("build-keys", 8, p["build_keys"])
        plan.array("probe-keys", 8, p["probe_keys"])
        return plan

    def run(self, mode: EngineMode, config: SystemConfig = DEFAULT_CONFIG,
            policy=None, scale: float = 1.0, seed: int = 0,
            **overrides) -> RunResult:
        p = self.params(scale, **overrides)
        nb_, np_, buckets = p["build_keys"], p["probe_keys"], p["buckets"]
        epochs = p["epochs"]
        ctx = make_context(mode, config, policy, seed)
        aff = mode.affinity_aware
        counts = ctx.alloc(8, buckets, "buckets", partition=aff)
        build_h = ctx.alloc(8, nb_, "build-keys")
        probe_h = ctx.alloc(8, np_, "probe-keys")

        rng = np.random.default_rng(seed)
        build_idx = _zipf_indices(rng, p["zipf_a"], nb_, buckets)
        probe_idx = _zipf_indices(rng, p["zipf_a"], np_, buckets)

        epoch = 0
        for chunk in np.array_split(np.arange(nb_, dtype=np.int64), epochs):
            cores = ctx.cores_of_positions(chunk, nb_)
            ctx.executor.affine_kernel(cores, [(build_h, chunk)],
                                       ops_per_elem=2.0)
            ctx.executor.indirect_atomic(cores, (build_h, chunk),
                                         (counts, build_idx[chunk]),
                                         ops_per_elem=1.0)
            ctx.end_epoch(f"build:e{epoch}")
            epoch += 1
        for chunk in np.array_split(np.arange(np_, dtype=np.int64), epochs):
            cores = ctx.cores_of_positions(chunk, np_)
            ctx.executor.affine_kernel(cores, [(probe_h, chunk)],
                                       ops_per_elem=2.0)
            ctx.executor.indirect_gather(cores, (probe_h, chunk),
                                         (counts, probe_idx[chunk]),
                                         ops_per_elem=1.0)
            ctx.end_epoch(f"probe:e{epoch}")
            epoch += 1

        # Functional answer: the measured skew of the build histogram
        # (max bucket occupancy over mean) — the quantity the adversarial
        # shape exists to maximize.
        hist = np.bincount(build_idx, minlength=buckets)
        skew = float(hist.max() / max(hist.mean(), 1e-12))
        res = ctx.finish(f"{self.name}/{mode.value}", value=skew)
        res.counters["epochs"] = epoch
        res.counters["bucket_skew"] = skew
        return res


@register
class SpmvGather(Workload):
    """CSR SpMV with power-law column reuse: gather x, scatter-atomic y."""

    name = "spmv_gather"
    layout_kind = "Indirect"
    SCALED_PARAMS = ("rows",)

    def default_params(self) -> Dict:
        return {"rows": 1 << 15, "nnz_per_row": 8, "zipf_a": 1.3,
                "epochs": 4}

    def layout_plan(self, scale: float = 1.0, **overrides):
        from repro.analysis.plan import LayoutPlan
        p = self.params(scale, **overrides)
        n = p["rows"]
        nnz = n * p["nnz_per_row"]
        plan = LayoutPlan(self.name)
        plan.array("x", 8, n, partition=True)
        plan.array("y", 8, n, align_to="x")
        plan.array("col-idx", 4, nnz)
        return plan

    def run(self, mode: EngineMode, config: SystemConfig = DEFAULT_CONFIG,
            policy=None, scale: float = 1.0, seed: int = 0,
            **overrides) -> RunResult:
        p = self.params(scale, **overrides)
        n = p["rows"]
        nnz = n * p["nnz_per_row"]
        epochs = p["epochs"]
        ctx = make_context(mode, config, policy, seed)
        aff = mode.affinity_aware
        x_h = ctx.alloc(8, n, "x", partition=aff)
        y_h = ctx.alloc(8, n, "y", align_to=x_h if aff else None)
        col_h = ctx.alloc(4, nnz, "col-idx")

        rng = np.random.default_rng(seed)
        cols = _zipf_indices(rng, p["zipf_a"], nnz, n)
        rows = np.repeat(np.arange(n, dtype=np.int64), p["nnz_per_row"])
        xv = rng.random(n)

        epoch = 0
        for chunk in np.array_split(np.arange(nnz, dtype=np.int64), epochs):
            cores = ctx.cores_of_positions(chunk, nnz)
            ctx.executor.affine_kernel(cores, [(col_h, chunk)],
                                       ops_per_elem=1.0)
            ctx.executor.indirect_gather(cores, (col_h, chunk),
                                         (x_h, cols[chunk]),
                                         ops_per_elem=1.0)
            ctx.executor.indirect_atomic(cores, (col_h, chunk),
                                         (y_h, rows[chunk]),
                                         ops_per_elem=1.0)
            ctx.end_epoch(f"edges:e{epoch}")
            epoch += 1

        # Functional answer: the actual y = A @ x with unit values.
        yv = np.bincount(rows, weights=xv[cols], minlength=n)
        res = ctx.finish(f"{self.name}/{mode.value}",
                         value=float(yv.sum()))
        res.counters["epochs"] = epoch
        res.counters["nnz"] = float(nnz)
        return res


#: Odd allocation sizes per storm batch (PUMA's point: real request
#: streams are not powers of two).  Primes plus near-power-of-two sizes.
_STORM_SIZES = (1021, 1535, 2063, 3071, 4099, 6143)


@register
class AllocStorm(Workload):
    """Alignment-hostile allocation storm with alloc/free churn."""

    name = "alloc_storm"
    layout_kind = "Affine"
    SCALED_PARAMS = ("n",)

    def default_params(self) -> Dict:
        return {"n": 1 << 13, "batches": 4, "churn": 16}

    def layout_plan(self, scale: float = 1.0, **overrides):
        from repro.analysis.plan import LayoutPlan
        p = self.params(scale, **overrides)
        n = p["n"]
        plan = LayoutPlan(self.name)
        for b in range(p["batches"]):
            anchor = f"s{b}-a0"
            plan.array(anchor, 4, n + _STORM_SIZES[b % len(_STORM_SIZES)])
            for j, extra in enumerate(_STORM_SIZES):
                # 16 elements x 4B = one 64B slot per offset step, so
                # the offsets are hostile (every array staggered) yet
                # still slot-aligned (AFF001-clean).
                plan.array(f"s{b}-a{j + 1}", 4, n + extra,
                           align_to=anchor, align_x=16 * (j % 3))
        return plan

    def run(self, mode: EngineMode, config: SystemConfig = DEFAULT_CONFIG,
            policy=None, scale: float = 1.0, seed: int = 0,
            **overrides) -> RunResult:
        p = self.params(scale, **overrides)
        n, batches, churn = p["n"], p["batches"], p["churn"]
        ctx = make_context(mode, config, policy, seed)
        aff = mode.affinity_aware
        rng = np.random.default_rng(seed)
        allocs = 0
        frees = 0
        touched = 0.0
        irregular: List[int] = []
        for b in range(batches):
            anchor = ctx.alloc(4, n + _STORM_SIZES[b % len(_STORM_SIZES)],
                               f"s{b}-a0")
            handles = [anchor]
            for j, extra in enumerate(_STORM_SIZES):
                handles.append(ctx.alloc(4, n + extra, f"s{b}-a{j + 1}",
                                         align_to=anchor if aff else None,
                                         x=16 * (j % 3) if aff else 0))
            allocs += len(handles)
            for h in handles:
                idx = np.arange(h.num_elem, dtype=np.int64)
                cores = ctx.cores_for(h.num_elem)
                ctx.executor.affine_kernel(cores, [(h, idx)],
                                           ops_per_elem=1.0)
                touched += float(h.num_elem)
            if ctx.allocator is not None:
                # Irregular churn: small objects allocated near the
                # batch anchor, half of them (and half the batch's
                # arrays) freed immediately — the interleaved
                # alloc/free stream pool allocators fragment under.
                for k in range(churn):
                    size = int(64 << int(rng.integers(0, 6)))
                    vaddr = ctx.allocator.malloc_aff(
                        size, [int(anchor.vaddr)])
                    irregular.append(int(vaddr))
                    allocs += 1
                for vaddr in irregular[::2]:
                    ctx.allocator.free_aff(vaddr)
                    frees += 1
                irregular = irregular[1::2]
                for h in handles[1::2]:
                    ctx.allocator.free_aff(h)
                    frees += 1
            ctx.end_epoch(f"storm:b{b}")
        if ctx.allocator is not None:
            for vaddr in irregular:
                ctx.allocator.free_aff(vaddr)
                frees += 1
        res = ctx.finish(f"{self.name}/{mode.value}", value=float(allocs))
        res.counters["epochs"] = batches
        res.counters["allocs"] = float(allocs)
        res.counters["frees"] = float(frees)
        res.counters["elems_touched"] = touched
        return res


@register
class IotPressure(Workload):
    """Translation pressure: live arrays across every pool interleave."""

    name = "iot_pressure"
    layout_kind = "Affine"
    SCALED_PARAMS = ("n",)

    #: Element sizes spanning the pool interleave ladder (64B..4096B
    #: pools all get live entries) plus partitioned arrays in the paged
    #: segment.
    ELEM_SIZES = (1, 2, 4, 8, 16, 32, 64)

    def default_params(self) -> Dict:
        return {"n": 1 << 12, "epochs": 3, "per_size": 2}

    def layout_plan(self, scale: float = 1.0, **overrides):
        from repro.analysis.plan import LayoutPlan
        p = self.params(scale, **overrides)
        n = p["n"]
        plan = LayoutPlan(self.name)
        for es in self.ELEM_SIZES:
            for k in range(p["per_size"]):
                plan.array(f"e{es}-{k}", es, n + 257 * k)
        plan.array("part-a", 8, n, partition=True)
        plan.array("part-b", 8, n, partition=True)
        return plan

    def run(self, mode: EngineMode, config: SystemConfig = DEFAULT_CONFIG,
            policy=None, scale: float = 1.0, seed: int = 0,
            **overrides) -> RunResult:
        p = self.params(scale, **overrides)
        n, epochs = p["n"], p["epochs"]
        ctx = make_context(mode, config, policy, seed)
        aff = mode.affinity_aware
        handles = []
        for es in self.ELEM_SIZES:
            for k in range(p["per_size"]):
                handles.append(ctx.alloc(es, n + 257 * k, f"e{es}-{k}"))
        handles.append(ctx.alloc(8, n, "part-a", partition=aff))
        handles.append(ctx.alloc(8, n, "part-b", partition=aff))

        rng = np.random.default_rng(seed)
        checksum = 0.0
        for epoch in range(epochs):
            for h in handles:
                # Strided walk with a per-epoch rotation, so every epoch
                # re-translates every array's range instead of replaying
                # one hot span.
                start = int(rng.integers(0, max(h.num_elem, 1)))
                idx = (start + np.arange(h.num_elem, dtype=np.int64)) \
                    % h.num_elem
                cores = ctx.cores_for(h.num_elem)
                ctx.executor.affine_kernel(cores, [(h, idx)],
                                           ops_per_elem=1.0)
                checksum += float(h.num_elem)
            ctx.end_epoch(f"touch:e{epoch}")
        res = ctx.finish(f"{self.name}/{mode.value}", value=checksum)
        res.counters["epochs"] = float(epochs)
        res.counters["live_arrays"] = float(len(handles))
        return res
