"""Graph workloads: PageRank (push/pull), BFS (push/pull/switch), SSSP.

All run on the Table 3 Kronecker input (128k vertices, 4M edges,
A/B/C = 0.57/0.19/0.19; sssp adds weights in [1, 255]) unless a graph is
passed in.  Under ``AFF_ALLOC`` the vertex-property arrays are
partitioned across banks, the edge structure is the co-designed Linked
CSR placed near the pointed-to vertices (paper §5.3), and BFS/SSSP use
the spatially distributed work queue (Fig 9); the other modes use the
original CSR arrays and a global queue, exactly as the paper's
methodology (§6) prescribes.

Every kernel also computes its functional answer (ranks, parents,
distances) so tests can check the traced run against ground truth.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cache import cached_graph
from repro.config import DEFAULT_CONFIG, SystemConfig
from repro.core.api import AddressView, ArrayHandle
from repro.datastructs.dist_queue import GlobalQueue, SpatialQueue
from repro.datastructs.linked_csr import LinkedCSR
from repro.graphs.csr import CSRGraph
from repro.graphs.generators import kronecker
from repro.nsc.engine import EngineMode
from repro.perf.model import RunResult
from repro.workloads.base import RunContext, Workload, make_context, register

__all__ = ["GraphSetup", "PageRankPush", "PageRankPull", "BfsPush", "BfsPull",
           "BfsSwitch", "Sssp", "default_graph", "bfs_iteration_stats"]


def default_graph(scale: float = 1.0, seed: int = 0, weighted: bool = False,
                  symmetrize: bool = False) -> CSRGraph:
    """Table 3 input: Kronecker, 128k vertices, 4M edges.

    The symmetrized variant is cached as its own artifact — the
    edge-list re-sort costs as much as generation at large scales.
    """
    kscale = max(10, 17 + int(round(math.log2(scale))) if scale != 1.0 else 17)

    def build() -> CSRGraph:
        g = kronecker(kscale, 32, seed=seed,
                      weights_range=(1, 255) if weighted else None)
        if symmetrize:
            g = CSRGraph.from_edge_list(g.num_vertices, g.sources(), g.edges,
                                        g.weights, symmetrize=True)
        return g

    if not symmetrize:
        return build()  # kronecker() itself is cached
    return cached_graph("default_graph_sym", build,
                        kscale=kscale, seed=seed, weighted=weighted)


class GraphSetup:
    """Arrays + edge structure for one graph run.

    ``main_prop`` is the vertex property indirect accesses update/read
    (ranks' accumulator, BFS parents, SSSP distances); the Linked CSR
    nodes are placed near *its* entries.
    """

    def __init__(self, ctx: RunContext, graph: CSRGraph,
                 prop_names: List[str], main_prop: str,
                 weighted: bool = False, edge_layout=None,
                 use_linked: bool = True, node_bytes: int = 64):
        """``edge_layout`` (non-affinity modes only) overrides where the
        CSR edge array lives — the Fig 6 limit study:
        ``("chunk", bytes)`` remaps chunks near their destinations,
        ``("ideal",)`` stores every edge on its destination's bank.

        ``use_linked=False`` keeps the original CSR arrays even under
        affinity allocation (the data-structure co-design ablation);
        ``node_bytes`` sets the Linked CSR node size (default one cache
        line, paper §5.3)."""
        self.ctx = ctx
        self.graph = graph
        self.weighted = weighted
        aff = ctx.mode.affinity_aware
        v = graph.num_vertices
        self.props: Dict[str, ArrayHandle] = {}
        first: Optional[ArrayHandle] = None
        for name in prop_names:
            if first is None:
                h = ctx.alloc(8, v, name, partition=aff)
                first = h
            else:
                h = ctx.alloc(8, v, name, align_to=first if aff else None)
            self.props[name] = h
        self.main = self.props[main_prop]

        self.linked: Optional[LinkedCSR] = None
        self.index_h: Optional[ArrayHandle] = None
        self.edges_h: Optional[ArrayHandle] = None
        edge_bytes = 8 if weighted else 4
        if aff and use_linked:
            self.linked = LinkedCSR.build(ctx.machine, graph,
                                          allocator=ctx.allocator,
                                          target=self.main,
                                          node_bytes=node_bytes,
                                          edge_bytes=edge_bytes)
            self._edge_view = self.linked.edge_view()
        else:
            self.index_h = ctx.alloc(8, v + 1, "csr-index")
            self.edges_h = ctx.alloc(edge_bytes, max(graph.num_edges, 1),
                                     "csr-edges")
            self._edge_view = self.edges_h
            if edge_layout is not None and graph.num_edges:
                from repro.graphs.partition import (chunked_edge_layout,
                                                    ideal_edge_layout)
                dst_banks = self.main.banks(graph.edges.astype(np.int64))
                if edge_layout[0] == "chunk":
                    view, _info = chunked_edge_layout(ctx.machine, dst_banks,
                                                      edge_layout[1])
                    self._edge_view = view
                elif edge_layout[0] == "ideal":
                    self._edge_view = ideal_edge_layout(ctx.machine, dst_banks)
                else:
                    raise ValueError(f"unknown edge layout {edge_layout!r}")

    # ------------------------------------------------------------------
    def prop(self, name: str) -> ArrayHandle:
        return self.props[name]

    def edge_base(self) -> AddressView:
        """Where each edge's bits live (executor ``base`` stream)."""
        return self._edge_view

    def scan_edges(self, vertices: np.ndarray, repeat: float = 1.0
                   ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Record the edge-structure read for a frontier scan and return
        (flat edge indices, per-edge owner cores, destination vertices).
        """
        ctx, g = self.ctx, self.graph
        vertices = np.asarray(vertices, dtype=np.int64)
        edge_idx, counts = g.edge_slices(vertices)
        vcores = ctx.cores_of_positions(np.arange(vertices.size), vertices.size)
        ecores = np.repeat(vcores, counts)
        if self.linked is not None:
            node_vaddrs, chain_ids = self.linked.chase_trace(vertices)
            chain_cores = self.linked.chain_owner_cores(
                vertices, ctx.machine.num_cores)
            ctx.executor.pointer_chase(node_vaddrs, chain_ids, chain_cores,
                                       ops_per_node=1.0, repeat=repeat)
        else:
            # index lookups + sequential edge-array read
            ctx.executor.affine_kernel(vcores, [(self.index_h, vertices)],
                                       ops_per_elem=1.0, repeat=repeat)
            if edge_idx.size:
                ctx.executor.affine_kernel(ecores, [(self.edges_h, edge_idx)],
                                           ops_per_elem=0.5, repeat=repeat)
        dsts = g.edges[edge_idx].astype(np.int64)
        return edge_idx, ecores, dsts


# ----------------------------------------------------------------------
# PageRank
# ----------------------------------------------------------------------
def _pagerank_functional(g: CSRGraph, iters: int, damping: float = 0.85
                         ) -> np.ndarray:
    v = g.num_vertices
    deg = np.maximum(g.out_degrees(), 1)
    rank = np.full(v, 1.0 / v)
    src = g.sources().astype(np.int64)
    for _ in range(iters):
        contrib = rank / deg
        nxt = np.zeros(v)
        np.add.at(nxt, g.edges.astype(np.int64), contrib[src])
        rank = (1 - damping) / v + damping * nxt
    return rank


@register
class PageRankPush(Workload):
    """Push-based PageRank: atomic adds to out-neighbors (Fig 2 style)."""

    name = "pr_push"
    layout_kind = "Linked CSR"
    SCALED_PARAMS = ()

    def default_params(self) -> Dict:
        return {"iters": 8}

    def run(self, mode: EngineMode, config: SystemConfig = DEFAULT_CONFIG,
            policy=None, scale: float = 1.0, seed: int = 0,
            graph: Optional[CSRGraph] = None, **overrides) -> RunResult:
        p = self.params(scale, **overrides)
        iters = p["iters"]
        g = graph if graph is not None else default_graph(scale, seed)
        ctx = make_context(mode, config, policy, seed)
        s = GraphSetup(ctx, g, ["next", "rank", "contrib"], "next",
                       edge_layout=p.get("edge_layout"),
                       use_linked=p.get("use_linked", True),
                       node_bytes=p.get("node_bytes", 64))
        all_v = np.arange(g.num_vertices, dtype=np.int64)
        vcores = ctx.cores_for(g.num_vertices)
        # contrib[u] = rank[u] / deg[u]
        ctx.executor.affine_kernel(vcores, [(s.prop("rank"), all_v)],
                                   out=(s.prop("contrib"), all_v),
                                   ops_per_elem=2.0, repeat=iters)
        _, ecores, dsts = s.scan_edges(all_v, repeat=iters)
        edge_idx = np.arange(g.num_edges, dtype=np.int64)
        ctx.executor.indirect_atomic(ecores, (s.edge_base(), edge_idx),
                                     (s.prop("next"), dsts),
                                     ops_per_elem=1.0, repeat=iters)
        # rank = f(next); reset next
        ctx.executor.affine_kernel(vcores, [(s.prop("next"), all_v)],
                                   out=(s.prop("rank"), all_v),
                                   ops_per_elem=3.0, repeat=iters)
        value = _pagerank_functional(g, iters)
        return ctx.finish(f"pr_push/{mode.value}", reuse_fraction=0.8,
                          value=value)


@register
class PageRankPull(Workload):
    """Pull-based PageRank: gather contributions from in-neighbors."""

    name = "pr_pull"
    layout_kind = "Linked CSR"

    def default_params(self) -> Dict:
        return {"iters": 8}

    def run(self, mode: EngineMode, config: SystemConfig = DEFAULT_CONFIG,
            policy=None, scale: float = 1.0, seed: int = 0,
            graph: Optional[CSRGraph] = None, **overrides) -> RunResult:
        p = self.params(scale, **overrides)
        iters = p["iters"]
        g = graph if graph is not None else default_graph(scale, seed)
        gt = g.transpose()
        ctx = make_context(mode, config, policy, seed)
        # pull reads contrib[in-neighbor]: edges placed near contrib
        s = GraphSetup(ctx, gt, ["contrib", "rank"], "contrib",
                       edge_layout=p.get("edge_layout"),
                       use_linked=p.get("use_linked", True),
                       node_bytes=p.get("node_bytes", 64))
        all_v = np.arange(gt.num_vertices, dtype=np.int64)
        vcores = ctx.cores_for(gt.num_vertices)
        ctx.executor.affine_kernel(vcores, [(s.prop("rank"), all_v)],
                                   out=(s.prop("contrib"), all_v),
                                   ops_per_elem=2.0, repeat=iters)
        _, ecores, srcs = s.scan_edges(all_v, repeat=iters)
        edge_idx = np.arange(gt.num_edges, dtype=np.int64)
        ctx.executor.indirect_gather(ecores, (s.edge_base(), edge_idx),
                                     (s.prop("contrib"), srcs),
                                     ops_per_elem=1.0, repeat=iters)
        ctx.executor.affine_kernel(vcores, [(s.prop("rank"), all_v)],
                                   out=(s.prop("rank"), all_v),
                                   ops_per_elem=3.0, repeat=iters)
        value = _pagerank_functional(g, iters)
        return ctx.finish(f"pr_pull/{mode.value}", reuse_fraction=0.8,
                          value=value)


# ----------------------------------------------------------------------
# BFS
# ----------------------------------------------------------------------
def _pull_scan(gt: CSRGraph, unvisited: np.ndarray, in_frontier: np.ndarray):
    """Bottom-up scan: each unvisited vertex reads in-neighbors until one
    is in the frontier.  Returns (scanned flat edge indices, per-vertex
    scan counts, found-parent per vertex or -1)."""
    edge_idx, counts = gt.edge_slices(unvisited)
    srcs = gt.edges[edge_idx].astype(np.int64)
    hit = in_frontier[srcs]
    # first hit position within each segment
    seg_starts = np.cumsum(counts) - counts
    within = np.arange(edge_idx.size, dtype=np.int64) - np.repeat(seg_starts,
                                                                  counts)
    big = np.int64(1 << 60)
    hit_pos = np.where(hit, within, big)
    first = np.full(unvisited.size, big, dtype=np.int64)
    nonempty = counts > 0
    if edge_idx.size:
        mins = np.minimum.reduceat(hit_pos, np.minimum(seg_starts,
                                                       edge_idx.size - 1))
        first[nonempty] = mins[nonempty]
    found = first < big
    scan_len = np.where(found, first + 1, counts)
    keep = within < np.repeat(scan_len, counts)
    parents = np.full(unvisited.size, -1, dtype=np.int64)
    if edge_idx.size:
        last_scanned = seg_starts + np.maximum(scan_len - 1, 0)
        parents[found] = gt.edges[edge_idx[np.minimum(
            last_scanned, edge_idx.size - 1)]][found]
    return edge_idx[keep], scan_len, parents


def bfs_iteration_stats(g: CSRGraph,
                        source: Optional[int] = None) -> List[Dict[str, float]]:
    """Per-iteration visited/active/scout-edge ratios (paper Fig 17)."""
    v = g.num_vertices
    if source is None:
        source = int(np.argmax(g.out_degrees()))
    parent = np.full(v, -1, dtype=np.int64)
    parent[source] = source
    frontier = np.array([source], dtype=np.int64)
    visited = 1
    out: List[Dict[str, float]] = []
    deg = g.out_degrees()
    total_e = max(g.num_edges, 1)
    while frontier.size:
        _, counts = g.edge_slices(frontier)
        scout = int(deg[frontier].sum())
        edge_idx, _ = g.edge_slices(frontier)
        dsts = g.edges[edge_idx].astype(np.int64)
        new = np.unique(dsts[parent[dsts] == -1])
        parent[new] = 0  # membership only; exact parents don't matter here
        visited += new.size
        out.append({
            "active": frontier.size / v,
            "visited": visited / v,
            "scout_edges": scout / total_e,
        })
        frontier = new
    return out


class _BfsBase(Workload):
    layout_kind = "Linked CSR"
    variant = "push"

    def default_params(self) -> Dict:
        # source None = the max-degree vertex (guaranteed inside the giant
        # component of a Kronecker graph)
        return {"source": None, "max_iters": 64}

    # switch thresholds (paper §7.2)
    NDC_PUSH_TO_PULL_VISITED = 0.40
    NDC_PUSH_TO_PULL_SCOUT = 0.06
    NDC_PULL_TO_PUSH_AWAKE = 0.25
    GAP_ALPHA = 14.0   # push->pull when scout edges > |E| / alpha
    GAP_BETA = 24.0    # pull->push when frontier < |V| / beta

    def _decide_direction(self, mode: EngineMode, current: str,
                          visited_ratio: float, scout_ratio: float,
                          awake_ratio: float, frontier_ratio: float) -> str:
        if self.variant != "switch":
            return self.variant
        if mode.offloads:
            # NDC favors pushing (cheap remote atomics): the paper's
            # extended policy switches to pull only when most vertices are
            # visited AND the scout edges predict many failed CASes.
            if current == "push":
                if (visited_ratio > self.NDC_PUSH_TO_PULL_VISITED
                        and scout_ratio > self.NDC_PUSH_TO_PULL_SCOUT):
                    return "pull"
                return "push"
            return "push" if awake_ratio < self.NDC_PULL_TO_PUSH_AWAKE else "pull"
        # In-core: GAP's direction-optimizing heuristic
        if current == "push":
            return "pull" if scout_ratio > 1.0 / self.GAP_ALPHA else "push"
        return "push" if frontier_ratio < 1.0 / self.GAP_BETA else "pull"

    def run(self, mode: EngineMode, config: SystemConfig = DEFAULT_CONFIG,
            policy=None, scale: float = 1.0, seed: int = 0,
            graph: Optional[CSRGraph] = None, **overrides) -> RunResult:
        p = self.params(scale, **overrides)
        g = graph if graph is not None else default_graph(scale, seed,
                                                          symmetrize=True)
        ctx = make_context(mode, config, policy, seed)
        s = GraphSetup(ctx, g, ["parent"], "parent",
                       edge_layout=p.get("edge_layout"),
                       use_linked=p.get("use_linked", True),
                       node_bytes=p.get("node_bytes", 64))
        aff = mode.affinity_aware
        if aff and p.get("spatial_queue", True):
            # queue_delta deliberately mis-homes the queue storage by a
            # fixed bank distance (autoplace drift scenario; 0 = aligned).
            queue = SpatialQueue(ctx.machine, ctx.allocator, s.prop("parent"),
                                 bank_offset=p.get("queue_delta", 0))
        else:
            queue = GlobalQueue(ctx.machine, g.num_vertices)

        v = g.num_vertices
        parent = np.full(v, -1, dtype=np.int64)
        src = p["source"]
        if src is None:
            src = int(np.argmax(g.out_degrees()))
        parent[src] = src
        frontier = np.array([src], dtype=np.int64)
        visited = 1
        deg = g.out_degrees()
        direction = "push" if self.variant != "pull" else "pull"
        directions: List[str] = []
        it = 0
        while frontier.size and it < p["max_iters"]:
            scout_ratio = float(deg[frontier].sum()) / max(g.num_edges, 1)
            direction = self._decide_direction(
                mode, direction, visited / v, scout_ratio,
                (v - visited) / v, frontier.size / v)
            directions.append(direction)
            if direction == "push":
                frontier, parent, visited = self._push_iter(
                    ctx, s, queue, g, frontier, parent, visited)
            else:
                frontier, parent, visited = self._pull_iter(
                    ctx, s, g, frontier, parent, visited)
            ctx.end_epoch(f"iter{it}:{direction}")
            it += 1
        res = ctx.finish(f"{self.name}/{mode.value}", reuse_fraction=0.5,
                         value=parent)
        res.counters["bfs_iterations"] = it
        res.counters["bfs_visited"] = visited
        res.counters["directions"] = directions  # type: ignore[assignment]
        return res

    # ------------------------------------------------------------------
    def _push_iter(self, ctx, s: GraphSetup, queue, g: CSRGraph,
                   frontier, parent, visited):
        edge_idx, ecores, dsts = s.scan_edges(frontier)
        if edge_idx.size:
            ctx.executor.indirect_atomic(ecores, (s.edge_base(), edge_idx),
                                         (s.prop("parent"), dsts),
                                         ops_per_elem=1.0)
        unseen = parent[dsts] == -1
        srcs = np.repeat(frontier, g.edge_slices(frontier)[1])
        new, first_idx = np.unique(dsts[unseen], return_index=True)
        parent[new] = srcs[unseen][first_idx]
        if new.size:
            # CAS succeeded at the parent entries' banks -> push to queue
            src_banks = s.prop("parent").banks(new)
            tb, sb, _slots = queue.push_trace(new)
            pcores = ctx.cores_of_positions(np.arange(new.size), new.size)
            ctx.executor.queue_push(
                pcores, src_banks, tb, sb,
                tail_handle=getattr(queue, "tails", None),
                slot_handle=queue.storage)
        return new, parent, visited + new.size

    def _pull_iter(self, ctx, s: GraphSetup, g: CSRGraph,
                   frontier, parent, visited):
        v = g.num_vertices
        in_frontier = np.zeros(v, dtype=bool)
        in_frontier[frontier] = True
        unvisited = np.flatnonzero(parent == -1)
        scanned_idx, _scan_len, parents = _pull_scan(g, unvisited, in_frontier)
        if scanned_idx.size:
            ecores = ctx.cores_of_positions(
                np.arange(scanned_idx.size), scanned_idx.size)
            srcs = g.edges[scanned_idx].astype(np.int64)
            ctx.executor.indirect_gather(ecores, (s.edge_base(), scanned_idx),
                                         (s.prop("parent"), srcs),
                                         ops_per_elem=1.0)
        found = parents >= 0
        new = unvisited[found]
        parent[new] = parents[found]
        return new, parent, visited + new.size


@register
class BfsPush(_BfsBase):
    name = "bfs_push"
    variant = "push"


@register
class BfsPull(_BfsBase):
    name = "bfs_pull"
    variant = "pull"


@register
class BfsSwitch(_BfsBase):
    name = "bfs"
    variant = "switch"


# ----------------------------------------------------------------------
# SSSP
# ----------------------------------------------------------------------
@register
class Sssp(Workload):
    """Frontier Bellman-Ford with atomic-min relaxations (weights [1,255])."""

    name = "sssp"
    layout_kind = "Linked CSR"

    def default_params(self) -> Dict:
        return {"source": None, "max_iters": 24}

    def run(self, mode: EngineMode, config: SystemConfig = DEFAULT_CONFIG,
            policy=None, scale: float = 1.0, seed: int = 0,
            graph: Optional[CSRGraph] = None, **overrides) -> RunResult:
        p = self.params(scale, **overrides)
        g = graph if graph is not None else default_graph(scale, seed,
                                                          weighted=True)
        if g.weights is None:
            raise ValueError("sssp needs a weighted graph")
        ctx = make_context(mode, config, policy, seed)
        s = GraphSetup(ctx, g, ["dist"], "dist", weighted=True,
                       edge_layout=p.get("edge_layout"),
                       use_linked=p.get("use_linked", True),
                       node_bytes=p.get("node_bytes", 64))
        aff = mode.affinity_aware
        if aff and p.get("spatial_queue", True):
            queue = SpatialQueue(ctx.machine, ctx.allocator, s.prop("dist"),
                                 bank_offset=p.get("queue_delta", 0))
        else:
            queue = GlobalQueue(ctx.machine, g.num_vertices)

        v = g.num_vertices
        dist = np.full(v, np.inf)
        src = p["source"]
        if src is None:
            src = int(np.argmax(g.out_degrees()))
        dist[src] = 0.0
        frontier = np.array([src], dtype=np.int64)
        it = 0
        while frontier.size and it < p["max_iters"]:
            edge_idx, ecores, dsts = s.scan_edges(frontier)
            if edge_idx.size:
                ctx.executor.indirect_atomic(
                    ecores, (s.edge_base(), edge_idx),
                    (s.prop("dist"), dsts), ops_per_elem=2.0)
            counts = g.edge_slices(frontier)[1]
            srcs = np.repeat(frontier, counts)
            cand = dist[srcs] + g.weights[edge_idx]
            improved_mask = cand < dist[dsts]
            # apply relaxations (atomic-min semantics)
            np.minimum.at(dist, dsts, cand)
            new = np.unique(dsts[improved_mask])
            if new.size:
                src_banks = s.prop("dist").banks(new)
                tb, sb, _slots = queue.push_trace(new)
                pcores = ctx.cores_of_positions(np.arange(new.size), new.size)
                ctx.executor.queue_push(
                    pcores, src_banks, tb, sb,
                    tail_handle=getattr(queue, "tails", None),
                    slot_handle=queue.storage)
            frontier = new
            ctx.end_epoch(f"iter{it}")
            it += 1
        res = ctx.finish(f"sssp/{mode.value}", reuse_fraction=0.5, value=dist)
        res.counters["sssp_iterations"] = it
        return res
