"""Workload plumbing: run contexts, the registry, the uniform entry point.

A :class:`RunContext` bundles everything one run needs — the machine, the
(optional) affinity allocator, the trace recorder, the stream executor —
and provides the allocation helper that makes workload code read like the
paper's listings: in ``AFF_ALLOC`` mode ``ctx.alloc(...)`` goes through
``malloc_aff`` with the given affinity spec, in the other modes the same
call is a plain ``malloc`` (the spec is ignored, as the baseline has no
way to express it).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.config import DEFAULT_CONFIG, SystemConfig
from repro.core.api import AffineArray, ArrayHandle, alloc_plain_array
from repro.core.policy import BankSelectPolicy, HybridPolicy
from repro.core.runtime import AffinityAllocator
from repro.faults.injector import active_fault_session
from repro.interfere.engine import active_interference_session
from repro.machine import Machine
from repro.obs.tracer import active_trace_session
from repro.relayout.engine import active_relayout_session
from repro.nsc.engine import EngineMode
from repro.nsc.executor import StreamExecutor
from repro.perf.model import PerfModel, RunResult
from repro.perf.stats import RunRecorder

__all__ = ["EngineMode", "RunContext", "Workload", "WORKLOADS",
           "make_context", "run_workload", "register"]


@dataclass
class RunContext:
    """Everything one workload run needs."""

    machine: Machine
    mode: EngineMode
    recorder: RunRecorder
    executor: StreamExecutor
    allocator: Optional[AffinityAllocator] = None
    seed: int = 0

    # ------------------------------------------------------------------
    def alloc(self, elem_size: int, num_elem: int, name: str = "",
              align_to: Optional[ArrayHandle] = None, p: int = 1, q: int = 1,
              x: int = 0, partition: bool = False) -> ArrayHandle:
        """Allocate an array: affinity-aware in AFF_ALLOC, plain otherwise."""
        if self.mode.affinity_aware:
            assert self.allocator is not None
            spec = AffineArray(elem_size, num_elem, align_to=align_to,
                               align_p=p, align_q=q, align_x=x,
                               partition=partition)
            return self.allocator.malloc_affine(spec, name=name)
        return alloc_plain_array(self.machine, elem_size, num_elem, name=name)

    def cores_for(self, n: int) -> np.ndarray:
        """Block distribution of ``n`` iterations across the cores."""
        c = self.machine.num_cores
        return (np.arange(n, dtype=np.int64) * c // max(n, 1)).astype(np.int64)

    def cores_of_positions(self, pos: np.ndarray, total: int) -> np.ndarray:
        """Owning core for iteration positions out of ``total``."""
        c = self.machine.num_cores
        return (np.asarray(pos, dtype=np.int64) * c // max(total, 1)).astype(np.int64)

    def end_epoch(self, label: str) -> None:
        """Close one epoch: seal the phase, then (when an autoplace
        session attached a relayout state) run the migration engine's
        decide/apply loop on the sealed counters.  Without a state this
        is exactly ``recorder.end_phase(label)`` — static runs keep a
        byte-identical phase stream."""
        phase = self.recorder.end_phase(label)
        state = self.machine.relayout
        if state is not None:
            state.on_epoch_boundary(self.recorder, phase)

    def finish(self, label: str, reuse_fraction: float = 1.0,
               value=None) -> RunResult:
        result = PerfModel(self.machine).evaluate(
            self.recorder, label=label, reuse_fraction=reuse_fraction,
            value=value)
        tracer = self.machine.tracer
        if tracer is not None and self.allocator is not None:
            # The allocator is only reachable from the context, not the
            # machine, so its stats publish here (after evaluate mirrored
            # the recorder-side counters into the registry).
            tracer.on_alloc_stats(self.allocator.stats)
        return result


def make_context(mode: EngineMode, config: SystemConfig = DEFAULT_CONFIG,
                 policy: Optional[BankSelectPolicy] = None,
                 seed: int = 0) -> RunContext:
    """Build a fresh machine + recorder + executor for one run.

    In-core and Near-L3 runs use realistic random page mapping for the
    heap (what an oblivious OS gives you); the affinity-aware run keeps
    the heap linear — its arrays come from interleave pools anyway.
    """
    heap_mode = "linear" if mode.affinity_aware else "random"
    machine = Machine(config, heap_mode=heap_mode, seed=seed)
    session = active_fault_session()
    if session is not None:
        # Chaos fault injection: boot-phase faults (pool caps, armed
        # alloc ordinals, boot bank/link failures) apply here, before
        # any allocation; run-phase faults arm and fire at the first
        # executor primitive.
        session.attach(machine)
    relayout = active_relayout_session()
    if relayout is not None:
        # Online re-layout: attaches a RelayoutState (machine.relayout)
        # that the executor feeds drift observations and end_epoch()
        # drives; an inactive session (cfg=None) no-ops, keeping nested
        # static arms static.
        relayout.attach(machine)
    trace = active_trace_session()
    if trace is not None:
        # Observability: attaches a TraceState (machine.tracer) that
        # buffers span/instant events for virtual-time resolution; an
        # inactive session (cfg=None) no-ops, keeping untraced runs
        # byte-identical.
        trace.attach(machine)
    interference = active_interference_session()
    if interference is not None:
        # Concurrent-host interference: attaches an InterferenceState
        # (machine.interference) whose host epochs fire at every
        # end_phase; an empty plan no-ops, keeping uncontended runs
        # byte-identical.
        interference.attach(machine)
    recorder = RunRecorder(machine)
    executor = StreamExecutor(machine, recorder, mode)
    allocator = None
    if mode.affinity_aware:
        allocator = AffinityAllocator(machine,
                                      policy if policy is not None
                                      else HybridPolicy(5.0))
    return RunContext(machine, mode, recorder, executor, allocator, seed)


class Workload(abc.ABC):
    """One benchmark: parameters (Table 3 defaults) plus a traced run."""

    name: str = "abstract"
    layout_kind: str = ""  # Table 3 "Layout" column

    @abc.abstractmethod
    def default_params(self) -> Dict:
        """Table 3 parameters; a ``scale`` factor shrinks them uniformly."""

    @abc.abstractmethod
    def run(self, mode: EngineMode, config: SystemConfig = DEFAULT_CONFIG,
            policy: Optional[BankSelectPolicy] = None, scale: float = 1.0,
            seed: int = 0, **overrides) -> RunResult:
        """Execute under the given configuration; returns timed results."""

    def params(self, scale: float, **overrides) -> Dict:
        p = self.default_params()
        if scale != 1.0:
            for k, v in p.items():
                if k in self.SCALED_PARAMS:
                    p[k] = max(int(v * scale), 1)
        p.update(overrides)
        return p

    SCALED_PARAMS: tuple = ()

    def layout_plan(self, scale: float = 1.0, **overrides):
        """Static layout declaration for the afflint pre-flight.

        Returns a :class:`repro.analysis.plan.LayoutPlan` describing every
        affine allocation the workload will make (sizes resolved at the
        given scale), or ``None`` for workloads whose layout is data-driven
        (linked structures) and cannot be declared statically.
        """
        return None


WORKLOADS: Dict[str, Workload] = {}


def register(cls):
    """Class decorator: instantiate and add to the registry."""
    inst = cls()
    if inst.name in WORKLOADS:
        raise ValueError(f"duplicate workload {inst.name!r}")
    WORKLOADS[inst.name] = inst
    return cls


def run_workload(name: str, mode: EngineMode,
                 config: SystemConfig = DEFAULT_CONFIG,
                 policy: Optional[BankSelectPolicy] = None,
                 scale: float = 1.0, seed: int = 0, **overrides) -> RunResult:
    """Uniform entry point: ``run_workload("bfs_push", EngineMode.NEAR_L3)``."""
    try:
        wl = WORKLOADS[name]
    except KeyError:
        raise KeyError(f"unknown workload {name!r}; "
                       f"available: {sorted(WORKLOADS)}") from None
    return wl.run(mode, config=config, policy=policy, scale=scale, seed=seed,
                  **overrides)
