"""Vector addition ``C[i] = A[i] + B[i]`` — the paper's running example
(Figs 1/3/4, §3.1) and the Fig 4 layout-sensitivity study.

``run_vecadd_delta`` reproduces Fig 4's controlled layouts: A and B are
colocated, and C is placed so that bank ``i`` always forwards to bank
``(i + delta) mod num_banks``; ``delta=None`` gives the Random layout
(plain arrays on randomly-mapped heap pages).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.config import DEFAULT_CONFIG, SystemConfig
from repro.core.api import AffineArray, ArrayHandle
from repro.nsc.engine import EngineMode
from repro.perf.model import RunResult
from repro.workloads.base import RunContext, Workload, make_context, register

__all__ = ["VecAdd", "run_vecadd_delta"]

_OPS = 1.0  # one add per element


def _trace_vecadd(ctx: RunContext, a: ArrayHandle, b: ArrayHandle,
                  c: ArrayHandle, n: int, iters: int) -> None:
    idx = np.arange(n, dtype=np.int64)
    cores = ctx.cores_for(n)
    ctx.executor.affine_kernel(cores, [(a, idx), (b, idx)], out=(c, idx),
                               ops_per_elem=_OPS, repeat=iters)


def _functional_vecadd(n: int, seed: int):
    rng = np.random.default_rng(seed)
    av = rng.random(n, dtype=np.float32)
    bv = rng.random(n, dtype=np.float32)
    return av, bv, av + bv


@register
class VecAdd(Workload):
    """Plain vector add under the three engine modes."""

    name = "vecadd"
    layout_kind = "Affine"
    SCALED_PARAMS = ("n",)

    def default_params(self) -> Dict:
        return {"n": 1 << 20, "iters": 1}

    def layout_plan(self, scale: float = 1.0, **overrides):
        from repro.analysis.plan import LayoutPlan
        n = self.params(scale, **overrides)["n"]
        plan = LayoutPlan(self.name)
        plan.array("A", 4, n)
        plan.array("B", 4, n, align_to="A")
        plan.array("C", 4, n, align_to="A")
        return plan

    def run(self, mode: EngineMode, config: SystemConfig = DEFAULT_CONFIG,
            policy=None, scale: float = 1.0, seed: int = 0,
            **overrides) -> RunResult:
        p = self.params(scale, **overrides)
        n, iters = p["n"], p["iters"]
        ctx = make_context(mode, config, policy, seed)
        a = ctx.alloc(4, n, "A")
        b = ctx.alloc(4, n, "B", align_to=a if mode.affinity_aware else None)
        c = ctx.alloc(4, n, "C", align_to=a if mode.affinity_aware else None)
        _trace_vecadd(ctx, a, b, c, n, iters)
        _av, _bv, cv = _functional_vecadd(n, seed)
        return ctx.finish(f"vecadd/{mode.value}", value=cv)


def _alloc_with_bank_offset(ctx: RunContext, ref: ArrayHandle, delta: int,
                            name: str) -> ArrayHandle:
    """Allocate an array shaped like ``ref`` whose element-0 bank is
    ``ref``'s start bank plus ``delta`` (the Fig 4 "Δ Bank" control)."""
    assert ctx.allocator is not None and ref.layout is not None
    return ctx.allocator.malloc_offset(ref, delta, name)


def run_vecadd_delta(delta: Optional[int], mode: EngineMode = EngineMode.AFF_ALLOC,
                     config: SystemConfig = DEFAULT_CONFIG, n: int = 1 << 20,
                     iters: int = 1, seed: int = 0) -> RunResult:
    """One Fig 4 configuration.

    Args:
        delta: forwarding distance in banks (0 = perfectly aligned); None
            gives the Random page layout on plain arrays.
        mode: the engine; Fig 4's In-Core bar uses ``EngineMode.IN_CORE``
            (delta is irrelevant there, pass 0).
    """
    if delta is None:
        ctx = make_context(EngineMode.NEAR_L3 if mode.offloads else mode,
                           config, seed=seed)
        a = ctx.alloc(4, n, "A")
        b = ctx.alloc(4, n, "B")
        c = ctx.alloc(4, n, "C")
        label = f"vecadd/random/{ctx.mode.value}"
    elif not mode.offloads:
        ctx = make_context(mode, config, seed=seed)
        a = ctx.alloc(4, n, "A")
        b = ctx.alloc(4, n, "B")
        c = ctx.alloc(4, n, "C")
        label = "vecadd/in-core"
    else:
        ctx = make_context(EngineMode.AFF_ALLOC, config, seed=seed)
        a = ctx.alloc(4, n, "A")
        b = ctx.alloc(4, n, "B", align_to=a)
        c = _alloc_with_bank_offset(ctx, a, delta, "C")
        label = f"vecadd/delta-{delta}"
    _trace_vecadd(ctx, a, b, c, n, iters)
    _av, _bv, cv = _functional_vecadd(n, seed)
    return ctx.finish(label, value=cv)
