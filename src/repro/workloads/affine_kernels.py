"""Affine (stencil/DP) workloads: pathfinder, srad, hotspot, hotspot3D.

Rodinia kernels ported to the trace executor (Table 3 sizes: pathfinder
1.5M entries, srad 1k x 2k, hotspot 2k x 1k, hotspot3D 256 x 1k x 8, all
8 iterations).  The per-iteration access trace of these kernels is
congruent across iterations (the ping-pong buffers are allocated with
identical alignment), so the trace is walked once with ``repeat=iters``.

Functional results use simplified update formulas (plain diffusion
stencils rather than Rodinia's full physics) — the access structure, not
the arithmetic, is what the evaluation measures.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.config import DEFAULT_CONFIG, SystemConfig
from repro.core.api import ArrayHandle
from repro.nsc.engine import EngineMode
from repro.perf.model import RunResult
from repro.workloads.base import RunContext, Workload, make_context, register

__all__ = ["Pathfinder", "Srad", "Hotspot", "Hotspot3D"]


def _clip(idx: np.ndarray, n: int) -> np.ndarray:
    return np.clip(idx, 0, n - 1)


@register
class Pathfinder(Workload):
    """Dynamic-programming path cost: dp[j] = min3(prev[j-1:j+2]) + wall[j]."""

    name = "pathfinder"
    layout_kind = "Affine"
    SCALED_PARAMS = ("cols",)

    def default_params(self) -> Dict:
        return {"cols": 1_500_000, "iters": 8}

    def layout_plan(self, scale: float = 1.0, **overrides):
        from repro.analysis.plan import LayoutPlan
        n = self.params(scale, **overrides)["cols"]
        plan = LayoutPlan(self.name)
        plan.array("wall", 4, n)
        plan.array("prev", 4, n, align_to="wall")
        plan.array("next", 4, n, align_to="wall")
        return plan

    def run(self, mode: EngineMode, config: SystemConfig = DEFAULT_CONFIG,
            policy=None, scale: float = 1.0, seed: int = 0,
            **overrides) -> RunResult:
        p = self.params(scale, **overrides)
        n, iters = p["cols"], p["iters"]
        ctx = make_context(mode, config, policy, seed)
        aff = mode.affinity_aware
        wall = ctx.alloc(4, n, "wall")
        prev = ctx.alloc(4, n, "prev", align_to=wall if aff else None)
        nxt = ctx.alloc(4, n, "next", align_to=wall if aff else None)
        idx = np.arange(n, dtype=np.int64)
        cores = ctx.cores_for(n)
        ctx.executor.affine_kernel(
            cores,
            [(prev, _clip(idx - 1, n)), (prev, idx), (prev, _clip(idx + 1, n)),
             (wall, idx)],
            out=(nxt, idx), ops_per_elem=4.0, repeat=iters)
        # functional DP
        rng = np.random.default_rng(seed)
        w = rng.integers(0, 10, n).astype(np.float32)
        dp = w.copy()
        for _ in range(iters):
            shifted_l = np.concatenate([dp[:1], dp[:-1]])
            shifted_r = np.concatenate([dp[1:], dp[-1:]])
            dp = np.minimum(np.minimum(shifted_l, dp), shifted_r) + w
        return ctx.finish(f"pathfinder/{mode.value}", value=dp)


class _Stencil2D(Workload):
    """Shared machinery for 2D 5-point stencils (hotspot, srad passes)."""

    rows: int = 0
    cols: int = 0
    iters: int = 8
    GRID_NAMES: List[str] = []

    def default_params(self) -> Dict:
        return {"rows": self.rows, "cols": self.cols, "iters": self.iters}

    SCALED_PARAMS = ("rows",)

    def layout_plan(self, scale: float = 1.0, **overrides):
        from repro.analysis.plan import LayoutPlan
        p = self.params(scale, **overrides)
        n = p["rows"] * p["cols"]
        plan = LayoutPlan(self.name)
        plan.array(self.GRID_NAMES[0], 4, n, align_x=p["cols"])
        for nm in self.GRID_NAMES[1:]:
            plan.array(nm, 4, n, align_to=self.GRID_NAMES[0])
        return plan

    def _alloc_grids(self, ctx: RunContext, rows: int, cols: int,
                     names: List[str]) -> List[ArrayHandle]:
        """First grid gets intra-array row affinity; the rest align to it."""
        aff = ctx.mode.affinity_aware
        first = ctx.alloc(4, rows * cols, names[0], x=cols if aff else 0)
        out = [first]
        for nm in names[1:]:
            out.append(ctx.alloc(4, rows * cols, nm,
                                 align_to=first if aff else None))
        return out

    @staticmethod
    def _stencil_indices(rows: int, cols: int) -> Tuple[np.ndarray, ...]:
        n = rows * cols
        idx = np.arange(n, dtype=np.int64)
        north = _clip(idx - cols, n)
        south = _clip(idx + cols, n)
        west = _clip(idx - 1, n)
        east = _clip(idx + 1, n)
        return idx, north, south, west, east

    @staticmethod
    def _functional_diffuse(rows: int, cols: int, iters: int, seed: int,
                            passes: int = 1) -> np.ndarray:
        rng = np.random.default_rng(seed)
        g = rng.random((rows, cols), dtype=np.float32)
        src = rng.random((rows, cols), dtype=np.float32) * 0.01
        for _ in range(iters * passes):
            up = np.vstack([g[:1], g[:-1]])
            down = np.vstack([g[1:], g[-1:]])
            left = np.hstack([g[:, :1], g[:, :-1]])
            right = np.hstack([g[:, 1:], g[:, -1:]])
            g = 0.2 * (g + up + down + left + right) + src
        return g


@register
class Hotspot(_Stencil2D):
    """Thermal simulation: 5-point stencil over temp with a power term."""

    name = "hotspot"
    layout_kind = "Affine"
    rows, cols = 2048, 1024
    GRID_NAMES = ["temp", "power", "temp_out"]

    def run(self, mode: EngineMode, config: SystemConfig = DEFAULT_CONFIG,
            policy=None, scale: float = 1.0, seed: int = 0,
            **overrides) -> RunResult:
        p = self.params(scale, **overrides)
        rows, cols, iters = p["rows"], p["cols"], p["iters"]
        ctx = make_context(mode, config, policy, seed)
        temp, power, temp_out = self._alloc_grids(ctx, rows, cols,
                                                  ["temp", "power", "temp_out"])
        idx, north, south, west, east = self._stencil_indices(rows, cols)
        cores = ctx.cores_for(idx.size)
        ctx.executor.affine_kernel(
            cores,
            [(temp, idx), (temp, north), (temp, south), (temp, west),
             (temp, east), (power, idx)],
            out=(temp_out, idx), ops_per_elem=7.0, repeat=iters)
        value = self._functional_diffuse(rows, cols, iters, seed)
        return ctx.finish(f"hotspot/{mode.value}", value=value)


@register
class Srad(_Stencil2D):
    """Speckle-reducing anisotropic diffusion: two 4-neighbor passes/iter."""

    name = "srad"
    layout_kind = "Affine"
    rows, cols = 1024, 2048
    GRID_NAMES = ["img", "coeff"]

    def run(self, mode: EngineMode, config: SystemConfig = DEFAULT_CONFIG,
            policy=None, scale: float = 1.0, seed: int = 0,
            **overrides) -> RunResult:
        p = self.params(scale, **overrides)
        rows, cols, iters = p["rows"], p["cols"], p["iters"]
        ctx = make_context(mode, config, policy, seed)
        img, coeff = self._alloc_grids(ctx, rows, cols, ["img", "coeff"])
        idx, north, south, west, east = self._stencil_indices(rows, cols)
        cores = ctx.cores_for(idx.size)
        # pass 1: compute diffusion coefficient from image gradients
        ctx.executor.affine_kernel(
            cores,
            [(img, idx), (img, north), (img, south), (img, west), (img, east)],
            out=(coeff, idx), ops_per_elem=10.0, repeat=iters)
        # pass 2: update image from coefficients (south/east neighbors)
        ctx.executor.affine_kernel(
            cores,
            [(coeff, idx), (coeff, south), (coeff, east), (img, idx)],
            out=(img, idx), ops_per_elem=6.0, repeat=iters)
        value = self._functional_diffuse(rows, cols, iters, seed, passes=2)
        return ctx.finish(f"srad/{mode.value}", value=value)


@register
class Hotspot3D(Workload):
    """7-point 3D stencil (256 x 1k x 8 grid)."""

    name = "hotspot3D"
    layout_kind = "Affine"
    SCALED_PARAMS = ("ny",)

    def default_params(self) -> Dict:
        return {"nx": 256, "ny": 1024, "nz": 8, "iters": 8}

    def layout_plan(self, scale: float = 1.0, **overrides):
        from repro.analysis.plan import LayoutPlan
        p = self.params(scale, **overrides)
        n = p["nx"] * p["ny"] * p["nz"]
        plan = LayoutPlan(self.name)
        plan.array("tIn", 4, n, align_x=p["nx"] * p["ny"])
        plan.array("power", 4, n, align_to="tIn")
        plan.array("tOut", 4, n, align_to="tIn")
        return plan

    def run(self, mode: EngineMode, config: SystemConfig = DEFAULT_CONFIG,
            policy=None, scale: float = 1.0, seed: int = 0,
            **overrides) -> RunResult:
        p = self.params(scale, **overrides)
        nx, ny, nz, iters = p["nx"], p["ny"], p["nz"], p["iters"]
        n = nx * ny * nz
        ctx = make_context(mode, config, policy, seed)
        aff = mode.affinity_aware
        # z-plane stride is the long-distance neighbor: optimize for it
        t_in = ctx.alloc(4, n, "tIn", x=nx * ny if aff else 0)
        power = ctx.alloc(4, n, "power", align_to=t_in if aff else None)
        t_out = ctx.alloc(4, n, "tOut", align_to=t_in if aff else None)
        idx = np.arange(n, dtype=np.int64)
        offsets = [0, -1, 1, -nx, nx, -nx * ny, nx * ny]
        ins = [(t_in, _clip(idx + off, n)) for off in offsets]
        ins.append((power, idx))
        cores = ctx.cores_for(n)
        ctx.executor.affine_kernel(cores, ins, out=(t_out, idx),
                                   ops_per_elem=9.0, repeat=iters)
        # functional 3D diffusion
        rng = np.random.default_rng(seed)
        g = rng.random((nz, ny, nx), dtype=np.float32)
        for _ in range(iters):
            acc = g.copy()
            for axis in range(3):
                acc = acc + np.roll(g, 1, axis=axis) + np.roll(g, -1, axis=axis)
            g = acc / 7.0
        return ctx.finish(f"hotspot3D/{mode.value}", value=g)
