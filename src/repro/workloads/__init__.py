"""The ten evaluation workloads (paper Table 3) plus the Fig 4 vec-add.

Every workload runs under the three configurations of the paper's
evaluation (``EngineMode.IN_CORE`` / ``NEAR_L3`` / ``AFF_ALLOC``),
computing functionally correct results while emitting the access trace
the simulator times.  ``WORKLOADS`` maps names to instances; a uniform
``run(mode, ...)`` entry point keeps the harness generic.
"""

from repro.workloads.base import (
    EngineMode,
    RunContext,
    Workload,
    WORKLOADS,
    make_context,
    run_workload,
)
from repro.workloads import vecadd as _vecadd
from repro.workloads import affine_kernels as _affine
from repro.workloads import graph_kernels as _graph
from repro.workloads import pointer_kernels as _pointer
from repro.workloads import phase_flip as _phase_flip
from repro.workloads import adversarial as _adversarial

__all__ = [
    "EngineMode",
    "RunContext",
    "Workload",
    "WORKLOADS",
    "make_context",
    "run_workload",
]
