"""Phase-changing streaming kernels for the online re-layout study.

``stream_flip`` runs ``C[i] = A[idx] + B[idx]`` through a *schedule* of
segments; each segment reads its inputs at a fixed bank shift from the
consumer.  The opening segment is perfectly aligned (the layout the
affinity allocator chose is optimal for it); later segments model a
program phase change — the access pattern slides by a few banks, so a
static layout forwards every operand across the NoC while the online
re-layout engine can rotate the inputs back under their consumers after
one drifted epoch.

``dyn_graph_stream`` is the same kernel under a mutation-stream
schedule: the shift changes twice mid-run (as when a dynamic graph's
hot vertex set moves), forcing the engine to re-rotate and exercising
migration-table replacement plus cooldown handling.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.config import DEFAULT_CONFIG, SystemConfig
from repro.nsc.engine import EngineMode
from repro.perf.model import RunResult
from repro.workloads.base import Workload, make_context, register

__all__ = ["DynGraphStream", "StreamFlip"]

_FALLBACK_ELEMS_PER_BANK = 256  # 1 KiB default interleave / 4 B elements


class _ScheduledStream(Workload):
    """Shared machinery: run the add kernel over a (iters, shift) schedule."""

    name = "abstract-scheduled-stream"
    layout_kind = "Affine"
    SCALED_PARAMS = ("n",)
    #: ((iterations, bank shift), ...) — subclasses pin their phase plot.
    SCHEDULE: Tuple[Tuple[int, int], ...] = ()

    def default_params(self) -> Dict:
        return {"n": 1 << 18, "schedule": self.SCHEDULE}

    def layout_plan(self, scale: float = 1.0, **overrides):
        from repro.analysis.plan import LayoutPlan
        n = self.params(scale, **overrides)["n"]
        plan = LayoutPlan(self.name)
        plan.array("A", 4, n)
        plan.array("B", 4, n, align_to="A")
        plan.array("C", 4, n, align_to="A")
        return plan

    def run(self, mode: EngineMode, config: SystemConfig = DEFAULT_CONFIG,
            policy=None, scale: float = 1.0, seed: int = 0,
            **overrides) -> RunResult:
        p = self.params(scale, **overrides)
        n = p["n"]
        schedule = tuple(p["schedule"])
        ctx = make_context(mode, config, policy, seed)
        aff = mode.affinity_aware
        a = ctx.alloc(4, n, "A")
        b = ctx.alloc(4, n, "B", align_to=a if aff else None)
        c = ctx.alloc(4, n, "C", align_to=a if aff else None)
        layout = a.layout
        elems_per_bank = (int(layout.intrlv) // 4
                          if layout is not None and layout.intrlv > 0
                          else _FALLBACK_ELEMS_PER_BANK)

        rng = np.random.default_rng(seed)
        av = rng.random(n, dtype=np.float32)
        bv = rng.random(n, dtype=np.float32)
        idx = np.arange(n, dtype=np.int64)
        cores = ctx.cores_for(n)
        cv = np.zeros(n, dtype=np.float32)
        epoch = 0
        for shift_no, (iters, shift) in enumerate(schedule):
            src = (idx + shift * elems_per_bank) % n
            for _ in range(iters):
                ctx.executor.affine_kernel(cores, [(a, src), (b, src)],
                                           out=(c, idx), ops_per_elem=1.0)
                ctx.end_epoch(f"seg{shift_no}:shift{shift}:e{epoch}")
                epoch += 1
            cv = av[src] + bv[src]
        res = ctx.finish(f"{self.name}/{mode.value}", value=cv)
        res.counters["epochs"] = epoch
        return res


@register
class StreamFlip(_ScheduledStream):
    """One phase change: aligned push epochs, then shifted pull epochs."""

    name = "stream_flip"
    SCHEDULE = ((2, 0), (4, 3))


@register
class DynGraphStream(_ScheduledStream):
    """Mutation stream: the hot access offset moves twice mid-run."""

    name = "dyn_graph"
    SCHEDULE = ((1, 0), (3, 2), (3, 5))
