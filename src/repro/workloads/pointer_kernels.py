"""Pointer-chasing workloads: link_list, hash_join, bin_tree (Table 3).

* ``link_list`` — 1k lists of 512 nodes (8B keys), one search per list.
* ``hash_join`` — probe a 256k-key chained hash table with 512k keys,
  hit rate 1/8, buckets <= 8.
* ``bin_tree`` — 128k-node unbalanced BST, 512k uniform lookups.

All three build their structures in realistic insertion order; under
``AFF_ALLOC`` nodes carry affinity addresses (previous node / bucket head
/ parent) so the runtime colocates chains (paper Fig 10).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.config import DEFAULT_CONFIG, SystemConfig
from repro.datastructs.binary_tree import BinaryTree
from repro.datastructs.hash_table import HashTable
from repro.datastructs.linked_list import LinkedListSet
from repro.nsc.engine import EngineMode
from repro.perf.model import RunResult
from repro.workloads.base import Workload, make_context, register

__all__ = ["LinkListSearch", "HashJoin", "BinTreeLookup"]


@register
class LinkListSearch(Workload):
    name = "link_list"
    layout_kind = "Ptr-Chasing"
    SCALED_PARAMS = ("num_lists",)

    def default_params(self) -> Dict:
        return {"num_lists": 1000, "nodes_per_list": 512, "queries_per_list": 1}

    def run(self, mode: EngineMode, config: SystemConfig = DEFAULT_CONFIG,
            policy=None, scale: float = 1.0, seed: int = 0,
            **overrides) -> RunResult:
        p = self.params(scale, **overrides)
        nl, npl = p["num_lists"], p["nodes_per_list"]
        ctx = make_context(mode, config, policy, seed)
        lists = LinkedListSet.build(ctx.machine, nl, npl,
                                    allocator=ctx.allocator, seed=seed)
        rng = np.random.default_rng(seed + 1)
        nq = nl * p["queries_per_list"]
        list_ids = np.tile(np.arange(nl, dtype=np.int64),
                           p["queries_per_list"])
        # each query searches for a key sitting at a uniform position
        stop_pos = rng.integers(0, npl, size=nq)
        node_vaddrs, chain_ids = lists.search_trace(list_ids, stop_pos)
        chain_cores = ctx.cores_of_positions(np.arange(nq), nq)
        ctx.executor.pointer_chase(node_vaddrs, chain_ids, chain_cores,
                                   ops_per_node=1.0)
        # functional: confirm the searched keys are found where expected
        hits = np.array([lists.search(int(l), int(lists.keys[l, s]))
                         for l, s in zip(list_ids[:16], stop_pos[:16])])
        found_frac = float(np.mean(hits >= 0))
        res = ctx.finish(f"link_list/{mode.value}", value=found_frac)
        res.counters["nodes_walked"] = float(node_vaddrs.size)
        return res


@register
class HashJoin(Workload):
    name = "hash_join"
    layout_kind = "Ptr-Chasing"
    SCALED_PARAMS = ("build_keys", "probe_keys", "buckets")

    def default_params(self) -> Dict:
        # 256k build keys joined against 512k probes, hit rate 1/8,
        # chains bounded (~4 avg with 64k buckets)
        return {"build_keys": 1 << 18, "probe_keys": 1 << 19,
                "buckets": 1 << 16, "hit_rate": 0.125}

    def run(self, mode: EngineMode, config: SystemConfig = DEFAULT_CONFIG,
            policy=None, scale: float = 1.0, seed: int = 0,
            **overrides) -> RunResult:
        p = self.params(scale, **overrides)
        ctx = make_context(mode, config, policy, seed)
        table = HashTable.build(ctx.machine, p["build_keys"], p["buckets"],
                                allocator=ctx.allocator, seed=seed)
        rng = np.random.default_rng(seed + 1)
        nq = p["probe_keys"]
        n_hit = int(nq * p["hit_rate"])
        hit_keys = table.keys[rng.integers(0, table.num_keys, n_hit)]
        # misses: keys guaranteed absent (beyond the build key space)
        miss_keys = (np.int64(table.num_keys) * 8
                     + rng.integers(0, 1 << 40, nq - n_hit))
        probe_keys = np.concatenate([hit_keys, miss_keys])
        rng.shuffle(probe_keys)
        # probe-key stream (affine read) + head-pointer lookup
        probes_h = ctx.alloc(8, nq, "probe-keys")
        idx = np.arange(nq, dtype=np.int64)
        cores = ctx.cores_for(nq)
        ctx.executor.affine_kernel(cores, [(probes_h, idx)], ops_per_elem=2.0)
        buckets = probe_keys % table.num_buckets
        ctx.executor.indirect_gather(cores, (probes_h, idx),
                                     (table.heads, buckets), ops_per_elem=1.0)
        node_vaddrs, chain_ids, hit = table.probe_trace(probe_keys)
        nonempty_probes = np.unique(chain_ids).size
        chain_cores = ctx.cores_of_positions(np.arange(max(nonempty_probes, 1)),
                                             max(nonempty_probes, 1))
        ctx.executor.pointer_chase(node_vaddrs, chain_ids, chain_cores,
                                   ops_per_node=1.0)
        res = ctx.finish(f"hash_join/{mode.value}", value=float(hit.mean()))
        res.counters["hit_rate"] = float(hit.mean())
        res.counters["nodes_walked"] = float(node_vaddrs.size)
        return res


@register
class BinTreeLookup(Workload):
    name = "bin_tree"
    layout_kind = "Ptr-Chasing"
    SCALED_PARAMS = ("num_keys", "lookups")

    def default_params(self) -> Dict:
        return {"num_keys": 1 << 17, "lookups": 1 << 19}

    def run(self, mode: EngineMode, config: SystemConfig = DEFAULT_CONFIG,
            policy=None, scale: float = 1.0, seed: int = 0,
            **overrides) -> RunResult:
        p = self.params(scale, **overrides)
        ctx = make_context(mode, config, policy, seed)
        tree = BinaryTree.build(ctx.machine, p["num_keys"],
                                allocator=ctx.allocator, seed=seed)
        rng = np.random.default_rng(seed + 1)
        queries = rng.integers(0, p["num_keys"], size=p["lookups"])
        node_vaddrs, chain_ids, depths = tree.lookup_trace(queries)
        chain_cores = ctx.cores_of_positions(np.arange(queries.size),
                                             queries.size)
        ctx.executor.pointer_chase(node_vaddrs, chain_ids, chain_cores,
                                   ops_per_node=1.0)
        res = ctx.finish(f"bin_tree/{mode.value}", value=float(depths.mean()))
        res.counters["mean_depth"] = float(depths.mean())
        res.counters["nodes_walked"] = float(node_vaddrs.size)
        return res
