"""Pure migration policy: telemetry in, bounded decisions out.

``decide`` is a pure function of a :class:`Telemetry` snapshot and a
frozen :class:`RelayoutConfig`; it touches no global state and draws no
randomness beyond what the config carries, so the same inputs always
produce the same ordered decision tuple.  That purity is what makes the
whole autoplace loop epoch-deterministic: the engine feeds it snapshots
built from the recorder's phase deltas, and the property suite replays
it directly.

Decision rules (paper framing: keep forwarding distance near zero):

* **ROTATE** — an array whose observed accesses land a *consistent*
  bank distance ``d`` from their consumers (dominant bin of the delta
  histogram) gets its pool slots rotated by ``-d`` via an IOT override.
* **SWAP** — under extreme bank-heat skew (max/mean >= ``hot_ratio``)
  the hottest and coldest healthy banks trade identities.
* **REHOME** — advisory, budget-gated: an irregular array with high
  remote fraction but *no* dominant delta is flagged for structural
  re-placement (the engine records it; data structures with their own
  re-homing hooks may act on it).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from typing import List, Tuple

from repro.relayout.plan import MigrationKind

__all__ = ["ArrayDrift", "Decision", "RelayoutConfig", "Telemetry", "decide"]


@dataclass(frozen=True)
class RelayoutConfig:
    """Tuning knobs for the online re-layout engine (all deterministic).

    Costs live here rather than on :class:`repro.config.SystemConfig`
    on purpose: the harness fingerprints the system config for its
    artifact cache, and relayout must not invalidate unrelated runs.
    """

    heat_decay: float = 0.5            # rolling bank-heat EWMA retention
    drift_threshold: float = 0.1       # min remote fraction to consider
    dominance: float = 0.6             # dominant delta bin vs all remotes
    min_accesses: float = 512.0        # ignore arrays below this traffic
    max_per_epoch: int = 2             # migration bound per epoch
    max_total: int = 16                # lifetime migration budget per run
    hot_ratio: float = 8.0             # bank heat max/mean to trigger SWAP
    cooldown_epochs: int = 1           # epochs an array rests after moving
    line_move_cycles: float = 2.0      # bank cycles per migrated line
    #: Quiesce stall (serial cycles on every core) charged once per
    #: epoch that applies at least one migration: streams drain, the
    #: IOT update propagates, streams resume.
    stall_cycles: float = 200.0
    rehome_budget: int = 0             # advisory REHOME decisions allowed
    seed: int = 0

    def digest(self) -> str:
        """Short stable hash for cache keys and run fingerprints."""
        blob = json.dumps(asdict(self), sort_keys=True)
        return hashlib.sha256(blob.encode()).hexdigest()[:12]


@dataclass(frozen=True)
class ArrayDrift:
    """Per-array drift observation accumulated over one epoch."""

    name: str
    vaddr: int
    total: float                       # observed element accesses
    remote: float                      # of which landed off-consumer-bank
    delta_hist: Tuple[float, ...]      # histogram of (data - desired) % nb
    eligible_rotate: bool = True       # pool-backed, IOT-rotatable
    cooling: bool = False              # migrated within cooldown window

    @property
    def remote_fraction(self) -> float:
        return self.remote / self.total if self.total > 0 else 0.0

    def dominant_delta(self) -> Tuple[int, float]:
        """(delta, weight) of the heaviest nonzero histogram bin."""
        best_d, best_w = 0, 0.0
        for d, w in enumerate(self.delta_hist):
            if d == 0:
                continue
            if w > best_w:
                best_d, best_w = d, w
        return best_d, best_w


@dataclass(frozen=True)
class Telemetry:
    """One epoch's snapshot handed to :func:`decide`."""

    epoch: str
    num_banks: int
    bank_heat: Tuple[float, ...]       # rolling per-bank heat (cycles)
    healthy: Tuple[bool, ...]          # per-bank health mask
    arrays: Tuple[ArrayDrift, ...]
    budget_left: int                   # lifetime migrations remaining


@dataclass(frozen=True)
class Decision:
    """One policy output; the engine turns these into Migrations."""

    kind: MigrationKind
    name: str = ""
    vaddr: int = 0
    rot: int = 0                       # ROTATE: bank rotation amount
    bank_a: int = -1                   # SWAP: hot bank
    bank_b: int = -1                   # SWAP: cold bank
    reason: str = ""


def _heat_skew(heat: Tuple[float, ...]) -> float:
    if not heat:
        return 0.0
    mean = sum(heat) / len(heat)
    return max(heat) / mean if mean > 0 else 0.0


def _swap_candidate(t: Telemetry) -> Tuple[int, int]:
    """(hot, cold) healthy bank pair, ties broken by lowest id."""
    hot, cold = -1, -1
    for b in range(t.num_banks):
        if not t.healthy[b]:
            continue
        if hot < 0 or t.bank_heat[b] > t.bank_heat[hot]:
            hot = b
        if cold < 0 or t.bank_heat[b] < t.bank_heat[cold]:
            cold = b
    return hot, cold


def decide(telemetry: Telemetry, cfg: RelayoutConfig) -> Tuple[Decision, ...]:
    """Emit at most ``min(max_per_epoch, budget_left)`` decisions.

    Deterministic: arrays are ranked by (traffic desc, vaddr asc) and
    every threshold comes from the frozen config.  Rotations aim to zero
    the dominant forwarding distance; the rotation amount is
    ``(num_banks - d) % num_banks`` so post-rotation accesses land on
    their consumer's bank.
    """
    out: List[Decision] = []
    budget = min(cfg.max_per_epoch, telemetry.budget_left)
    if budget <= 0:
        return ()

    ranked = sorted(telemetry.arrays, key=lambda a: (-a.total, a.vaddr))
    rehome_left = cfg.rehome_budget
    for a in ranked:
        if len(out) >= budget:
            break
        if a.cooling or a.total < cfg.min_accesses:
            continue
        if a.remote_fraction < cfg.drift_threshold:
            continue
        d, weight = a.dominant_delta()
        if a.eligible_rotate and d != 0 and weight >= cfg.dominance * a.remote:
            rot = (telemetry.num_banks - d) % telemetry.num_banks
            if rot:
                out.append(Decision(
                    kind=MigrationKind.ROTATE, name=a.name, vaddr=a.vaddr,
                    rot=rot,
                    reason=(f"dominant delta {d} over "
                            f"{a.remote_fraction:.0%} remote accesses")))
            continue
        if rehome_left > 0:
            rehome_left -= 1
            out.append(Decision(
                kind=MigrationKind.REHOME, name=a.name, vaddr=a.vaddr,
                reason=(f"{a.remote_fraction:.0%} remote with no dominant "
                        f"delta")))

    if len(out) < budget and _heat_skew(telemetry.bank_heat) >= cfg.hot_ratio:
        hot, cold = _swap_candidate(telemetry)
        if hot >= 0 and cold >= 0 and hot != cold:
            out.append(Decision(
                kind=MigrationKind.SWAP, bank_a=hot, bank_b=cold,
                name=f"bank{hot}<->bank{cold}",
                reason=(f"heat skew {_heat_skew(telemetry.bank_heat):.1f}x "
                        f">= {cfg.hot_ratio:.1f}x")))
    return tuple(out)
