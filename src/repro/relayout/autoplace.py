"""``python -m repro autoplace`` — static vs. online layout comparison.

For every requested *scenario* (a phase-changing workload configuration
whose allocation-time layout stops being optimal mid-run), the runner
executes a **static** arm (the affinity allocator's one-shot placement,
relayout forced off) and an **online** arm (the same run inside a
:func:`~repro.relayout.engine.relayout_session`), then reports the
recovered speedup, the migrations applied, and the achieved stream
locality.

Determinism contract (pinned by ``tests/test_relayout_golden.py``):
the same ``(scenarios, config, scale, seed)`` produce an identical
report and merged :class:`~repro.relayout.plan.MigrationPlan`, for
``--jobs 1`` and ``--jobs N`` alike — per-task results are collected in
the workers and merged in task order, never completion order.
"""

from __future__ import annotations

import argparse
import json
import math
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.relayout.plan import MigrationPlan
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.relayout.engine import RelayoutState
from repro.relayout.policy import RelayoutConfig

__all__ = ["AutoplaceReport", "DEFAULT_SCENARIOS", "SCENARIOS",
           "run_autoplace", "cli"]


# ----------------------------------------------------------------------
# Scenarios
# ----------------------------------------------------------------------
def _bfs_scenario(scale: float, seed: int) -> Tuple[str, Dict]:
    """BFS push->pull switch on a sparse graph whose spatial queue was
    (deliberately) homed three banks off its vertex partitions."""
    from repro.graphs.csr import CSRGraph
    from repro.graphs.generators import kronecker
    kscale = 14 if scale == 1.0 else max(11, 14 + int(round(math.log2(scale))))
    g = kronecker(kscale, 2, seed=seed)
    g = CSRGraph.from_edge_list(g.num_vertices, g.sources(), g.edges,
                                g.weights, symmetrize=True)
    return "bfs", {"graph": g, "queue_delta": 3}


def _stream_flip_scenario(scale: float, seed: int) -> Tuple[str, Dict]:
    """Streaming add whose read offset slides by three banks mid-run."""
    return "stream_flip", {}


def _dyn_graph_scenario(scale: float, seed: int) -> Tuple[str, Dict]:
    """Mutation stream: the hot access offset moves twice mid-run."""
    return "dyn_graph", {}


#: scenario name -> builder(scale, seed) -> (workload name, overrides).
SCENARIOS: Dict[str, Callable[[float, int], Tuple[str, Dict]]] = {
    "bfs": _bfs_scenario,
    "stream_flip": _stream_flip_scenario,
    "dyn_graph": _dyn_graph_scenario,
}

DEFAULT_SCENARIOS = ("stream_flip", "bfs", "dyn_graph")


# ----------------------------------------------------------------------
# Worker
# ----------------------------------------------------------------------
def _post_locality(state: "RelayoutState") -> Optional[float]:
    """Stream locality of the last epoch (after any migrations settled)."""
    for label, total, remote in reversed(state.epoch_locality):
        if total > 0:
            return 1.0 - remote / total
    return None


def _autoplace_task(scenario: str, scale: float, seed: int,
                    cfg: RelayoutConfig) -> Dict:
    """One scenario's static + online pair (runs in this or a worker
    process).  Returns plain data only, so results pickle and merge
    identically whatever the process layout."""
    from repro.harness.report import run_metrics
    from repro.nsc.engine import EngineMode
    from repro.relayout.engine import relayout_session
    from repro.workloads.base import run_workload

    workload, overrides = SCENARIOS[scenario](scale, seed)
    with relayout_session(None):  # force-static, even under an outer session
        static = run_workload(workload, EngineMode.AFF_ALLOC, scale=scale,
                              seed=seed, **overrides)
    with relayout_session(cfg, task=scenario) as session:
        online = run_workload(workload, EngineMode.AFF_ALLOC, scale=scale,
                              seed=seed, **overrides)
    plan = session.merged_plan()
    post = None
    for state in session.states:
        post = _post_locality(state) if post is None else post
    return {"scenario": scenario,
            "workload": workload,
            "static": run_metrics(static),
            "online": run_metrics(online),
            "migrations": plan.applied_count(),
            "moved_bytes": plan.moved_bytes(),
            "post_locality": post,
            "plan": json.loads(plan.to_json())}


# ----------------------------------------------------------------------
# Report
# ----------------------------------------------------------------------
@dataclass
class AutoplaceReport:
    """Aggregate of one :func:`run_autoplace` invocation."""

    config: RelayoutConfig
    scale: float
    seed: int
    rows: List[Dict] = field(default_factory=list)
    plan: MigrationPlan = field(default_factory=MigrationPlan.empty)

    @staticmethod
    def recovered(row: Dict) -> float:
        from repro.harness.report import ratio
        return ratio(row["static"]["cycles"], row["online"]["cycles"])

    @property
    def best_recovered(self) -> float:
        return max((self.recovered(r) for r in self.rows), default=1.0)

    def to_dict(self) -> Dict:
        return {"config": asdict(self.config),
                "scale": self.scale, "seed": self.seed,
                "rows": self.rows,
                "plan": self.plan.to_dict()}

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=1) + "\n"

    def render(self) -> str:
        from repro.harness.report import ascii_table, section
        headers = ["scenario", "static cyc", "online cyc", "recovered",
                   "migrations", "moved KiB", "loc static", "loc online",
                   "loc final"]
        table_rows = []
        for row in self.rows:
            s, o = row["static"], row["online"]
            post = row.get("post_locality")
            table_rows.append([
                row["scenario"], f"{s['cycles']:.0f}", f"{o['cycles']:.0f}",
                f"{self.recovered(row):.3f}x", row["migrations"],
                f"{row['moved_bytes'] / 1024:.0f}",
                f"{s['locality']:.3f}", f"{o['locality']:.3f}",
                f"{post:.3f}" if post is not None else "-"])
        lines = [section("Online re-layout report",
                         ascii_table(headers, table_rows)), "",
                 str(self.plan)]
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Runner
# ----------------------------------------------------------------------
def run_autoplace(scenarios: Sequence[str],
                  cfg: Optional[RelayoutConfig] = None,
                  scale: float = 1.0, seed: int = 0, jobs: int = 1,
                  progress: Optional[Callable[[str], None]] = None
                  ) -> AutoplaceReport:
    """Run static-vs-online pairs for every scenario under one config."""
    notify = progress or (lambda line: None)
    cfg = cfg if cfg is not None else RelayoutConfig()
    jobs = max(1, int(jobs))
    unknown = [s for s in scenarios if s not in SCENARIOS]
    if unknown:
        raise KeyError(f"unknown scenario(s): {', '.join(unknown)}; "
                       f"available: {', '.join(sorted(SCENARIOS))}")

    results: Dict[str, Dict] = {}
    if jobs == 1 or len(scenarios) <= 1:
        for name in scenarios:
            results[name] = _autoplace_task(name, scale, seed, cfg)
            notify(f"[done] {name}")
    else:
        with ProcessPoolExecutor(max_workers=min(jobs, len(scenarios))) as pool:
            futs = {pool.submit(_autoplace_task, name, scale, seed, cfg): name
                    for name in scenarios}
            for fut in as_completed(futs):
                name = futs[fut]
                results[name] = fut.result()
                notify(f"[done] {name}")

    # Merge in task order (never completion order) so jobs=1 and jobs=N
    # produce identical reports and plans.
    rows: List[Dict] = []
    plan = MigrationPlan.empty(seed=cfg.seed, max_per_epoch=cfg.max_per_epoch)
    for name in scenarios:
        r = results[name]
        rows.append(r)
        plan = plan.merged_with(
            MigrationPlan.from_json(json.dumps(r["plan"])).retagged(name))
    return AutoplaceReport(config=cfg, scale=scale, seed=seed, rows=rows,
                           plan=plan)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def cli(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro autoplace",
        description="Telemetry-driven online re-layout: compare the "
                    "allocator's static placement against epoch-based "
                    "migration on phase-changing workloads.")
    parser.add_argument("scenarios", nargs="*", default=[],
                        help=f"scenario names (default: "
                             f"{', '.join(DEFAULT_SCENARIOS)})")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload scale (default 1.0)")
    parser.add_argument("--seed", type=int, default=0,
                        help="run seed (default 0)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (default 1)")
    parser.add_argument("--max-per-epoch", type=int, default=None,
                        help="migration bound per epoch")
    parser.add_argument("--min-recovery", type=float, default=0.0,
                        help="fail unless some scenario recovers at least "
                             "this speedup (e.g. 1.01)")
    parser.add_argument("--check-determinism", action="store_true",
                        help="re-run with --jobs 2 and require a "
                             "byte-identical report")
    parser.add_argument("--save-report", type=Path, default=None,
                        help="write the report JSON here")
    parser.add_argument("--save-plan", type=Path, default=None,
                        help="write the merged migration plan JSON here")
    args = parser.parse_args(argv)

    scenarios = args.scenarios or list(DEFAULT_SCENARIOS)
    bad = [s for s in scenarios if s not in SCENARIOS]
    if bad:
        parser.error(f"unknown scenario(s): {', '.join(bad)}; "
                     f"available: {', '.join(sorted(SCENARIOS))}")
    cfg = RelayoutConfig(seed=args.seed)
    if args.max_per_epoch is not None:
        from dataclasses import replace
        cfg = replace(cfg, max_per_epoch=args.max_per_epoch)

    report = run_autoplace(scenarios, cfg, scale=args.scale, seed=args.seed,
                           jobs=args.jobs, progress=print)
    print(report.render())
    if args.save_report is not None:
        args.save_report.write_text(report.to_json(), encoding="utf-8")
        print(f"report -> {args.save_report}")
    if args.save_plan is not None:
        report.plan.save(args.save_plan)
        print(f"migration plan -> {args.save_plan}")
    from repro.harness.cliutil import EXIT_FAILURE, EXIT_OK
    if args.check_determinism:
        again = run_autoplace(scenarios, cfg, scale=args.scale,
                              seed=args.seed, jobs=2)
        if again.to_json() != report.to_json():
            print("ERROR: report differs between --jobs 1 and --jobs 2")
            return EXIT_FAILURE
        print("determinism check passed (jobs=1 == jobs=2)")
    if args.min_recovery > 0.0 and report.best_recovered < args.min_recovery:
        print(f"ERROR: best recovered speedup {report.best_recovered:.3f}x "
              f"below required {args.min_recovery:.3f}x")
        return EXIT_FAILURE
    return EXIT_OK
