"""Migration plans: what the online re-layout engine decided and did.

A :class:`MigrationPlan` is the relayout analogue of the chaos layer's
``FaultPlan``+``FaultEventLog`` pair: an ordered, value-comparable,
JSON-round-trippable record of every migration the policy emitted, both
applied and skipped.  Plans are the determinism contract's currency —
the property suite asserts that the same seed and telemetry produce the
same plan, byte for byte — and afflint replays them offline
(``python -m repro lint --migration-plan plan.json``).
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, replace
from pathlib import Path
import os
from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

if TYPE_CHECKING:
    from repro.analysis.diagnostics import DiagnosticReport

__all__ = ["MigrationKind", "Migration", "MigrationPlan"]


class MigrationKind(enum.Enum):
    """What kind of re-homing a migration performs."""

    ROTATE = "rotate"    # rotate an array's bank assignment (IOT override)
    SWAP = "swap"        # swap a hot bank with a cold one (remap + footprint)
    REHOME = "rehome"    # re-place an irregular structure near its affinity


@dataclass(frozen=True)
class Migration:
    """One migration decision, with its outcome.

    ``applied=False`` records a decision the engine could not carry out
    (ineligible layout, unhealthy target banks, budget exhausted); those
    survive into the plan so afflint can audit *why* nothing moved.
    """

    kind: MigrationKind
    target: str                       # array name/vaddr, or "a<->b" for swaps
    epoch: str                        # epoch label the decision fired at
    task: str = ""                    # owning run (autoplace scenario name)
    src_banks: Tuple[int, ...] = ()
    dst_banks: Tuple[int, ...] = ()
    moved_bytes: float = 0.0
    applied: bool = True
    detail: str = ""

    def describe(self) -> str:
        state = "applied" if self.applied else "skipped"
        extra = f" ({self.detail})" if self.detail else ""
        return (f"{self.kind.value} {self.target} @ {self.epoch} "
                f"[{state}, {self.moved_bytes:,.0f} B]{extra}")

    def to_dict(self) -> Dict:
        return {"kind": self.kind.value, "target": self.target,
                "epoch": self.epoch, "task": self.task,
                "src_banks": list(self.src_banks),
                "dst_banks": list(self.dst_banks),
                "moved_bytes": self.moved_bytes,
                "applied": self.applied, "detail": self.detail}

    @classmethod
    def from_dict(cls, d: Dict) -> "Migration":
        return cls(kind=MigrationKind(d["kind"]), target=d["target"],
                   epoch=d["epoch"], task=d.get("task", ""),
                   src_banks=tuple(int(b) for b in d.get("src_banks", ())),
                   dst_banks=tuple(int(b) for b in d.get("dst_banks", ())),
                   moved_bytes=float(d.get("moved_bytes", 0.0)),
                   applied=bool(d.get("applied", True)),
                   detail=d.get("detail", ""))


@dataclass(frozen=True)
class MigrationPlan:
    """Ordered record of one run's migrations plus policy metadata."""

    migrations: Tuple[Migration, ...] = ()
    seed: int = 0
    max_per_epoch: int = 0

    @classmethod
    def empty(cls, seed: int = 0, max_per_epoch: int = 0) -> "MigrationPlan":
        return cls(migrations=(), seed=seed, max_per_epoch=max_per_epoch)

    @property
    def is_empty(self) -> bool:
        return not self.migrations

    def applied(self) -> Tuple[Migration, ...]:
        return tuple(m for m in self.migrations if m.applied)

    def by_kind(self, kind: MigrationKind) -> Tuple[Migration, ...]:
        return tuple(m for m in self.migrations if m.kind is kind)

    def applied_count(self) -> int:
        return len(self.applied())

    def moved_bytes(self) -> float:
        return float(sum(m.moved_bytes for m in self.migrations if m.applied))

    def retagged(self, task: str) -> "MigrationPlan":
        """A copy with every migration's ``task`` set (scenario merging)."""
        return replace(self, migrations=tuple(
            replace(m, task=task) for m in self.migrations))

    def merged_with(self, other: "MigrationPlan") -> "MigrationPlan":
        return replace(self, migrations=self.migrations + other.migrations)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        return {"migrations": [m.to_dict() for m in self.migrations],
                "seed": self.seed, "max_per_epoch": self.max_per_epoch}

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, blob: str) -> "MigrationPlan":
        d = json.loads(blob)
        return cls(migrations=tuple(Migration.from_dict(m)
                                    for m in d.get("migrations", ())),
                   seed=int(d.get("seed", 0)),
                   max_per_epoch=int(d.get("max_per_epoch", 0)))

    def save(self, path: Union[str, os.PathLike]) -> None:
        Path(path).write_text(self.to_json(), encoding="utf-8")

    @classmethod
    def load(cls, path: Union[str, os.PathLike]) -> "MigrationPlan":
        return cls.from_json(Path(path).read_text(encoding="utf-8"))

    # ------------------------------------------------------------------
    def to_diagnostics(self, num_banks: Optional[int] = None,
                       healthy: Optional[Sequence[bool]] = None,
                       ) -> "DiagnosticReport":
        """Audit the plan as afflint diagnostics (RLY001..RLY004).

        * RLY001 (ERROR): a migration targets an out-of-range bank, or —
          when a health mask is supplied — a failed bank.
        * RLY004 (ERROR): one epoch applied more migrations than the
          plan's own ``max_per_epoch`` bound permits.
        * RLY002 (NOTE): migration applied cleanly.
        * RLY003 (NOTE): decision recorded but skipped.
        """
        from repro.analysis.diagnostics import (Diagnostic, DiagnosticReport,
                                                Severity, Site)
        report = DiagnosticReport()
        per_epoch: Dict[Tuple[str, str], int] = {}
        for i, m in enumerate(self.migrations):
            site = Site("relayout", f"{m.task or 'run'}:{m.epoch}:{i}")
            bad = []
            for b in m.dst_banks:
                if num_banks is not None and not (0 <= b < num_banks):
                    bad.append((b, "out of range"))
                elif healthy is not None and 0 <= b < len(healthy) \
                        and not healthy[b]:
                    bad.append((b, "failed"))
            if m.applied and bad:
                what = ", ".join(f"bank {b} ({why})" for b, why in bad)
                report.add(Diagnostic(
                    "RLY001", Severity.ERROR, site,
                    f"{m.kind.value} of {m.target} targets {what}",
                    fix_hint="consult the fault session's health mask "
                             "before applying migrations"))
                continue
            if not m.applied:
                report.add(Diagnostic(
                    "RLY003", Severity.NOTE, site,
                    f"{m.kind.value} of {m.target} skipped: "
                    f"{m.detail or 'no detail recorded'}"))
                continue
            key = (m.task, m.epoch)
            per_epoch[key] = per_epoch.get(key, 0) + 1
            report.add(Diagnostic(
                "RLY002", Severity.NOTE, site,
                f"{m.describe()}"))
        if self.max_per_epoch > 0:
            for (task, epoch), n in sorted(per_epoch.items()):
                if n > self.max_per_epoch:
                    report.add(Diagnostic(
                        "RLY004", Severity.ERROR,
                        Site("relayout", f"{task or 'run'}:{epoch}"),
                        f"epoch applied {n} migrations, plan bound is "
                        f"{self.max_per_epoch}",
                        fix_hint="the engine must respect "
                                 "RelayoutConfig.max_per_epoch"))
        return report

    def __str__(self) -> str:
        if self.is_empty:
            return "MigrationPlan(empty)"
        lines = [f"MigrationPlan(seed={self.seed}, "
                 f"max_per_epoch={self.max_per_epoch}, "
                 f"{self.applied_count()}/{len(self.migrations)} applied)"]
        lines += [f"  - {m.describe()}" for m in self.migrations]
        return "\n".join(lines)
