"""Epoch-based migration engine: telemetry in, applied migrations out.

The engine closes the allocate→observe→re-place loop.  During an epoch
the executor streams drift observations into the machine's attached
:class:`RelayoutState` (``machine.relayout``); at each epoch boundary
(:meth:`repro.workloads.base.RunContext.end_epoch`) the engine

1. folds the closed phase's bank counters into a rolling heat estimate,
2. snapshots per-array drift into a frozen :class:`~.policy.Telemetry`,
3. asks the pure policy for a bounded decision tuple,
4. applies each decision through the IOT/LLC re-homing machinery
   (:meth:`~repro.arch.llc.LlcModel.rehome_range` /
   :meth:`~repro.arch.llc.LlcModel.swap_banks`), charging migration
   traffic, bank accesses, and serial stall cycles to the run, and
5. records every decision — applied or skipped — in a
   :class:`~repro.relayout.plan.MigrationPlan`.

Sessions mirror the chaos layer's :func:`~repro.faults.fault_session`:
``relayout_session(cfg)`` installs a module-global session which
``make_context`` attaches to each new machine; ``cfg=None`` is an
explicit *off* session (attach no-ops), which nested static arms use to
stay static under an outer ``run_figures(relayout=...)``.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterator,
    List,
    Optional,
    Tuple,
)

import numpy as np

from repro.arch.noc import MessageClass
from repro.core.affine import LayoutKind
from repro.relayout.plan import Migration, MigrationKind, MigrationPlan
from repro.relayout.policy import (ArrayDrift, Decision, RelayoutConfig,
                                   Telemetry, decide)

if TYPE_CHECKING:
    from repro.core.api import ArrayHandle
    from repro.machine import Machine
    from repro.perf.stats import PhaseStats, RunRecorder

__all__ = ["RelayoutSession", "RelayoutState", "active_relayout_session",
           "relayout_session"]


class RelayoutState:
    """Per-machine online re-layout state; reachable as ``machine.relayout``.

    Created by :meth:`RelayoutSession.attach`.  Holds the rolling bank
    heat, the current epoch's drift accumulators, cooldown bookkeeping,
    and the growing migration record.
    """

    def __init__(self, machine: Machine, cfg: RelayoutConfig,
                 task: str = "") -> None:
        self.machine = machine
        self.cfg = cfg
        self.task = task
        nb = machine.num_banks
        self.heat = np.zeros(nb, dtype=np.float64)
        self.epoch_index = 0
        self.total_applied = 0
        self.records: List[Migration] = []
        #: (epoch label, stream accesses, remote accesses) per epoch.
        self.epoch_locality: List[Tuple[str, float, float]] = []
        self._streams: Dict[int, Dict] = {}       # vaddr -> accumulators
        self._handles: Dict[int, object] = {}     # vaddr -> ArrayHandle
        self._cooldown: Dict[int, int] = {}       # vaddr -> epochs left
        self._offsets: Dict[int, int] = {}        # vaddr -> current rotation
        self._swapped: set = set()                # unordered pairs swapped
        self._stream_mark = (0.0, 0.0)            # locality at last boundary

    # ------------------------------------------------------------------
    # Observation (hot path: cheap, vectorized, no allocation on repeat)
    # ------------------------------------------------------------------
    def observe_stream(self, handle: Optional[ArrayHandle],
                       data_banks: np.ndarray,
                       desired_banks: np.ndarray,
                       count: float = 1.0) -> None:
        """Record where a stream's data lived vs. where its consumers ran.

        ``data_banks``/``desired_banks`` are per-element bank ids; the
        delta histogram bins ``(data - desired) mod num_banks`` so a
        *consistent* forwarding distance shows up as one dominant bin.
        """
        if handle is None or getattr(handle, "vaddr", None) is None:
            return
        nb = self.machine.num_banks
        data = np.asarray(data_banks, dtype=np.int64)
        desired = np.asarray(desired_banks, dtype=np.int64)
        if data.size == 0 or data.shape != desired.shape:
            return
        acc = self._streams.get(handle.vaddr)
        if acc is None:
            acc = {"total": 0.0, "remote": 0.0,
                   "hist": np.zeros(nb, dtype=np.float64)}
            self._streams[handle.vaddr] = acc
            self._handles[handle.vaddr] = handle
        delta = (data - desired) % nb
        acc["total"] += float(data.size) * count
        acc["remote"] += float(np.count_nonzero(delta)) * count
        acc["hist"] += np.bincount(delta, minlength=nb) * count

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def _healthy(self) -> np.ndarray:
        faults = getattr(self.machine, "faults", None)
        if faults is not None:
            return np.asarray(faults.healthy, dtype=bool)
        return np.ones(self.machine.num_banks, dtype=bool)

    def _rotatable(self, handle: ArrayHandle) -> bool:
        layout = getattr(handle, "layout", None)
        if layout is None or layout.kind is not LayoutKind.POOL:
            return False
        intrlv = int(layout.intrlv)
        if intrlv <= 0 or (intrlv & (intrlv - 1)):
            return False
        return self.machine.pools.pool_containing(handle.vaddr) is not None

    def _heat_delta(self, phase: PhaseStats) -> np.ndarray:
        p = self.machine.config.perf
        return (phase.bank_line_accesses * p.bank_access_cycles
                + phase.bank_atomics * p.atomic_access_cycles
                + phase.bank_remote_reqs * p.remote_req_cycles
                + phase.bank_near_ops / p.bank_ops_per_cycle)

    def build_telemetry(self, epoch: str) -> Telemetry:
        healthy = self._healthy()
        arrays = []
        for vaddr in sorted(self._streams):
            acc = self._streams[vaddr]
            handle = self._handles[vaddr]
            arrays.append(ArrayDrift(
                name=getattr(handle, "name", "") or f"0x{vaddr:x}",
                vaddr=vaddr,
                total=acc["total"],
                remote=acc["remote"],
                delta_hist=tuple(float(x) for x in acc["hist"]),
                eligible_rotate=self._rotatable(handle),
                cooling=self._cooldown.get(vaddr, 0) > 0))
        return Telemetry(
            epoch=epoch,
            num_banks=self.machine.num_banks,
            bank_heat=tuple(float(h) for h in self.heat),
            healthy=tuple(bool(h) for h in healthy),
            arrays=tuple(arrays),
            budget_left=max(0, self.cfg.max_total - self.total_applied))

    # ------------------------------------------------------------------
    # Application
    # ------------------------------------------------------------------
    def _charge(self, recorder: RunRecorder,
                old_banks: np.ndarray, new_banks: np.ndarray,
                moved_lines: int) -> None:
        """Charge one migration's cost to the run's perf counters."""
        line = self.machine.config.cache.line_bytes
        moved = old_banks != new_banks
        if moved.any():
            recorder.traffic.record(old_banks[moved], new_banks[moved],
                                    line, MessageClass.DATA)
            recorder.add_bank_accesses(old_banks[moved])   # read out
            recorder.add_bank_accesses(new_banks[moved])   # write in
        # Banks drain their share of the move in parallel (DMA-style):
        # only the per-bank drain at the bottleneck serializes here; the
        # epoch-wide quiesce stall is charged once in on_epoch_boundary.
        drain = (moved_lines * self.cfg.line_move_cycles
                 / max(self.machine.num_banks, 1))
        if drain > 0:
            recorder.add_serial_cycles(
                np.arange(self.machine.num_cores, dtype=np.int64), drain)

    def _apply_rotate(self, recorder: RunRecorder, dec: Decision,
                      epoch: str) -> Migration:
        m = self.machine
        nb = m.num_banks
        handle = self._handles.get(dec.vaddr)
        if handle is None or not self._rotatable(handle):
            return Migration(kind=MigrationKind.ROTATE, target=dec.name,
                             epoch=epoch, task=self.task, applied=False,
                             detail="layout not IOT-rotatable")
        layout = handle.layout
        shift = int(layout.intrlv).bit_length() - 1
        paddr = int(m.translate(np.asarray([handle.vaddr],
                                           dtype=np.int64))[0])
        size = handle.size_bytes
        cur = self._offsets.get(dec.vaddr)
        if cur is None:
            pool = m.pools.pool_containing(handle.vaddr)
            cur = ((paddr - pool.pbase) >> shift) % nb
        new_offset = (cur + dec.rot) % nb

        # Prospective destination banks must all be healthy: migrating
        # data *onto* a failed bank would undo the fault layer's work.
        line = m.config.cache.line_bytes
        nlines = (size + line - 1) // line
        slots = ((np.arange(nlines, dtype=np.int64) * line) >> shift)
        dst = np.unique((slots + new_offset) % nb)
        healthy = self._healthy()
        if not healthy[dst].all():
            bad = [int(b) for b in dst if not healthy[b]]
            return Migration(kind=MigrationKind.ROTATE, target=dec.name,
                             epoch=epoch, task=self.task,
                             dst_banks=tuple(bad), applied=False,
                             detail=f"target banks {bad} unhealthy")

        move = m.llc.rehome_range(paddr, size, shift, new_offset)
        self._charge(recorder, move.old_banks, move.new_banks,
                     move.moved_lines)
        self._offsets[dec.vaddr] = new_offset
        self._cooldown[dec.vaddr] = self.cfg.cooldown_epochs
        return Migration(
            kind=MigrationKind.ROTATE, target=dec.name, epoch=epoch,
            task=self.task,
            src_banks=tuple(int(b) for b in np.unique(move.old_banks)),
            dst_banks=tuple(int(b) for b in np.unique(move.new_banks)),
            moved_bytes=move.moved_bytes, applied=True,
            detail=f"rot={dec.rot}: {dec.reason}")

    def _apply_swap(self, recorder: RunRecorder, dec: Decision,
                    epoch: str) -> Migration:
        healthy = self._healthy()
        a, b = dec.bank_a, dec.bank_b
        if not (healthy[a] and healthy[b]):
            return Migration(kind=MigrationKind.SWAP, target=dec.name,
                             epoch=epoch, task=self.task, applied=False,
                             detail="swap endpoint unhealthy")
        pair = frozenset((a, b))
        if pair in self._swapped:
            # A swap permutes bank identities but cannot lower max/mean
            # heat by itself; re-swapping the same pair is pure thrash.
            return Migration(kind=MigrationKind.SWAP, target=dec.name,
                             epoch=epoch, task=self.task, applied=False,
                             detail="pair already swapped this run")
        self._swapped.add(pair)
        moved_bytes = self.machine.llc.swap_banks(a, b)
        line = self.machine.config.cache.line_bytes
        half = moved_bytes / (2.0 * line)
        if half > 0:
            recorder.traffic.record(a, b, line, MessageClass.DATA, count=half)
            recorder.traffic.record(b, a, line, MessageClass.DATA, count=half)
            recorder.add_bank_accesses([a, b], count=half)
        # Unlike a rotation, a swap drains through just two banks.
        lines = moved_bytes / line
        drain = lines * self.cfg.line_move_cycles / 2.0
        if drain > 0:
            recorder.add_serial_cycles(
                np.arange(self.machine.num_cores, dtype=np.int64), drain)
        self.heat[[a, b]] = self.heat[[b, a]]
        return Migration(kind=MigrationKind.SWAP, target=dec.name,
                         epoch=epoch, task=self.task,
                         src_banks=(a, b), dst_banks=(b, a),
                         moved_bytes=moved_bytes, applied=True,
                         detail=dec.reason)

    # ------------------------------------------------------------------
    def on_epoch_boundary(self, recorder: RunRecorder,
                          phase: PhaseStats) -> Tuple[Migration, ...]:
        """Run the decide/apply loop for one closed epoch.

        Called by :meth:`RunContext.end_epoch` *after* ``end_phase``
        closed the epoch's counters into ``phase``.  Migration costs are
        charged to the (new) open phase and immediately sealed into a
        ``relayout@<epoch>`` phase — but only when something actually
        moved, so zero-migration runs keep a byte-identical phase list.
        """
        cfg = self.cfg
        self.heat *= cfg.heat_decay
        self.heat += self._heat_delta(phase)

        total = recorder.stream_elem_accesses - self._stream_mark[0]
        remote = recorder.stream_remote_accesses - self._stream_mark[1]
        self._stream_mark = (recorder.stream_elem_accesses,
                             recorder.stream_remote_accesses)
        self.epoch_locality.append((phase.label, total, remote))

        telemetry = self.build_telemetry(phase.label)
        decisions = decide(telemetry, cfg)
        applied_any = False
        migrated_now = set()
        out: List[Migration] = []
        for dec in decisions:
            if dec.kind is MigrationKind.ROTATE:
                mig = self._apply_rotate(recorder, dec, phase.label)
                if mig.applied:
                    migrated_now.add(dec.vaddr)
            elif dec.kind is MigrationKind.SWAP:
                mig = self._apply_swap(recorder, dec, phase.label)
            else:
                mig = Migration(kind=MigrationKind.REHOME, target=dec.name,
                                epoch=phase.label, task=self.task,
                                applied=False,
                                detail=f"advisory: {dec.reason}")
            self.records.append(mig)
            out.append(mig)
            tracer = getattr(self.machine, "tracer", None)
            if tracer is not None:
                tracer.instant(mig.kind.value, "migration",
                               {"target": mig.target, "epoch": mig.epoch,
                                "applied": mig.applied,
                                "moved_bytes": mig.moved_bytes,
                                "detail": mig.detail})
            if mig.applied:
                applied_any = True
                self.total_applied += 1
        if applied_any:
            # One quiesce stall per migrating epoch, shared by every
            # migration applied at this boundary.
            if cfg.stall_cycles > 0:
                recorder.add_serial_cycles(
                    np.arange(self.machine.num_cores, dtype=np.int64),
                    cfg.stall_cycles)
            recorder.end_phase(f"relayout@{phase.label}")

        # Epoch teardown: drift accumulators reset, cooldowns tick down
        # (arrays that just migrated keep their full cooldown).
        self._streams.clear()
        for vaddr in list(self._cooldown):
            left = self._cooldown[vaddr]
            if vaddr not in migrated_now:
                left -= 1
            if left <= 0:
                del self._cooldown[vaddr]
            else:
                self._cooldown[vaddr] = left
        self.epoch_index += 1
        return tuple(out)

    # ------------------------------------------------------------------
    def plan(self) -> MigrationPlan:
        return MigrationPlan(migrations=tuple(self.records),
                             seed=self.cfg.seed,
                             max_per_epoch=self.cfg.max_per_epoch)


class RelayoutSession:
    """One autoplace run: config + every machine state it attached.

    ``cfg=None`` builds an explicitly *inactive* session: :meth:`attach`
    no-ops, so workloads running inside it stay static even when an
    outer active session exists (nested sessions shadow outer ones).
    """

    def __init__(self, cfg: Optional[RelayoutConfig],
                 task: str = "") -> None:
        self.cfg = cfg
        self.task = task
        self.states: List[RelayoutState] = []

    @property
    def active(self) -> bool:
        return self.cfg is not None

    def attach(self, machine: Machine) -> Optional[RelayoutState]:
        if self.cfg is None:
            return None
        state = RelayoutState(machine, self.cfg, task=self.task)
        machine.relayout = state
        self.states.append(state)
        return state

    def merged_plan(self) -> MigrationPlan:
        cfg = self.cfg if self.cfg is not None else RelayoutConfig()
        plan = MigrationPlan.empty(seed=cfg.seed,
                                   max_per_epoch=cfg.max_per_epoch)
        for state in self.states:
            plan = plan.merged_with(state.plan())
        return plan


_ACTIVE: Optional[RelayoutSession] = None


def active_relayout_session() -> Optional[RelayoutSession]:
    return _ACTIVE


@contextmanager
def relayout_session(cfg: Optional[RelayoutConfig],
                     task: str = "") -> Iterator[RelayoutSession]:
    """Scope an online re-layout session (mirror of ``fault_session``).

    Every machine built by ``make_context`` inside the scope gets a
    :class:`RelayoutState` attached; pass ``cfg=None`` to force-disable
    relayout inside an outer active session (the static arm's tool).
    """
    global _ACTIVE
    prev = _ACTIVE
    session = RelayoutSession(cfg, task=task)
    _ACTIVE = session
    try:
        yield session
    finally:
        _ACTIVE = prev
