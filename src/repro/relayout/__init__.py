"""Telemetry-driven online re-layout (``python -m repro autoplace``).

The paper's allocator places data once, at ``malloc_aff`` time.  This
subsystem closes the loop for phase-changing workloads: the executor's
stream-locality observations and the NoC/bank counters feed an
epoch-based policy that detects *drifted* arrays (whose accesses now
consistently land a fixed bank distance from their consumers) and *hot*
banks, and emits a bounded, seeded :class:`~repro.relayout.plan.MigrationPlan`
per epoch.  Migrations apply through the same IOT/LLC re-homing
machinery the fault layer uses on unhealthy machines — here on healthy
ones — and their cost (line moves, serial stalls) is charged to the run.

Everything is deterministic: same seed + same telemetry produce the same
plan, serially or across a process pool.
"""

from repro.relayout.engine import (RelayoutSession, RelayoutState,
                                   active_relayout_session, relayout_session)
from repro.relayout.plan import Migration, MigrationKind, MigrationPlan
from repro.relayout.policy import ArrayDrift, RelayoutConfig, Telemetry, decide

__all__ = [
    "ArrayDrift",
    "Migration",
    "MigrationKind",
    "MigrationPlan",
    "RelayoutConfig",
    "RelayoutSession",
    "RelayoutState",
    "Telemetry",
    "active_relayout_session",
    "decide",
    "relayout_session",
]
