"""Chained hash table (the ``hash_join`` workload substrate).

Build inserts ``num_keys`` unique keys; each bucket is a short linked
chain (Table 3: buckets <= 8).  Probes walk the chain until a key match
(hit) or the chain end (miss; Table 3 hit rate 1/8).

Under affinity alloc, a chain's first node is allocated near the bucket
head array entry and each subsequent node near its predecessor — the
``linked_list_append`` pattern of paper Fig 10.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.api import AffineArray, ArrayHandle, alloc_plain_array
from repro.core.runtime import AffinityAllocator
from repro.machine import Machine

__all__ = ["HashTable"]

_NODE_BYTES = 64


@dataclass
class HashTable:
    machine: Machine
    num_buckets: int
    keys: np.ndarray            # stored keys, insertion order
    buckets: np.ndarray         # bucket of each key
    chain_pos: np.ndarray       # position of each key within its chain
    bucket_index: np.ndarray    # CSR over chains: bucket -> node ids
    bucket_nodes: np.ndarray    # node ids (insertion order) chain-by-chain
    node_vaddrs: np.ndarray     # vaddr per node (insertion order)
    heads: ArrayHandle          # bucket head-pointer array

    @classmethod
    def build(cls, machine: Machine, num_keys: int, num_buckets: int,
              allocator: Optional[AffinityAllocator] = None,
              seed: int = 0) -> "HashTable":
        rng = np.random.default_rng(seed)
        # unique random keys
        keys = rng.permutation(num_keys * 8)[:num_keys].astype(np.int64)
        buckets = keys % num_buckets
        # chain position = rank among same-bucket keys in insertion order
        order = np.argsort(buckets, kind="stable")
        sorted_b = buckets[order]
        uniq, starts, counts = np.unique(sorted_b, return_index=True,
                                         return_counts=True)
        rank_sorted = np.arange(num_keys, dtype=np.int64) - np.repeat(starts, counts)
        chain_pos = np.empty(num_keys, dtype=np.int64)
        chain_pos[order] = rank_sorted
        # CSR over chains (nodes listed bucket by bucket, chain order)
        bucket_index = np.zeros(num_buckets + 1, dtype=np.int64)
        np.add.at(bucket_index, buckets + 1, 1)
        np.cumsum(bucket_index, out=bucket_index)
        bucket_nodes = order  # sorted stable by bucket = chain order

        if allocator is None:
            heads = alloc_plain_array(machine, 8, num_buckets, "ht-heads")
            base = machine.malloc(num_keys * _NODE_BYTES)
            vaddrs = base + np.arange(num_keys, dtype=np.int64) * _NODE_BYTES
        else:
            heads = allocator.malloc_affine(
                AffineArray(8, num_buckets, partition=True), name="ht-heads")
            # predecessor in the same bucket (previous insertion into it)
            prev_ids = np.full(num_keys, -1, dtype=np.int64)
            not_first = chain_pos > 0
            # node at chain_pos p of bucket b is bucket_nodes[index[b] + p]
            prev_slot = bucket_index[buckets] + chain_pos - 1
            prev_ids[not_first] = bucket_nodes[prev_slot[not_first]]
            head_addrs = heads.addr_of(buckets)
            vaddrs = allocator.malloc_irregular_chained(
                _NODE_BYTES, prev_ids, head_addrs=head_addrs)
        return cls(machine, num_buckets, keys, buckets, chain_pos,
                   bucket_index, bucket_nodes, vaddrs, heads)

    # ------------------------------------------------------------------
    @property
    def num_keys(self) -> int:
        return self.keys.size

    def chain_length(self, bucket: int) -> int:
        return int(self.bucket_index[bucket + 1] - self.bucket_index[bucket])

    def lookup(self, key: int) -> bool:
        b = key % self.num_buckets
        ids = self.bucket_nodes[self.bucket_index[b]:self.bucket_index[b + 1]]
        return bool(np.any(self.keys[ids] == key))

    def probe_trace(self, probe_keys: np.ndarray
                    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Chains walked by each probe.

        Returns (node vaddrs concatenated per probe, chain ids, hit mask).
        Probes of empty buckets contribute no chain (head pointer is null).
        """
        probe_keys = np.asarray(probe_keys, dtype=np.int64)
        b = probe_keys % self.num_buckets
        chain_len = self.bucket_index[b + 1] - self.bucket_index[b]
        # hit position: locate the probe key among stored keys
        sorted_keys = np.sort(self.keys)
        key_order = np.argsort(self.keys, kind="stable")
        pos = np.searchsorted(sorted_keys, probe_keys)
        pos_c = np.minimum(pos, self.num_keys - 1)
        hit = sorted_keys[pos_c] == probe_keys
        hit_node = key_order[pos_c]
        walk_len = np.where(hit, self.chain_pos[hit_node] + 1, chain_len)
        total = int(walk_len.sum())
        if total == 0:
            return (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), hit)
        within = np.arange(total, dtype=np.int64) - np.repeat(
            np.cumsum(walk_len) - walk_len, walk_len)
        node_ids = self.bucket_nodes[np.repeat(self.bucket_index[b], walk_len)
                                     + within]
        nonempty = walk_len > 0
        chain_ids = np.repeat(np.cumsum(nonempty) - 1, walk_len)
        return self.node_vaddrs[node_ids], chain_ids, hit
