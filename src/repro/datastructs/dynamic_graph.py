"""Dynamic (mutable) Linked CSR — the paper's §8 extension.

"Some prior works already leverage pointer-based data structures similar
to linked CSR to flexibly insert and delete from the graph, which can
naturally benefit from the improved spatial locality from affinity alloc
without extra preprocessing."

:class:`DynamicGraph` keeps one linked chain of fixed-capacity edge nodes
per vertex.  Inserting edges appends into the tail node (allocating a new
node — with affinity to the pointed-to vertices — when full); deleting
edges tombstones slots and frees nodes that empty out.  As mutations
accumulate, placement quality degrades; :meth:`rehome` re-places the
worst nodes with ``realloc_aff`` (paper §8 "the layout could also be
dynamically adjusted").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.api import AddressView, ArrayHandle
from repro.core.runtime import AffinityAllocator
from repro.graphs.csr import CSRGraph
from repro.machine import Machine

__all__ = ["DynamicGraph"]

_PTR_BYTES = 8
_EDGE_BYTES = 4


@dataclass
class _Node:
    vaddr: int
    dsts: List[int] = field(default_factory=list)  # live destinations


class DynamicGraph:
    """Mutable per-vertex edge chains over affinity-allocated nodes."""

    def __init__(self, machine: Machine, num_vertices: int,
                 allocator: Optional[AffinityAllocator] = None,
                 target: Optional[ArrayHandle] = None, node_bytes: int = 64):
        self.machine = machine
        self.num_vertices = num_vertices
        self.allocator = allocator
        self.target = target
        self.node_bytes = node_bytes
        self.capacity = (node_bytes - _PTR_BYTES) // _EDGE_BYTES
        self._chains: List[List[_Node]] = [[] for _ in range(num_vertices)]
        self._heap_brk_nodes = 0
        self.num_edges = 0

    # ------------------------------------------------------------------
    def _alloc_node(self, dsts: List[int]) -> int:
        if self.allocator is not None and self.target is not None:
            aff = self.target.addr_of(np.asarray(dsts[:32], dtype=np.int64))
            return int(self.allocator.malloc_irregular(self.node_bytes,
                                                       aff.tolist()))
        va = self.machine.malloc(self.node_bytes)
        return va

    def insert_edges(self, src: np.ndarray, dst: np.ndarray) -> None:
        """Append edges; new nodes are placed near their destinations."""
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if src.shape != dst.shape:
            raise ValueError("src/dst must align")
        if src.size and (src.min() < 0 or src.max() >= self.num_vertices
                         or dst.min() < 0 or dst.max() >= self.num_vertices):
            raise ValueError("vertex id out of range")
        order = np.argsort(src, kind="stable")
        for u, v in zip(src[order].tolist(), dst[order].tolist()):
            chain = self._chains[u]
            if not chain or len(chain[-1].dsts) >= self.capacity:
                chain.append(_Node(0, []))
                chain[-1].vaddr = self._alloc_node([v])
            chain[-1].dsts.append(v)
            self.num_edges += 1

    def remove_edges(self, src: np.ndarray, dst: np.ndarray) -> int:
        """Delete (first occurrence of) each edge; returns how many were
        found.  Nodes that empty out are freed back to the pool."""
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        removed = 0
        for u, v in zip(src.tolist(), dst.tolist()):
            chain = self._chains[u]
            for node in chain:
                if v in node.dsts:
                    node.dsts.remove(v)
                    removed += 1
                    self.num_edges -= 1
                    if not node.dsts:
                        chain.remove(node)
                        if self.allocator is not None:
                            self.allocator.free_aff(node.vaddr)
                    break
        return removed

    # ------------------------------------------------------------------
    def degree(self, v: int) -> int:
        return sum(len(n.dsts) for n in self._chains[v])

    def neighbors(self, v: int) -> np.ndarray:
        out: List[int] = []
        for node in self._chains[v]:
            out.extend(node.dsts)
        return np.asarray(out, dtype=np.int64)

    def node_count(self) -> int:
        return sum(len(c) for c in self._chains)

    def to_csr(self) -> CSRGraph:
        """Snapshot as an immutable CSR graph."""
        src: List[int] = []
        dst: List[int] = []
        for u, chain in enumerate(self._chains):
            for node in chain:
                src.extend([u] * len(node.dsts))
                dst.extend(node.dsts)
        return CSRGraph.from_edge_list(self.num_vertices,
                                       np.asarray(src, dtype=np.int64),
                                       np.asarray(dst, dtype=np.int64),
                                       remove_self_loops=False)

    # ------------------------------------------------------------------
    # Placement quality and rehoming (paper §8)
    # ------------------------------------------------------------------
    def _node_table(self) -> Tuple[np.ndarray, List[_Node]]:
        nodes = [n for c in self._chains for n in c]
        vaddrs = np.asarray([n.vaddr for n in nodes], dtype=np.int64)
        return vaddrs, nodes

    def mean_indirect_hops(self) -> float:
        """Average distance from each live edge to its destination entry."""
        if self.target is None or self.num_edges == 0:
            return 0.0
        vaddrs, nodes = self._node_table()
        if vaddrs.size == 0:
            return 0.0
        node_banks = self.machine.banks_of(vaddrs)
        total, count = 0.0, 0
        dst_all: List[int] = []
        rep: List[int] = []
        for i, n in enumerate(nodes):
            dst_all.extend(n.dsts)
            rep.extend([i] * len(n.dsts))
        dst_banks = self.target.banks(np.asarray(dst_all, dtype=np.int64))
        hops = self.machine.mesh.hops(node_banks[np.asarray(rep)], dst_banks)
        return float(hops.mean())

    def rehome(self, max_nodes: int = 0) -> int:
        """Re-place the worst-placed nodes near their *current* contents.

        Returns how many nodes moved.  ``max_nodes=0`` rehomes every node
        whose mean distance to its destinations exceeds the graph average.
        """
        if self.allocator is None or self.target is None:
            return 0
        vaddrs, nodes = self._node_table()
        if not nodes:
            return 0
        node_banks = self.machine.banks_of(vaddrs)
        scores = np.empty(len(nodes))
        for i, n in enumerate(nodes):
            if not n.dsts:
                scores[i] = 0.0
                continue
            db = self.target.banks(np.asarray(n.dsts, dtype=np.int64))
            scores[i] = float(self.machine.mesh.hops(
                np.full(db.size, node_banks[i]), db).mean())
        threshold = scores.mean()
        candidates = np.flatnonzero(scores > threshold)
        order = candidates[np.argsort(-scores[candidates])]
        if max_nodes:
            order = order[:max_nodes]
        moved = 0
        for i in order.tolist():
            n = nodes[i]
            aff = self.target.addr_of(np.asarray(n.dsts[:32], dtype=np.int64))
            n.vaddr = self.allocator.realloc_aff(n.vaddr, aff.tolist())
            moved += 1
        return moved

    def chase_trace(self, vertices: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Pointer-chase trace over the chains of ``vertices``."""
        node_vaddrs: List[int] = []
        chain_ids: List[int] = []
        cid = 0
        for v in np.asarray(vertices, dtype=np.int64).tolist():
            chain = self._chains[v]
            if not chain:
                continue
            node_vaddrs.extend(n.vaddr for n in chain)
            chain_ids.extend([cid] * len(chain))
            cid += 1
        return (np.asarray(node_vaddrs, dtype=np.int64),
                np.asarray(chain_ids, dtype=np.int64))

    def edge_view(self) -> AddressView:
        """Per-live-edge addresses (for indirect traces)."""
        addrs: List[int] = []
        for chain in self._chains:
            for node in chain:
                base = node.vaddr + _PTR_BYTES
                addrs.extend(base + k * _EDGE_BYTES
                             for k in range(len(node.dsts)))
        return AddressView(self.machine, np.asarray(addrs, dtype=np.int64),
                           _EDGE_BYTES, "dynamic-edges")
