"""Data structures co-optimized with affinity alloc (paper §3.3, §5.3).

Each structure works in two placement regimes:

* **baseline** — nodes come from the conventional heap in realistic
  build order (interleaved appends, hash-order inserts), which scatters
  logically-adjacent nodes;
* **affinity** — nodes are placed by :class:`repro.core.AffinityAllocator`
  using per-node affinity addresses (previous node, parent, bucket head,
  pointed-to vertices), which is the paper's contribution.

The structures also compute *functionally correct* results (searches find
keys, BFS parents are valid) so the workloads double as correctness
tests of the trace generation.
"""

from repro.datastructs.dist_queue import GlobalQueue, SpatialQueue
from repro.datastructs.linked_csr import LinkedCSR
from repro.datastructs.linked_list import LinkedListSet
from repro.datastructs.binary_tree import BinaryTree
from repro.datastructs.hash_table import HashTable
from repro.datastructs.dynamic_graph import DynamicGraph
from repro.datastructs.multiqueue import MultiQueue

__all__ = [
    "GlobalQueue",
    "SpatialQueue",
    "LinkedCSR",
    "LinkedListSet",
    "BinaryTree",
    "HashTable",
    "DynamicGraph",
    "MultiQueue",
]
