"""Work queues: global vs. spatially distributed (paper Fig 9).

``GlobalQueue`` is the conventional structure — one tail counter, one
storage array; every push is an atomic bump of the (hot) tail plus a
remote store.

``SpatialQueue`` is the affinity-alloc co-design: one sub-queue per
vertex partition, with the tail counters and storage *aligned to the
partitioned vertex array* via the affine API, so a push that originates
at a vertex's bank is entirely local.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.api import AffineArray, ArrayHandle, alloc_plain_array
from repro.core.runtime import AffinityAllocator
from repro.machine import Machine

__all__ = ["GlobalQueue", "SpatialQueue"]


class GlobalQueue:
    """Single shared queue over a plain array."""

    def __init__(self, machine: Machine, capacity: int):
        self.machine = machine
        self.capacity = capacity
        self.storage = alloc_plain_array(machine, 4, capacity, "global-queue")
        self.tail = alloc_plain_array(machine, 8, 1, "global-queue-tail")
        self._count = 0

    def reset(self) -> None:
        self._count = 0

    def push_trace(self, vids: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Placement of ``len(vids)`` pushes.

        Returns (tail banks, slot banks, slot indices); every push hits the
        single tail counter's bank.
        """
        n = np.asarray(vids).size
        slots = (self._count + np.arange(n)) % self.capacity
        self._count += n
        tail_banks = np.full(n, self.tail.bank_of_one(0), dtype=np.int64)
        slot_banks = self.storage.banks(slots)
        return tail_banks, slot_banks, slots


class SpatialQueue:
    """One sub-queue per partition, aligned to a partitioned vertex array.

    The storage ``Q[N]`` aligns elementwise with the vertex array ``V[N]``
    and the tails ``T[P]`` align with the partition starts
    (``T[j] <-> V[j * part_size]``), exactly the allocation pattern of
    Fig 9.  ``partition_of(v)`` and all bank queries go through the real
    handles, so the queue is correct under any layout the runtime chose
    (including fallbacks).
    """

    def __init__(self, machine: Machine, allocator: AffinityAllocator,
                 vertices: ArrayHandle, num_partitions: int = 0,
                 bank_offset: int = 0):
        self.machine = machine
        self.vertices = vertices
        n = vertices.num_elem
        p = num_partitions or machine.num_banks
        self.num_partitions = p
        self.part_size = -(-n // p)  # ceil
        if bank_offset:
            # Deliberately *drifted* storage: slot banks land a fixed
            # bank distance from the vertex partition they serve (the
            # autoplace stress scenario; the online re-layout engine
            # should rotate this back).
            aligned = allocator.malloc_affine(
                AffineArray(4, n, align_to=vertices), name="spatial-queue-ref")
            self.storage = allocator.malloc_offset(aligned, bank_offset,
                                                   name="spatial-queue")
            allocator.free_aff(aligned)
        else:
            self.storage = allocator.malloc_affine(
                AffineArray(4, n, align_to=vertices), name="spatial-queue")
        if bank_offset:
            tails_ref = allocator.malloc_affine(
                AffineArray(8, p, align_to=vertices, align_p=self.part_size),
                name="spatial-queue-tails-ref")
            self.tails = allocator.malloc_offset(tails_ref, bank_offset,
                                                 name="spatial-queue-tails")
            allocator.free_aff(tails_ref)
        else:
            self.tails = allocator.malloc_affine(
                AffineArray(8, p, align_to=vertices, align_p=self.part_size),
                name="spatial-queue-tails")
        self._counts = np.zeros(p, dtype=np.int64)

    def reset(self) -> None:
        self._counts[:] = 0

    def partition_of(self, vids: np.ndarray) -> np.ndarray:
        return np.minimum(np.asarray(vids, dtype=np.int64) // self.part_size,
                          self.num_partitions - 1)

    def push_trace(self, vids: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Placement of pushes into the per-partition sub-queues.

        Slot positions advance each partition's running counter (wrapping
        within the partition, circular-buffer style).  Returns
        (tail banks, slot banks, slot indices into the storage array).
        """
        vids = np.asarray(vids, dtype=np.int64)
        parts = self.partition_of(vids)
        # position of each push within its partition: running counter +
        # rank of the push among same-partition pushes in this call
        order = np.argsort(parts, kind="stable")
        sorted_parts = parts[order]
        uniq, starts, counts = np.unique(sorted_parts, return_index=True,
                                         return_counts=True)
        rank_sorted = np.arange(vids.size, dtype=np.int64) - np.repeat(starts, counts)
        rank = np.empty_like(rank_sorted)
        rank[order] = rank_sorted
        offsets = (self._counts[parts] + rank) % self.part_size
        slots = np.minimum(parts * self.part_size + offsets,
                           self.storage.num_elem - 1)
        np.add.at(self._counts, uniq, counts)
        tail_banks = self.tails.banks(parts)
        slot_banks = self.storage.banks(slots)
        return tail_banks, slot_banks, slots
