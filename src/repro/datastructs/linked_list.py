"""Collections of linked lists (the ``link_list`` workload substrate).

Lists are built by *interleaved appends* — node ``k`` of every list is
allocated before node ``k+1`` of any list, the arrival order of streaming
inserts.  Under the baseline heap this scatters consecutive nodes of one
list ~``num_lists * 64`` bytes apart (different banks nearly every hop);
under affinity alloc each node carries its predecessor as the affinity
address (``malloc_aff(sizeof(Node), 1, &prev)``, paper Fig 10).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.runtime import AffinityAllocator
from repro.machine import Machine

__all__ = ["LinkedListSet"]

_NODE_BYTES = 64


@dataclass
class LinkedListSet:
    """``num_lists`` singly linked lists of equal length."""

    machine: Machine
    num_lists: int
    nodes_per_list: int
    node_vaddrs: np.ndarray  # shape (num_lists, nodes_per_list)
    keys: np.ndarray         # shape (num_lists, nodes_per_list)

    @classmethod
    def build(cls, machine: Machine, num_lists: int, nodes_per_list: int,
              allocator: Optional[AffinityAllocator] = None,
              seed: int = 0) -> "LinkedListSet":
        rng = np.random.default_rng(seed)
        n = num_lists * nodes_per_list
        if allocator is None:
            base = machine.malloc(n * _NODE_BYTES)
            flat = base + np.arange(n, dtype=np.int64) * _NODE_BYTES
        else:
            # allocation t is node k=t//L of list l=t%L; its predecessor
            # (node k-1 of list l) was allocation t-L
            t = np.arange(n, dtype=np.int64)
            prev_ids = np.where(t >= num_lists, t - num_lists, -1)
            flat = allocator.malloc_irregular_chained(_NODE_BYTES, prev_ids)
        # reshape from interleaved order to (list, position)
        vaddrs = flat.reshape(nodes_per_list, num_lists).T.copy()
        keys = rng.integers(0, 1 << 31, size=(num_lists, nodes_per_list))
        return cls(machine, num_lists, nodes_per_list, vaddrs, keys)

    # ------------------------------------------------------------------
    def search(self, list_id: int, key: int) -> int:
        """Functional search: position of ``key`` in the list, or -1."""
        hits = np.flatnonzero(self.keys[list_id] == key)
        return int(hits[0]) if hits.size else -1

    def search_trace(self, list_ids: np.ndarray,
                     stop_positions: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Trace of searches walking each list up to (and including) the
        stop position (the hit node, or the tail for a miss).

        Returns (node vaddrs concatenated per query, chain ids).
        """
        list_ids = np.asarray(list_ids, dtype=np.int64)
        stops = np.asarray(stop_positions, dtype=np.int64)
        lengths = stops + 1
        total = int(lengths.sum())
        within = np.arange(total, dtype=np.int64) - np.repeat(
            np.cumsum(lengths) - lengths, lengths)
        rows = np.repeat(list_ids, lengths)
        chain_ids = np.repeat(np.arange(list_ids.size, dtype=np.int64), lengths)
        return self.node_vaddrs[rows, within], chain_ids

    def all_banks(self) -> np.ndarray:
        return self.machine.banks_of(self.node_vaddrs.ravel()).reshape(
            self.node_vaddrs.shape)
