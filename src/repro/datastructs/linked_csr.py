"""Linked CSR graph format (paper Fig 11, §5.3).

Edges are stored in fixed-size *nodes* (one cache line: an 8-byte next
pointer plus up to 14 four-byte edges), linked per vertex.  Each node is
allocated with affinity to the *pointed-to* vertices of its edges, so the
indirect update ``P[Edges[i]]`` usually stays within the node's own bank
(Fig 5(b)) — at the cost of pointer-chasing between nodes, which NSC
hides by decoupled run-ahead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.api import AddressView, ArrayHandle
from repro.core.runtime import AffinityAllocator
from repro.graphs.csr import CSRGraph
from repro.machine import Machine

__all__ = ["LinkedCSR"]

_PTR_BYTES = 8


@dataclass
class LinkedCSR:
    """Linked-node edge storage for one graph."""

    machine: Machine
    graph: CSRGraph
    node_bytes: int
    edge_bytes: int
    edges_per_node: int
    node_vaddrs: np.ndarray      # vaddr of each node
    node_index: np.ndarray       # per-vertex node ranges (len V+1)
    node_of_edge: np.ndarray     # owning node per edge
    edge_slot: np.ndarray        # position of each edge within its node

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, machine: Machine, graph: CSRGraph,
              allocator: Optional[AffinityAllocator] = None,
              target: Optional[ArrayHandle] = None,
              node_bytes: int = 64, edge_bytes: int = 4,
              aff_sample: int = 32) -> "LinkedCSR":
        """Build from a CSR graph.

        Args:
            allocator: affinity runtime; ``None`` gives the baseline heap
                placement (contiguous nodes — what a conversion without
                affinity alloc would produce).
            target: the vertex-property array the edges point into; each
                node's affinity addresses are its edges' entries there
                (up to ``aff_sample``, paper limit 32).
            edge_bytes: bytes per stored edge — 4 for a bare destination
                id, 8 for (destination, weight) pairs as in sssp.
        """
        epn = (node_bytes - _PTR_BYTES) // edge_bytes
        deg = graph.out_degrees()
        nodes_per_vertex = -(-deg // epn)  # ceil; 0 for isolated vertices
        node_index = np.zeros(graph.num_vertices + 1, dtype=np.int64)
        np.cumsum(nodes_per_vertex, out=node_index[1:])
        n_nodes = int(node_index[-1])

        within = np.arange(graph.num_edges, dtype=np.int64) - np.repeat(
            graph.index[:-1], deg)
        node_of_edge = np.repeat(node_index[:-1], deg) + within // epn
        edge_slot = within % epn

        if n_nodes == 0:
            vaddrs = np.empty(0, dtype=np.int64)
        elif allocator is None or target is None:
            base = machine.malloc(n_nodes * node_bytes)
            vaddrs = base + np.arange(n_nodes, dtype=np.int64) * node_bytes
        else:
            sample = edge_slot < aff_sample
            aff_addrs = target.addr_of(graph.edges[sample].astype(np.int64))
            vaddrs = allocator.malloc_irregular_batch(
                node_bytes, aff_addrs, node_of_edge[sample], n_nodes)
        return cls(machine, graph, node_bytes, edge_bytes, epn, vaddrs,
                   node_index, node_of_edge, edge_slot)

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self.node_vaddrs.size

    def edge_view(self) -> AddressView:
        """Per-edge addresses inside the linked nodes (executor base)."""
        addrs = (self.node_vaddrs[self.node_of_edge] + _PTR_BYTES
                 + self.edge_slot * self.edge_bytes)
        return AddressView(self.machine, addrs, self.edge_bytes,
                           "linked-csr-edges")

    def chase_trace(self, vertices: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Pointer-chase trace over the node chains of ``vertices``.

        Returns (node vaddrs concatenated chain-by-chain, dense chain ids).
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        starts = self.node_index[vertices]
        counts = self.node_index[vertices + 1] - starts
        total = int(counts.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        within = np.arange(total, dtype=np.int64) - np.repeat(
            np.cumsum(counts) - counts, counts)
        node_ids = np.repeat(starts, counts) + within
        nonempty = counts > 0
        chain_ids = np.repeat(np.arange(np.count_nonzero(nonempty)),
                              counts[nonempty])
        return self.node_vaddrs[node_ids], chain_ids

    def chain_owner_cores(self, vertices: np.ndarray, num_cores: int) -> np.ndarray:
        """Owning core per non-empty chain (frontier split across cores)."""
        vertices = np.asarray(vertices, dtype=np.int64)
        counts = self.node_index[vertices + 1] - self.node_index[vertices]
        keep = counts > 0
        pos = np.flatnonzero(keep)
        n = vertices.size
        return (pos * num_cores // max(n, 1)).astype(np.int64)

    def mean_edges_per_node(self) -> float:
        if self.num_nodes == 0:
            return 0.0
        return self.graph.num_edges / self.num_nodes
