"""Unbalanced binary search tree (the ``bin_tree`` workload substrate).

The paper inserts random keys without rebalancing (Table 3).  We
reproduce the exact insertion-order BST shape in O(n) using the classic
equivalence: the BST produced by inserting keys ``k_0, k_1, ...`` equals
the treap over (key, insertion time) with a min-heap on time — which is
the Cartesian tree of the insertion times over key-sorted order.

Under affinity alloc every node is allocated with its *parent* as the
affinity address (the tree-node example of paper Fig 7); parents are
always inserted earlier, so the chained allocation API applies directly.

Lookups descend from the root; the visited node sequence of each lookup
is a pointer-chase chain for the executor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.runtime import AffinityAllocator
from repro.machine import Machine

__all__ = ["BinaryTree"]

_NODE_BYTES = 64


def _cartesian_tree(prio: np.ndarray):
    """Min-heap Cartesian tree over positions 0..n-1 (in-order = position).

    Returns (left, right, parent, root) in position space.
    """
    n = prio.size
    left = np.full(n, -1, dtype=np.int64)
    right = np.full(n, -1, dtype=np.int64)
    parent = np.full(n, -1, dtype=np.int64)
    stack: list = []
    for i in range(n):
        last = -1
        while stack and prio[stack[-1]] > prio[i]:
            last = stack.pop()
        if last != -1:
            left[i] = last
            parent[last] = i
        if stack:
            right[stack[-1]] = i
            parent[i] = stack[-1]
        stack.append(i)
    root = int(np.argmin(prio))
    return left, right, parent, root


@dataclass
class BinaryTree:
    """BST over unique integer keys, positions in key-sorted space."""

    machine: Machine
    keys_sorted: np.ndarray   # key at each position
    left: np.ndarray
    right: np.ndarray
    parent: np.ndarray
    root: int
    node_vaddrs: np.ndarray   # vaddr at each position

    @classmethod
    def build(cls, machine: Machine, num_keys: int,
              allocator: Optional[AffinityAllocator] = None,
              seed: int = 0) -> "BinaryTree":
        rng = np.random.default_rng(seed)
        # Insertion sequence: a random permutation of 0..n-1 as keys.
        insert_keys = rng.permutation(num_keys)
        # Position space = key-sorted order; key k sits at position k.
        # prio[k] = when key k was inserted.
        prio = np.empty(num_keys, dtype=np.int64)
        prio[insert_keys] = np.arange(num_keys)
        left, right, parent, root = _cartesian_tree(prio)
        # Allocate in insertion order; each node's affinity predecessor is
        # its parent's insertion index.
        parent_time = np.where(parent >= 0, prio[np.maximum(parent, 0)], -1)
        prev_ids_by_time = np.full(num_keys, -1, dtype=np.int64)
        prev_ids_by_time[prio] = parent_time
        if allocator is None:
            base = machine.malloc(num_keys * _NODE_BYTES)
            vaddr_by_time = base + np.arange(num_keys, dtype=np.int64) * _NODE_BYTES
        else:
            vaddr_by_time = allocator.malloc_irregular_chained(
                _NODE_BYTES, prev_ids_by_time)
        node_vaddrs = vaddr_by_time[prio]
        return cls(machine, np.arange(num_keys), left, right, parent, root,
                   node_vaddrs)

    # ------------------------------------------------------------------
    @property
    def num_keys(self) -> int:
        return self.keys_sorted.size

    def depth_of(self, key: int) -> int:
        d, cur = 0, self.root
        while cur != -1 and cur != key:
            cur = self.left[cur] if key < cur else self.right[cur]
            d += 1
        return d

    def contains(self, key: int) -> bool:
        return 0 <= key < self.num_keys

    def lookup_trace(self, queries: np.ndarray, batch: int = 1 << 16
                     ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Visited-node chains for a batch of lookups.

        Keys are 0..n-1 at position = key, so a query key q descends by
        comparing against the position id.  Queries may be out of range
        (misses run to a leaf).

        Returns (node vaddrs concatenated per query, chain ids, depths).
        """
        queries = np.asarray(queries, dtype=np.int64)
        all_vaddrs: list = []
        all_chain_ids: list = []
        all_depths: list = []
        chain_base = 0
        for lo in range(0, queries.size, batch):
            q = queries[lo:lo + batch]
            m = q.size
            cur = np.full(m, self.root, dtype=np.int64)
            alive = np.ones(m, dtype=bool)
            visited_cols: list = []
            depths = np.zeros(m, dtype=np.int64)
            while alive.any():
                col = np.where(alive, cur, -1)
                visited_cols.append(col)
                depths += alive
                go_left = q < cur
                hit = q == cur
                nxt = np.where(go_left, self.left[np.maximum(cur, 0)],
                               self.right[np.maximum(cur, 0)])
                alive = alive & ~hit & (nxt != -1)
                cur = np.where(alive, nxt, cur)
            mat = np.stack(visited_cols)           # (depth, m)
            valid = mat >= 0
            order_nodes = mat.T[valid.T]           # per-query sequences
            counts = valid.sum(axis=0)
            chain_ids = np.repeat(np.arange(m) + chain_base, counts)
            all_vaddrs.append(self.node_vaddrs[order_nodes])
            all_chain_ids.append(chain_ids)
            all_depths.append(depths)
            chain_base += m
        return (np.concatenate(all_vaddrs), np.concatenate(all_chain_ids),
                np.concatenate(all_depths))

    def bank_histogram(self) -> np.ndarray:
        banks = self.machine.banks_of(self.node_vaddrs)
        return np.bincount(banks, minlength=self.machine.num_banks)
