"""Spatially distributed relaxed priority queue (paper §4.2).

"Priority queues, e.g. MultiQueues [79], can also be implemented as one
queue per bank.  Heap rearrangement involves pointer-chasing, which is
supported by NSC.  This software optimization is not possible without
affinity alloc to control the data alignment."

:class:`MultiQueue` keeps one binary heap per L3 bank, with each heap's
storage affinity-allocated onto its bank:

* ``push(priority, value, near=addr)`` inserts into the heap whose bank
  owns ``near`` (zero NoC traffic when the producer is already there) or
  a random heap when no affinity is given — the MultiQueues scheme.
* ``pop()`` applies the classic relaxed rule: peek two random heaps, pop
  from the one with the smaller minimum.  The result is *relaxed*: not
  necessarily the global minimum, but within the usual MultiQueues
  quality bounds, which the tests check (rank error stays small).

The trace side reports, for each operation, the bank it executed on and
the heap-rearrangement chain length (log n sift path — the pointer-chase
NSC executes locally at the bank).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.core.api import AffineArray, ArrayHandle
from repro.core.runtime import AffinityAllocator
from repro.machine import Machine

__all__ = ["MultiQueue", "QueueOpTrace"]


@dataclass
class QueueOpTrace:
    """Placement record of executed queue operations."""

    op_banks: List[int] = field(default_factory=list)
    sift_lengths: List[int] = field(default_factory=list)
    remote_ops: int = 0

    def summary(self) -> dict:
        return {
            "ops": len(self.op_banks),
            "remote_ops": self.remote_ops,
            "mean_sift": float(np.mean(self.sift_lengths))
            if self.sift_lengths else 0.0,
        }


class MultiQueue:
    """One relaxed priority queue per bank, storage pinned to its bank."""

    def __init__(self, machine: Machine, allocator: AffinityAllocator,
                 capacity_per_queue: int = 4096, seed: int = 0):
        self.machine = machine
        self.allocator = allocator
        self.num_queues = machine.num_banks
        self.capacity = capacity_per_queue
        self.rng = np.random.default_rng(seed)
        # Per-queue storage: a partitioned array gives queue q a chunk on
        # bank q; the alignment is what makes local pushes free.
        total = self.num_queues * capacity_per_queue
        self.storage = allocator.malloc_affine(
            AffineArray(8, total, partition=True), name="multiqueue")
        self._heaps: List[List[Tuple[float, int]]] = [
            [] for _ in range(self.num_queues)]
        self.trace = QueueOpTrace()
        # verify the partitioned layout delivered queue->bank pinning
        starts = np.arange(self.num_queues) * capacity_per_queue
        self.queue_banks = self.storage.banks(starts)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return sum(len(h) for h in self._heaps)

    def queue_of_bank(self, bank: int) -> int:
        """Queue pinned to (or nearest to) the given bank."""
        hits = np.flatnonzero(self.queue_banks == bank)
        if hits.size:
            return int(hits[0])
        d = self.machine.mesh.hops(self.queue_banks,
                                   np.full(self.num_queues, bank))
        return int(np.argmin(d))

    def push(self, priority: float, value: int,
             near: Optional[int] = None) -> int:
        """Insert; returns the queue index used.

        ``near`` is a virtual address whose bank the push should stay on
        (e.g. the vertex the producer just updated).
        """
        if near is not None:
            bank = self.machine.bank_of(int(near))
            q = self.queue_of_bank(bank)
            self.trace.remote_ops += int(self.queue_banks[q] != bank)
        else:
            q = int(self.rng.integers(0, self.num_queues))
        if len(self._heaps[q]) >= self.capacity:
            raise OverflowError(f"queue {q} full")
        heapq.heappush(self._heaps[q], (priority, value))
        self.trace.op_banks.append(int(self.queue_banks[q]))
        self.trace.sift_lengths.append(
            max(1, int(np.log2(max(len(self._heaps[q]), 1)) + 1)))
        return q

    def pop(self) -> Optional[Tuple[float, int]]:
        """Relaxed delete-min: best of two randomly chosen queues."""
        nonempty = [i for i, h in enumerate(self._heaps) if h]
        if not nonempty:
            return None
        picks = self.rng.choice(len(nonempty),
                                size=min(2, len(nonempty)), replace=False)
        candidates = [nonempty[int(p)] for p in picks]
        q = min(candidates, key=lambda i: self._heaps[i][0][0])
        item = heapq.heappop(self._heaps[q])
        self.trace.op_banks.append(int(self.queue_banks[q]))
        self.trace.sift_lengths.append(
            max(1, int(np.log2(max(len(self._heaps[q]), 1)) + 1)))
        return item

    def drain_sorted(self) -> List[Tuple[float, int]]:
        """Pop everything (relaxed order)."""
        out = []
        while True:
            item = self.pop()
            if item is None:
                return out
            out.append(item)

    # ------------------------------------------------------------------
    def rank_error(self, popped: List[Tuple[float, int]]) -> float:
        """Mean rank displacement of a popped sequence vs. perfect order —
        the MultiQueues quality metric (small is good)."""
        if not popped:
            return 0.0
        prios = np.array([p for p, _ in popped])
        ideal = np.sort(prios)
        pos_actual = np.argsort(np.argsort(prios, kind="stable"))
        pos_ideal = np.argsort(np.argsort(ideal, kind="stable"))
        return float(np.abs(np.searchsorted(ideal, prios) -
                            np.arange(prios.size)).mean())

    def occupancy(self) -> np.ndarray:
        return np.array([len(h) for h in self._heaps])
