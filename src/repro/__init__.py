"""repro — reproduction of "Affinity Alloc: Taming Not-So Near-Data
Computing" (MICRO 2023).

Public API tour:

* :class:`repro.Machine` / :class:`repro.SystemConfig` — the simulated
  chip (Table 2 defaults) and process address space.
* :class:`repro.AffinityAllocator` with :class:`repro.AffineArray` — the
  paper's ``malloc_aff`` / ``free_aff`` interface.
* :mod:`repro.datastructs` — co-optimized data structures (spatially
  distributed queue, Linked CSR, affinity linked lists/trees).
* :mod:`repro.workloads` — the ten evaluation kernels, runnable under
  ``EngineMode.IN_CORE`` / ``NEAR_L3`` / ``AFF_ALLOC``.
* :mod:`repro.harness` — one function per paper figure/table.
"""

from repro.config import DEFAULT_CONFIG, SystemConfig
from repro.machine import Machine
from repro.core import (
    AffineArray,
    AffinityAllocator,
    ArrayHandle,
    HybridPolicy,
    LinearPolicy,
    MinHopPolicy,
    RandomPolicy,
    policy_by_name,
)

__version__ = "1.0.0"

__all__ = [
    "DEFAULT_CONFIG",
    "SystemConfig",
    "Machine",
    "AffineArray",
    "AffinityAllocator",
    "ArrayHandle",
    "RandomPolicy",
    "LinearPolicy",
    "MinHopPolicy",
    "HybridPolicy",
    "policy_by_name",
    "__version__",
]
