"""Engine modes and the SEcore offload decision (paper §2.2, §6).

The three configurations of the evaluation:

* ``IN_CORE``   — the wide OOO baseline with prefetchers; nothing is
  offloaded.
* ``NEAR_L3``   — near-stream computing: streams and their computation run
  at L3-bank stream engines, but data layout is whatever plain ``malloc``
  produced (affinity-oblivious).
* ``AFF_ALLOC`` — near-stream computing plus affinity allocation (and the
  co-designed data structures where the workload has one).

``decide_offload`` models the core stream engine's heuristic: offload
unless the stream is short or expects high private-cache reuse.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.nsc.stream import StreamGraph

__all__ = ["EngineMode", "OffloadDecision", "decide_offload"]


class EngineMode(enum.Enum):
    IN_CORE = "In-Core"
    NEAR_L3 = "Near-L3"
    AFF_ALLOC = "Aff-Alloc"

    @property
    def offloads(self) -> bool:
        return self is not EngineMode.IN_CORE

    @property
    def affinity_aware(self) -> bool:
        return self is EngineMode.AFF_ALLOC


@dataclass(frozen=True)
class OffloadDecision:
    offload: bool
    reason: str


# SEcore heuristics: a stream shorter than this many elements is not worth
# a configuration round-trip; expected reuse above this threshold means the
# private caches will win.
MIN_OFFLOAD_LENGTH = 128
MAX_OFFLOAD_REUSE = 2.0


def decide_offload(graph: StreamGraph, mode: EngineMode) -> OffloadDecision:
    """Decide whether SEcore offloads the kernel's streams to SEL3."""
    if not mode.offloads:
        return OffloadDecision(False, "in-core configuration")
    streams = graph.streams
    if not streams:
        return OffloadDecision(False, "no streams")
    longest = max(s.length for s in streams)
    if longest < MIN_OFFLOAD_LENGTH:
        return OffloadDecision(False, f"short streams (max {longest} iters)")
    avg_reuse = sum(s.reuse for s in streams) / len(streams)
    if avg_reuse > MAX_OFFLOAD_REUSE:
        return OffloadDecision(False, f"high private-cache reuse ({avg_reuse:.1f})")
    return OffloadDecision(True, "long low-reuse streams")
