"""Near-stream computing (NSC) baseline — the paper's §2 substrate.

Streams are long-term access patterns (affine, indirect, pointer-chasing)
that can be offloaded to L3-bank stream engines, migrating along the data
and forwarding operands to dependent streams.  This package provides:

* :mod:`repro.nsc.stream` — stream descriptors and the stream dependence
  graph (Fig 2);
* :mod:`repro.nsc.engine` — engine modes and the offload decision the
  core stream engine (SEcore) makes;
* :mod:`repro.nsc.executor` — the vectorized trace executor that turns
  kernel element traces into NoC messages, bank work, core work, and
  serialized chains, under either in-core or offloaded execution.
"""

from repro.nsc.stream import StreamKind, StreamDef, StreamDep, DepKind, StreamGraph
from repro.nsc.engine import EngineMode, OffloadDecision, decide_offload
from repro.nsc.executor import StreamExecutor
from repro.nsc.compiler import (
    CompileError,
    CompiledKernel,
    ExecutionPlan,
    KernelBuilder,
    compile_kernel,
)

__all__ = [
    "StreamKind",
    "StreamDef",
    "StreamDep",
    "DepKind",
    "StreamGraph",
    "EngineMode",
    "OffloadDecision",
    "decide_offload",
    "StreamExecutor",
    "KernelBuilder",
    "compile_kernel",
    "CompiledKernel",
    "ExecutionPlan",
    "CompileError",
]
