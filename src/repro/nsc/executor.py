"""Vectorized trace executor for in-core and near-stream execution.

Workload kernels call these primitives with *element traces* (arrays of
element indices in iteration order, plus the owning core of each
iteration).  The executor turns them into the events the perf model needs,
with the message conventions of the paper's Figs 1/3/5:

==================  ==============================================  =========
primitive           IN_CORE                                          offloaded
==================  ==============================================  =========
affine_kernel       lines fetched to the core (req + line resp,      streams read/write at their banks;
                    write-allocate + write-back for stores)          operands *forwarded* between banks
                                                                     (zero messages when colocated);
                                                                     stream migration between banks
indirect_gather     per-core line fetches of the pointed data        request to the target bank, value
                    (deduplicated: private-cache reuse)              response back (pull reduction)
indirect_atomic     coherence ping-pong per atomic (req + line +     one small request bank-to-bank,
                    hand-off)                                        atomic executes at the target bank
pointer_chase       serialized round trips core<->bank per node,     stream migrates bank-to-bank,
                    limited MLP                                      deep run-ahead (paper §5.3)
queue_push          tail-line coherence + slot store                 atomic at the tail's bank; free when
                                                                     the push source is colocated
==================  ==============================================  =========

Iterative kernels whose per-iteration trace is identical (stencils,
PageRank's edge scan) pass ``repeat=k`` instead of re-tracing: all event
*counts* scale by ``k`` while the trace is walked once.

All primitives accept numpy arrays and aggregate with ``bincount`` /
``unique``; per-element Python loops never happen.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.arch.noc import MessageClass
from repro.core.api import ArrayHandle
from repro.machine import Machine
from repro.nsc.engine import EngineMode
from repro.perf import kernels as _kernels
from repro.perf.stats import RunRecorder

__all__ = ["StreamExecutor"]

# Message payload conventions (bytes).
_CONFIG_BYTES = 32    # stream configuration (paper: one packet to SEL3)
_MIGRATE_BYTES = 16   # stream migration state hand-off
_IND_REQ_BYTES = 8    # indirect request: target address
_CREDIT_BYTES = 0     # flow-control credit (header-only)

# Memory-level parallelism for pointer chasing: a core's run-ahead is
# ROB-limited (paper §5.3); decoupled SEL3 streams run far ahead.
_CORE_CHASE_MLP = 4.0
_NSC_CHASE_MLP = 12.0
_L2_LATENCY = 16.0


def _shrink_key(key: np.ndarray) -> np.ndarray:
    """Bias the key to its minimum and narrow to int32 when it fits.

    Subtracting a constant and narrowing the dtype are strictly monotone,
    so ``np.unique``'s sort order — and therefore the first-occurrence
    indices the callers consume — is unchanged, while the radix sort runs
    half the passes over half the bytes."""
    return _kernels.pybackend.shrink_key(key)


def _first_unique(key: np.ndarray) -> np.ndarray:
    """``np.unique(key, return_index=True)[1]``: index of the first
    occurrence of each distinct key, ordered by ascending key.

    Dispatches to the active kernel backend: sorted inputs (traces
    mostly walk arrays in address order) take an O(n) boundary scan,
    dense unsorted keys an O(n + span) scatter table — identical output
    to the ``np.unique`` sort either way."""
    return _kernels.get_backend().first_unique(key)


def _first_unique_counts(key: np.ndarray):
    """Like :func:`_first_unique` but also returns the multiplicity of
    each distinct key (``np.unique(..., return_counts=True)``)."""
    return _kernels.get_backend().first_unique_counts(key)


def _pair_key(groups: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Composite (group, value) sort key, lexicographic group-major.

    Values are biased to their minimum so the key's spread is
    ``num_groups * value_range`` instead of ``num_groups << 48`` — small
    enough for :func:`_shrink_key` to narrow the unsorted-input sort to
    int32.  Equivalent ordering to ``groups * 2**48 + values``."""
    if values.size == 0:
        return np.zeros(0, dtype=np.int64)
    lo = values.min()
    span = np.int64(int(values.max()) - int(lo) + 1)
    return groups * span + (values - lo)


def _consecutive_dedup(values: np.ndarray, groups: np.ndarray) -> np.ndarray:
    """Mask of entries starting a new run of equal ``values`` within the
    same ``groups`` entry (both arrays in iteration order)."""
    return _kernels.get_backend().consecutive_dedup(values, groups)


class StreamExecutor:
    """Execution primitives for one run."""

    def __init__(self, machine: Machine, recorder: RunRecorder, mode: EngineMode):
        self.machine = machine
        self.rec = recorder
        self.mode = mode
        self.line = machine.config.cache.line_bytes
        # Power-of-two lines (every config) index with a shift; `>>` is
        # floor division bit for bit on int64.
        if self.line & (self.line - 1) == 0:
            self._line_shift = self.line.bit_length() - 1
        else:
            self._line_shift = None
        self.perf = machine.config.perf
        self.l3_latency = float(machine.config.cache.access_latency)
        self.hop_latency = float(machine.config.noc.hop_latency)

    # ------------------------------------------------------------------
    # Fault-injection hooks (no-ops on the healthy path)
    # ------------------------------------------------------------------
    def _faults(self):
        """Arm run-phase faults (first primitive wins) and return the
        machine's FaultState, or None when no chaos session is active."""
        st = self.machine.faults
        if st is not None:
            st.activate_run_phase(self.machine)
        return st

    def _offloads(self, st, *banks_arrays) -> bool:
        """Effective offload decision for one primitive: the engine mode,
        degraded by host fallback when an operand stream touches a
        failed, non-re-homed bank (bounded retries are charged)."""
        if not self.mode.offloads:
            return False
        if st is None or not st.no_rehome:
            return True
        return not st.blocks_offload(banks_arrays, self.rec,
                                     self.machine.num_cores)

    # ------------------------------------------------------------------
    # Small shared helpers
    # ------------------------------------------------------------------
    def _banks_and_lines(self, handle, idx: np.ndarray):
        addrs = handle.addr_of(idx)
        paddrs = self.machine.translate(addrs)
        st = self.machine.faults
        if st is not None and st.pending_touch and self.mode.offloads:
            # Raw (pre-remap) banks still show the failed ids; the first
            # offloaded touch of each re-homed bank pays the retry storm.
            st.check_first_touch(self.machine.llc.banks_of(paddrs, raw=True),
                                 self.rec, self.machine.num_cores)
        banks = self.machine.llc.banks_of(paddrs)
        if self._line_shift is not None:
            lines = paddrs >> self._line_shift
        else:
            lines = paddrs // self.line
        return banks, lines

    def _fetch_lines_to_core(self, cores, banks, lines, store: bool = False,
                             repeat: float = 1.0) -> None:
        """In-core line movement: request out, line back (and write-back)."""
        new = _consecutive_dedup(lines, cores)
        c, b = cores[new], banks[new]
        self.rec.traffic.record(c, b, 0, MessageClass.CONTROL, count=repeat)
        self.rec.traffic.record(b, c, self.line, MessageClass.DATA, count=repeat)
        self.rec.add_bank_accesses(b, repeat)
        if store:
            self.rec.traffic.record(c, b, self.line, MessageClass.DATA, count=repeat)
            self.rec.add_bank_accesses(b, repeat)

    def _offload_config(self, cores: np.ndarray, first_banks: np.ndarray,
                        repeat: float = 1.0) -> None:
        """One stream-configuration packet per (core, stream chunk)."""
        self.rec.traffic.record(cores, first_banks, _CONFIG_BYTES,
                                MessageClass.OFFLOAD, count=repeat)

    def _capacity_filter(self, cores: np.ndarray, lines: np.ndarray):
        """Finite-private-cache reuse filter for random accesses.

        Dedups (core, line) pairs, then scales the fetch count back up for
        the fraction of re-references that no longer fit the per-core
        private cache (Table 2: 256 KB L2): a core whose touched footprint
        exceeds capacity re-fetches ``(1 - capacity/footprint)`` of its
        repeats.

        Returns (indices of unique entries, per-entry fetch multiplicity,
        per-core miss rate among all accesses).
        """
        nc = self.machine.num_cores
        cap = float(self.machine.config.cache.private_cache_bytes)
        key = _pair_key(cores, lines)
        first = _first_unique(key)
        u_per_core = np.bincount(cores[first], minlength=nc).astype(np.float64)
        a_per_core = np.bincount(cores, minlength=nc).astype(np.float64)
        footprint = u_per_core * self.line
        p_hit = np.minimum(1.0, cap / np.maximum(footprint, 1.0))
        fetches = u_per_core + (a_per_core - u_per_core) * (1.0 - p_hit)
        factor = fetches / np.maximum(u_per_core, 1.0)
        miss_rate = fetches / np.maximum(a_per_core, 1.0)
        return first, factor[cores[first]], miss_rate

    def _config_pairs(self, cores, banks):
        """For each active core, (core, bank of its first element)."""
        first = _first_unique(cores)
        return cores[first], banks[first]

    def _migrations(self, banks: np.ndarray, lines: np.ndarray,
                    groups: np.ndarray, repeat: float = 1.0) -> None:
        """Stream migration messages between consecutive distinct lines."""
        new = _consecutive_dedup(lines, groups)
        b, g = banks[new], groups[new]
        if b.size < 2:
            return
        src, dst = _kernels.get_backend().migration_pairs(b, g)
        self.rec.traffic.record(src, dst, _MIGRATE_BYTES,
                                MessageClass.OFFLOAD, count=repeat)

    def _credits(self, cores: np.ndarray, banks: np.ndarray,
                 repeat: float = 1.0) -> None:
        """Coarse-grained flow control: one credit round trip per
        ``credit_iters`` iterations per core (paper §2.2)."""
        k = self.perf.credit_iters
        first, counts = _first_unique_counts(cores)
        if first.size == 0:
            return
        active = cores[first]
        n_credits = _kernels.get_backend().credit_roundtrips(counts, k) * repeat
        peer = banks[first]  # each core's first bank is the credit peer
        self.rec.traffic.record(active, peer, _CREDIT_BYTES,
                                MessageClass.CONTROL, count=n_credits)
        self.rec.traffic.record(peer, active, _CREDIT_BYTES,
                                MessageClass.CONTROL, count=n_credits)

    # ------------------------------------------------------------------
    # Affine kernels
    # ------------------------------------------------------------------
    def affine_kernel(self, cores, ins: Sequence[Tuple[ArrayHandle, np.ndarray]],
                      out: Optional[Tuple[ArrayHandle, np.ndarray]] = None,
                      ops_per_elem: float = 1.0, repeat: float = 1.0) -> None:
        """Elementwise kernel ``out[i] = f(ins[0][i], ins[1][i], ...)``.

        Args:
            cores: core owning each iteration (array, iteration order).
            ins: input streams as (handle, element-index array) pairs.
            out: optional output stream.
            ops_per_elem: compute ops per iteration.
            repeat: number of identical iterations this trace stands for.
        """
        cores = np.asarray(cores, dtype=np.int64)
        n = cores.size
        if n == 0:
            return
        st = self._faults()
        in_bl = [self._banks_and_lines(h, np.asarray(i)) for h, i in ins]
        out_bl = self._banks_and_lines(out[0], np.asarray(out[1])) if out else None

        off = self._offloads(st, *(bl[0] for bl in in_bl),
                             out_bl[0] if out_bl else None)
        tr = self.machine.tracer
        if tr is not None:
            tr.instant("affine_kernel", "stream",
                       {"offloaded": off, "n": int(n), "inputs": len(ins),
                        "store": out is not None, "repeat": float(repeat)})
        if not off:
            # Private caches keep lines shared between input streams of the
            # same array hot (e.g. the three row-offset streams of a
            # stencil): fetch each distinct (core, handle, line) once.
            seen = {}
            for (h, _i), (banks, lines) in zip(ins, in_bl):
                seen.setdefault(id(h), []).append((banks, lines))
            for group in seen.values():
                if len(group) == 1:  # skip the no-op concatenate copies
                    banks, lines = group[0]
                    gcores = cores
                else:
                    banks = np.concatenate([b for b, _ in group])
                    lines = np.concatenate([l for _, l in group])
                    gcores = np.concatenate([cores] * len(group))
                key = _pair_key(gcores, lines)
                first = _first_unique(key)
                c, b = gcores[first], banks[first]
                self.rec.traffic.record(c, b, 0, MessageClass.CONTROL,
                                        count=repeat)
                self.rec.traffic.record(b, c, self.line, MessageClass.DATA,
                                        count=repeat)
                self.rec.add_bank_accesses(b, repeat)
            if out_bl:
                self._fetch_lines_to_core(cores, out_bl[0], out_bl[1],
                                          store=True, repeat=repeat)
            self.rec.add_core_ops(cores, (ops_per_elem + 1.0) * repeat)
            self.rec.add_private_accesses(n * (len(ins) + (1 if out else 0)) * repeat)
            return

        # Offloaded: compute happens at the consumer (out) bank, or at the
        # first input's bank for a pure read.  Streams over the *same*
        # array (a stencil's offset streams) are coalesced the way the NSC
        # stream engine serves them: one bank read per line, one forwarded
        # message per distinct (source line, consumer bank), one migrating
        # walk per array.
        consumer_banks = out_bl[0] if out_bl else in_bl[0][0]
        groups = {}
        for (h, _idx), bl in zip(ins, in_bl):
            groups.setdefault(id(h), (h, []))[1].append(bl)
        for h, bls in groups.values():
            if len(bls) == 1:  # skip the no-op concatenate copies
                banks, lines = bls[0]
            else:
                banks = np.concatenate([b for b, _ in bls])
                lines = np.concatenate([l for _, l in bls])
            self._offload_config(*self._config_pairs(cores, bls[0][0]),
                                 repeat=repeat)
            # one bank read per distinct line of this array
            first = _first_unique(lines)
            self.rec.add_bank_accesses(banks[first], repeat)
            # forward operands to the consumer where not colocated,
            # aggregated per (source line, consumer bank)
            if out_bl is not None:
                cb = (consumer_banks if len(bls) == 1
                      else np.concatenate([consumer_banks] * len(bls)))
                need = banks != cb
                self.rec.add_stream_locality(banks.size * repeat,
                                             float(need.sum()) * repeat)
                self._observe(h, banks, cb, repeat)
                if need.any():
                    src_b, dst_b, counts = self._group_pairs(
                        lines[need], banks[need], cb[need])
                    self.rec.traffic.record(
                        src_b, dst_b,
                        np.minimum(counts * h.elem_size, self.line),
                        MessageClass.DATA, count=repeat)
            else:
                # pure read: the stream computes at its own banks
                self.rec.add_stream_locality(banks.size * repeat, 0.0)
            self._migrations(bls[0][0], bls[0][1], cores, repeat)
        if out_bl is not None:
            obanks, olines = out_bl
            new = _consecutive_dedup(olines, cores)
            self.rec.add_bank_accesses(obanks[new], repeat)
            self.rec.add_stream_locality(obanks.size * repeat, 0.0)
            self._migrations(obanks, olines, cores, repeat)
            self._offload_config(*self._config_pairs(cores, obanks), repeat=repeat)
            self.rec.add_near_ops(obanks, ops_per_elem * repeat)
        else:
            self.rec.add_near_ops(in_bl[0][0], ops_per_elem * repeat)
        self._credits(cores, consumer_banks, repeat)

    def _observe(self, handle, data_banks, desired_banks,
                 count: float = 1.0) -> None:
        """Feed a drift observation to an attached relayout state.

        Gated on ``machine.relayout`` being None so static runs pay one
        attribute load per offloaded stream and nothing else.
        """
        state = self.machine.relayout
        if state is not None:
            state.observe_stream(handle, data_banks, desired_banks, count)

    def _group_pairs(self, lines, src_banks, dst_banks):
        """Aggregate (source line -> dest bank) forwarding messages."""
        key = lines * np.int64(self.machine.num_banks) + dst_banks
        first, counts = _first_unique_counts(key)
        return src_banks[first], dst_banks[first], counts

    # ------------------------------------------------------------------
    # Indirect access
    # ------------------------------------------------------------------
    def indirect_gather(self, cores, base: Tuple[ArrayHandle, np.ndarray],
                        target: Tuple[ArrayHandle, np.ndarray],
                        ops_per_elem: float = 1.0, value_bytes: int = 8,
                        repeat: float = 1.0) -> None:
        """Pull-style ``acc += target[f(base[i])]`` — values come back.

        ``base`` is where address generation happens (the stream walking
        the index structure); ``target`` is the pointed-to data.
        """
        cores = np.asarray(cores, dtype=np.int64)
        st = self._faults()
        b_banks, _b_lines = self._banks_and_lines(base[0], np.asarray(base[1]))
        t_banks, t_lines = self._banks_and_lines(target[0], np.asarray(target[1]))
        off = self._offloads(st, b_banks, t_banks)
        tr = self.machine.tracer
        if tr is not None:
            tr.instant("indirect_gather", "stream",
                       {"offloaded": off, "n": int(cores.size),
                        "repeat": float(repeat)})
        if not off:
            # Private caches keep hot target lines, limited by capacity.
            first, mult, _miss = self._capacity_filter(cores, t_lines)
            c, b = cores[first], t_banks[first]
            self.rec.traffic.record(c, b, 0, MessageClass.CONTROL,
                                    count=mult * repeat)
            self.rec.traffic.record(b, c, self.line, MessageClass.DATA,
                                    count=mult * repeat)
            self.rec.add_bank_accesses(b, mult * repeat)
            self.rec.add_core_ops(cores, (ops_per_elem + 1.0) * repeat)
            self.rec.add_private_accesses(cores.size * repeat)
            return
        # Offloaded: request out, value back to the requesting bank.
        remote = b_banks != t_banks
        self.rec.add_stream_locality(b_banks.size * repeat,
                                     float(remote.sum()) * repeat)
        self._observe(target[0], t_banks, b_banks, repeat)
        self.rec.traffic.record(b_banks[remote], t_banks[remote], _IND_REQ_BYTES,
                                MessageClass.CONTROL, count=repeat)
        self.rec.traffic.record(t_banks[remote], b_banks[remote], value_bytes,
                                MessageClass.DATA, count=repeat)
        self.rec.add_bank_accesses(t_banks, repeat)
        self.rec.add_remote_reqs(t_banks[remote], repeat)
        self.rec.add_near_ops(b_banks, ops_per_elem * repeat)
        self._credits(cores, b_banks, repeat)

    def indirect_atomic(self, cores, base: Tuple[ArrayHandle, np.ndarray],
                        target: Tuple[ArrayHandle, np.ndarray],
                        ops_per_elem: float = 1.0, repeat: float = 1.0) -> None:
        """Push-style ``atomic_op(target[f(base[i])])`` — no value returns."""
        cores = np.asarray(cores, dtype=np.int64)
        st = self._faults()
        b_banks, _ = self._banks_and_lines(base[0], np.asarray(base[1]))
        t_banks, _t_lines = self._banks_and_lines(target[0], np.asarray(target[1]))
        off = self._offloads(st, b_banks, t_banks)
        tr = self.machine.tracer
        if tr is not None:
            tr.instant("indirect_atomic", "stream",
                       {"offloaded": off, "n": int(cores.size),
                        "repeat": float(repeat)})
        if not off:
            # Coherence ping-pong: every atomic pulls the line exclusive
            # (request + line) and hands it off again (line out).
            self.rec.traffic.record(cores, t_banks, 0, MessageClass.CONTROL,
                                    count=repeat)
            self.rec.traffic.record(t_banks, cores, self.line, MessageClass.DATA,
                                    count=repeat)
            self.rec.traffic.record(cores, t_banks, self.line, MessageClass.DATA,
                                    count=repeat)
            self.rec.add_bank_accesses(t_banks, repeat)
            self.rec.add_core_ops(cores, (ops_per_elem + 2.0) * repeat)
            self.rec.add_private_accesses(cores.size * repeat)
            return
        remote = b_banks != t_banks
        self.rec.add_stream_locality(b_banks.size * repeat,
                                     float(remote.sum()) * repeat)
        self._observe(target[0], t_banks, b_banks, repeat)
        self.rec.traffic.record(b_banks[remote], t_banks[remote], _IND_REQ_BYTES,
                                MessageClass.CONTROL, count=repeat)
        self.rec.add_bank_atomics(t_banks, repeat)
        self.rec.add_remote_reqs(t_banks[remote], repeat)
        self.rec.add_near_ops(t_banks, ops_per_elem * repeat)
        self._credits(cores, b_banks, repeat)

    # ------------------------------------------------------------------
    # Pointer chasing
    # ------------------------------------------------------------------
    def pointer_chase(self, node_vaddrs, chain_ids, chain_cores,
                      ops_per_node: float = 1.0, value_bytes: int = 8,
                      repeat: float = 1.0) -> None:
        """Walk linked chains of nodes.

        Args:
            node_vaddrs: node addresses, concatenated chain by chain, each
                chain in traversal order.
            chain_ids: chain id per node (non-decreasing, dense from 0).
            chain_cores: owning core per *chain* (indexed by chain id).
        """
        node_vaddrs = np.asarray(node_vaddrs, dtype=np.int64)
        chain_ids = np.asarray(chain_ids, dtype=np.int64)
        chain_cores = np.asarray(chain_cores, dtype=np.int64)
        if node_vaddrs.size == 0:
            return
        st = self._faults()
        paddrs = self.machine.translate(node_vaddrs)
        if st is not None and st.pending_touch and self.mode.offloads:
            st.check_first_touch(self.machine.llc.banks_of(paddrs, raw=True),
                                 self.rec, self.machine.num_cores)
        banks = self.machine.llc.banks_of(paddrs)
        cores = chain_cores[chain_ids]
        nchains = chain_cores.size
        all_cores = np.arange(self.machine.num_cores)

        off = self._offloads(st, banks)
        tr = self.machine.tracer
        if tr is not None:
            tr.instant("pointer_chase", "stream",
                       {"offloaded": off, "nodes": int(node_vaddrs.size),
                        "chains": int(nchains), "repeat": float(repeat)})
        if not off:
            # Every node is a dependent round trip core <-> bank, except
            # the hot top of the structure (tree roots, list heads) that
            # the private cache retains across chains.
            if self._line_shift is not None:
                lines = paddrs >> self._line_shift
            else:
                lines = paddrs // self.line
            first, mult, miss_rate = self._capacity_filter(cores, lines)
            c, b = cores[first], banks[first]
            self.rec.traffic.record(c, b, 0, MessageClass.CONTROL,
                                    count=mult * repeat)
            self.rec.traffic.record(b, c, self.line, MessageClass.DATA,
                                    count=mult * repeat)
            self.rec.add_bank_accesses(b, mult * repeat)
            self.rec.add_core_ops(cores, (ops_per_node + 2.0) * repeat)
            self.rec.add_private_accesses(node_vaddrs.size * repeat)
            hops = self.machine.mesh.hops(cores, banks)
            miss_step = (2.0 * hops * self.hop_latency + self.l3_latency
                         + _L2_LATENCY)
            mr = miss_rate[cores]
            step_lat = mr * miss_step + (1.0 - mr) * _L2_LATENCY
            per_chain = np.bincount(chain_ids, weights=step_lat, minlength=nchains)
            per_core = np.bincount(chain_cores, weights=per_chain,
                                   minlength=self.machine.num_cores)
            self.rec.add_serial_cycles(all_cores,
                                       per_core * repeat / _CORE_CHASE_MLP)
            return

        # Offloaded: one config per chain, migration between banks,
        # local access per node, final value back to the core.
        first = _consecutive_dedup(chain_ids, chain_ids)  # first node per chain
        self._offload_config(cores[first], banks[first], repeat)
        same_chain = chain_ids[1:] == chain_ids[:-1]
        moved = (banks[1:] != banks[:-1]) & same_chain
        self.rec.add_stream_locality(banks.size * repeat,
                                     float(moved.sum()) * repeat)
        self.rec.traffic.record(banks[:-1][moved], banks[1:][moved],
                                _MIGRATE_BYTES, MessageClass.OFFLOAD,
                                count=repeat)
        self.rec.add_bank_accesses(banks, repeat)
        self.rec.add_near_ops(banks, ops_per_node * repeat)
        # final response per chain
        last = np.zeros(node_vaddrs.size, dtype=bool)
        last[:-1] = ~same_chain
        last[-1] = True
        self.rec.traffic.record(banks[last], cores[last], value_bytes,
                                MessageClass.CONTROL, count=repeat)
        # Serial latency: migration hops plus the bank access per node.
        step_lat = np.full(node_vaddrs.size, self.l3_latency)
        hop_cost = self.machine.mesh.hops(banks[:-1], banks[1:]) * self.hop_latency
        step_lat[1:] += np.where(same_chain, hop_cost, 0.0)
        per_chain = np.bincount(chain_ids, weights=step_lat, minlength=nchains)
        per_core = np.bincount(chain_cores, weights=per_chain,
                               minlength=self.machine.num_cores)
        self.rec.add_serial_cycles(all_cores,
                                   per_core * repeat / _NSC_CHASE_MLP)

    # ------------------------------------------------------------------
    # Work queues
    # ------------------------------------------------------------------
    def queue_push(self, cores, src_banks, tail_banks, slot_banks,
                   payload_bytes: int = 4, tail_handle=None,
                   slot_handle=None) -> None:
        """Push values into a queue: atomic tail bump + slot store.

        ``src_banks`` is where each push originates (the bank that decided
        to push, e.g. where the CAS succeeded); with a spatially
        distributed queue these match ``tail_banks``/``slot_banks`` and the
        push is free of NoC traffic (paper Fig 9).

        ``tail_handle``/``slot_handle`` optionally name the backing
        arrays so an attached relayout state can track queue drift.
        """
        cores = np.asarray(cores, dtype=np.int64)
        src_banks = np.asarray(src_banks, dtype=np.int64)
        tail_banks = np.asarray(tail_banks, dtype=np.int64)
        slot_banks = np.asarray(slot_banks, dtype=np.int64)
        st = self._faults()
        off = self._offloads(st, src_banks, tail_banks, slot_banks)
        tr = self.machine.tracer
        if tr is not None:
            tr.instant("queue_push", "stream",
                       {"offloaded": off, "n": int(cores.size)})
        if not off:
            # tail counter: coherence atomic; slot store: write-allocate
            self.rec.traffic.record(cores, tail_banks, 0, MessageClass.CONTROL)
            self.rec.traffic.record(tail_banks, cores, self.line, MessageClass.DATA)
            self.rec.traffic.record(cores, tail_banks, self.line, MessageClass.DATA)
            self.rec.add_bank_accesses(tail_banks)
            self.rec.traffic.record(cores, slot_banks, 0, MessageClass.CONTROL)
            self.rec.traffic.record(slot_banks, cores, self.line, MessageClass.DATA)
            self.rec.traffic.record(cores, slot_banks, self.line, MessageClass.DATA)
            self.rec.add_bank_accesses(slot_banks)
            self.rec.add_core_ops(cores, 4.0)
            self.rec.add_private_accesses(2 * cores.size)
            return
        rt = src_banks != tail_banks
        rs_count = float((src_banks != slot_banks).sum())
        self.rec.add_stream_locality(2.0 * src_banks.size,
                                     float(rt.sum()) + rs_count)
        self._observe(tail_handle, tail_banks, src_banks)
        self._observe(slot_handle, slot_banks, src_banks)
        self.rec.traffic.record(src_banks[rt], tail_banks[rt], _IND_REQ_BYTES,
                                MessageClass.CONTROL)
        self.rec.add_bank_atomics(tail_banks)
        self.rec.add_remote_reqs(tail_banks[rt])
        rs = src_banks != slot_banks
        self.rec.traffic.record(src_banks[rs], slot_banks[rs], payload_bytes,
                                MessageClass.DATA)
        self.rec.add_bank_accesses(slot_banks)
        self.rec.add_remote_reqs(slot_banks[rs])
        self.rec.add_near_ops(src_banks, 1.0)

    # ------------------------------------------------------------------
    def core_compute(self, cores, ops) -> None:
        """Miscellaneous core-side work (setup, scalar reductions)."""
        self.rec.add_core_ops(np.asarray(cores, dtype=np.int64),
                              np.asarray(ops, dtype=np.float64))
