"""A miniature near-stream-computing compiler (paper §2, Fig 2, §6).

The paper's toolchain extends an LLVM pass that recognizes long-term
access patterns in loops, extracts them as *streams*, builds the stream
dependence graph, and emits NSC instructions.  This module reproduces
that pipeline over a small declarative kernel IR instead of LLVM IR:

1. **Front end** — :class:`KernelBuilder` describes a loop nest the way
   Fig 2 shows them: affine loads/stores, indirect accesses whose address
   comes from another stream, remote atomics, reductions, and
   pointer-chasing, with value/address/predicate dependences.
2. **Analysis** — :func:`compile_kernel` classifies each access, builds
   the :class:`~repro.nsc.stream.StreamGraph`, checks it is well-formed
   (acyclic, single store target per elementwise group), and asks the
   SEcore heuristic whether to offload.
3. **Code generation** — the result is an :class:`ExecutionPlan`: an
   ordered list of executor-primitive invocations that, when run against
   a :class:`~repro.nsc.executor.StreamExecutor`, generate exactly the
   message trace the hand-written workloads produce.

The evaluation workloads call the executor directly (they predate the
compiler, like the paper's hand-annotated kernels); tests verify that
compiling the Fig 2 kernels reproduces the same traffic, and
``examples/stream_compiler.py`` shows the full pipeline.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.api import ArrayHandle
from repro.nsc.engine import EngineMode, OffloadDecision, decide_offload
from repro.nsc.executor import StreamExecutor
from repro.nsc.stream import DepKind, StreamDef, StreamGraph, StreamKind

__all__ = ["AccessKind", "Access", "KernelBuilder", "CompiledKernel",
           "ExecutionPlan", "compile_kernel", "CompileError"]


class CompileError(ValueError):
    """The kernel cannot be lowered to streams."""


class AccessKind(enum.Enum):
    AFFINE_LOAD = "affine_load"
    AFFINE_STORE = "affine_store"
    INDIRECT_LOAD = "indirect_load"
    INDIRECT_ATOMIC = "indirect_atomic"
    POINTER_CHASE = "pointer_chase"


@dataclass
class Access:
    """One memory reference in the kernel (pre-classification)."""

    name: str
    kind: AccessKind
    handle: Optional[ArrayHandle]
    # Affine accesses: index = scale * i + offset over the iteration var.
    scale: int = 1
    offset: int = 0
    # Indirect accesses: the stream providing the target index, plus a
    # callable mapping the iteration trace to target element indices.
    address_from: Optional[str] = None
    target_indices: Optional[Callable[[np.ndarray], np.ndarray]] = None
    # Value inputs (for stores/compute association).
    inputs: Tuple[str, ...] = ()
    predicate: Optional[str] = None
    ops: float = 0.0
    reuse: float = 0.0


@dataclass
class _ChaseSpec:
    name: str
    node_vaddrs: np.ndarray
    chain_ids: np.ndarray
    ops_per_node: float


class KernelBuilder:
    """Describe one offloadable loop (the pseudo-code of Fig 2)."""

    def __init__(self, name: str, trip_count: int):
        if trip_count <= 0:
            raise CompileError("trip count must be positive")
        self.name = name
        self.trip_count = trip_count
        self._accesses: Dict[str, Access] = {}
        self._chases: List[_ChaseSpec] = []
        self._order: List[str] = []

    # ------------------------------------------------------------------
    def _add(self, acc: Access) -> str:
        if acc.name in self._accesses:
            raise CompileError(f"duplicate stream name {acc.name!r}")
        self._accesses[acc.name] = acc
        self._order.append(acc.name)
        return acc.name

    def load(self, name: str, handle: ArrayHandle, scale: int = 1,
             offset: int = 0, reuse: float = 0.0) -> str:
        """Affine load stream ``handle[scale * i + offset]`` (Fig 2a sa/sb)."""
        return self._add(Access(name, AccessKind.AFFINE_LOAD, handle,
                                scale=scale, offset=offset, reuse=reuse))

    def store(self, name: str, handle: ArrayHandle,
              inputs: Sequence[str] = (), ops: float = 1.0, scale: int = 1,
              offset: int = 0, predicate: Optional[str] = None) -> str:
        """Affine store stream with its associated computation (Fig 2a sc)."""
        return self._add(Access(name, AccessKind.AFFINE_STORE, handle,
                                scale=scale, offset=offset,
                                inputs=tuple(inputs), ops=ops,
                                predicate=predicate))

    def indirect_load(self, name: str, handle: ArrayHandle, address_from: str,
                      target_indices: Callable[[np.ndarray], np.ndarray],
                      ops: float = 1.0) -> str:
        """Indirect load ``handle[f(base[i])]`` (pull-style gather)."""
        return self._add(Access(name, AccessKind.INDIRECT_LOAD, handle,
                                address_from=address_from,
                                target_indices=target_indices, ops=ops))

    def atomic(self, name: str, handle: ArrayHandle, address_from: str,
               target_indices: Callable[[np.ndarray], np.ndarray],
               ops: float = 1.0, predicate: Optional[str] = None) -> str:
        """Indirect atomic update ``op(handle[f(base[i])])`` (Fig 2c sx)."""
        return self._add(Access(name, AccessKind.INDIRECT_ATOMIC, handle,
                                address_from=address_from,
                                target_indices=target_indices, ops=ops,
                                predicate=predicate))

    def chase(self, name: str, node_vaddrs: np.ndarray, chain_ids: np.ndarray,
              ops_per_node: float = 1.0) -> str:
        """Pointer-chasing stream over explicit chains (Fig 2b sp)."""
        self._chases.append(_ChaseSpec(name, np.asarray(node_vaddrs),
                                       np.asarray(chain_ids), ops_per_node))
        return self._add(Access(name, AccessKind.POINTER_CHASE, None))

    # ------------------------------------------------------------------
    def accesses(self) -> List[Access]:
        return [self._accesses[n] for n in self._order]

    def access(self, name: str) -> Access:
        try:
            return self._accesses[name]
        except KeyError:
            raise CompileError(f"unknown stream {name!r}") from None


# ----------------------------------------------------------------------
# Analysis
# ----------------------------------------------------------------------
_KIND_MAP = {
    AccessKind.AFFINE_LOAD: StreamKind.AFFINE_LOAD,
    AccessKind.AFFINE_STORE: StreamKind.AFFINE_STORE,
    AccessKind.INDIRECT_LOAD: StreamKind.INDIRECT_LOAD,
    AccessKind.INDIRECT_ATOMIC: StreamKind.ATOMIC,
    AccessKind.POINTER_CHASE: StreamKind.POINTER_CHASE,
}


def _build_graph(kernel: KernelBuilder) -> StreamGraph:
    g = StreamGraph()
    for acc in kernel.accesses():
        g.add(StreamDef(acc.name, _KIND_MAP[acc.kind], handle=acc.handle,
                        length=kernel.trip_count,
                        elem_bytes=acc.handle.elem_size if acc.handle else 8,
                        reuse=acc.reuse, ops_per_elem=max(acc.ops, 1.0)))
    for acc in kernel.accesses():
        if acc.address_from is not None:
            kernel.access(acc.address_from)  # must exist
            g.depend(acc.address_from, acc.name, DepKind.ADDRESS)
        for src in acc.inputs:
            kernel.access(src)
            g.depend(src, acc.name, DepKind.VALUE)
        if acc.predicate is not None:
            kernel.access(acc.predicate)
            g.depend(acc.predicate, acc.name, DepKind.PREDICATE)
    g.topo_order()  # raises on cycles
    return g


# ----------------------------------------------------------------------
# Code generation
# ----------------------------------------------------------------------
@dataclass
class _PlanStep:
    describe: str
    run: Callable[[StreamExecutor, np.ndarray, np.ndarray], None]


@dataclass
class ExecutionPlan:
    """Ordered executor invocations for one kernel."""

    kernel_name: str
    steps: List[_PlanStep] = field(default_factory=list)

    def run(self, executor: StreamExecutor, iterations: np.ndarray,
            cores: np.ndarray) -> None:
        """Drive the executor over the given iteration trace."""
        iterations = np.asarray(iterations, dtype=np.int64)
        cores = np.asarray(cores, dtype=np.int64)
        if iterations.shape != cores.shape:
            raise ValueError("iterations and cores must align")
        for step in self.steps:
            step.run(executor, iterations, cores)

    def describe(self) -> List[str]:
        return [s.describe for s in self.steps]


@dataclass
class CompiledKernel:
    """Compiler output: the dependence graph plus the execution plan.

    ``builder`` keeps the front-end description around so static passes
    (the afflint hazard detector and coverage estimator) can reason about
    index expressions without re-deriving them from the plan closures.
    """

    name: str
    graph: StreamGraph
    decision: OffloadDecision
    plan: ExecutionPlan
    builder: Optional[KernelBuilder] = None

    def run(self, executor: StreamExecutor, iterations: np.ndarray,
            cores: np.ndarray) -> None:
        self.plan.run(executor, iterations, cores)


def _affine_idx(acc: Access, iterations: np.ndarray) -> np.ndarray:
    idx = iterations * acc.scale + acc.offset
    n = acc.handle.num_elem
    return np.clip(idx, 0, n - 1)


def _gen_elementwise(kernel: KernelBuilder, plan: ExecutionPlan) -> None:
    """Group affine loads with their consuming store into one
    affine_kernel invocation; leftover loads become pure reads."""
    consumed: set = set()
    for acc in kernel.accesses():
        if acc.kind is not AccessKind.AFFINE_STORE:
            continue
        ins = []
        for src in acc.inputs:
            sacc = kernel.access(src)
            if sacc.kind is AccessKind.AFFINE_LOAD:
                ins.append(sacc)
                consumed.add(src)
        store = acc

        def run(ex, iters, cores, ins=tuple(ins), store=store):
            in_pairs = [(a.handle, _affine_idx(a, iters)) for a in ins]
            ex.affine_kernel(cores, in_pairs,
                             out=(store.handle, _affine_idx(store, iters)),
                             ops_per_elem=store.ops)
        names = ",".join(a.name for a in ins)
        plan.steps.append(_PlanStep(
            f"affine_kernel([{names}] -> {store.name})", run))
    for acc in kernel.accesses():
        if acc.kind is AccessKind.AFFINE_LOAD and acc.name not in consumed:
            # standalone read (e.g. the base stream of an indirect access)
            def run(ex, iters, cores, acc=acc):
                ex.affine_kernel(cores, [(acc.handle, _affine_idx(acc, iters))],
                                 ops_per_elem=max(acc.ops, 0.5))
            plan.steps.append(_PlanStep(f"affine_read({acc.name})", run))


def _gen_indirect(kernel: KernelBuilder, plan: ExecutionPlan) -> None:
    for acc in kernel.accesses():
        if acc.kind not in (AccessKind.INDIRECT_LOAD,
                            AccessKind.INDIRECT_ATOMIC):
            continue
        base = kernel.access(acc.address_from)
        if base.kind not in (AccessKind.AFFINE_LOAD,):
            raise CompileError(
                f"indirect stream {acc.name!r} needs an affine base stream")
        if acc.target_indices is None:
            raise CompileError(f"indirect stream {acc.name!r} has no "
                               "target-index function")

        if acc.kind is AccessKind.INDIRECT_LOAD:
            def run(ex, iters, cores, acc=acc, base=base):
                tidx = np.asarray(acc.target_indices(iters), dtype=np.int64)
                ex.indirect_gather(cores,
                                   (base.handle, _affine_idx(base, iters)),
                                   (acc.handle, tidx), ops_per_elem=acc.ops)
            plan.steps.append(_PlanStep(
                f"indirect_gather({base.name} -> {acc.name})", run))
        else:
            def run(ex, iters, cores, acc=acc, base=base):
                tidx = np.asarray(acc.target_indices(iters), dtype=np.int64)
                ex.indirect_atomic(cores,
                                   (base.handle, _affine_idx(base, iters)),
                                   (acc.handle, tidx), ops_per_elem=acc.ops)
            plan.steps.append(_PlanStep(
                f"indirect_atomic({base.name} -> {acc.name})", run))


def _gen_chases(kernel: KernelBuilder, plan: ExecutionPlan) -> None:
    for spec in kernel._chases:
        def run(ex, iters, cores, spec=spec):
            nchains = int(spec.chain_ids.max()) + 1 if spec.chain_ids.size else 0
            if nchains == 0:
                return
            chain_cores = (np.arange(nchains) * ex.machine.num_cores
                           // nchains).astype(np.int64)
            ex.pointer_chase(spec.node_vaddrs, spec.chain_ids, chain_cores,
                             ops_per_node=spec.ops_per_node)
        plan.steps.append(_PlanStep(f"pointer_chase({spec.name})", run))


def compile_kernel(kernel: KernelBuilder,
                   mode: EngineMode = EngineMode.AFF_ALLOC) -> CompiledKernel:
    """Lower a kernel to a stream graph + execution plan.

    Raises :class:`CompileError` for malformed kernels (cycles, missing
    streams, indirect accesses without an affine base).
    """
    if not kernel.accesses():
        raise CompileError("kernel has no memory accesses")
    try:
        graph = _build_graph(kernel)
    except ValueError as e:
        raise CompileError(str(e)) from e
    decision = decide_offload(graph, mode)
    plan = ExecutionPlan(kernel.name)
    _gen_elementwise(kernel, plan)
    _gen_indirect(kernel, plan)
    _gen_chases(kernel, plan)
    return CompiledKernel(kernel.name, graph, decision, plan, builder=kernel)
