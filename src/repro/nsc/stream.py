"""Stream descriptors and the stream dependence graph (paper Fig 2).

A *stream* is the long-term access pattern of one memory reference in a
loop nest: affine (``A[i]``), indirect (``A[B[i]]``), pointer-chasing
(``p = p->next``), an atomic read-modify-write, or a reduction.  Streams
form a dependence graph whose edges carry address, value, or predicate
dependences — e.g. in push-BFS (Fig 2c) the CAS stream ``sx`` predicates
the queue-append streams ``st``/``sq``.

These descriptors are *declarative*: workloads build a graph per kernel,
the engine uses it to decide offloading (:func:`repro.nsc.engine.decide_offload`),
and tests/examples use it to describe kernels.  The executor does the
actual accounting.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.api import ArrayHandle

__all__ = ["StreamKind", "DepKind", "StreamDef", "StreamDep", "StreamGraph"]


class StreamKind(enum.Enum):
    AFFINE_LOAD = "affine_load"
    AFFINE_STORE = "affine_store"
    INDIRECT_LOAD = "indirect_load"
    INDIRECT_STORE = "indirect_store"
    ATOMIC = "atomic"
    POINTER_CHASE = "pointer_chase"
    REDUCE = "reduce"


class DepKind(enum.Enum):
    ADDRESS = "address"      # consumer's address comes from producer's value
    VALUE = "value"          # consumer's computation uses producer's value
    PREDICATE = "predicate"  # consumer executes only if producer's value says so


@dataclass
class StreamDef:
    """One stream in a kernel.

    Attributes:
        name: short id (``sa``, ``sb`` ... as in Fig 2).
        kind: access-pattern class.
        handle: the array the stream walks (None for pure pointer chases).
        length: trip count (elements the stream will touch).
        elem_bytes: bytes per element access.
        reuse: expected reuses per element in private caches — high-reuse
            short streams stay at the core (paper §2.2).
        ops_per_elem: compute ops associated with the stream's element.
    """

    name: str
    kind: StreamKind
    handle: Optional[ArrayHandle] = None
    length: int = 0
    elem_bytes: int = 4
    reuse: float = 0.0
    ops_per_elem: float = 1.0

    def footprint_bytes(self) -> int:
        return self.length * self.elem_bytes


@dataclass(frozen=True)
class StreamDep:
    src: str
    dst: str
    kind: DepKind


class StreamGraph:
    """Stream dependence graph for one offloadable loop."""

    def __init__(self):
        self._streams: Dict[str, StreamDef] = {}
        self._deps: List[StreamDep] = []

    def add(self, stream: StreamDef) -> StreamDef:
        if stream.name in self._streams:
            raise ValueError(f"duplicate stream {stream.name!r}")
        self._streams[stream.name] = stream
        return stream

    def depend(self, src: str, dst: str, kind: DepKind) -> None:
        if src not in self._streams or dst not in self._streams:
            raise KeyError(f"unknown stream in dependence {src}->{dst}")
        if src == dst:
            raise ValueError("self-dependence is not allowed")
        self._deps.append(StreamDep(src, dst, kind))

    @property
    def streams(self) -> List[StreamDef]:
        return list(self._streams.values())

    @property
    def deps(self) -> List[StreamDep]:
        return list(self._deps)

    def stream(self, name: str) -> StreamDef:
        return self._streams[name]

    def predecessors(self, name: str) -> List[Tuple[StreamDef, DepKind]]:
        return [(self._streams[d.src], d.kind) for d in self._deps if d.dst == name]

    def successors(self, name: str) -> List[Tuple[StreamDef, DepKind]]:
        return [(self._streams[d.dst], d.kind) for d in self._deps if d.src == name]

    def topo_order(self) -> List[StreamDef]:
        """Streams in dependence order; raises on cycles (other than the
        implicit self-recurrence of pointer chasing, which is not an edge)."""
        indeg = {n: 0 for n in self._streams}
        for d in self._deps:
            indeg[d.dst] += 1
        ready = [n for n, k in indeg.items() if k == 0]
        order: List[StreamDef] = []
        while ready:
            n = ready.pop()
            order.append(self._streams[n])
            for d in self._deps:
                if d.src == n:
                    indeg[d.dst] -= 1
                    if indeg[d.dst] == 0:
                        ready.append(d.dst)
        if len(order) != len(self._streams):
            raise ValueError("stream dependence graph has a cycle")
        return order

    def total_footprint(self) -> int:
        return sum(s.footprint_bytes() for s in self.streams)
