"""Compressed sparse row graphs (paper Fig 11, "Orig. CSR").

Vertices ``0..V-1``; ``index[v] : index[v+1]`` delimits vertex ``v``'s
outgoing edges in ``edges`` (sorted by source, which is the "common
practice" the paper's §7.2 degree-sensitivity study relies on).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["CSRGraph"]


@dataclass
class CSRGraph:
    """Immutable CSR adjacency."""

    index: np.ndarray            # int64, len V+1
    edges: np.ndarray            # int32, len E (destination vertex ids)
    weights: Optional[np.ndarray] = None  # optional per-edge weights

    def __post_init__(self):
        self.index = np.asarray(self.index, dtype=np.int64)
        self.edges = np.asarray(self.edges, dtype=np.int32)
        if self.index.ndim != 1 or self.index.size < 1:
            raise ValueError("index must be a 1D array of length V+1")
        if self.index[0] != 0 or self.index[-1] != self.edges.size:
            raise ValueError("index must start at 0 and end at |E|")
        if np.any(np.diff(self.index) < 0):
            raise ValueError("index must be non-decreasing")
        if self.edges.size and (self.edges.min() < 0
                                or self.edges.max() >= self.num_vertices):
            raise ValueError("edge endpoint out of range")
        if self.weights is not None and self.weights.size != self.edges.size:
            raise ValueError("weights must match edges")

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self.index.size - 1

    @property
    def num_edges(self) -> int:
        return self.edges.size

    @property
    def avg_degree(self) -> float:
        return self.num_edges / max(self.num_vertices, 1)

    def out_degrees(self) -> np.ndarray:
        return np.diff(self.index)

    def sources(self) -> np.ndarray:
        """Source vertex of every edge (len E)."""
        return np.repeat(np.arange(self.num_vertices, dtype=np.int32),
                         self.out_degrees())

    def neighbors(self, v: int) -> np.ndarray:
        return self.edges[self.index[v]:self.index[v + 1]]

    def edge_slices(self, vertices: np.ndarray):
        """(flat edge indices, per-vertex counts) for a set of vertices.

        The flat indices enumerate every outgoing edge of every vertex in
        ``vertices``, in order — the access trace of a frontier scan.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        starts = self.index[vertices]
        counts = self.index[vertices + 1] - starts
        total = int(counts.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64), counts
        # ranges [starts[i], starts[i]+counts[i]) concatenated
        within = np.arange(total, dtype=np.int64) - np.repeat(
            np.cumsum(counts) - counts, counts)
        return np.repeat(starts, counts) + within, counts

    # ------------------------------------------------------------------
    @classmethod
    def from_edge_list(cls, num_vertices: int, src: np.ndarray, dst: np.ndarray,
                       weights: Optional[np.ndarray] = None,
                       remove_self_loops: bool = True,
                       symmetrize: bool = False) -> "CSRGraph":
        """Build CSR from an edge list, sorting by source."""
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if symmetrize:
            src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
            if weights is not None:
                weights = np.concatenate([weights, weights])
        if remove_self_loops:
            keep = src != dst
            src, dst = src[keep], dst[keep]
            if weights is not None:
                weights = weights[keep]
        # Sort by (src, dst): adjacency lists sorted by neighbor id is the
        # "common practice" the paper's degree-sensitivity study (§7.2)
        # relies on — consecutive edges of a vertex point to nearby ids.
        order = np.lexsort((dst, src))
        src, dst = src[order], dst[order]
        if weights is not None:
            weights = np.asarray(weights)[order]
        index = np.zeros(num_vertices + 1, dtype=np.int64)
        np.add.at(index, src + 1, 1)
        np.cumsum(index, out=index)
        return cls(index, dst.astype(np.int32), weights)

    def transpose(self) -> "CSRGraph":
        """In-edge CSR (for pull-style kernels)."""
        return CSRGraph.from_edge_list(self.num_vertices, self.edges,
                                       self.sources(), self.weights,
                                       remove_self_loops=False)

    def degree_histogram(self, bins: int = 32) -> np.ndarray:
        deg = self.out_degrees()
        return np.histogram(deg, bins=bins)[0]
