"""Stand-ins for the paper's real-world graphs (Table 4).

The evaluation uses two SNAP social networks that we cannot download in
this offline environment (DESIGN.md §2 substitution):

========================  ==========  ============  ===========
graph                     vertices    edges         avg. degree
========================  ==========  ============  ===========
twitch-gamers             168,114     13,595,114    81
gplus                     107,614     13,673,453    127
========================  ==========  ============  ===========

``load_real_world`` synthesizes a power-law graph matched to those
statistics (size, average degree, heavy-tailed skew), which are the
properties the Fig 20 experiment exercises: high-degree, hard-to-
partition graphs.  A ``scale`` argument shrinks vertex count (keeping
average degree) so CI-sized runs stay fast; scale=1.0 reproduces the
full Table 4 sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.cache import cached_graph
from repro.graphs.csr import CSRGraph
from repro.graphs.generators import powerlaw

__all__ = ["GraphSpec", "REAL_WORLD_GRAPHS", "MESH_BASE_TILES",
           "load_real_world", "load_for_mesh"]


@dataclass(frozen=True)
class GraphSpec:
    name: str
    num_vertices: int
    num_edges: int
    kind: str = "power law"

    @property
    def avg_degree(self) -> int:
        return round(self.num_edges / self.num_vertices)


REAL_WORLD_GRAPHS: Dict[str, GraphSpec] = {
    "twitch-gamers": GraphSpec("twitch-gamers", 168_114, 13_595_114),
    "gplus": GraphSpec("gplus", 107_614, 13_673_453),
}


#: Tile count of the paper's evaluation platform (8x8 mesh); Table 4
#: sizes are calibrated for it, and :func:`load_for_mesh` grows the
#: graph proportionally for larger meshes.
MESH_BASE_TILES = 64


def _synthesize(spec: GraphSpec, nv: int, seed: int, weights_range) -> CSRGraph:
    return cached_graph(
        "real_world",
        lambda: powerlaw(nv, spec.avg_degree, exponent=2.0, seed=seed,
                         weights_range=weights_range),
        name=spec.name, num_vertices=nv, avg_degree=spec.avg_degree,
        seed=seed, weights_range=weights_range)


def load_real_world(name: str, scale: float = 1.0, seed: int = 7,
                    weights_range=None) -> CSRGraph:
    """Synthesize the named Table 4 graph (optionally down-scaled).

    Cached under the dataset name (via :mod:`repro.cache`) so every
    figure/benchmark touching the same Table 4 stand-in shares one
    generated artifact on disk.
    """
    try:
        spec = REAL_WORLD_GRAPHS[name]
    except KeyError:
        raise KeyError(f"unknown graph {name!r}; "
                       f"available: {sorted(REAL_WORLD_GRAPHS)}") from None
    if not (0 < scale <= 1.0):
        raise ValueError("scale must be in (0, 1]")
    nv = max(int(spec.num_vertices * scale), 1024)
    return _synthesize(spec, nv, seed, weights_range)


def load_for_mesh(name: str, num_tiles: int, scale: float = 1.0,
                  seed: int = 7, weights_range=None) -> CSRGraph:
    """Table 4 graph grown for a ``num_tiles``-tile mesh.

    The published sizes target the 8x8 (64-tile) platform; keeping the
    problem-per-bank ratio fixed when the mesh scales means growing the
    vertex count by ``num_tiles / 64`` at unchanged average degree.  At
    ``scale=1.0`` a 16x16 mesh gets a ~54M-edge twitch-gamers stand-in
    and a 32x32 mesh ~218M edges; ``scale`` shrinks vertices (exactly
    like :func:`load_real_world`) so smoke runs stay fast.  Cached with
    the resulting vertex count in the key, so every mesh size keeps its
    own artifact and ``load_for_mesh(name, 64)`` shares the
    ``load_real_world(name)`` one.
    """
    try:
        spec = REAL_WORLD_GRAPHS[name]
    except KeyError:
        raise KeyError(f"unknown graph {name!r}; "
                       f"available: {sorted(REAL_WORLD_GRAPHS)}") from None
    if num_tiles < 1:
        raise ValueError("num_tiles must be positive")
    if not (0 < scale <= 1.0):
        raise ValueError("scale must be in (0, 1]")
    nv = max(int(spec.num_vertices * scale * num_tiles / MESH_BASE_TILES),
             1024)
    return _synthesize(spec, nv, seed, weights_range)
