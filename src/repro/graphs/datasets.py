"""Stand-ins for the paper's real-world graphs (Table 4).

The evaluation uses two SNAP social networks that we cannot download in
this offline environment (DESIGN.md §2 substitution):

========================  ==========  ============  ===========
graph                     vertices    edges         avg. degree
========================  ==========  ============  ===========
twitch-gamers             168,114     13,595,114    81
gplus                     107,614     13,673,453    127
========================  ==========  ============  ===========

``load_real_world`` synthesizes a power-law graph matched to those
statistics (size, average degree, heavy-tailed skew), which are the
properties the Fig 20 experiment exercises: high-degree, hard-to-
partition graphs.  A ``scale`` argument shrinks vertex count (keeping
average degree) so CI-sized runs stay fast; scale=1.0 reproduces the
full Table 4 sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.cache import cached_graph
from repro.graphs.csr import CSRGraph
from repro.graphs.generators import powerlaw

__all__ = ["GraphSpec", "REAL_WORLD_GRAPHS", "load_real_world"]


@dataclass(frozen=True)
class GraphSpec:
    name: str
    num_vertices: int
    num_edges: int
    kind: str = "power law"

    @property
    def avg_degree(self) -> int:
        return round(self.num_edges / self.num_vertices)


REAL_WORLD_GRAPHS: Dict[str, GraphSpec] = {
    "twitch-gamers": GraphSpec("twitch-gamers", 168_114, 13_595_114),
    "gplus": GraphSpec("gplus", 107_614, 13_673_453),
}


def load_real_world(name: str, scale: float = 1.0, seed: int = 7,
                    weights_range=None) -> CSRGraph:
    """Synthesize the named Table 4 graph (optionally down-scaled).

    Cached under the dataset name (via :mod:`repro.cache`) so every
    figure/benchmark touching the same Table 4 stand-in shares one
    generated artifact on disk.
    """
    try:
        spec = REAL_WORLD_GRAPHS[name]
    except KeyError:
        raise KeyError(f"unknown graph {name!r}; "
                       f"available: {sorted(REAL_WORLD_GRAPHS)}") from None
    if not (0 < scale <= 1.0):
        raise ValueError("scale must be in (0, 1]")
    nv = max(int(spec.num_vertices * scale), 1024)
    return cached_graph(
        "real_world",
        lambda: powerlaw(nv, spec.avg_degree, exponent=2.0, seed=seed,
                         weights_range=weights_range),
        name=name, num_vertices=nv, avg_degree=spec.avg_degree, seed=seed,
        weights_range=weights_range)
