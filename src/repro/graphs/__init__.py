"""Graph substrate: CSR format, generators, datasets, chunk remapping."""

from repro.graphs.csr import CSRGraph
from repro.graphs.generators import kronecker, powerlaw, uniform_random
from repro.graphs.datasets import REAL_WORLD_GRAPHS, load_real_world
from repro.graphs.partition import chunked_edge_layout, ideal_edge_layout

__all__ = [
    "CSRGraph",
    "kronecker",
    "powerlaw",
    "uniform_random",
    "REAL_WORLD_GRAPHS",
    "load_real_world",
    "chunked_edge_layout",
    "ideal_edge_layout",
]
