"""Edge-chunk remapping — the paper's Fig 6 limit study.

"Fig 6 shows the speedup and traffic reduction if we can break the edge
list in the CSR format into chunks of various sizes and freely map them
to the L3 bank with minimal indirect traffic — subject to a max 2% load
imbalance between L3 banks, by moving chunks with the least traffic
reduction to the least occupied bank."

``chunked_edge_layout`` implements exactly that: it scores every
(chunk, bank) placement by total indirect hops to the chunk's destination
vertices, greedily places each chunk at its best bank, then rebalances by
moving minimum-regret chunks off overloaded banks.  The chunks are then
*actually allocated* as interleave-pool slots on the assigned banks, so
the resulting :class:`~repro.core.api.AddressView` goes through the real
mapping path.

``ideal_edge_layout`` is the "Ind-Ideal" bar: every edge is stored on the
bank of the vertex it points to (zero indirect traffic by construction).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.core.api import AddressView, ArrayHandle
from repro.core.irregular import SlotPool
from repro.machine import Machine

__all__ = ["ChunkLayoutInfo", "chunked_edge_layout", "ideal_edge_layout"]

_EDGE_BYTES = 4


@dataclass
class ChunkLayoutInfo:
    """Diagnostics from a chunk remap."""

    num_chunks: int
    chunk_bytes: int
    assignment: np.ndarray        # bank per chunk
    mean_indirect_hops: float     # avg hops from edge to its dst vertex
    imbalance: float              # (max - avg) / avg chunk count
    moved_for_balance: int


def _chunk_costs(mesh, chunk_ids: np.ndarray, dst_banks: np.ndarray,
                 num_chunks: int, num_banks: int) -> np.ndarray:
    """cost[c, b] = total hops if chunk c is placed at bank b."""
    cnt = np.zeros((num_chunks, num_banks), dtype=np.float64)
    np.add.at(cnt, (chunk_ids, dst_banks), 1.0)
    dist = mesh.hops_to_all(np.arange(num_banks)).astype(np.float64)  # (b, b')
    return cnt @ dist.T  # cost[c, b] = sum_d cnt[c, d] * dist[b, d]


def chunked_edge_layout(machine: Machine, dst_banks: np.ndarray,
                        chunk_bytes: int, max_imbalance: float = 0.02,
                        ) -> Tuple[AddressView, ChunkLayoutInfo]:
    """Place edge-array chunks to minimize indirect traffic (Fig 6).

    Args:
        dst_banks: bank of the vertex each edge points to.
        chunk_bytes: chunk granularity (must be a valid pool interleave).
        max_imbalance: allowed (max - avg)/avg chunk-count imbalance.

    Returns an AddressView over per-edge addresses plus diagnostics.
    """
    dst_banks = np.asarray(dst_banks, dtype=np.int64)
    nb = machine.num_banks
    epc = chunk_bytes // _EDGE_BYTES
    if epc <= 0:
        raise ValueError("chunk_bytes too small for 4-byte edges")
    n_edges = dst_banks.size
    n_chunks = -(-n_edges // epc)
    chunk_of_edge = np.arange(n_edges, dtype=np.int64) // epc

    cost = _chunk_costs(machine.mesh, chunk_of_edge, dst_banks, n_chunks, nb)
    assignment = np.argmin(cost, axis=1).astype(np.int64)
    best_cost = cost[np.arange(n_chunks), assignment]

    # Rebalance: overloaded banks shed their least-affinity-benefit chunks
    # to the least occupied banks.
    loads = np.bincount(assignment, minlength=nb).astype(np.int64)
    avg = n_chunks / nb
    target = int(np.ceil(avg * (1.0 + max_imbalance)))
    moved = 0
    order_by_bank = {b: list(np.flatnonzero(assignment == b)) for b in range(nb)}
    # regret of moving a chunk anywhere = how much we'd lose vs. its best
    for b in range(nb):
        if loads[b] <= target:
            continue
        chunks_here = np.array(order_by_bank[b], dtype=np.int64)
        # cheapest-to-move first: smallest (second-best cost - best cost)
        alt_cost = cost[chunks_here].copy()
        alt_cost[:, b] = np.inf
        regret = alt_cost.min(axis=1) - best_cost[chunks_here]
        for ci in chunks_here[np.argsort(regret)]:
            if loads[b] <= target:
                break
            # move to the least occupied bank (tie: cheaper alternative)
            candidates = np.flatnonzero(loads == loads.min())
            dest = candidates[np.argmin(cost[ci, candidates])]
            assignment[ci] = dest
            loads[b] -= 1
            loads[dest] += 1
            moved += 1

    # Materialize: one pool slot per chunk on its assigned bank.
    pool = SlotPool(machine.pools, chunk_bytes)
    slot_vaddrs = pool.alloc_many_on_banks(assignment)
    machine.llc.register_by_banks(assignment, float(chunk_bytes))
    addrs = (slot_vaddrs[chunk_of_edge]
             + (np.arange(n_edges, dtype=np.int64) % epc) * _EDGE_BYTES)
    view = AddressView(machine, addrs, _EDGE_BYTES, f"chunks-{chunk_bytes}B")

    edge_banks = machine.banks_of(addrs)
    mean_hops = float(machine.mesh.hops(edge_banks, dst_banks).mean())
    info = ChunkLayoutInfo(
        num_chunks=n_chunks,
        chunk_bytes=chunk_bytes,
        assignment=assignment,
        mean_indirect_hops=mean_hops,
        imbalance=float((loads.max() - avg) / avg) if avg > 0 else 0.0,
        moved_for_balance=moved,
    )
    return view, info


def ideal_edge_layout(machine: Machine, dst_banks: np.ndarray,
                      line_bytes: int = 64) -> AddressView:
    """Ind-Ideal: every edge stored on its destination vertex's bank.

    Edges are packed, per destination bank, into cache-line slots on that
    bank; the view preserves original edge order.
    """
    dst_banks = np.asarray(dst_banks, dtype=np.int64)
    epc = line_bytes // _EDGE_BYTES
    pool = SlotPool(machine.pools, line_bytes)
    order = np.argsort(dst_banks, kind="stable")
    sorted_banks = dst_banks[order]
    # chunk boundaries within each bank's packed run
    rank_in_bank = np.arange(dst_banks.size, dtype=np.int64)
    uniq, starts, counts = np.unique(sorted_banks, return_index=True,
                                     return_counts=True)
    rank_in_bank -= np.repeat(starts, counts)
    chunk_in_bank = rank_in_bank // epc
    # allocate slots bank by bank
    chunk_banks = []
    for b, c in zip(uniq.tolist(), counts.tolist()):
        chunk_banks.extend([b] * (-(-c // epc)))
    chunk_banks = np.asarray(chunk_banks, dtype=np.int64)
    slots = pool.alloc_many_on_banks(chunk_banks)
    machine.llc.register_by_banks(chunk_banks, float(line_bytes))
    # chunk id per sorted edge: chunks are ordered bank-major
    chunk_offset_of_bank = np.zeros(machine.num_banks, dtype=np.int64)
    chunks_per_bank = np.zeros(machine.num_banks, dtype=np.int64)
    chunks_per_bank[uniq] = -(-counts // epc)
    chunk_offset_of_bank[1:] = np.cumsum(chunks_per_bank)[:-1]
    chunk_id = chunk_offset_of_bank[sorted_banks] + chunk_in_bank
    addrs_sorted = slots[chunk_id] + (rank_in_bank % epc) * _EDGE_BYTES
    addrs = np.empty_like(addrs_sorted)
    addrs[order] = addrs_sorted
    return AddressView(machine, addrs, _EDGE_BYTES, "ideal-edges")
