"""Synthetic graph generators.

* :func:`kronecker` — the Graph500/GAP R-MAT style generator the paper's
  Table 3 uses (A/B/C = 0.57/0.19/0.19).
* :func:`powerlaw` — configuration-model power-law graphs with a
  controllable *average degree* at fixed edge count (Fig 19's sweep).
* :func:`uniform_random` — Erdős–Rényi-style uniform edges.

All three generators are deterministic in their arguments (the ``seed``
fixes the RNG) and memoized through :mod:`repro.cache`: the generated CSR
arrays are stored as content-addressed ``.npz`` entries so that repeated
builds — across figures, benchmark files, and worker processes — load in
milliseconds instead of regenerating millions of edges.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cache import cached_graph
from repro.graphs.csr import CSRGraph

__all__ = ["kronecker", "powerlaw", "uniform_random"]


def kronecker(scale: int, edge_factor: int = 16, a: float = 0.57,
              b: float = 0.19, c: float = 0.19, seed: int = 0,
              weights_range: Optional[tuple] = None) -> CSRGraph:
    """Kronecker (R-MAT) graph with ``2**scale`` vertices.

    Follows the Graph500 specification: each edge picks one quadrant per
    bit level with probabilities (a, b, c, 1-a-b-c).  The paper's graph
    inputs are "Kronecker generated, 128k nodes 4M edges,
    A/B/C: 0.57/0.19/0.19" (Table 3) — i.e. ``scale=17, edge_factor=32``.

    Args:
        weights_range: optional (lo, hi) for integer edge weights
            (Table 3: sssp weights in [1, 255]).
    """
    if not (0 < a < 1 and 0 <= b < 1 and 0 <= c < 1 and a + b + c < 1):
        raise ValueError("invalid R-MAT probabilities")
    return cached_graph(
        "kronecker",
        lambda: _kronecker_build(scale, edge_factor, a, b, c, seed,
                                 weights_range),
        scale=scale, edge_factor=edge_factor, a=a, b=b, c=c, seed=seed,
        weights_range=weights_range)


def _kronecker_build(scale, edge_factor, a, b, c, seed,
                     weights_range) -> CSRGraph:
    rng = np.random.default_rng(seed)
    n = 1 << scale
    m = n * edge_factor
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    ab = a + b
    a_norm = a / ab
    c_norm = c / (1.0 - ab)
    for _ in range(scale):
        src <<= 1
        dst <<= 1
        r1 = rng.random(m)
        r2 = rng.random(m)
        down = r1 > ab          # lower half of the adjacency matrix
        right = np.where(down, r2 > c_norm, r2 > a_norm)
        src += down
        dst += right
    # Permute vertex ids so degree doesn't correlate with id (Graph500).
    perm = rng.permutation(n)
    src, dst = perm[src], perm[dst]
    weights = None
    if weights_range is not None:
        lo, hi = weights_range
        weights = rng.integers(lo, hi + 1, size=m).astype(np.int32)
    return CSRGraph.from_edge_list(n, src, dst, weights)


def powerlaw(num_vertices: int, avg_degree: float, exponent: float = 2.1,
             seed: int = 0, weights_range: Optional[tuple] = None) -> CSRGraph:
    """Power-law graph with a target average degree (Fig 19 sweep).

    Uses a configuration-style model: per-vertex expected degrees are
    drawn from a truncated Pareto distribution with the given exponent,
    rescaled so the total edge count is ``num_vertices * avg_degree``;
    edge endpoints are then sampled proportionally to expected degree.
    """
    if avg_degree <= 0:
        raise ValueError("avg_degree must be positive")
    return cached_graph(
        "powerlaw",
        lambda: _powerlaw_build(num_vertices, avg_degree, exponent, seed,
                                weights_range),
        num_vertices=num_vertices, avg_degree=avg_degree, exponent=exponent,
        seed=seed, weights_range=weights_range)


def _powerlaw_build(num_vertices, avg_degree, exponent, seed,
                    weights_range) -> CSRGraph:
    rng = np.random.default_rng(seed)
    m = int(num_vertices * avg_degree)
    # Pareto-distributed weights, truncated to avoid one vertex owning
    # most edges.
    w = (1.0 + rng.pareto(exponent - 1.0, size=num_vertices))
    w = np.minimum(w, num_vertices ** 0.5)
    p = w / w.sum()
    src = rng.choice(num_vertices, size=m, p=p)
    dst = rng.choice(num_vertices, size=m, p=p)
    weights = None
    if weights_range is not None:
        lo, hi = weights_range
        weights = rng.integers(lo, hi + 1, size=m).astype(np.int32)
    return CSRGraph.from_edge_list(num_vertices, src, dst, weights)


def uniform_random(num_vertices: int, num_edges: int, seed: int = 0,
                   weights_range: Optional[tuple] = None) -> CSRGraph:
    """Uniform random multigraph."""
    return cached_graph(
        "uniform_random",
        lambda: _uniform_build(num_vertices, num_edges, seed, weights_range),
        num_vertices=num_vertices, num_edges=num_edges, seed=seed,
        weights_range=weights_range)


def _uniform_build(num_vertices, num_edges, seed, weights_range) -> CSRGraph:
    rng = np.random.default_rng(seed)
    src = rng.integers(0, num_vertices, size=num_edges)
    dst = rng.integers(0, num_vertices, size=num_edges)
    weights = None
    if weights_range is not None:
        lo, hi = weights_range
        weights = rng.integers(lo, hi + 1, size=num_edges).astype(np.int32)
    return CSRGraph.from_edge_list(num_vertices, src, dst, weights)
