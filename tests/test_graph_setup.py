"""GraphSetup internals: property allocation, edge structures, pull scans."""

import numpy as np
import pytest

from repro.graphs.csr import CSRGraph
from repro.nsc.engine import EngineMode
from repro.workloads.base import make_context
from repro.workloads.graph_kernels import GraphSetup, _pull_scan


@pytest.fixture
def graph():
    src = [0, 0, 1, 1, 2, 3]
    dst = [1, 2, 2, 3, 3, 0]
    return CSRGraph.from_edge_list(4, src, dst)


class TestGraphSetup:
    def test_aff_mode_partitions_and_links(self, graph):
        ctx = make_context(EngineMode.AFF_ALLOC)
        s = GraphSetup(ctx, graph, ["parent"], "parent")
        assert s.linked is not None
        assert s.index_h is None
        # main prop partitioned: layout says so
        assert s.main.layout is not None

    def test_plain_mode_uses_csr_arrays(self, graph):
        ctx = make_context(EngineMode.NEAR_L3)
        s = GraphSetup(ctx, graph, ["parent"], "parent")
        assert s.linked is None
        assert s.index_h is not None
        assert s.edges_h is not None

    def test_use_linked_false_under_aff(self, graph):
        ctx = make_context(EngineMode.AFF_ALLOC)
        s = GraphSetup(ctx, graph, ["parent"], "parent", use_linked=False)
        assert s.linked is None

    def test_weighted_uses_8b_edges(self, graph):
        ctx = make_context(EngineMode.NEAR_L3)
        s = GraphSetup(ctx, graph, ["dist"], "dist", weighted=True)
        assert s.edges_h.elem_size == 8

    def test_bad_edge_layout_rejected(self, graph):
        ctx = make_context(EngineMode.NEAR_L3)
        with pytest.raises(ValueError):
            GraphSetup(ctx, graph, ["p"], "p", edge_layout=("bogus",))

    def test_scan_edges_returns_frontier_edges(self, graph):
        ctx = make_context(EngineMode.NEAR_L3)
        s = GraphSetup(ctx, graph, ["parent"], "parent")
        edge_idx, ecores, dsts = s.scan_edges(np.array([0, 1]))
        assert list(dsts) == [1, 2, 2, 3]
        assert edge_idx.size == 4
        assert ecores.size == 4

    def test_scan_edges_records_traffic(self, graph):
        ctx = make_context(EngineMode.AFF_ALLOC)
        s = GraphSetup(ctx, graph, ["parent"], "parent")
        before = ctx.recorder.bank_line_accesses.sum()
        s.scan_edges(np.arange(4))
        assert ctx.recorder.bank_line_accesses.sum() > before


class TestPullScan:
    def test_finds_frontier_parent(self, graph):
        gt = graph.transpose()
        in_frontier = np.zeros(4, dtype=bool)
        in_frontier[0] = True
        unvisited = np.array([1, 2])
        scanned, scan_len, parents = _pull_scan(gt, unvisited, in_frontier)
        # both 1 and 2 have 0 as an in-neighbor
        assert parents[0] == 0 and parents[1] == 0

    def test_scans_stop_at_first_hit(self, graph):
        gt = graph.transpose()
        in_frontier = np.ones(4, dtype=bool)  # everyone is a parent
        unvisited = np.array([3])
        scanned, scan_len, parents = _pull_scan(gt, unvisited, in_frontier)
        assert scan_len[0] == 1  # first in-neighbor hits
        assert parents[0] >= 0

    def test_not_found_scans_everything(self, graph):
        gt = graph.transpose()
        in_frontier = np.zeros(4, dtype=bool)
        unvisited = np.array([3])
        scanned, scan_len, parents = _pull_scan(gt, unvisited, in_frontier)
        deg3 = gt.index[4] - gt.index[3]
        assert scan_len[0] == deg3
        assert parents[0] == -1

    def test_isolated_vertex(self):
        g = CSRGraph.from_edge_list(3, [0], [1])
        gt = g.transpose()
        in_frontier = np.zeros(3, dtype=bool)
        scanned, scan_len, parents = _pull_scan(gt, np.array([2]), in_frontier)
        assert scanned.size == 0
        assert parents[0] == -1

    def test_empty_unvisited(self, graph):
        gt = graph.transpose()
        scanned, scan_len, parents = _pull_scan(
            gt, np.empty(0, dtype=np.int64), np.zeros(4, dtype=bool))
        assert scanned.size == 0 and parents.size == 0
