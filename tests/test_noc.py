"""NoC traffic accounting: flits, hops, channel loads."""

import numpy as np
import pytest

from repro.arch.mesh import Mesh
from repro.arch.noc import MessageClass, TrafficAccountant, pair_channel_loads
from repro.config import NocConfig


@pytest.fixture
def acct():
    return TrafficAccountant(Mesh(8, 8), NocConfig())


class TestFlits:
    def test_header_only_is_one_flit(self, acct):
        acct.record(0, 1, 0, MessageClass.CONTROL)
        assert acct.total_flits(MessageClass.CONTROL) == 1.0

    def test_line_message_is_three_flits(self, acct):
        # 64B payload + 8B header = 72B over 32B links -> 3 flits
        acct.record(0, 1, 64, MessageClass.DATA)
        assert acct.total_flits(MessageClass.DATA) == 3.0

    def test_count_multiplies(self, acct):
        acct.record(0, 1, 0, MessageClass.CONTROL, count=5)
        assert acct.total_flits(MessageClass.CONTROL) == 5.0
        assert acct.message_count(MessageClass.CONTROL) == 5.0

    def test_vector_batch(self, acct):
        src = np.array([0, 0, 1])
        dst = np.array([1, 2, 3])
        acct.record(src, dst, 0, MessageClass.OFFLOAD)
        assert acct.message_count(MessageClass.OFFLOAD) == 3.0

    def test_broadcast_scalar_dst(self, acct):
        acct.record(np.array([0, 1, 2]), 5, 0, MessageClass.DATA)
        assert acct.message_count(MessageClass.DATA) == 3.0

    def test_invalid_tile_rejected(self, acct):
        with pytest.raises(ValueError):
            acct.record(0, 64, 0, MessageClass.DATA)


class TestHops:
    def test_flit_hops(self, acct):
        acct.record(0, 3, 0, MessageClass.CONTROL)  # 3 hops x 1 flit
        assert acct.flit_hops() == 3.0
        assert acct.flit_hops(MessageClass.CONTROL) == 3.0
        assert acct.flit_hops(MessageClass.DATA) == 0.0

    def test_by_class(self, acct):
        acct.record(0, 1, 0, MessageClass.CONTROL)
        acct.record(0, 1, 64, MessageClass.DATA)
        by = acct.flit_hops_by_class()
        assert by[MessageClass.CONTROL] == 1.0
        assert by[MessageClass.DATA] == 3.0

    def test_local_messages_zero_hops(self, acct):
        acct.record(4, 4, 64, MessageClass.DATA)
        assert acct.flit_hops() == 0.0


class TestChannelLoads:
    def test_injection_ejection_counted(self, acct):
        acct.record(0, 1, 0, MessageClass.CONTROL)
        loads = acct.link_loads()
        mesh = acct.mesh
        assert loads[mesh.num_links + 0] == 1.0       # inject at 0
        assert loads[mesh.num_links + 64 + 1] == 1.0  # eject at 1

    def test_hot_destination_ejection(self, acct):
        # 63 senders to one bank: its ejection channel carries it all
        src = np.arange(1, 64)
        acct.record(src, 0, 0, MessageClass.CONTROL)
        loads = acct.link_loads()
        assert loads[acct.mesh.num_links + 64 + 0] == 63.0

    def test_max_link_load(self, acct):
        acct.record(np.arange(1, 64), 0, 0, MessageClass.CONTROL)
        assert acct.max_link_load() == 63.0

    def test_pair_channel_loads_direct(self):
        mesh = Mesh(4, 4)
        pairs = np.zeros(16 * 16)
        pairs[0 * 16 + 3] = 2.0  # 2 flits from 0 to 3
        loads = pair_channel_loads(mesh, pairs)
        assert loads[:mesh.num_links].sum() == 6.0  # 3 hops x 2 flits
        assert loads[mesh.num_links + 0] == 2.0
        assert loads[mesh.num_links + 16 + 3] == 2.0


class TestUtilization:
    def test_zero_cycles(self, acct):
        assert acct.utilization(0) == 0.0

    def test_bounded_by_one(self, acct):
        acct.record(0, 63, 1 << 16, MessageClass.DATA)
        assert 0.0 < acct.utilization(1) <= 1.0

    def test_merged_with(self, acct):
        other = TrafficAccountant(acct.mesh, acct.noc)
        acct.record(0, 1, 0, MessageClass.CONTROL)
        other.record(0, 1, 0, MessageClass.CONTROL)
        merged = acct.merged_with(other)
        assert merged.message_count() == 2.0
        assert acct.message_count() == 1.0  # originals untouched


class TestDegradedTopology:
    """Accountant memos must follow the mesh's topology epoch."""

    def test_hops_recomputed_after_link_removal(self):
        mesh = Mesh(8, 8)
        acct = TrafficAccountant(mesh, NocConfig())
        acct.record(9, 10, 0, MessageClass.CONTROL)
        assert acct.flit_hops() == 1.0
        mesh.remove_link_between(9, 10)
        # same recorded traffic, new topology: the memoized hop table
        # is invalid and the 3-hop detour must show up
        assert acct.flit_hops() == 3.0

    def test_usable_links_shrink_with_dead_links(self):
        mesh = Mesh(8, 8)
        acct = TrafficAccountant(mesh, NocConfig())
        n0 = acct._usable_link_count()
        mesh.remove_link_between(9, 10)
        assert acct._usable_link_count() == n0 - 2

    def test_channel_loads_rekeyed_after_removal(self):
        mesh = Mesh(8, 8)
        acct = TrafficAccountant(mesh, NocConfig())
        acct.record(9, 10, 64, MessageClass.DATA)
        before = acct.max_link_load()
        mesh.remove_link_between(9, 10)
        after = acct.max_link_load()
        assert before > 0 and after > 0
        # the flits now traverse different links
        dead = mesh.dead_links
        assert all(acct.link_loads()[link] == 0.0 for link in dead)


class TestReset:
    """reset(): counters zero AND snapshot queries stay consistent.

    The relayout telemetry aggregator resets the accountant between
    epochs; a stale channel-load cache surviving a reset would leak the
    previous epoch's loads into the next epoch's heat snapshot."""

    def test_reset_zeroes_every_counter(self, acct):
        acct.record(0, 63, 64, MessageClass.DATA, count=7)
        acct.record(np.array([1, 2]), np.array([3, 4]), 0,
                    MessageClass.CONTROL)
        acct.reset()
        assert acct.total_flits() == 0.0
        assert acct.message_count() == 0.0
        assert acct.flit_hops() == 0.0

    def test_metric_query_after_reset_never_serves_stale_cache(self, acct):
        acct.record(0, 63, 64, MessageClass.DATA, count=100)
        assert acct.max_link_load() > 0  # prime the channel-load cache
        acct.reset()
        # mid-epoch query with NO record() in between: must recompute
        assert acct.max_link_load() == 0.0
        assert acct.mean_link_load() == 0.0
        assert acct.utilization(1e6) == 0.0

    def test_record_after_reset_starts_a_clean_epoch(self, acct):
        acct.record(0, 63, 64, MessageClass.DATA, count=100)
        acct.max_link_load()
        acct.reset()
        acct.record(0, 1, 64, MessageClass.DATA)
        # one 3-flit message over one link: the old epoch's 100 messages
        # must not contribute
        assert acct.total_flits() == 3.0
        assert acct.max_link_load() == 3.0

    def test_reset_survives_topology_change(self):
        mesh = Mesh(8, 8)
        acct = TrafficAccountant(mesh, NocConfig())
        acct.record(9, 10, 64, MessageClass.DATA)
        acct.max_link_load()
        acct.reset()
        mesh.remove_link_between(9, 10)
        assert acct.max_link_load() == 0.0
        acct.record(9, 10, 64, MessageClass.DATA)
        # post-reset traffic routes through the new topology (detour)
        assert acct.flit_hops() == 9.0
