"""Address arithmetic helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.arch.address import (AddressRange, align_down, align_up,
                                is_power_of_two, lines_spanned)


class TestAlignment:
    def test_align_down(self):
        assert align_down(100, 64) == 64
        assert align_down(64, 64) == 64
        assert align_down(63, 64) == 0

    def test_align_up(self):
        assert align_up(100, 64) == 128
        assert align_up(64, 64) == 64
        assert align_up(0, 64) == 0

    def test_zero_granule_rejected(self):
        with pytest.raises(ValueError):
            align_up(10, 0)
        with pytest.raises(ValueError):
            align_down(10, -4)

    @given(st.integers(0, 1 << 40), st.sampled_from([64, 128, 4096]))
    def test_align_properties(self, addr, g):
        d, u = align_down(addr, g), align_up(addr, g)
        assert d <= addr <= u
        assert d % g == 0 and u % g == 0
        assert u - d in (0, g)


class TestPowerOfTwo:
    def test_powers(self):
        for k in range(20):
            assert is_power_of_two(1 << k)

    def test_non_powers(self):
        for n in (0, -2, 3, 6, 96, 1000):
            assert not is_power_of_two(n)


class TestLinesSpanned:
    def test_within_one_line(self):
        assert lines_spanned(0, 64) == 1
        assert lines_spanned(10, 10) == 1

    def test_straddles(self):
        assert lines_spanned(60, 8) == 2
        assert lines_spanned(0, 65) == 2

    def test_empty(self):
        assert lines_spanned(0, 0) == 0

    @given(st.integers(0, 1 << 30), st.integers(1, 1 << 16))
    def test_count_bound(self, addr, size):
        n = lines_spanned(addr, size)
        # at least ceil(size/64) lines; at most one extra for misalignment
        assert (size + 63) // 64 <= n <= (size + 63) // 64 + 1


class TestAddressRange:
    def test_contains(self):
        r = AddressRange(10, 20)
        assert r.contains(10) and r.contains(19)
        assert not r.contains(20) and not r.contains(9)
        assert r.size == 10

    def test_invalid(self):
        with pytest.raises(ValueError):
            AddressRange(20, 10)

    def test_overlaps(self):
        a = AddressRange(0, 10)
        assert a.overlaps(AddressRange(5, 15))
        assert not a.overlaps(AddressRange(10, 20))  # half-open

    def test_contains_range(self):
        a = AddressRange(0, 100)
        assert a.contains_range(AddressRange(10, 90))
        assert not a.contains_range(AddressRange(50, 150))
