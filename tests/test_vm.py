"""Virtual memory: regions, translation, interleave pools."""

import numpy as np
import pytest

from repro.arch.iot import InterleaveOverrideTable
from repro.vm.layout import AddressSpace, LinearRegion, PagedRegion, VirtualLayout
from repro.vm.pools import POOL_INTERLEAVES, InterleavePool, PoolManager


class TestLinearRegion:
    def test_translate(self):
        r = LinearRegion("x", 0x1000, 0x9000, 0x100)
        assert r.translate(np.array([0x1010]))[0] == 0x9010


class TestPagedRegion:
    def test_map_and_translate(self):
        r = PagedRegion("p", 0x10000, 1 << 20)
        r.map_page(0, 0x500000)
        r.map_page(2, 0x700000)
        out = r.translate(np.array([0x10004, 0x12008]))
        assert out[0] == 0x500004
        assert out[1] == 0x700008

    def test_unmapped_raises(self):
        r = PagedRegion("p", 0x10000, 1 << 20)
        r.map_page(0, 0x500000)
        with pytest.raises(RuntimeError):
            r.translate(np.array([0x10000 + 4096]))

    def test_grows_lazily(self):
        r = PagedRegion("p", 0, 1 << 40)  # 1 TiB reservation, tiny table
        assert r._frames.size == 0
        r.map_page(100, 0x1000)
        assert r.frame_of(100) == 0x1000
        assert r.frame_of(5000) == -1

    def test_unaligned_frame_rejected(self):
        r = PagedRegion("p", 0, 1 << 20)
        with pytest.raises(ValueError):
            r.map_page(0, 0x1001)

    def test_page_index_bounds(self):
        r = PagedRegion("p", 0, 1 << 20)
        with pytest.raises(ValueError):
            r.map_page(1 << 20, 0x1000)


class TestAddressSpace:
    def test_dispatch_between_regions(self):
        sp = AddressSpace()
        sp.add(LinearRegion("a", 0x1000, 0x100000, 0x1000))
        sp.add(LinearRegion("b", 0x8000, 0x200000, 0x1000))
        out = sp.translate(np.array([0x1004, 0x8008]))
        assert out[0] == 0x100004
        assert out[1] == 0x200008

    def test_unmapped_raises(self):
        sp = AddressSpace()
        sp.add(LinearRegion("a", 0x1000, 0x100000, 0x1000))
        with pytest.raises(RuntimeError):
            sp.translate(np.array([0x0]))
        with pytest.raises(RuntimeError):
            sp.translate(np.array([0x2000]))  # past region end

    def test_overlap_rejected(self):
        sp = AddressSpace()
        sp.add(LinearRegion("a", 0x1000, 0x100000, 0x1000))
        with pytest.raises(ValueError):
            sp.add(LinearRegion("b", 0x1800, 0x200000, 0x1000))

    def test_region_of(self):
        sp = AddressSpace()
        r = LinearRegion("a", 0x1000, 0x100000, 0x1000)
        sp.add(r)
        assert sp.region_of(0x1500) is r
        assert sp.region_of(0x5000) is None


@pytest.fixture
def pools():
    sp = AddressSpace()
    iot = InterleaveOverrideTable(64)
    return PoolManager(sp, iot, 64), iot


class TestInterleavePool:
    def test_seven_pools(self, pools):
        mgr, _ = pools
        assert mgr.interleaves == [64, 128, 256, 512, 1024, 2048, 4096]

    def test_slot_bank_invariant(self, pools):
        """Slot i of any pool maps to bank i mod 64 — the invariant the
        whole runtime relies on."""
        mgr, _ = pools
        for intrlv in POOL_INTERLEAVES:
            pool = mgr.pool(intrlv)
            vaddrs = pool.vbase + np.arange(200) * intrlv
            assert (pool.bank_of(vaddrs) == np.arange(200) % 64).all()

    def test_expand_page_rounds(self, pools):
        mgr, _ = pools
        rng = mgr.expand(64, 100)
        assert rng.size == 4096
        assert mgr.pool(64).backed_bytes == 4096

    def test_expand_updates_iot(self, pools):
        mgr, iot = pools
        mgr.expand(64, 4096)
        pool = mgr.pool(64)
        entry = iot.lookup(pool.pbase)
        assert entry is not None and entry.intrlv == 64
        mgr.expand(64, 4096)
        entry = iot.lookup(pool.pbase + 4096)
        assert entry is not None  # grew, not re-installed
        assert len(iot) == 1

    def test_untouched_pool_costs_no_iot_entry(self, pools):
        mgr, iot = pools
        assert len(iot) == 0

    def test_pool_containing(self, pools):
        mgr, _ = pools
        p = mgr.pool(256)
        assert mgr.pool_containing(p.vbase + 100) is p
        assert mgr.pool_containing(0x1) is None

    def test_round_to_valid(self, pools):
        mgr, _ = pools
        assert mgr.round_to_valid_interleave(1) == 64
        assert mgr.round_to_valid_interleave(64) == 64
        assert mgr.round_to_valid_interleave(65) == 128
        assert mgr.round_to_valid_interleave(4096) == 4096
        assert mgr.round_to_valid_interleave(4097) is None

    def test_unknown_pool(self, pools):
        mgr, _ = pools
        with pytest.raises(KeyError):
            mgr.pool(96)

    def test_ensure_backed(self, pools):
        mgr, _ = pools
        pool = mgr.pool(64)
        pool.ensure_backed(pool.vbase + 10000)
        assert pool.backed_bytes >= 10000
        assert pool.ensure_backed(pool.vbase + 100) is None  # already backed

    def test_expansion_counter(self, pools):
        mgr, _ = pools
        pool = mgr.pool(128)
        mgr.expand(128, 4096)
        mgr.expand(128, 4096)
        assert pool.expansions == 2

    def test_reservation_exhaustion(self):
        pool = InterleavePool(64, 0x1000000, 0x2000000, reserved=8192,
                              num_banks=64)
        pool.expand(8192)
        with pytest.raises(MemoryError):
            pool.expand(4096)
