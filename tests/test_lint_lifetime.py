"""afflint lifetime pass (LIF0xx) and the allocator's free_aff guards."""

import pytest

from repro.analysis.diagnostics import (DoubleFreeError, Severity,
                                        UnknownAddressError)
from repro.analysis.lifetime import AllocEvent, check_lifetime
from repro.analysis.lint import LintSession
from repro.core.api import AffineArray
from repro.core.runtime import AffinityAllocator
from repro.machine import Machine


def ev(op, vaddr, size=0, label=""):
    return AllocEvent(op, vaddr, size, label)


class TestCheckLifetime:
    def test_balanced_trace_is_clean(self):
        trace = [ev("alloc", 0x1000, 64, "a"), ev("use", 0x1000),
                 ev("free", 0x1000)]
        assert not check_lifetime(trace).has_findings

    def test_double_free_is_lif001_error(self):
        trace = [ev("alloc", 0x1000, 64), ev("free", 0x1000),
                 ev("free", 0x1000)]
        report = check_lifetime(trace)
        (d,) = report.by_code("LIF001")
        assert d.severity is Severity.ERROR

    def test_leak_is_lif002_warning(self):
        report = check_lifetime([ev("alloc", 0x1000, 64, "leaky")])
        (d,) = report.by_code("LIF002")
        assert d.severity is Severity.WARNING
        assert d.site.name == "leaky"

    def test_leaks_suppressed_when_exit_dirty_ok(self):
        report = check_lifetime([ev("alloc", 0x1000, 64)],
                                expect_clean_exit=False)
        assert not report.has_findings

    def test_use_after_free_is_lif003_error(self):
        trace = [ev("alloc", 0x1000, 64), ev("free", 0x1000),
                 ev("use", 0x1000)]
        (d,) = check_lifetime(trace).by_code("LIF003")
        assert d.severity is Severity.ERROR

    def test_realloc_after_free_is_clean(self):
        trace = [ev("alloc", 0x1000, 64), ev("free", 0x1000),
                 ev("alloc", 0x1000, 64), ev("use", 0x1000),
                 ev("free", 0x1000)]
        assert not check_lifetime(trace).has_findings

    def test_unknown_free_is_lif004(self):
        (d,) = check_lifetime([ev("free", 0xdead)]).by_code("LIF004")
        assert d.severity is Severity.WARNING

    def test_leak_reports_are_capped(self):
        trace = [ev("alloc", 0x1000 + 64 * i, 64) for i in range(25)]
        report = check_lifetime(trace)
        warnings = [d for d in report.by_code("LIF002")
                    if d.severity is Severity.WARNING]
        assert len(warnings) == 10
        assert any("suppressed" in d.message for d in report)

    def test_bogus_op_rejected(self):
        with pytest.raises(ValueError):
            check_lifetime([ev("mangle", 0x1000)])


class TestAllocatorGuards:
    def test_double_free_counted_and_warned(self):
        alloc = AffinityAllocator(Machine())
        a = alloc.malloc_affine(AffineArray(4, 1024), name="A")
        alloc.free_aff(a)
        alloc.free_aff(a.vaddr)
        assert alloc.stats.double_frees == 1
        assert alloc.stats.frees == 1
        assert any(d.code == "LIF001" for d in alloc.diagnostics)

    def test_double_free_raises_in_strict_mode(self):
        alloc = AffinityAllocator(Machine(), strict=True)
        a = alloc.malloc_affine(AffineArray(4, 1024), name="A")
        alloc.free_aff(a)
        with pytest.raises(DoubleFreeError):
            alloc.free_aff(a.vaddr)

    def test_unknown_free_counted_and_warned(self):
        alloc = AffinityAllocator(Machine())
        alloc.free_aff(0x1234)
        assert alloc.stats.unknown_frees == 1
        assert any(d.code == "LIF004" for d in alloc.diagnostics)

    def test_unknown_free_raises_in_strict_mode(self):
        alloc = AffinityAllocator(Machine(), strict=True)
        with pytest.raises(UnknownAddressError):
            alloc.free_aff(0x1234)

    def test_irregular_double_free_detected(self):
        alloc = AffinityAllocator(Machine())
        v = alloc.malloc_irregular(64)
        alloc.free_aff(v)
        alloc.free_aff(v)
        assert alloc.stats.double_frees == 1

    def test_heap_free_still_passes_through(self):
        machine = Machine()
        alloc = AffinityAllocator(machine)
        v = machine.malloc(4096)
        alloc.free_aff(v)
        assert alloc.stats.heap_frees == 1
        assert alloc.stats.double_frees == 0


class TestSessionTrace:
    def test_session_replay_matches_guards(self):
        session = LintSession()
        a = session.allocator.malloc_affine(AffineArray(4, 1024), name="A")
        session.use(a)
        session.allocator.free_aff(a)
        session.allocator.free_aff(a.vaddr)
        report = check_lifetime(session.allocator.events)
        assert "LIF001" in report.codes()
        assert "LIF002" not in report.codes()
