"""Property-based tests for the address/layout invariants that make
cache keys and golden metrics well-defined.

The artifact cache assumes a graph/experiment is a pure function of its
parameters; that holds only because the layers underneath are exact
arithmetic: the IOT's Eq. 1 bank mapping, the VM translate/untranslate
pair, and the Eq. 2/3 affine interleave derivation.  These properties pin
each one across randomized inputs.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.arch.iot import InterleaveOverrideTable, IotEntry
from repro.core.api import AffineArray
from repro.core.runtime import AffinityAllocator
from repro.machine import Machine
from repro.vm.layout import AddressSpace, LinearRegion, PagedRegion

relaxed = settings(max_examples=40, deadline=None,
                   suppress_health_check=[HealthCheck.too_slow])

NUM_BANKS = 64


# ----------------------------------------------------------------------
# IOT Eq. 1:  bank(addr) = floor((addr - start) / intrlv) mod num_banks
# ----------------------------------------------------------------------
class TestIotEq1RoundTrip:
    @relaxed
    @given(shift=st.integers(6, 12),           # 64 B .. 4 KiB interleave
           bank=st.integers(0, NUM_BANKS - 1),
           wrap=st.integers(0, 50),
           offset=st.integers(0, (1 << 6) - 1))
    def test_slot_address_round_trips_to_its_bank(self, shift, bank, wrap,
                                                  offset):
        """Composing Eq. 1 forward (slot -> address) and backward
        (address -> bank) is the identity on the bank coordinate."""
        intrlv = 1 << shift
        start = 1 << 40
        iot = InterleaveOverrideTable(NUM_BANKS)
        iot.install(IotEntry(start, start + (1 << 30), intrlv))
        addr = start + (wrap * NUM_BANKS + bank) * intrlv + (offset % intrlv)
        got = iot.banks(np.array([addr]), default_shift=10)
        assert got[0] == bank

    @relaxed
    @given(shift=st.integers(6, 12),
           addrs=st.lists(st.integers(0, (1 << 28) - 1), min_size=1,
                          max_size=64))
    def test_vectorized_matches_scalar_eq1(self, shift, addrs):
        intrlv = 1 << shift
        start = 1 << 41
        iot = InterleaveOverrideTable(NUM_BANKS)
        iot.install(IotEntry(start, start + (1 << 30), intrlv))
        a = start + np.array(addrs, dtype=np.int64)
        got = iot.banks(a, default_shift=10)
        want = ((a - start) // intrlv) % NUM_BANKS
        assert (got == want).all()

    @relaxed
    @given(shift=st.integers(6, 12),
           addr=st.integers(0, (1 << 30) - 1))
    def test_outside_override_uses_default_hash(self, shift, addr):
        start = 1 << 41
        iot = InterleaveOverrideTable(NUM_BANKS)
        iot.install(IotEntry(start, start + (1 << 20), 1 << shift))
        got = iot.banks(np.array([addr]), default_shift=10)
        assert got[0] == (addr >> 10) % NUM_BANKS


# ----------------------------------------------------------------------
# vm.layout: translate has an exact inverse on every mapped address
# ----------------------------------------------------------------------
class TestTranslateInverse:
    @relaxed
    @given(vbase=st.integers(1, 1 << 20).map(lambda k: k << 20),
           pbase=st.integers(1, 1 << 20).map(lambda k: k << 20),
           size=st.integers(1, 1 << 16),
           offsets=st.lists(st.integers(0, (1 << 16) - 1), min_size=1,
                            max_size=32))
    def test_linear_region_inverse(self, vbase, pbase, size, offsets):
        size = max(size, max(offsets) + 1)
        region = LinearRegion("r", vbase, pbase, size)
        v = vbase + np.array(offsets, dtype=np.int64)
        p = region.translate(v)
        # untranslate: subtract the physical base, add the virtual base
        assert (p - pbase + vbase == v).all()

    @relaxed
    @given(pages=st.lists(st.integers(0, 255), min_size=1, max_size=16,
                          unique=True),
           offset=st.integers(0, 4095),
           perm_seed=st.integers(0, 1000))
    def test_paged_region_inverse(self, pages, offset, perm_seed):
        page = 4096
        region = PagedRegion("p", vbase=1 << 30, size=256 * page)
        rng = np.random.default_rng(perm_seed)
        frames = (1 << 35) + rng.permutation(4096)[:len(pages)] * page
        for pi, fr in zip(pages, frames):
            region.map_page(pi, int(fr))
        frame_of = {int(fr): pi for pi, fr in zip(pages, frames)}
        v = (1 << 30) + np.array(pages, dtype=np.int64) * page + offset
        p = region.translate(v)
        # invert through the frame table: page identity and offset survive
        back = np.array([frame_of[int(x) - int(x) % page] for x in p],
                        dtype=np.int64) * page + (1 << 30) + p % page
        assert (back == v).all()

    @relaxed
    @given(n_regions=st.integers(1, 5),
           picks=st.lists(st.tuples(st.integers(0, 4),
                                    st.integers(0, (1 << 12) - 1)),
                          min_size=1, max_size=32))
    def test_address_space_region_of_agrees_with_translate(self, n_regions,
                                                           picks):
        space = AddressSpace()
        regions = []
        for i in range(n_regions):
            r = LinearRegion(f"r{i}", vbase=(i + 1) << 30,
                             pbase=(i + 100) << 30, size=1 << 12)
            space.add(r)
            regions.append(r)
        v = np.array([((ri % n_regions) + 1 << 30) + off
                      for ri, off in picks], dtype=np.int64)
        p = space.translate(v)
        for vaddr, paddr in zip(v, p):
            region = space.region_of(int(vaddr))
            assert region is not None
            assert region.translate(np.array([vaddr]))[0] == paddr

    def test_unmapped_raises_not_garbage(self):
        space = AddressSpace()
        space.add(LinearRegion("r", 1 << 30, 1 << 35, 4096))
        with pytest.raises(RuntimeError):
            space.translate(np.array([(1 << 30) + 4096]))


# ----------------------------------------------------------------------
# Affine Eq. 2/3: derived interleave is stable across equivalent specs
# ----------------------------------------------------------------------
class TestAffineEq23Stability:
    def _alloc_pair(self, elem_b, p, q, nelem=1 << 12):
        m = Machine()
        alloc = AffinityAllocator(m)
        a = alloc.malloc_affine(AffineArray(4, nelem), name="A")
        b = alloc.malloc_affine(
            AffineArray(elem_b, max(nelem * q // max(p, 1), 64), align_to=a,
                        align_p=p, align_q=q), name="B")
        return m, a, b

    @relaxed
    @given(elem_b=st.sampled_from([4, 8, 16]),
           p=st.integers(1, 4), q=st.integers(1, 4),
           k=st.integers(2, 5))
    def test_scaled_ratio_gives_identical_layout(self, elem_b, p, q, k):
        """Eq. 3 depends only on q/p — (k*p, k*q) is the same spec."""
        _, _, b1 = self._alloc_pair(elem_b, p, q)
        _, _, b2 = self._alloc_pair(elem_b, k * p, k * q)
        l1, l2 = b1.layout, b2.layout
        assert (l1.kind, l1.intrlv, l1.start_bank, l1.stride) == \
            (l2.kind, l2.intrlv, l2.start_bank, l2.stride)

    @relaxed
    @given(elem=st.sampled_from([2, 4, 8, 16, 32]),
           n=st.integers(256, 1 << 14))
    def test_eq2_identity_alignment_colocates_every_element(self, elem, n):
        """p=q=1, x=0: B[i] must land on A[i]'s bank for all i (Eq. 2)."""
        m = Machine()
        alloc = AffinityAllocator(m)
        a = alloc.malloc_affine(AffineArray(elem, n), name="A")
        b = alloc.malloc_affine(AffineArray(elem, n, align_to=a), name="B")
        idx = np.arange(n)
        assert (a.banks(idx) == b.banks(idx)).all()

    @relaxed
    @given(x_slots=st.integers(0, 32), n_slots=st.integers(40, 200))
    def test_eq2_offset_shifts_start_bank(self, x_slots, n_slots):
        """B[0] aligned to A[x] starts on A[x]'s bank when x sits on a
        slot boundary."""
        m = Machine()
        alloc = AffinityAllocator(m)
        elems_per_slot = 64 // 4  # elem 4B in the 64B-interleave pool
        n = n_slots * elems_per_slot
        x = x_slots * elems_per_slot
        a = alloc.malloc_affine(AffineArray(4, n), name="A")
        b = alloc.malloc_affine(AffineArray(4, n, align_to=a, align_x=x),
                                name="B")
        assert b.banks(np.array([0]))[0] == a.banks(np.array([x]))[0]

    @relaxed
    @given(q=st.sampled_from([2, 4]), n=st.integers(512, 1 << 13))
    def test_eq3_rational_alignment_tracks_target(self, q, n):
        """B[i] aligns to A[i/q]: every q-th element shares A's bank."""
        m = Machine()
        alloc = AffinityAllocator(m)
        a = alloc.malloc_affine(AffineArray(4, n), name="A")
        b = alloc.malloc_affine(
            AffineArray(4, n * q, align_to=a, align_p=1, align_q=q),
            name="B")
        i = np.arange(0, n * q, q)
        assert (b.banks(i) == a.banks(i // q)).all()
