"""Property-based tests over the online re-layout invariants.

The autoplace loop's load-bearing contracts, pinned across randomized
telemetry and real (tiny) runs:

* ``decide`` is a pure, bounded function: the same telemetry snapshot
  and config always produce the same decision tuple, never more than
  ``min(max_per_epoch, budget_left)`` of them, and every rotation
  amount is a valid bank rotation;
* cooling arrays and unhealthy banks are never chosen;
* the engine composes with fault injection: migrations applied while
  banks are failed never target a failed bank (the plan replays clean
  through afflint's RLY001 audit);
* the whole loop is jobs-deterministic: ``run_autoplace`` produces a
  byte-identical report for ``jobs=1`` and ``jobs=2``;
* zero drift is invisible: a workload whose arrays never drift applies
  zero migrations inside a relayout session and reproduces the static
  run's cycles — and ``run_figures(relayout=...)`` writes a
  byte-identical ``run-<hash>.json``.
"""

from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

import repro.cache as cache_mod
from repro.cache import ArtifactCache
from repro.faults.injector import fault_session
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan
from repro.harness import runner
from repro.nsc.engine import EngineMode
from repro.relayout.autoplace import run_autoplace
from repro.relayout.engine import relayout_session
from repro.relayout.plan import MigrationKind, MigrationPlan
from repro.relayout.policy import (ArrayDrift, RelayoutConfig, Telemetry,
                                   decide)
from repro.workloads import run_workload

relaxed = settings(max_examples=60, deadline=None,
                   suppress_health_check=[HealthCheck.too_slow])
slow = settings(max_examples=4, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])

NUM_BANKS = 64


# ----------------------------------------------------------------------
# Telemetry strategy
# ----------------------------------------------------------------------
@st.composite
def telemetries(draw):
    nb = draw(st.sampled_from([4, 8, 64]))
    n_arrays = draw(st.integers(0, 6))
    arrays = []
    for i in range(n_arrays):
        total = draw(st.floats(0.0, 1e6, allow_nan=False))
        remote = draw(st.floats(0.0, total, allow_nan=False))
        hist = [0.0] * nb
        mass = remote
        for _ in range(draw(st.integers(0, 3))):
            d = draw(st.integers(1, nb - 1))
            w = draw(st.floats(0.0, mass, allow_nan=False))
            hist[d] += w
            mass -= w
        arrays.append(ArrayDrift(
            name=f"arr{i}", vaddr=(i + 1) << 16, total=total, remote=remote,
            delta_hist=tuple(hist),
            eligible_rotate=draw(st.booleans()),
            cooling=draw(st.booleans())))
    healthy = tuple(draw(st.lists(st.booleans(), min_size=nb, max_size=nb)))
    heat = tuple(draw(st.lists(st.floats(0.0, 1e9, allow_nan=False),
                               min_size=nb, max_size=nb)))
    return Telemetry(epoch=f"e{draw(st.integers(0, 99))}", num_banks=nb,
                     bank_heat=heat, healthy=healthy, arrays=tuple(arrays),
                     budget_left=draw(st.integers(0, 20)))


configs = st.builds(
    RelayoutConfig,
    drift_threshold=st.floats(0.0, 1.0, allow_nan=False),
    dominance=st.floats(0.0, 1.0, allow_nan=False),
    min_accesses=st.floats(0.0, 4096.0, allow_nan=False),
    max_per_epoch=st.integers(0, 8),
    max_total=st.integers(0, 32),
    hot_ratio=st.floats(1.0, 64.0, allow_nan=False),
    rehome_budget=st.integers(0, 2),
    seed=st.integers(0, 1000))


# ----------------------------------------------------------------------
# Policy: pure, bounded, safe
# ----------------------------------------------------------------------
class TestPolicyProperties:
    @relaxed
    @given(t=telemetries(), cfg=configs)
    def test_decide_is_pure(self, t, cfg):
        assert decide(t, cfg) == decide(t, cfg)

    @relaxed
    @given(t=telemetries(), cfg=configs)
    def test_decide_respects_budget(self, t, cfg):
        out = decide(t, cfg)
        assert len(out) <= min(cfg.max_per_epoch, t.budget_left)

    @relaxed
    @given(t=telemetries(), cfg=configs)
    def test_rotations_are_valid_and_justified(self, t, cfg):
        by_vaddr = {a.vaddr: a for a in t.arrays}
        for dec in decide(t, cfg):
            if dec.kind is not MigrationKind.ROTATE:
                continue
            assert 1 <= dec.rot < t.num_banks
            a = by_vaddr[dec.vaddr]
            assert a.eligible_rotate and not a.cooling
            assert a.total >= cfg.min_accesses
            assert a.remote_fraction >= cfg.drift_threshold
            d, _ = a.dominant_delta()
            assert dec.rot == (t.num_banks - d) % t.num_banks

    @relaxed
    @given(t=telemetries(), cfg=configs)
    def test_swaps_pick_distinct_healthy_banks(self, t, cfg):
        for dec in decide(t, cfg):
            if dec.kind is not MigrationKind.SWAP:
                continue
            assert dec.bank_a != dec.bank_b
            assert t.healthy[dec.bank_a] and t.healthy[dec.bank_b]

    @relaxed
    @given(t=telemetries(), cfg=configs)
    def test_cooling_arrays_never_selected(self, t, cfg):
        cooling = {a.vaddr for a in t.arrays if a.cooling}
        for dec in decide(t, cfg):
            if dec.kind is MigrationKind.SWAP:
                continue
            assert dec.vaddr not in cooling

    def test_config_digest_is_stable_and_sensitive(self):
        a, b = RelayoutConfig(), RelayoutConfig()
        assert a.digest() == b.digest()
        assert a.digest() != RelayoutConfig(seed=1).digest()


# ----------------------------------------------------------------------
# Engine: same seed, same plan; composes with fault injection
# ----------------------------------------------------------------------
class TestEngineDeterminism:
    @slow
    @given(seed=st.integers(0, 20))
    def test_same_seed_same_plan(self, seed):
        plans = []
        for _ in range(2):
            with relayout_session(RelayoutConfig(seed=seed)) as session:
                run_workload("stream_flip", EngineMode.AFF_ALLOC,
                             scale=0.1, seed=seed)
            plans.append(session.merged_plan())
        assert plans[0].to_json() == plans[1].to_json()
        assert plans[0].applied_count() > 0  # the scenario really drifts

    def test_plan_survives_json_round_trip(self):
        with relayout_session(RelayoutConfig()) as session:
            run_workload("stream_flip", EngineMode.AFF_ALLOC, scale=0.1,
                         seed=0)
        plan = session.merged_plan()
        assert MigrationPlan.from_json(plan.to_json()) == plan


class TestFaultComposition:
    @pytest.mark.parametrize("banks", [[0], [7, 11], [63]])
    def test_migrations_never_target_failed_banks(self, banks):
        plan_events = tuple(FaultEvent(FaultKind.BANK_FAIL, b, phase="boot",
                                       rehome=True) for b in banks)
        with fault_session(FaultPlan(events=plan_events)):
            with relayout_session(RelayoutConfig()) as session:
                r = run_workload("stream_flip", EngineMode.AFF_ALLOC,
                                 scale=0.1, seed=0)
        assert np.isfinite(r.cycles) and r.cycles > 0
        plan = session.merged_plan()
        failed = set(banks)
        for m in plan.migrations:
            if m.applied:
                assert failed.isdisjoint(m.dst_banks)
        # afflint's replay agrees: no RLY001 with the health mask applied
        healthy = [b not in failed for b in range(NUM_BANKS)]
        report = plan.to_diagnostics(NUM_BANKS, healthy)
        assert not report.has_errors


# ----------------------------------------------------------------------
# Jobs-independence of the autoplace runner
# ----------------------------------------------------------------------
class TestJobsDeterminism:
    def test_report_identical_across_jobs(self):
        scenarios = ("stream_flip", "dyn_graph")
        serial = run_autoplace(scenarios, RelayoutConfig(), scale=0.25,
                               seed=0, jobs=1)
        fanned = run_autoplace(scenarios, RelayoutConfig(), scale=0.25,
                               seed=0, jobs=2)
        assert serial.to_json() == fanned.to_json()
        assert serial.plan.to_json() == fanned.plan.to_json()


# ----------------------------------------------------------------------
# Zero drift is invisible
# ----------------------------------------------------------------------
class TestZeroDriftInvisible:
    def test_aligned_run_applies_no_migrations(self):
        # Default bfs allocates its queue aligned to the vertex arrays:
        # telemetry sees no drift, so the session must not perturb the run.
        static = run_workload("bfs", EngineMode.AFF_ALLOC, scale=0.05, seed=0)
        with relayout_session(RelayoutConfig()) as session:
            online = run_workload("bfs", EngineMode.AFF_ALLOC, scale=0.05,
                                  seed=0)
        assert session.merged_plan().applied_count() == 0
        assert online.cycles == static.cycles
        assert online.total_flit_hops == static.total_flit_hops
        assert online.counters == static.counters

    @pytest.fixture
    def fresh_cache(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            cache_mod, "_CACHE",
            ArtifactCache(root=tmp_path / "cache", enabled=True))

    def test_results_file_byte_identical(self, fresh_cache, tmp_path):
        ids = ("table1", "fig17")
        plain = runner.run_figures(ids, jobs=1, scale=0.05, seed=0,
                                   use_cache=False,
                                   results_dir=tmp_path / "a",
                                   preflight=False)
        relaid = runner.run_figures(ids, jobs=1, scale=0.05, seed=0,
                                    use_cache=False,
                                    results_dir=tmp_path / "b",
                                    preflight=False,
                                    relayout=RelayoutConfig())
        assert Path(plain.path).name == Path(relaid.path).name
        assert Path(plain.path).read_bytes() == Path(relaid.path).read_bytes()

    def test_relayout_runs_get_distinct_cache_keys(self, fresh_cache,
                                                   tmp_path):
        ids = ("fig17",)
        runner.run_figures(ids, scale=0.05, seed=0, preflight=False)
        relaid = runner.run_figures(ids, scale=0.05, seed=0, preflight=False,
                                    relayout=RelayoutConfig())
        # the plain run's cache entry must not satisfy the relayout run
        assert not any(f.from_cache for f in relaid.figures)
