"""Smoke tests for the remaining sweep experiments (Figs 16/19)."""

import dataclasses

import pytest

from repro.config import DEFAULT_CONFIG
from repro.harness import fig16_graph_scaling, fig19_degree_sweep


class TestFig19:
    @pytest.fixture(scope="class")
    def result(self):
        return fig19_degree_sweep(workloads=("pr_push",),
                                  degrees=(4, 64), total_edges=1 << 15)

    def test_all_rows_present(self, result):
        rows = [r for r in result.rows() if r[0] == "pr_push"]
        assert len(rows) == 2

    def test_hybrid_beats_rnd(self, result):
        for row in result.rows():
            if row[0] == "pr_push":
                assert row[2] > 0.9  # Hybrid-5 vs Rnd

    def test_geomean_rows(self, result):
        gms = [r for r in result.rows() if r[0] == "geomean"]
        assert len(gms) == 2


class TestFig16:
    def test_miss_grows_with_graph(self):
        cfg = DEFAULT_CONFIG.scaled(cache=dataclasses.replace(
            DEFAULT_CONFIG.cache, bank_capacity_bytes=8 << 10))
        res = fig16_graph_scaling(workloads=("pr_push",),
                                  log_sizes=(11, 13), config=cfg)
        rows = [r for r in res.rows() if r[0] == "pr_push"]
        assert rows[1][4] >= rows[0][4]  # miss% non-decreasing
        assert rows[0][2] > 0.5          # Hybrid-5 sane at small size
